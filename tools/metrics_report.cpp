// Summarizes a --telemetry-out JSONL run log (bench_common.h schema)
// into support::table reports:
//
//   $ ./metrics_report --in run.jsonl [--csv prefix]
//
// Per training run (one run_start/round.../run_end sequence): sample and
// round counts, simulated hours, best per-step time, wall time, eval
// latency percentiles (p50/p95/p99 interpolated from the span.eval.ticket
// histogram buckets), cache hit rate and retry rate. A second table
// aggregates profiler spans by phase across every run in the file.
//
// Exits non-zero on an unreadable file, a JSON parse error, or a log with
// no run records — so CI can assert the telemetry artifact is sound.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "support/args.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/table.h"

using namespace eagle;
namespace json = support::json;

namespace {

// One completed training run, reassembled from its run_end record (which
// carries the per-run counter and full-bucket histogram deltas).
struct RunSummary {
  std::string label;
  int total_samples = 0;
  int rounds = 0;
  double sim_hours = 0.0;
  double best_per_step_s = 0.0;
  bool found_valid = false;
  double wall_seconds = 0.0;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, support::metrics::HistogramSnapshot> histograms;
};

bool ParseHistogram(const json::Value& v,
                    support::metrics::HistogramSnapshot* out) {
  const json::Value* bounds = v.Find("bounds");
  const json::Value* counts = v.Find("counts");
  if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
      !counts->is_array()) {
    return false;
  }
  out->count = static_cast<std::int64_t>(v.NumberOr("count", 0.0));
  out->sum = v.NumberOr("sum", 0.0);
  out->min = v.NumberOr("min", 0.0);
  out->max = v.NumberOr("max", 0.0);
  for (const json::Value& b : bounds->items()) {
    if (!b.is_number()) return false;
    out->bounds.push_back(b.number());
  }
  for (const json::Value& c : counts->items()) {
    if (!c.is_number()) return false;
    out->counts.push_back(static_cast<std::int64_t>(c.number()));
  }
  return out->counts.size() == out->bounds.size() + 1;
}

std::string Pct(double numerator, double denominator) {
  if (denominator <= 0.0) return "n/a";
  return support::Table::Num(100.0 * numerator / denominator, 1) + "%";
}

std::string QuantileMs(const support::metrics::HistogramSnapshot* hist,
                       double q) {
  if (hist == nullptr || hist->count <= 0) return "n/a";
  return support::Table::Num(hist->Quantile(q) * 1e3, 2);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE run-telemetry summarizer");
  args.AddString("in", "run.jsonl", "telemetry JSONL file (--telemetry-out)");
  args.AddString("csv", "", "CSV output path prefix (empty: no CSV)");
  if (!args.Parse(argc, argv)) return 0;

  const std::string path = args.GetString("in");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "metrics_report: cannot open %s\n", path.c_str());
    return 1;
  }

  std::vector<RunSummary> runs;
  int open_rounds = 0;  // rounds seen since the last run_end
  int line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    const json::Value value = json::Value::Parse(line, &error);
    if (!value.is_object()) {
      std::fprintf(stderr, "metrics_report: %s:%d: bad JSON (%s)\n",
                   path.c_str(), line_number, error.c_str());
      return 1;
    }
    const std::string event = value.StringOr("event", "");
    if (event == "round") {
      ++open_rounds;
    } else if (event == "run_end") {
      RunSummary run;
      run.label = value.StringOr("model", "?") + " / " +
                  value.StringOr("agent", "?") + " / " +
                  value.StringOr("algorithm", "?");
      run.total_samples =
          static_cast<int>(value.NumberOr("total_samples", 0.0));
      run.rounds = open_rounds;
      open_rounds = 0;
      run.sim_hours = value.NumberOr("sim_hours", 0.0);
      const json::Value* best = value.Find("best_per_step_s");
      run.found_valid = best != nullptr && best->is_number();
      if (run.found_valid) run.best_per_step_s = best->number();
      run.wall_seconds = value.NumberOr("wall_seconds", 0.0);
      if (const json::Value* counters = value.Find("counters")) {
        for (const auto& [name, v] : counters->fields()) {
          if (v.is_number()) {
            run.counters[name] = static_cast<std::int64_t>(v.number());
          }
        }
      }
      if (const json::Value* histograms = value.Find("histograms")) {
        for (const auto& [name, v] : histograms->fields()) {
          support::metrics::HistogramSnapshot hist;
          if (ParseHistogram(v, &hist)) run.histograms[name] = hist;
        }
      }
      runs.push_back(std::move(run));
    }
  }
  if (runs.empty()) {
    std::fprintf(stderr,
                 "metrics_report: %s holds no run_end records — not a "
                 "telemetry log, or the run died before finishing\n",
                 path.c_str());
    return 1;
  }

  support::Table summary("run summary (" + path + ")");
  summary.SetHeader({"run", "samples", "rounds", "sim h", "best s/step",
                     "wall s", "eval p50 ms", "p95 ms", "p99 ms", "hit rate",
                     "retry rate"});
  // Phase aggregation across runs: total calls and seconds per span name.
  std::map<std::string, std::pair<std::int64_t, double>> phases;
  for (const RunSummary& run : runs) {
    auto counter = [&](const char* name) -> double {
      const auto it = run.counters.find(name);
      return it == run.counters.end() ? 0.0
                                      : static_cast<double>(it->second);
    };
    const auto eval_it = run.histograms.find("span.eval.ticket");
    const support::metrics::HistogramSnapshot* eval =
        eval_it == run.histograms.end() ? nullptr : &eval_it->second;
    summary.AddRow(
        {run.label, std::to_string(run.total_samples),
         std::to_string(run.rounds), support::Table::Num(run.sim_hours, 2),
         run.found_valid ? support::Table::Num(run.best_per_step_s)
                         : std::string("OOM"),
         support::Table::Num(run.wall_seconds, 1), QuantileMs(eval, 0.50),
         QuantileMs(eval, 0.95), QuantileMs(eval, 0.99),
         Pct(counter("env.cache_hits"),
             counter("env.cache_hits") + counter("env.cache_misses")),
         Pct(counter("env.retries"), counter("env.attempts"))});
    for (const auto& [name, hist] : run.histograms) {
      if (name.rfind("span.", 0) != 0) continue;
      auto& [calls, seconds] = phases[name.substr(5)];
      calls += hist.count;
      seconds += hist.sum;
    }
  }
  std::fputs(summary.ToString().c_str(), stdout);

  support::Table phase_table("spans by phase (all runs)");
  phase_table.SetHeader({"phase", "calls", "total s", "mean ms"});
  for (const auto& [name, totals] : phases) {
    const auto& [calls, seconds] = totals;
    phase_table.AddRow(
        {name, std::to_string(calls), support::Table::Num(seconds, 3),
         calls > 0
             ? support::Table::Num(seconds / static_cast<double>(calls) * 1e3,
                                   3)
             : "n/a"});
  }
  std::fputs(phase_table.ToString().c_str(), stdout);

  const std::string csv_prefix = args.GetString("csv");
  if (!csv_prefix.empty()) {
    bool ok = summary.WriteCsv(csv_prefix + "runs.csv");
    ok = phase_table.WriteCsv(csv_prefix + "phases.csv") && ok;
    if (!ok) {
      std::fprintf(stderr, "metrics_report: failed to write CSV output\n");
      return 1;
    }
  }
  return 0;
}
