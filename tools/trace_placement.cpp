// Placement tracer: simulates one training step of a benchmark under a
// chosen placement policy with full schedule recording, writes a Chrome
// tracing / Perfetto JSON timeline, and prints the critical-path
// attribution (compute vs transfer vs queueing).
//
//   $ ./trace_placement --model=gnmt --policy=expert --out=gnmt.trace.json
//   $ ./trace_placement --load=my_graph.eg --policy=balanced
//   then open chrome://tracing or https://ui.perfetto.dev
//
// Policies: single (one GPU), expert (the paper's human-expert layout,
// built-in models only), balanced (METIS groups round-robined over the
// GPUs), random. Malformed --load files and unusable policy choices are
// a diagnostic on stderr and exit 2, never an abort.
#include <cstdio>
#include <ostream>
#include <utility>

#include "core/expert_policies.h"
#include "graph/grouped_graph.h"
#include "graph/ingest.h"
#include "models/zoo.h"
#include "partition/metis_like.h"
#include "sim/cluster_ingest.h"
#include "sim/fault.h"
#include "sim/trace.h"
#include "support/args.h"
#include "support/atomic_file.h"
#include "support/rng.h"

using namespace eagle;

namespace {

sim::Placement MakePlacement(const std::string& policy,
                             const graph::OpGraph& graph,
                             const sim::ClusterSpec& cluster,
                             std::uint64_t seed) {
  if (policy == "single") {
    return core::SingleGpuPlacement(graph, cluster);
  }
  if (policy == "balanced") {
    partition::MetisOptions options;
    options.num_parts = 4 * cluster.num_devices();
    options.seed = seed;
    const auto grouping = partition::MetisPartition(graph, options);
    graph::GroupedGraph grouped(graph, grouping, options.num_parts);
    const auto gpus = cluster.Gpus();
    std::vector<std::int32_t> group_devices(
        static_cast<std::size_t>(options.num_parts));
    for (int g = 0; g < options.num_parts; ++g) {
      group_devices[static_cast<std::size_t>(g)] =
          gpus[static_cast<std::size_t>(g) % gpus.size()];
    }
    sim::Placement placement(graph, grouped.ExpandToOps(group_devices));
    placement.Normalize(graph, cluster);
    return placement;
  }
  if (policy == "random") {
    support::Rng rng(seed);
    std::vector<sim::DeviceId> devices(
        static_cast<std::size_t>(graph.num_ops()));
    for (auto& d : devices) {
      d = static_cast<sim::DeviceId>(
          rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
    }
    sim::Placement placement(graph, std::move(devices));
    placement.Normalize(graph, cluster);
    return placement;
  }
  EAGLE_CHECK_MSG(false, "unreachable: policy validated in main");
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE placement tracer");
  args.AddString("model", "gnmt", "inception_v3 | gnmt | bert");
  args.AddString("load", "",
                 "trace a .eg or .json graph file instead of a benchmark");
  args.AddString("policy", "balanced",
                 "single | expert | balanced | random");
  args.AddString("out", "placement.trace.json", "trace output path");
  args.AddInt("seed", 1, "RNG seed for the random/balanced policies");
  args.AddString("faults", "",
                 "inject one fault draw into the traced step, e.g. "
                 "straggler=0.5,slowdown=4,link=0.3 (seed=N picks the draw)");
  args.AddString("cluster", "",
                 "cluster topology: default, 2node8, mixed, or a "
                 ".ec/.json cluster-spec file");
  if (!args.Parse(argc, argv)) return 0;

  const std::string policy = args.GetString("policy");
  if (policy != "single" && policy != "expert" && policy != "balanced" &&
      policy != "random") {
    std::fprintf(stderr,
                 "trace_placement: unknown policy '%s' (expected single, "
                 "expert, balanced or random)\n",
                 policy.c_str());
    return 2;
  }

  const bool loading = !args.GetString("load").empty();
  graph::OpGraph graph;
  if (loading) {
    // Hardened ingestion: a malformed file is a diagnostic with the
    // offending file:line:column and exit 2, never an abort.
    support::StatusOr<graph::OpGraph> parsed =
        graph::ImportGraphFile(args.GetString("load"));
    if (!parsed.ok()) {
      std::fprintf(stderr, "trace_placement: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    graph = std::move(parsed).value();
  } else {
    graph = models::BuildBenchmark(
        models::BenchmarkFromName(args.GetString("model")));
  }

  // Same hardened path as graphs: builtin names resolve directly, file
  // paths go through the validating cluster importer.
  support::StatusOr<sim::ClusterSpec> resolved =
      sim::ResolveCluster(args.GetString("cluster"));
  if (!resolved.ok()) {
    std::fprintf(stderr, "trace_placement: %s\n",
                 resolved.status().ToString().c_str());
    return 2;
  }
  const sim::ClusterSpec cluster = std::move(resolved).value();
  sim::Placement placement;
  if (policy == "expert") {
    // Expert layouts exist only for the built-in benchmarks.
    if (loading) {
      std::fprintf(stderr,
                   "trace_placement: the expert policy needs a built-in "
                   "--model, not --load — try --policy=balanced\n");
      return 2;
    }
    auto expert = core::HumanExpertPlacement(
        models::BenchmarkFromName(args.GetString("model")), graph, cluster);
    if (!expert.has_value()) {
      std::fprintf(stderr,
                   "trace_placement: no expert placement for '%s' — try "
                   "--policy=balanced\n",
                   args.GetString("model").c_str());
      return 2;
    }
    placement = *std::move(expert);
  } else {
    placement = MakePlacement(
        policy, graph, cluster,
        static_cast<std::uint64_t>(args.GetInt("seed")));
  }

  // Optional fault injection: one deterministic draw (the profile's seed
  // picks which) so slowed devices / degraded links show up directly in
  // the exported timeline.
  const auto fault_profile =
      sim::FaultProfileFromString(args.GetString("faults"));
  sim::FaultDraw draw;
  if (fault_profile.enabled()) {
    sim::FaultInjector injector(fault_profile, cluster);
    support::Rng fault_rng(fault_profile.seed);
    draw = injector.Draw(fault_rng);
    std::printf("faults: %s\n", draw.ToString(cluster).c_str());
    if (draw.session_crash || draw.HitsDownDevice(placement)) {
      std::printf(
          "this draw would fail the measurement attempt (crash or "
          "down device); tracing the degraded schedule anyway\n");
    }
  }

  sim::SimulatorOptions options;
  options.record_schedule = true;
  sim::ExecutionSimulator simulator(graph, cluster, options);
  const auto result = simulator.Run(
      placement, fault_profile.enabled() ? &draw : nullptr);
  std::printf("%s\n", result.ToString(cluster).c_str());
  if (result.oom) return 1;

  // ToChromeTrace aborts (EAGLE_CHECK) on a schedule-less result; a tool
  // user should get a diagnostic and an exit code instead. This happens
  // when the simulated graph has ops but recording was disabled or the
  // run produced no timeline.
  if (result.schedule.empty() && graph.num_ops() > 0) {
    std::fprintf(stderr,
                 "trace_placement: the simulator returned no recorded "
                 "schedule for '%s' (%d ops) — nothing to export.\n"
                 "This usually means schedule recording was disabled; "
                 "rerun with a build where SimulatorOptions::"
                 "record_schedule is honored.\n",
                 (loading ? args.GetString("load") : args.GetString("model"))
                     .c_str(),
                 graph.num_ops());
    return 2;
  }

  const auto report = sim::AnalyzeCriticalPath(result, graph);
  std::printf("%s\n", report.ToString(graph).c_str());

  const std::string out_path = args.GetString("out");
  const std::string trace = sim::ToChromeTrace(result, graph, cluster);
  // Atomic write: never leave a truncated trace behind on a full disk.
  if (!support::WriteFileAtomic(out_path, [&](std::ostream& out) {
        out << trace;
        return static_cast<bool>(out);
      })) {
    std::fprintf(stderr, "trace_placement: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%d ops, %d transfers)\n", out_path.c_str(),
              static_cast<int>(result.schedule.size()),
              static_cast<int>(result.transfers.size()));
  return 0;
}
