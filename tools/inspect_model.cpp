// Model inspector: prints graph statistics, per-layer resource breakdowns
// and memory feasibility for a benchmark (or a .eg file), and optionally
// exports DOT / JSON / .eg.
//
//   $ ./inspect_model --model=bert
//   $ ./inspect_model --model=gnmt --dot=gnmt.dot --layers
//   $ ./inspect_model --load=my_graph.eg --json=my_graph.json
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "graph/graph_io.h"
#include "graph/ingest.h"
#include "models/zoo.h"
#include "sim/measurement.h"
#include "support/args.h"
#include "support/table.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE model inspector");
  args.AddString("model", "bert", "inception_v3 | gnmt | bert");
  args.AddString("load", "",
                 "load a .eg or .json graph instead of a benchmark");
  args.AddString("dot", "", "write Graphviz DOT here");
  args.AddString("json", "", "write JSON here");
  args.AddString("eg", "", "write .eg text format here");
  args.AddBool("layers", false, "print the per-layer breakdown");
  args.AddBool("types", false, "print the per-op-type breakdown");
  if (!args.Parse(argc, argv)) return 0;

  graph::OpGraph graph;
  if (args.GetString("load").empty()) {
    graph = models::BuildBenchmark(
        models::BenchmarkFromName(args.GetString("model")));
  } else {
    // Hardened ingestion: a malformed file is a diagnostic with the
    // offending file:line:column and exit 2, never an abort.
    support::StatusOr<graph::OpGraph> parsed =
        graph::ImportGraphFile(args.GetString("load"));
    if (!parsed.ok()) {
      std::fprintf(stderr, "inspect_model: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    graph = std::move(parsed).value();
  }
  std::printf("%s\n", graph.StatsString().c_str());

  const auto cluster = sim::MakeDefaultCluster();
  sim::MeasurementSession session(graph, cluster);
  for (sim::DeviceId d = 1; d < cluster.num_devices(); ++d) {
    const auto eval =
        session.Evaluate(sim::Placement::AllOnDevice(graph, cluster, d));
    std::printf("all on %s: %s\n", cluster.device(d).name.c_str(),
                eval.valid
                    ? (support::Table::Num(eval.true_per_step_seconds, 4) +
                       " s/step")
                        .c_str()
                    : "OOM");
    break;  // one representative GPU is enough (they are identical)
  }

  if (args.GetBool("layers")) {
    struct LayerInfo {
      int ops = 0;
      double gflops = 0.0;
      double param_mb = 0.0;
      double act_mb = 0.0;
    };
    std::map<std::string, LayerInfo> layers;
    for (const auto& op : graph.ops()) {
      auto& info = layers[op.layer.empty() ? "(untagged)" : op.layer];
      info.ops++;
      info.gflops += op.flops / 1e9;
      info.param_mb += static_cast<double>(op.param_bytes) / (1 << 20);
      info.act_mb += static_cast<double>(op.output_bytes()) / (1 << 20);
    }
    support::Table table("per-layer breakdown");
    table.SetHeader({"layer", "ops", "GFLOP", "params MB", "acts MB"});
    for (const auto& [name, info] : layers) {
      table.AddRow({name, std::to_string(info.ops),
                    support::Table::Num(info.gflops, 1),
                    support::Table::Num(info.param_mb, 1),
                    support::Table::Num(info.act_mb, 1)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }

  if (args.GetBool("types")) {
    std::map<std::string, std::pair<int, double>> types;
    for (const auto& op : graph.ops()) {
      auto& [count, gflops] = types[graph::OpTypeName(op.type)];
      count++;
      gflops += op.flops / 1e9;
    }
    support::Table table("per-type breakdown");
    table.SetHeader({"op type", "count", "GFLOP"});
    for (const auto& [name, info] : types) {
      table.AddRow({name, std::to_string(info.first),
                    support::Table::Num(info.second, 1)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }

  auto write_file = [](const std::string& path, const std::string& body) {
    std::ofstream out(path);
    out << body;
    return static_cast<bool>(out);
  };
  if (!args.GetString("dot").empty() &&
      write_file(args.GetString("dot"), graph::ToDot(graph))) {
    std::printf("wrote %s\n", args.GetString("dot").c_str());
  }
  if (!args.GetString("json").empty() &&
      write_file(args.GetString("json"), graph::ToJson(graph))) {
    std::printf("wrote %s\n", args.GetString("json").c_str());
  }
  if (!args.GetString("eg").empty() &&
      graph::SaveTextFile(graph, args.GetString("eg"))) {
    std::printf("wrote %s\n", args.GetString("eg").c_str());
  }
  return 0;
}
