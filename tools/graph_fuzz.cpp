// Structure-aware fuzz driver for the graph ingestion pipeline.
//
// Three modes, all deterministic for a given --seed:
//
//   generate  build a valid layered training graph and write it out
//             (--format=eg|json, or inferred from --out's suffix):
//               $ ./graph_fuzz --mode=generate --ops=2000 --out=g.eg
//   fuzz      load a valid serialized graph, then repeatedly corrupt a
//             copy (models::MutateSerializedGraph) and feed it to the
//             hardened parser, histogramming the error-taxonomy codes.
//             Any crash/throw — instead of a structured error — is the
//             bug this tool exists to catch; run it under the ASan/
//             UBSan build (scripts/run_ci.sh does):
//               $ ./graph_fuzz --mode=fuzz --in=g.eg --iters=10000
//   e2e       generate → serialize → re-ingest → validate → METIS-group
//             → simulate one training step, end to end, at stress scale:
//               $ ./graph_fuzz --mode=e2e --ops=100000
//   delta     differential gate for delta re-simulation: drive random
//             single- and multi-op move sequences on the benchmark zoo
//             plus fuzz-corpus training graphs, comparing every
//             delta-path result field-for-field (doubles exact) against
//             a fresh full run. Sweeps the default, 2node8 and mixed
//             topologies unless --cluster pins one:
//               $ ./graph_fuzz --mode=delta --iters=50
//   cluster-fuzz  like fuzz, but corrupts a cluster-spec file (.ec or
//             .json) and feeds it to the hardened cluster importer:
//               $ ./graph_fuzz --mode=cluster-fuzz --in=clusters/2node8.ec
//
// Exit codes: 0 success, 1 delta divergence, 2 structured ingestion
// failure (e2e/fuzz input), matching the friendly-diagnostic convention
// of the other tools.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_io.h"
#include "graph/grouped_graph.h"
#include "graph/ingest.h"
#include "models/fuzz_corpus.h"
#include "models/zoo.h"
#include "partition/metis_like.h"
#include "sim/cluster_ingest.h"
#include "sim/delta.h"
#include "sim/device.h"
#include "sim/placement.h"
#include "sim/simulator.h"
#include "support/args.h"
#include "support/rng.h"
#include "support/stopwatch.h"

using namespace eagle;

namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

graph::OpGraph Generate(int ops, std::uint64_t seed) {
  models::FuzzGraphConfig config;
  // Training augmentation roughly doubles the graph; aim the forward
  // half so the final op count lands near --ops.
  config.num_ops = ops / 2 + 1;
  config.width = 64;
  support::Rng rng(seed);
  return models::BuildFuzzGraph(config, rng);
}

std::string Serialize(const graph::OpGraph& graph, bool json) {
  if (json) return graph::ToJson(graph);
  std::ostringstream os;
  graph::SaveText(graph, os);
  return os.str();
}

int RunFuzz(const std::string& path, bool json, int iters,
            std::uint64_t seed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "graph_fuzz: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string base = buffer.str();

  support::Rng rng(seed);
  std::map<std::string, int> histogram;
  for (int i = 0; i < iters; ++i) {
    std::string mutant = base;
    // 1–3 stacked mutations: single corruptions explore the taxonomy,
    // stacks reach states no single edit produces.
    const int depth = 1 + static_cast<int>(rng.NextBelow(3));
    for (int d = 0; d < depth; ++d) {
      mutant = models::MutateSerializedGraph(mutant, rng);
    }
    const support::StatusOr<graph::OpGraph> parsed =
        json ? graph::FromJson(mutant)
             : graph::ParseTextGraph(mutant);
    if (parsed.ok()) {
      ++histogram["ok"];
    } else {
      ++histogram[support::ErrorCodeName(parsed.status().code())];
    }
  }
  std::printf("%d mutants of %s (%s):\n", iters, path.c_str(),
              json ? "json" : "eg");
  for (const auto& [code, count] : histogram) {
    std::printf("  %-17s %d\n", code.c_str(), count);
  }
  return 0;
}

// Cluster-spec mutation fuzz: the same stacked-corruption loop as
// RunFuzz, pointed at the cluster importer. The contract under test is
// identical — every mutant must come back as a structured Status from
// the shared taxonomy, never a crash or a throw.
int RunClusterFuzz(const std::string& path, bool json, int iters,
                   std::uint64_t seed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "graph_fuzz: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string base = buffer.str();

  support::Rng rng(seed);
  std::map<std::string, int> histogram;
  for (int i = 0; i < iters; ++i) {
    std::string mutant = base;
    const int depth = 1 + static_cast<int>(rng.NextBelow(3));
    for (int d = 0; d < depth; ++d) {
      mutant = models::MutateSerializedGraph(mutant, rng);
    }
    sim::ClusterIngestOptions opts;
    opts.source_name = json ? "<mutant.json>" : "<mutant.ec>";
    const support::StatusOr<sim::ClusterSpec> parsed =
        json ? sim::ClusterFromJson(mutant, opts)
             : sim::ParseTextCluster(mutant, opts);
    if (parsed.ok()) {
      ++histogram["ok"];
    } else {
      ++histogram[support::ErrorCodeName(parsed.status().code())];
    }
  }
  std::printf("%d cluster mutants of %s (%s):\n", iters, path.c_str(),
              json ? "json" : "ec");
  for (const auto& [code, count] : histogram) {
    std::printf("  %-17s %d\n", code.c_str(), count);
  }
  return 0;
}

int RunE2e(int ops, std::uint64_t seed, bool json,
           const sim::ClusterSpec& cluster) {
  support::Stopwatch stopwatch;
  const graph::OpGraph generated = Generate(ops, seed);
  const std::string serialized = Serialize(generated, json);
  std::printf("generated %d ops, %d edges (%zu serialized bytes, %.2f s)\n",
              generated.num_ops(), generated.num_edges(), serialized.size(),
              stopwatch.ElapsedSeconds());

  graph::IngestOptions options;
  options.source_name = json ? "<e2e.json>" : "<e2e.eg>";
  support::StatusOr<graph::OpGraph> parsed =
      json ? graph::FromJson(serialized, options)
           : graph::ParseTextGraph(serialized, options);
  if (!parsed.ok()) {
    std::fprintf(stderr, "graph_fuzz: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const graph::OpGraph& graph = parsed.value();
  std::printf("ingested + validated in %.2f s\n",
              stopwatch.ElapsedSeconds());

  partition::MetisOptions metis;
  metis.num_parts = 4 * cluster.num_devices();
  metis.seed = seed;
  const auto grouping = partition::MetisPartition(graph, metis);
  graph::GroupedGraph grouped(graph, grouping, metis.num_parts);
  const auto gpus = cluster.Gpus();
  std::vector<std::int32_t> group_devices(
      static_cast<std::size_t>(metis.num_parts));
  for (int g = 0; g < metis.num_parts; ++g) {
    group_devices[static_cast<std::size_t>(g)] =
        gpus[static_cast<std::size_t>(g) % gpus.size()];
  }
  sim::Placement placement(graph, grouped.ExpandToOps(group_devices));
  placement.Normalize(graph, cluster);
  sim::ExecutionSimulator simulator(graph, cluster);
  const auto result = simulator.Run(placement);
  std::printf("grouped into %d parts, simulated step: %s (total %.2f s)\n",
              metis.num_parts, result.ToString(cluster).c_str(),
              stopwatch.ElapsedSeconds());
  return 0;
}

// Drives `iters` evaluations of a random move sequence on `graph`
// through one persistent DeltaContext, comparing each against a fresh
// full run. Returns 0 when every result is bit-identical.
int DriveDeltaMoves(const std::string& label, const graph::OpGraph& graph,
                    const sim::ClusterSpec& cluster, int iters,
                    support::Rng& rng, int* checked) {
  sim::SimulatorOptions options;
  options.record_schedule = true;  // diff the full timeline, not summaries
  // Exercise the replay machinery on every move: no cutover escape, no
  // fallback backoff. (Production defaults are gentler; correctness must
  // not depend on them.)
  options.delta.cutover_fraction = 1.0;
  options.delta.fallback_backoff_threshold = 0;
  options.delta.max_moved_ops = 64;
  const sim::ExecutionSimulator delta_sim(graph, cluster, options);
  const sim::ExecutionSimulator full_sim(graph, cluster, options);
  sim::DeltaContext ctx;
  std::vector<sim::DeviceId> devices(static_cast<std::size_t>(graph.num_ops()));
  for (auto& d : devices) {
    d = static_cast<sim::DeviceId>(
        rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }
  for (int i = 0; i < iters; ++i) {
    sim::Placement placement(graph, devices);
    placement.Normalize(graph, cluster);
    const sim::StepResult got = delta_sim.RunWithContext(placement, ctx);
    const sim::StepResult want = full_sim.Run(placement);
    const std::string diff = sim::DiffStepResults(got, want);
    if (!diff.empty()) {
      std::fprintf(stderr,
                   "graph_fuzz: delta diverged on %s, move %d: %s\n",
                   label.c_str(), i, diff.c_str());
      return 1;
    }
    ++*checked;
    // 1–4 random op moves per step: singles dominate training, multis
    // cover colocation-group collapses and overlapping cones.
    const int moves = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < moves; ++m) {
      devices[static_cast<std::size_t>(rng.NextBelow(
          static_cast<std::uint64_t>(graph.num_ops())))] =
          static_cast<sim::DeviceId>(rng.NextBelow(
              static_cast<std::uint64_t>(cluster.num_devices())));
    }
  }
  return 0;
}

int RunDeltaDiff(int iters, std::uint64_t seed,
                 const std::string& cluster_flag) {
  // Default sweep: the homogeneous single-root box plus both shipped
  // hierarchical topologies, so the channel-cut logic is exercised
  // against shared PCIe-root, shared NIC-egress and per-pair NVLink
  // channels with heterogeneous per-device rates. --cluster pins one.
  std::vector<std::pair<std::string, sim::ClusterSpec>> topologies;
  if (cluster_flag.empty()) {
    topologies.emplace_back("default", sim::MakeDefaultCluster());
    topologies.emplace_back("2node8", sim::MakeTwoNodeNvlinkIbCluster());
    topologies.emplace_back("mixed", sim::MakeMixedSpeedCluster());
  } else {
    support::StatusOr<sim::ClusterSpec> resolved =
        sim::ResolveCluster(cluster_flag);
    if (!resolved.ok()) {
      std::fprintf(stderr, "graph_fuzz: %s\n",
                   resolved.status().ToString().c_str());
      return 2;
    }
    topologies.emplace_back(cluster_flag, std::move(resolved).value());
  }
  support::Rng rng(seed);
  int checked = 0;
  for (const auto& [topo_name, cluster] : topologies) {
    for (const auto benchmark : models::AllBenchmarks()) {
      models::ZooOptions zoo;
      zoo.reduced = true;
      const graph::OpGraph graph = models::BuildBenchmark(benchmark, zoo);
      if (DriveDeltaMoves(topo_name + "/" +
                              models::BenchmarkName(benchmark),
                          graph, cluster, iters, rng, &checked) != 0) {
        return 1;
      }
    }
    for (int c = 0; c < 3; ++c) {
      models::FuzzGraphConfig config;
      config.num_ops = 120 + 80 * c;
      config.width = 6 + 4 * c;
      support::Rng graph_rng(seed + static_cast<std::uint64_t>(c) * 977);
      const graph::OpGraph graph = models::BuildFuzzGraph(config, graph_rng);
      if (DriveDeltaMoves(topo_name + "/fuzz" + std::to_string(c), graph,
                          cluster, iters, rng, &checked) != 0) {
        return 1;
      }
    }
  }
  std::printf("delta diff clean: %d evaluations bit-identical to full\n",
              checked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE graph-ingestion fuzzer");
  args.AddString("mode", "fuzz",
                 "generate | fuzz | e2e | delta | cluster-fuzz");
  args.AddInt("ops", 10000, "approximate op count (generate/e2e)");
  args.AddInt("seed", 1, "deterministic corpus seed");
  args.AddInt("iters", 1000, "mutants to try (fuzz/cluster-fuzz)");
  args.AddString("in", "",
                 "valid graph (fuzz) or cluster-spec (cluster-fuzz) file "
                 "to mutate");
  args.AddString("out", "", "output path (generate)");
  args.AddString("format", "",
                 "eg | json (default: from the file suffix, else eg)");
  args.AddString("cluster", "",
                 "cluster topology for e2e/delta: default, 2node8, mixed "
                 "or a .ec/.json spec file (delta default: sweep all "
                 "three builtins)");
  if (!args.Parse(argc, argv)) return 0;

  const std::string mode = args.GetString("mode");
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  const int ops = static_cast<int>(args.GetInt("ops"));
  const std::string format_flag = args.GetString("format");
  auto is_json = [&](const std::string& path) {
    if (!format_flag.empty()) return format_flag == "json";
    return HasSuffix(path, ".json");
  };

  if (mode == "generate") {
    const std::string out_path = args.GetString("out");
    if (out_path.empty()) {
      std::fprintf(stderr, "graph_fuzz: --mode=generate needs --out\n");
      return 2;
    }
    const graph::OpGraph graph = Generate(ops, seed);
    std::ofstream out(out_path, std::ios::binary);
    if (out) out << Serialize(graph, is_json(out_path));
    if (!out) {
      std::fprintf(stderr, "graph_fuzz: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
    std::printf("wrote %s (%d ops, %d edges)\n", out_path.c_str(),
                graph.num_ops(), graph.num_edges());
    return 0;
  }
  if (mode == "fuzz") {
    const std::string in_path = args.GetString("in");
    if (in_path.empty()) {
      std::fprintf(stderr, "graph_fuzz: --mode=fuzz needs --in\n");
      return 2;
    }
    return RunFuzz(in_path, is_json(in_path),
                   static_cast<int>(args.GetInt("iters")), seed);
  }
  if (mode == "cluster-fuzz") {
    const std::string in_path = args.GetString("in");
    if (in_path.empty()) {
      std::fprintf(stderr, "graph_fuzz: --mode=cluster-fuzz needs --in\n");
      return 2;
    }
    return RunClusterFuzz(in_path, is_json(in_path),
                          static_cast<int>(args.GetInt("iters")), seed);
  }
  if (mode == "e2e") {
    support::StatusOr<sim::ClusterSpec> resolved =
        sim::ResolveCluster(args.GetString("cluster"));
    if (!resolved.ok()) {
      std::fprintf(stderr, "graph_fuzz: %s\n",
                   resolved.status().ToString().c_str());
      return 2;
    }
    return RunE2e(ops, seed, is_json(""), resolved.value());
  }
  if (mode == "delta") {
    return RunDeltaDiff(static_cast<int>(args.GetInt("iters")), seed,
                        args.GetString("cluster"));
  }
  std::fprintf(stderr, "graph_fuzz: unknown --mode=%s\n", mode.c_str());
  return 2;
}
