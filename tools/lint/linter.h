// eagle-lint: repo-specific determinism / concurrency rule engine.
//
// The repo's headline guarantee is bit-identical training output at any
// --threads count, and every reward the RL agents see comes from the
// deterministic simulator — so the rules here ban whole *classes* of
// nondeterminism at the source level instead of hoping a sanitizer run
// happens to execute the offending path:
//
//   ND01  no nondeterminism sources (rand/srand/time()/std::random_device/
//         getenv/raw wall-clock reads) outside the sanctioned files
//   ND02  no iteration over std::unordered_map/set in src/core, src/rl,
//         src/sim — hash-table iteration order is unspecified and has
//         historically leaked into eviction choices and serialized output
//   CC01  raw std::mutex/std::thread/std::atomic confined to src/support
//         and the evaluation-service layer (eval_service/eval_cache/env)
//   DC01  no side-effecting expressions inside EAGLE_DCHECK (it compiles
//         to (void)0 in Release, so side effects would vanish there)
//   CP01  any file embedding the checkpoint magic ("EAGLCKP") must
//         reference kCheckpointFormatVersion, so magic and version
//         constant can never drift apart
//   HS01  every header starts with #pragma once
//   WC01  raw support::Stopwatch reads confined to src/support — hot-path
//         code (src/, examples/) times itself through EAGLE_SPAN /
//         support::metrics so wall clock stays a telemetry observer;
//         bench/ and tools/ are reporting sinks and exempt
//   HP01  no raw heap allocation (new/malloc) and no unordered containers
//         in the hot-path kernel files (src/nn, src/sim/simulator.cpp) —
//         scratch comes from the tensor arena / SimWorkspace pools
//         (src/nn/arena.*, src/sim/sim_workspace.h are the sanctioned
//         allocation layer and exempt)
//   IN01  no raw numeric conversions (std::stoll/strtod/atoi/sscanf/...)
//         in src/graph (outside parse_num.*) or the cluster-spec
//         importer (src/sim/cluster_ingest.*) — they throw or silently
//         saturate on hostile input; ingestion must classify failures
//         through graph::ParseInt64 / graph::ParseDouble instead
//
// v2 adds cross-file rules that run over a whole-tree index (phase 1 in
// index.{h,cpp}; phase 2 in include_graph.cpp / callgraph.cpp):
//
//   LY01  layering: enforce the layer DAG support → graph → partition →
//         nn → sim → models → core → rl on resolved #include edges (no
//         back-edges; include cycles diagnosed with the full chain)
//   ST01  a discarded Status/StatusOr return value is an error (paired
//         with [[nodiscard]] on both types in src/support/status.h)
//   LK01  two functions acquiring the same two mutexes in opposite
//         orders — built from the global lock-acquisition-order graph
//   HP02  flow-aware HP01: a hot-path function whose *call graph*
//         reaches an allocating function outside the arena/workspace
//         allowlist, not just a textual new/malloc in the file
//
// Suppression: a `// eagle-lint: allow(ND02)` comment on the same line
// (or the line above) waives that rule for that line, in both phases.
// Rules, scopes and allowlists are data — see Rules() in linter.cpp.
#pragma once

#include <string>
#include <vector>

#include "index.h"

namespace eagle::lint {

struct Diagnostic {
  std::string rule;     // "ND01", ...
  std::string file;     // repo-relative path, forward slashes
  int line = 1;
  std::string message;
  int col = 1;  // last member: v1 call sites aggregate-initialize without it
};

struct RuleInfo {
  std::string id;
  std::string severity;              // "error" (reserved: "warning")
  std::string summary;
  std::vector<std::string> scopes;   // path prefixes checked (empty: all)
  std::vector<std::string> allow;    // path prefixes exempted
};

// The rule catalogue (static data; documented in docs/STATIC_ANALYSIS.md).
const std::vector<RuleInfo>& Rules();

// Lints one file with the per-file (v1) rules only. `rel_path`
// (repo-relative, forward slashes) drives rule scoping and allowlists.
// `companion_header` may hold the source of the matching X.h when
// linting X.cpp, so unordered-container members declared in the header
// are tracked when the .cpp iterates them. Cross-file rules need a whole
// tree — use Analyzer (or LintTree) for those.
std::vector<Diagnostic> LintSource(const std::string& rel_path,
                                   const std::string& source,
                                   const std::string& companion_header = "");

struct TreeResult {
  std::vector<Diagnostic> diagnostics;
  int files_scanned = 0;
  int suppressed = 0;  // findings waived by eagle-lint: allow(...) comments
};

// The two-phase analyzer. AddFile() indexes (phase 1); Run() executes
// the per-file rules plus the cross-file rules over the accumulated
// index (phase 2), applies suppressions, and returns diagnostics sorted
// by (file, line, col). Fixture tests add in-memory files directly;
// LintTree() is the filesystem front end.
class Analyzer {
 public:
  void AddFile(const std::string& rel_path, const std::string& source);
  TreeResult Run() const;

 private:
  Index index_;
};

// Walks src/ bench/ tools/ tests/ examples/ under `root` and runs both
// phases over every C++ file. tests/lint_fixtures/ (seeded violations
// for the lint self-tests) is excluded.
TreeResult LintTree(const std::string& root);

// "file:line: severity: [ID] message"
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace eagle::lint
