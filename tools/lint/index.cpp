#include "index.h"

#include <algorithm>
#include <cstddef>

namespace eagle::lint {

namespace {

using Tokens = std::vector<Token>;

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

bool IsAnyIdent(const Token& t) { return t.kind == TokKind::kIdentifier; }

// Keywords that look like `name (` but never are calls or functions.
bool IsControlKeyword(const std::string& s) {
  static const char* const kWords[] = {
      "if",       "for",     "while",    "switch",        "catch",
      "return",   "sizeof",  "alignof",  "decltype",      "static_assert",
      "new",      "delete",  "case",     "throw",         "alignas",
      "noexcept", "typeid",  "co_await", "co_return",     "co_yield",
      "requires", "default", "using",    "static_cast",   "dynamic_cast",
      "const_cast", "reinterpret_cast", "assert",
  };
  for (const char* w : kWords) {
    if (s == w) return true;
  }
  return false;
}

// Skips a balanced <...> starting at tokens[i] == "<"; returns the index
// one past the closing ">". ">>" closes two levels. Returns i when the
// run does not look like template args (no closing before a ';').
std::size_t SkipTemplateArgs(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{")) return i;
    if (toks[j].kind != TokKind::kPunct) continue;
    if (toks[j].text == "<") ++depth;
    if (toks[j].text == ">") --depth;
    if (toks[j].text == ">>") depth -= 2;
    if (depth <= 0 && (toks[j].text == ">" || toks[j].text == ">>")) {
      return j + 1;
    }
  }
  return i;
}

// Returns the index of the matching ")" for the "(" at `open`.
std::size_t MatchParen(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "(")) ++depth;
    if (IsPunct(toks[j], ")")) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

// Walks back from `at` (exclusive) over an `A::B::name` chain; returns
// the index of the chain's first token. `at` is the name token's index.
std::size_t ChainStart(const Tokens& toks, std::size_t at) {
  std::size_t start = at;
  while (start >= 2 && IsPunct(toks[start - 1], "::") &&
         IsAnyIdent(toks[start - 2])) {
    start -= 2;
  }
  // A leading bare `::` (global qualifier).
  if (start >= 1 && IsPunct(toks[start - 1], "::")) --start;
  return start;
}

std::string JoinQualified(const Tokens& toks, std::size_t begin,
                          std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i <= end; ++i) out += toks[i].text;
  return out;
}

// Path normalization for include resolution: collapses "a/./b" and
// "a/x/../b" without touching the filesystem.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (cur == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!cur.empty() && cur != ".") {
        parts.push_back(cur);
      }
      cur.clear();
    } else {
      cur += path[i];
    }
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += '/';
    out += parts[i];
  }
  return out;
}

std::string DirName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Extracts the quoted path from one `#include "..."` directive, empty
// when the directive is not a quoted include.
std::string QuotedIncludeTarget(const std::string& pp_text) {
  std::size_t at = pp_text.find("include");
  if (at == std::string::npos) return "";
  at = pp_text.find('"', at);
  if (at == std::string::npos) return "";
  const std::size_t close = pp_text.find('"', at + 1);
  if (close == std::string::npos) return "";
  return pp_text.substr(at + 1, close - at - 1);
}

const char* const kLockTypes[] = {"lock_guard", "unique_lock", "scoped_lock",
                                  "shared_lock"};

const char* const kAllocCalls[] = {"malloc", "calloc", "realloc",
                                   "aligned_alloc", "posix_memalign"};

const char* const kAllocTemplates[] = {"make_unique", "make_shared"};

// ---------------------------------------------------------------------------
// Function-extent extraction: a single pass with a brace-context stack.

enum class BraceKind { kNamespace, kClassLike, kFunction, kOther };

struct BraceFrame {
  BraceKind kind;
  std::string class_name;  // for kClassLike
};

class FileScanner {
 public:
  FileScanner(const std::string& path, FileIndex* out)
      : path_(path), out_(out), toks_(out->lexed.tokens) {}

  void Run() {
    CollectIncludes();
    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (IsPunct(t, "{")) {
        OpenBrace(i);
        ++i;
        continue;
      }
      if (IsPunct(t, "}")) {
        CloseBrace();
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPp || IsPunct(t, ";")) {
        stmt_start_ = i + 1;
        ++i;
        continue;
      }
      if (InFunction()) {
        i = ScanBodyToken(i);
        continue;
      }
      // Access specifiers reset the statement start at class scope.
      if (IsAnyIdent(t) && i + 1 < toks_.size() && IsPunct(toks_[i + 1], ":") &&
          (t.text == "public" || t.text == "private" ||
           t.text == "protected")) {
        stmt_start_ = i + 2;
        i += 2;
        continue;
      }
      if (IsPunct(t, "(") && i >= 1 && IsAnyIdent(toks_[i - 1]) &&
          !IsControlKeyword(toks_[i - 1].text)) {
        if (TryFunctionHeader(i)) {
          i = cursor_;  // resumes past the header (or inside the body)
          continue;
        }
      }
      ++i;
    }
  }

 private:
  bool InFunction() const {
    for (const BraceFrame& f : stack_) {
      if (f.kind == BraceKind::kFunction) return true;
    }
    return false;
  }

  std::string EnclosingClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == BraceKind::kClassLike) return it->class_name;
    }
    return "";
  }

  // Called on a `{` that was not consumed by TryFunctionHeader: namespace
  // and class heads, plus everything else (initializers, lambdas).
  void OpenBrace(std::size_t i) {
    BraceFrame frame{BraceKind::kOther, ""};
    if (!InFunction()) {
      // `namespace X {` / `namespace {`
      std::size_t j = i;
      if (j >= 1 && IsAnyIdent(toks_[j - 1]) &&
          toks_[j - 1].text == "namespace") {
        frame.kind = BraceKind::kNamespace;
      } else if (j >= 2 && IsAnyIdent(toks_[j - 1]) &&
                 IsIdent(toks_[j - 2], "namespace")) {
        frame.kind = BraceKind::kNamespace;
      } else {
        // `class/struct/union/enum NAME ... {` — scan back a bounded
        // window at paren balance 0 for the keyword.
        int balance = 0;
        for (std::size_t back = 0; back < 48 && back < i; ++back) {
          const Token& b = toks_[i - 1 - back];
          if (IsPunct(b, ")")) ++balance;
          if (IsPunct(b, "(")) --balance;
          if (IsPunct(b, ";") || IsPunct(b, "{") || IsPunct(b, "}") ||
              b.kind == TokKind::kPp) {
            break;
          }
          if (balance == 0 && b.kind == TokKind::kIdentifier &&
              (b.text == "class" || b.text == "struct" || b.text == "union" ||
               b.text == "enum")) {
            frame.kind = BraceKind::kClassLike;
            const std::size_t name_at = i - back;
            if (name_at < toks_.size() && IsAnyIdent(toks_[name_at])) {
              frame.class_name = toks_[name_at].text;
            }
            break;
          }
        }
      }
    }
    stack_.push_back(frame);
    if (frame.kind == BraceKind::kClassLike) {
      CollectMutexMembers(i, frame.class_name);
    }
    stmt_start_ = i + 1;
  }

  void CloseBrace() {
    if (stack_.empty()) return;
    // Locks acquired in the closing scope are released here.
    std::erase_if(active_locks_, [this](const auto& entry) {
      return entry.second >= stack_.size();
    });
    if (stack_.back().kind == BraceKind::kFunction && current_fn_ != 0) {
      current_fn_ = 0;
      active_locks_.clear();
    }
    stack_.pop_back();
  }

  // At `(` following an identifier at declaration scope: decide whether
  // this is a function declaration/definition. Returns true when it
  // consumed tokens (advanced past the header, or into the body).
  bool TryFunctionHeader(std::size_t open) {
    const std::size_t close = MatchParen(toks_, open);
    if (close >= toks_.size()) return false;

    // Name chain ends right before the '('.
    std::size_t name_at = open - 1;
    if (IsControlKeyword(toks_[name_at].text)) return false;
    const std::size_t chain_begin = ChainStart(toks_, name_at);
    // A member call `x.Foo(...)` or `new Foo(...)` is not a declaration.
    if (chain_begin >= 1) {
      const Token& before = toks_[chain_begin - 1];
      if (IsPunct(before, ".") || IsPunct(before, "->") ||
          IsIdent(before, "new") || IsIdent(before, "return")) {
        return false;
      }
    }

    // Scan past trailing qualifiers to find `{`, `;`, `=` or a ctor
    // init list `:`.
    std::size_t j = close + 1;
    bool is_def = false;
    bool is_decl = false;
    for (int steps = 0; j < toks_.size() && steps < 48; ++j, ++steps) {
      const Token& t = toks_[j];
      if (IsPunct(t, "{")) {
        is_def = true;
        break;
      }
      if (IsPunct(t, ";")) {
        is_decl = true;
        break;
      }
      if (IsPunct(t, "=")) {
        // `= default;` / `= delete;` / `= 0;` — declarations.
        is_decl = true;
        break;
      }
      if (IsPunct(t, ":")) {
        // Constructor initializer list: skip balanced groups to the
        // opening `{`.
        int depth = 0;
        for (++j; j < toks_.size(); ++j) {
          if (IsPunct(toks_[j], "(") || IsPunct(toks_[j], "{")) {
            if (depth == 0 && IsPunct(toks_[j], "{")) {
              is_def = true;
              break;
            }
            ++depth;
          } else if (IsPunct(toks_[j], ")") || IsPunct(toks_[j], "}")) {
            --depth;
          } else if (IsPunct(toks_[j], ";")) {
            break;
          }
        }
        break;
      }
      if (t.kind == TokKind::kIdentifier &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable" || t.text == "try")) {
        continue;
      }
      if (IsPunct(t, "&") || IsPunct(t, "&&") || IsPunct(t, "->") ||
          IsPunct(t, "::") || IsPunct(t, "<") || IsPunct(t, ">") ||
          IsPunct(t, "*") || t.kind == TokKind::kIdentifier) {
        continue;  // trailing return type etc.
      }
      if (IsPunct(t, "(")) {
        // noexcept(...) — skip the group.
        j = MatchParen(toks_, j);
        continue;
      }
      return false;  // something that is not a function header
    }
    if (!is_def && !is_decl) return false;

    FunctionInfo fn;
    fn.name = toks_[name_at].text;
    fn.qualified = JoinQualified(toks_, chain_begin, name_at);
    fn.file = path_;
    fn.line = toks_[name_at].line;
    fn.col = toks_[name_at].col;
    fn.has_body = is_def;
    if (fn.qualified == fn.name) {
      const std::string cls = EnclosingClass();
      if (!cls.empty()) fn.qualified = cls + "::" + fn.name;
    }
    fn.returns_status = ReturnTypeIsStatusValue(chain_begin);
    out_->functions.push_back(std::move(fn));

    if (is_def) {
      stack_.push_back(BraceFrame{BraceKind::kFunction, ""});
      current_fn_ = out_->functions.size();  // 1-based into out_->functions
      lock_seq_ = 0;
      stmt_start_ = j + 1;
      cursor_ = j + 1;
      return true;
    }
    cursor_ = j + 1;
    stmt_start_ = j + 1;
    return true;
  }

  // True when the tokens between the statement start and the name chain
  // spell a by-value Status/StatusOr return type.
  bool ReturnTypeIsStatusValue(std::size_t chain_begin) {
    if (stmt_start_ >= chain_begin) return false;
    bool saw_status = false;
    for (std::size_t i = stmt_start_; i < chain_begin; ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kIdentifier &&
          (t.text == "Status" || t.text == "StatusOr")) {
        saw_status = true;
        continue;
      }
      if (saw_status && (IsPunct(t, "&") || IsPunct(t, "*"))) return false;
    }
    return saw_status;
  }

  // One token inside a function body: records calls, lock sites and
  // direct allocations. Returns the next index to scan.
  std::size_t ScanBodyToken(std::size_t i) {
    const Token& t = toks_[i];
    if (t.kind != TokKind::kIdentifier) return i + 1;
    FunctionInfo& fn = out_->functions[current_fn_ - 1];

    // Lock-acquisition site?
    for (const char* lock_type : kLockTypes) {
      if (t.text != lock_type) continue;
      const std::size_t advanced = ScanLockSite(i, lock_type, &fn);
      if (advanced != i) return advanced;
    }

    const bool member_access =
        i >= 1 && (IsPunct(toks_[i - 1], ".") || IsPunct(toks_[i - 1], "->"));

    // Direct allocation?
    if (t.text == "new" && !member_access) {
      RecordAlloc(&fn, t, "new");
      return i + 1;
    }
    for (const char* call : kAllocCalls) {
      if (t.text == call && !member_access && i + 1 < toks_.size() &&
          IsPunct(toks_[i + 1], "(")) {
        RecordAlloc(&fn, t, t.text);
        return i + 1;
      }
    }
    for (const char* tmpl : kAllocTemplates) {
      if (t.text == tmpl && i + 1 < toks_.size() &&
          (IsPunct(toks_[i + 1], "<") || IsPunct(toks_[i + 1], "("))) {
        RecordAlloc(&fn, t, t.text);
        return i + 1;
      }
    }

    // Call site: `name (`, keywords excluded, `new Foo(` excluded.
    if (i + 1 < toks_.size() && IsPunct(toks_[i + 1], "(") &&
        !IsControlKeyword(t.text) &&
        !(i >= 1 && IsIdent(toks_[i - 1], "new"))) {
      fn.calls.push_back(CallSite{t.text, t.line, t.col});
    }
    return i + 1;
  }

  void RecordAlloc(FunctionInfo* fn, const Token& t, const std::string& what) {
    if (!fn->allocates) {
      fn->allocates = true;
      fn->alloc_line = t.line;
      fn->alloc_what = what;
    }
  }

  // Parses `lock_guard<...> name(args)` / `scoped_lock name(a, b)` at
  // token i. Returns the index after the closing ')' on success, or i
  // when this is not a lock declaration.
  std::size_t ScanLockSite(std::size_t i, const std::string& lock_type,
                           FunctionInfo* fn) {
    std::size_t j = i + 1;
    if (j < toks_.size() && IsPunct(toks_[j], "<")) {
      const std::size_t skipped = SkipTemplateArgs(toks_, j);
      if (skipped == j) return i;
      j = skipped;
    }
    if (j < toks_.size() && IsAnyIdent(toks_[j])) ++j;  // guard variable
    if (j >= toks_.size() || !IsPunct(toks_[j], "(")) return i;
    const std::size_t close = MatchParen(toks_, j);
    if (close >= toks_.size()) return i;

    LockSite site;
    site.line = toks_[i].line;
    site.col = toks_[i].col;
    site.depth = static_cast<int>(stack_.size());
    site.seq = lock_seq_++;
    for (const auto& [identity, depth] : active_locks_) {
      site.held.push_back(identity);
    }

    // Split args on top-level commas; normalize each.
    std::size_t arg_begin = j + 1;
    int depth = 0;
    for (std::size_t k = j + 1; k <= close; ++k) {
      const bool at_end = k == close;
      if (!at_end && (IsPunct(toks_[k], "(") || IsPunct(toks_[k], "<"))) {
        ++depth;
      }
      if (!at_end && (IsPunct(toks_[k], ")") || IsPunct(toks_[k], ">"))) {
        --depth;
      }
      if (at_end || (depth == 0 && IsPunct(toks_[k], ","))) {
        std::string identity = NormalizeMutexArg(arg_begin, k, *fn);
        if (!identity.empty()) site.mutexes.push_back(std::move(identity));
        arg_begin = k + 1;
      }
    }
    site.ordered = !(lock_type == "scoped_lock" && site.mutexes.size() > 1);
    for (const std::string& mutex : site.mutexes) {
      active_locks_.emplace_back(mutex, stack_.size());
    }
    if (!site.mutexes.empty()) fn->locks.push_back(std::move(site));
    return close + 1;
  }

  // Normalizes one mutex argument to a stable identity. A bare member
  // name is qualified with the enclosing function's class so `mutex_` in
  // EvalCache and `mutex_` in ThreadPool never collide; tag arguments
  // (std::defer_lock etc.) are dropped.
  std::string NormalizeMutexArg(std::size_t begin, std::size_t end,
                                const FunctionInfo& fn) {
    std::string joined;
    int idents = 0;
    for (std::size_t k = begin; k < end; ++k) {
      const Token& t = toks_[k];
      if (IsIdent(t, "this")) continue;  // this->m_ and m_ are the same
      if (t.text == "defer_lock" || t.text == "adopt_lock" ||
          t.text == "try_to_lock") {
        return "";
      }
      if (t.kind == TokKind::kIdentifier) ++idents;
      if (IsPunct(t, "->")) {
        joined += ".";
        continue;
      }
      joined += t.text;
    }
    if (joined.empty()) return "";
    if (!joined.empty() && joined[0] == '.') joined = joined.substr(1);
    if (idents == 1 && joined.find('.') == std::string::npos &&
        joined.find("::") == std::string::npos) {
      const std::size_t sep = fn.qualified.rfind("::");
      if (sep != std::string::npos) {
        return fn.qualified.substr(0, sep) + "::" + joined;
      }
    }
    return joined;
  }

  // Records `std::mutex name_;` members declared directly inside a class
  // extent (bounded forward scan from the class's opening brace).
  void CollectMutexMembers(std::size_t open, const std::string& class_name) {
    if (class_name.empty()) return;
    int depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      if (IsPunct(toks_[j], "{")) ++depth;
      if (IsPunct(toks_[j], "}")) {
        --depth;
        if (depth == 0) break;
      }
      if (depth != 1) continue;
      const Token& t = toks_[j];
      if (t.kind == TokKind::kIdentifier &&
          (t.text == "mutex" || t.text == "shared_mutex" ||
           t.text == "recursive_mutex") &&
          j + 2 < toks_.size() && IsAnyIdent(toks_[j + 1]) &&
          IsPunct(toks_[j + 2], ";")) {
        out_->mutex_members[class_name].insert(toks_[j + 1].text);
      }
    }
  }

  void CollectIncludes() {
    for (const Token& t : toks_) {
      if (t.kind != TokKind::kPp) continue;
      const std::string target = QuotedIncludeTarget(t.text);
      if (target.empty()) continue;
      out_->includes.push_back(IncludeSite{target, false, t.line});
    }
  }

  const std::string& path_;
  FileIndex* out_;
  const Tokens& toks_;
  std::vector<BraceFrame> stack_;
  std::size_t stmt_start_ = 0;
  std::size_t cursor_ = 0;
  std::size_t current_fn_ = 0;  // 1-based index into out_->functions
  std::size_t lock_seq_ = 0;
  // (mutex identity, brace depth at acquisition) for locks still live.
  std::vector<std::pair<std::string, std::size_t>> active_locks_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions: `// eagle-lint: allow(ND02)` covers the comment's own
// line(s) and the following line. allow(all) waives every rule.

std::map<int, std::set<std::string>> CollectSuppressions(
    const std::vector<Comment>& comments) {
  std::map<int, std::set<std::string>> allowed;
  const std::string marker = "eagle-lint:";
  for (const Comment& comment : comments) {
    std::size_t at = comment.text.find(marker);
    if (at == std::string::npos) continue;
    std::size_t pos = at + marker.size();
    while (true) {
      const std::size_t open = comment.text.find("allow(", pos);
      if (open == std::string::npos) break;
      const std::size_t close = comment.text.find(')', open);
      if (close == std::string::npos) break;
      const std::string rule = comment.text.substr(open + 6, close - open - 6);
      for (int line = comment.line; line <= comment.end_line + 1; ++line) {
        allowed[line].insert(rule);
      }
      pos = close + 1;
    }
  }
  return allowed;
}

// ---------------------------------------------------------------------------
// Index.

void Index::AddFile(const std::string& rel_path, const std::string& source) {
  finalized_ = false;
  files_.push_back(FileIndex{});
  FileIndex& file = files_.back();
  file.path = rel_path;
  file.lexed = Lex(source);
  file.suppressions = CollectSuppressions(file.lexed.comments);
  FileScanner(file.path, &file).Run();
}

const std::vector<FileIndex>& Index::files() const {
  Finalize();
  return files_;
}

const FileIndex* Index::Find(const std::string& path) const {
  Finalize();
  for (const FileIndex& file : files_) {
    if (file.path == path) return &file;
  }
  return nullptr;
}

const std::set<std::string>& Index::status_only_functions() const {
  Finalize();
  return status_only_;
}

std::vector<const FunctionInfo*> Index::Definitions(
    const std::string& name) const {
  Finalize();
  const auto it = defs_.find(name);
  if (it == defs_.end()) return {};
  return it->second;
}

void Index::Finalize() const {
  if (finalized_) return;
  finalized_ = true;

  // Include resolution against the indexed file set.
  std::set<std::string> known;
  for (const FileIndex& file : files_) known.insert(file.path);
  for (FileIndex& file : files_) {
    const std::string dir = DirName(file.path);
    for (IncludeSite& inc : file.includes) {
      const std::string raw = inc.target;
      const std::string candidates[] = {
          dir.empty() ? raw : NormalizePath(dir + "/" + raw),
          "src/" + raw,
          NormalizePath(raw),
      };
      for (const std::string& candidate : candidates) {
        if (known.count(candidate) > 0) {
          inc.target = candidate;
          inc.resolved = true;
          break;
        }
      }
    }
  }

  // Status-only function names and the definition map.
  std::map<std::string, std::pair<bool, bool>> verdicts;  // {status, other}
  defs_.clear();
  for (const FileIndex& file : files_) {
    for (const FunctionInfo& fn : file.functions) {
      auto& verdict = verdicts[fn.name];
      (fn.returns_status ? verdict.first : verdict.second) = true;
      if (fn.has_body) defs_[fn.name].push_back(&fn);
    }
  }
  status_only_.clear();
  for (const auto& [name, verdict] : verdicts) {
    if (verdict.first && !verdict.second) status_only_.insert(name);
  }
}

}  // namespace eagle::lint
