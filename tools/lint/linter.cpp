#include "linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "callgraph.h"
#include "include_graph.h"
#include "lexer.h"

namespace eagle::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule data. IDs and allowlists are the contract documented in
// docs/STATIC_ANALYSIS.md; code below only interprets this table.

const char* const kEvalLayer[] = {
    // The sanctioned concurrency layer: the pool itself, the batch
    // evaluation service, the sharded cache, and the environment whose
    // Prepare/Commit phases hold the service's state lock.
    "src/support/", "src/core/eval_service.", "src/core/eval_cache.",
    "src/core/env.",
};

std::vector<RuleInfo> MakeRules() {
  std::vector<RuleInfo> rules;
  rules.push_back(RuleInfo{
      "ND01", "error",
      "nondeterminism source (libc PRNG, wall clock, environment) outside "
      "the sanctioned files",
      {},
      // log.cpp reads EAGLE_LOG_LEVEL (observability config that can
      // never reach RNG streams or results).
      {"src/support/stopwatch.h", "src/support/thread_pool.cpp",
       "src/support/log.cpp"}});
  rules.push_back(RuleInfo{
      "ND02", "error",
      "iteration over std::unordered_map/std::unordered_set where order "
      "can reach RNG, history, cache-commit or serialized output",
      {"src/core/", "src/rl/", "src/sim/"},
      {}});
  rules.push_back(RuleInfo{
      "CC01", "error",
      "raw concurrency primitive (std::mutex/std::thread/std::atomic/...) "
      "outside src/support and the evaluation-service layer",
      {"src/", "bench/", "tools/", "examples/"},
      {kEvalLayer[0], kEvalLayer[1], kEvalLayer[2], kEvalLayer[3]}});
  rules.push_back(RuleInfo{
      "DC01", "error",
      "side-effecting expression inside EAGLE_DCHECK (stripped in Release "
      "builds)",
      {},
      {}});
  rules.push_back(RuleInfo{
      "CP01", "error",
      "checkpoint magic embedded without referencing "
      "kCheckpointFormatVersion",
      {},
      {}});
  rules.push_back(RuleInfo{
      "HS01", "error", "header missing #pragma once", {}, {}});
  rules.push_back(RuleInfo{
      "HP01", "error",
      "raw heap allocation or unordered container in a hot-path kernel "
      "file — per-call scratch belongs to the tensor arena / SimWorkspace "
      "pools",
      // The NN kernel layer and the simulator inner loop: one malloc per
      // tape node / per Run() is exactly the overhead the arena and the
      // workspace removed, and flat epoch-stamped arrays replaced the
      // hash maps. The delta-replay path inherits the same contract (a
      // warm DeltaContext must not allocate). The pools themselves are
      // the sanctioned layer.
      {"src/nn/", "src/sim/simulator.", "src/sim/delta."},
      {"src/nn/arena.", "src/sim/sim_workspace."}});
  rules.push_back(RuleInfo{
      "IN01", "error",
      "raw numeric conversion in the graph-ingestion layer — std::stoll "
      "throws and strtod saturates silently on hostile input; classify "
      "failures through graph::ParseInt64 / graph::ParseDouble",
      // src/graph plus the cluster-spec importer, which parses the same
      // class of untrusted files; json.cpp (strtod) and args.cpp (stoll)
      // live in src/support and parse trusted, non-adversarial input.
      {"src/graph/", "src/sim/cluster_ingest."},
      {"src/graph/parse_num."}});
  rules.push_back(RuleInfo{
      "WC01", "error",
      "raw support::Stopwatch wall-clock read in hot-path code — time "
      "phases through EAGLE_SPAN / support::metrics, which keep wall "
      "clock confined to telemetry sinks",
      // bench/ and tools/ are telemetry sinks (they report wall time);
      // src/ and examples/ must observe time only through spans.
      {"src/", "examples/"},
      {"src/support/"}});
  // -------------------------------------------------------------------
  // Cross-file rules (phase 2). Scope/allow columns document the
  // contract; the implementations in include_graph.cpp / callgraph.cpp
  // apply it themselves since their facts span files.
  rules.push_back(RuleInfo{
      "LY01", "error",
      "layering violation: a src/ file includes a higher layer (the DAG "
      "is support → graph → partition → nn → sim → models → core → rl), "
      "or the include graph has a cycle",
      {"src/"},
      {}});
  rules.push_back(RuleInfo{
      "ST01", "error",
      "discarded support::Status/StatusOr return value — check it, "
      "propagate it, or (void)-cast it with an adjacent allow(ST01) "
      "justification",
      {},
      {}});
  rules.push_back(RuleInfo{
      "LK01", "error",
      "two functions acquire the same two mutexes in opposite orders — "
      "deadlock under contention; derived from the global "
      "lock-acquisition-order graph",
      {},
      {}});
  rules.push_back(RuleInfo{
      "HP02", "error",
      "hot-path function whose call graph reaches an allocating function "
      "outside the arena/workspace pools (flow-aware HP01)",
      {"src/nn/", "src/sim/simulator.", "src/sim/delta."},
      {"src/nn/arena.", "src/sim/sim_workspace."}});
  return rules;
}

// ND01: identifiers that read nondeterministic state. `call_only` entries
// fire only when used as a function call, so a field named `time` or a
// comment never trips the rule.
struct BannedIdent {
  const char* ident;
  bool call_only;
  const char* hint;
};

const BannedIdent kNondetIdents[] = {
    {"rand", true, "use an explicitly seeded support::Rng"},
    {"srand", true, "use an explicitly seeded support::Rng"},
    {"rand_r", true, "use an explicitly seeded support::Rng"},
    {"drand48", true, "use an explicitly seeded support::Rng"},
    {"random_device", false, "use an explicitly seeded support::Rng"},
    {"mt19937", false, "use support::Rng (xoshiro256**)"},
    {"mt19937_64", false, "use support::Rng (xoshiro256**)"},
    {"default_random_engine", false, "use support::Rng"},
    {"getenv", true, "thread config through explicit options structs"},
    {"secure_getenv", true, "thread config through explicit options structs"},
    {"time", true, "use support::Stopwatch for wall time"},
    {"clock", true, "use support::Stopwatch for wall time"},
    {"gettimeofday", true, "use support::Stopwatch for wall time"},
    {"clock_gettime", true, "use support::Stopwatch for wall time"},
    {"localtime", true, "wall-clock dates are nondeterministic"},
    {"gmtime", true, "wall-clock dates are nondeterministic"},
    {"steady_clock", false, "use support::Stopwatch for wall time"},
    {"system_clock", false, "use support::Stopwatch for wall time"},
    {"high_resolution_clock", false, "use support::Stopwatch for wall time"},
};

// CC01: std::-qualified concurrency vocabulary and the headers behind it.
const char* const kConcurrencyIdents[] = {
    "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "thread", "jthread", "atomic",
    "atomic_ref", "atomic_flag", "atomic_bool", "atomic_int", "atomic_uint",
    "atomic_long", "atomic_llong", "atomic_size_t", "atomic_int64_t",
    "atomic_uint64_t", "condition_variable", "condition_variable_any",
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock", "future",
    "shared_future", "promise", "packaged_task", "async",
    "counting_semaphore", "binary_semaphore", "latch", "barrier",
    "stop_token", "stop_source", "call_once", "once_flag",
};

const char* const kConcurrencyHeaders[] = {
    "mutex", "thread", "atomic", "condition_variable", "future",
    "shared_mutex", "semaphore", "latch", "barrier", "stop_token",
};

// DC01: container/smart-pointer members that mutate their receiver.
const char* const kMutatingMembers[] = {
    "push_back", "pop_back", "push_front", "pop_front", "insert", "erase",
    "clear", "emplace", "emplace_back", "emplace_front", "resize", "assign",
    "reset", "release", "swap", "pop", "push",
};

const char* const kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

// IN01: raw numeric-conversion entry points. All fire call-only so a
// variable or comment mentioning the name never trips the rule.
const char* const kRawParseIdents[] = {
    "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold",
    "atoi", "atol", "atoll", "atof", "strtol", "strtoll", "strtoul",
    "strtoull", "strtof", "strtod", "strtold", "sscanf", "scanf",
};

// ---------------------------------------------------------------------------
// Path helpers.

bool HasPrefix(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool RuleApplies(const RuleInfo& rule, const std::string& path) {
  if (!rule.scopes.empty()) {
    bool in_scope = false;
    for (const auto& scope : rule.scopes) {
      if (HasPrefix(path, scope)) in_scope = true;
    }
    if (!in_scope) return false;
  }
  for (const auto& allow : rule.allow) {
    if (HasPrefix(path, allow)) return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

// (Suppression collection lives in index.cpp — CollectSuppressions in
// index.h is shared by both phases.)

// ---------------------------------------------------------------------------
// Token-stream helpers.

using Tokens = std::vector<Token>;

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

// Skips a balanced <...> starting at tokens[i] == "<"; returns the index
// one past the closing ">". ">>" closes two levels.
std::size_t SkipTemplateArgs(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">") --depth;
    if (toks[i].text == ">>") depth -= 2;
    if (depth <= 0 && (toks[i].text == ">" || toks[i].text == ">>")) {
      return i + 1;
    }
  }
  return toks.size();
}

// Names of variables/members declared with an unordered container type
// (including through a `using Alias = std::unordered_map<...>` alias).
std::set<std::string> CollectUnorderedNames(const Tokens& toks) {
  std::set<std::string> names;
  std::set<std::string> alias_types;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    bool is_unordered = false;
    for (const char* type : kUnorderedTypes) {
      if (IsIdent(toks[i], type)) is_unordered = true;
    }
    if (!is_unordered) continue;
    // `using Alias = [std::]unordered_xxx<...>` registers the alias.
    std::size_t k = i;
    if (k >= 1 && IsPunct(toks[k - 1], "::")) {
      --k;
      if (k >= 1 && toks[k - 1].kind == TokKind::kIdentifier) --k;
    }
    if (k >= 3 && IsPunct(toks[k - 1], "=") &&
        toks[k - 2].kind == TokKind::kIdentifier &&
        IsIdent(toks[k - 3], "using")) {
      alias_types.insert(toks[k - 2].text);
    }
    // `unordered_xxx<...> [const|&|*] name` registers the declared name.
    std::size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      j = SkipTemplateArgs(toks, j);
    }
    while (j < toks.size() &&
           (IsIdent(toks[j], "const") || IsPunct(toks[j], "&") ||
            IsPunct(toks[j], "*") || IsPunct(toks[j], "&&"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
      names.insert(toks[j].text);
    }
  }
  // Declarations through an alias: `Alias [const|&|*] name`.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        alias_types.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (IsIdent(toks[j], "const") || IsPunct(toks[j], "&") ||
            IsPunct(toks[j], "*") || IsPunct(toks[j], "&&"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// Rule implementations. Each takes the lexed file plus context and emits
// diagnostics; LintSource dispatches based on the rule table.

void CheckNondeterminism(const Tokens& toks, const std::string& path,
                         std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    for (const BannedIdent& banned : kNondetIdents) {
      if (toks[i].text != banned.ident) continue;
      // Member access `x.time(...)` is some other API, not libc.
      if (i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;
      }
      if (banned.call_only &&
          (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "("))) {
        continue;
      }
      out->push_back(Diagnostic{
          "ND01", path, toks[i].line,
          "nondeterminism source '" + toks[i].text + "' — " + banned.hint});
    }
  }
}

void CheckUnorderedIteration(const Tokens& toks, const Tokens& companion,
                             const std::string& path,
                             std::vector<Diagnostic>* out) {
  std::set<std::string> names = CollectUnorderedNames(toks);
  const std::set<std::string> header_names = CollectUnorderedNames(companion);
  names.insert(header_names.begin(), header_names.end());
  if (names.empty()) return;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions a tracked container.
    if (IsIdent(toks[i], "for") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = toks.size();
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && IsPunct(toks[j], ":") && colon == 0) colon = j;
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == TokKind::kIdentifier &&
              names.count(toks[j].text) > 0) {
            out->push_back(Diagnostic{
                "ND02", path, toks[i].line,
                "range-for over unordered container '" + toks[j].text +
                    "' — iteration order is unspecified; iterate a sorted "
                    "or vector-backed copy instead"});
            break;
          }
        }
      }
    }
    // Iterator loop: tracked.begin() / cbegin() / rbegin().
    if (toks[i].kind == TokKind::kIdentifier && names.count(toks[i].text) &&
        i + 3 < toks.size() &&
        (IsPunct(toks[i + 1], ".") || IsPunct(toks[i + 1], "->")) &&
        (IsIdent(toks[i + 2], "begin") || IsIdent(toks[i + 2], "cbegin") ||
         IsIdent(toks[i + 2], "rbegin") || IsIdent(toks[i + 2], "crbegin")) &&
        IsPunct(toks[i + 3], "(")) {
      out->push_back(Diagnostic{
          "ND02", path, toks[i].line,
          "iterator walk over unordered container '" + toks[i].text +
              "' — iteration order is unspecified; iterate a sorted or "
              "vector-backed copy instead"});
    }
  }
}

void CheckConcurrency(const Tokens& toks, const std::string& path,
                      std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "std") || !IsPunct(toks[i + 1], "::")) continue;
    for (const char* ident : kConcurrencyIdents) {
      if (IsIdent(toks[i + 2], ident)) {
        out->push_back(Diagnostic{
            "CC01", path, toks[i].line,
            "raw concurrency primitive 'std::" + toks[i + 2].text +
                "' outside the sanctioned layers — route parallelism "
                "through support::ThreadPool / core::EvalService"});
      }
    }
  }
  for (const Token& tok : toks) {
    if (tok.kind != TokKind::kPp) continue;
    if (tok.text.find("include") == std::string::npos) continue;
    for (const char* header : kConcurrencyHeaders) {
      const std::string needle = std::string("<") + header + ">";
      if (tok.text.find(needle) != std::string::npos) {
        out->push_back(Diagnostic{
            "CC01", path, tok.line,
            "#include " + needle + " outside the sanctioned layers"});
      }
    }
  }
}

void CheckDcheckSideEffects(const Tokens& toks, const std::string& path,
                            std::vector<Diagnostic>* out) {
  static const char* const kAssignOps[] = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "EAGLE_DCHECK") || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      if (IsPunct(toks[j], ")")) {
        --depth;
        if (depth == 0) break;
      }
      if (toks[j].kind != TokKind::kPunct) {
        // Mutating member call: `.insert(`, `->push_back(`, ...
        if (toks[j].kind == TokKind::kIdentifier && j + 1 < toks.size() &&
            IsPunct(toks[j + 1], "(") && j >= 1 &&
            (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->"))) {
          for (const char* mutator : kMutatingMembers) {
            if (toks[j].text == mutator) {
              out->push_back(Diagnostic{
                  "DC01", path, toks[j].line,
                  "mutating call '" + toks[j].text +
                      "' inside EAGLE_DCHECK — the expression disappears "
                      "in Release builds"});
            }
          }
        }
        continue;
      }
      bool mutating = toks[j].text == "++" || toks[j].text == "--";
      for (const char* op : kAssignOps) {
        if (toks[j].text == op) mutating = true;
      }
      if (mutating) {
        out->push_back(Diagnostic{
            "DC01", path, toks[j].line,
            "side-effecting operator '" + toks[j].text +
                "' inside EAGLE_DCHECK — the expression disappears in "
                "Release builds"});
      }
    }
  }
}

void CheckCheckpointMagic(const Tokens& toks, const std::string& path,
                          std::vector<Diagnostic>* out) {
  // Assembled from halves so the linter's own source (and this rule's
  // fixtures-by-name in tests) never contains the magic as one literal.
  const std::string magic = std::string("EAGL") + "CKP";
  int magic_line = 0;
  bool has_version_ref = false;
  std::string char_run;
  int char_run_line = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind == TokKind::kString &&
        tok.text.find(magic) != std::string::npos && magic_line == 0) {
      magic_line = tok.line;
    }
    if (IsIdent(tok, "kCheckpointFormatVersion")) has_version_ref = true;
    // Char-literal spelling: {'E','A','G','L','C','K','P','2'} — commas
    // and braces between single-char literals don't break the run.
    if (tok.kind == TokKind::kChar && tok.text.size() == 1) {
      if (char_run.empty()) char_run_line = tok.line;
      char_run += tok.text;
      if (char_run.find(magic) != std::string::npos && magic_line == 0) {
        magic_line = char_run_line;
      }
    } else if (tok.kind != TokKind::kPunct) {
      char_run.clear();
    }
  }
  if (magic_line != 0 && !has_version_ref) {
    out->push_back(Diagnostic{
        "CP01", path, magic_line,
        "checkpoint magic embedded without referencing "
        "kCheckpointFormatVersion — magic byte and format version must "
        "come from one constant"});
  }
}

void CheckWallClock(const Tokens& toks, const std::string& path,
                    std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "Stopwatch")) continue;
    // Member access `x.Stopwatch` / `x->Stopwatch` is some other API.
    if (i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      continue;
    }
    out->push_back(Diagnostic{
        "WC01", path, toks[i].line,
        "raw wall-clock read via 'Stopwatch' — hot-path code must time "
        "itself through EAGLE_SPAN / support::metrics so wall clock stays "
        "an observer (bit-identity at any --threads)"});
  }
}

void CheckHotPathAlloc(const Tokens& toks, const std::string& path,
                       std::vector<Diagnostic>* out) {
  // Allocator entry points that bypass the pools when called directly.
  static const char* const kAllocCalls[] = {
      "malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign",
      "free",
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind == TokKind::kPp) {
      if (tok.text.find("include") == std::string::npos) continue;
      for (const char* type : kUnorderedTypes) {
        const std::string needle = std::string("<") + type + ">";
        if (tok.text.find(needle) != std::string::npos) {
          out->push_back(Diagnostic{
              "HP01", path, tok.line,
              "#include " + needle + " in a hot-path kernel file — use a "
              "flat epoch-stamped array in the arena/workspace layer"});
        }
      }
      continue;
    }
    if (tok.kind != TokKind::kIdentifier) continue;
    // Member access `x.free(...)` is some other API, not the allocator.
    const bool member_access =
        i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if (tok.text == "new" && !member_access) {
      out->push_back(Diagnostic{
          "HP01", path, tok.line,
          "raw 'new' in a hot-path kernel file — take scratch from the "
          "tensor arena / SimWorkspace pools instead"});
      continue;
    }
    for (const char* call : kAllocCalls) {
      if (tok.text == call && !member_access && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")) {
        out->push_back(Diagnostic{
            "HP01", path, tok.line,
            "allocator call '" + tok.text + "' in a hot-path kernel file — "
            "take scratch from the tensor arena / SimWorkspace pools "
            "instead"});
      }
    }
    for (const char* type : kUnorderedTypes) {
      if (tok.text == type) {
        out->push_back(Diagnostic{
            "HP01", path, tok.line,
            "unordered container '" + tok.text + "' in a hot-path kernel "
            "file — use a flat epoch-stamped array (see SimWorkspace)"});
      }
    }
  }
}

void CheckRawNumericParse(const Tokens& toks, const std::string& path,
                          std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    // Member access `x.stoll(...)` is some other API, not the std one.
    if (i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      continue;
    }
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    for (const char* ident : kRawParseIdents) {
      if (toks[i].text == ident) {
        out->push_back(Diagnostic{
            "IN01", path, toks[i].line,
            "raw numeric conversion '" + toks[i].text +
                "' in the ingestion layer — use graph::ParseInt64 / "
                "graph::ParseDouble (parse_num.h) so failures become "
                "structured Status errors"});
      }
    }
  }
}

void CheckPragmaOnce(const Tokens& toks, const std::string& path,
                     std::vector<Diagnostic>* out) {
  if (!IsHeaderPath(path)) return;
  for (const Token& tok : toks) {
    if (tok.kind != TokKind::kPp) continue;
    // Normalize "#  pragma   once" -> "#pragma once".
    std::string compact;
    for (char c : tok.text) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        compact += c;
      } else if (!compact.empty() && compact.back() != ' ') {
        compact += ' ';
      }
    }
    if (compact == "#pragma once" || compact == "#pragma once ") return;
  }
  out->push_back(Diagnostic{
      "HS01", path, 1,
      "header is missing #pragma once — every header must be "
      "self-contained and include-once"});
}

// Dispatches every per-file (v1) rule that applies to `rel_path`.
// Cross-file rule ids in the table (LY01/ST01/LK01/HP02) are skipped —
// they run over the Index in Analyzer::Run.
void RunPerFileRules(const LexedFile& lexed, const Tokens& companion,
                     const std::string& rel_path,
                     std::vector<Diagnostic>* raw) {
  for (const RuleInfo& rule : Rules()) {
    if (!RuleApplies(rule, rel_path)) continue;
    if (rule.id == "ND01") {
      CheckNondeterminism(lexed.tokens, rel_path, raw);
    } else if (rule.id == "ND02") {
      CheckUnorderedIteration(lexed.tokens, companion, rel_path, raw);
    } else if (rule.id == "CC01") {
      CheckConcurrency(lexed.tokens, rel_path, raw);
    } else if (rule.id == "DC01") {
      CheckDcheckSideEffects(lexed.tokens, rel_path, raw);
    } else if (rule.id == "CP01") {
      CheckCheckpointMagic(lexed.tokens, rel_path, raw);
    } else if (rule.id == "HS01") {
      CheckPragmaOnce(lexed.tokens, rel_path, raw);
    } else if (rule.id == "WC01") {
      CheckWallClock(lexed.tokens, rel_path, raw);
    } else if (rule.id == "HP01") {
      CheckHotPathAlloc(lexed.tokens, rel_path, raw);
    } else if (rule.id == "IN01") {
      CheckRawNumericParse(lexed.tokens, rel_path, raw);
    }
  }
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.col < b.col;
                   });
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> rules = MakeRules();
  return rules;
}

std::vector<Diagnostic> LintSource(const std::string& rel_path,
                                   const std::string& source,
                                   const std::string& companion_header) {
  const LexedFile lexed = Lex(source);
  const LexedFile companion = Lex(companion_header);
  const auto suppressions = CollectSuppressions(lexed.comments);

  std::vector<Diagnostic> raw;
  RunPerFileRules(lexed, companion.tokens, rel_path, &raw);

  std::vector<Diagnostic> kept;
  for (Diagnostic& d : raw) {
    const auto it = suppressions.find(d.line);
    if (it != suppressions.end() &&
        (it->second.count(d.rule) > 0 || it->second.count("all") > 0)) {
      continue;
    }
    kept.push_back(std::move(d));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return kept;
}

void Analyzer::AddFile(const std::string& rel_path,
                       const std::string& source) {
  index_.AddFile(rel_path, source);
}

TreeResult Analyzer::Run() const {
  TreeResult result;
  std::vector<Diagnostic> raw;

  // Phase-2a: per-file rules over the already-lexed index. The companion
  // header for X.cpp comes from the index itself.
  static const Tokens kNoCompanion;
  for (const FileIndex& file : index_.files()) {
    const Tokens* companion = &kNoCompanion;
    if (EndsWith(file.path, ".cpp") || EndsWith(file.path, ".cc")) {
      const std::size_t dot = file.path.rfind('.');
      const FileIndex* header = index_.Find(file.path.substr(0, dot) + ".h");
      if (header != nullptr) companion = &header->lexed.tokens;
    }
    RunPerFileRules(file.lexed, *companion, file.path, &raw);
    ++result.files_scanned;
  }

  // Phase-2b: cross-file rules over the whole index.
  using CrossRule = std::vector<Diagnostic> (*)(const Index&);
  static const CrossRule kCrossRules[] = {
      &CheckLayering, &CheckDiscardedStatus, &CheckLockOrder,
      &CheckHotPathEscape};
  for (const CrossRule rule : kCrossRules) {
    std::vector<Diagnostic> diags = rule(index_);
    raw.insert(raw.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }

  // Suppressions apply uniformly, whichever phase produced the finding.
  for (Diagnostic& d : raw) {
    const FileIndex* file = index_.Find(d.file);
    if (file != nullptr) {
      const auto it = file->suppressions.find(d.line);
      if (it != file->suppressions.end() &&
          (it->second.count(d.rule) > 0 || it->second.count("all") > 0)) {
        ++result.suppressed;
        continue;
      }
    }
    result.diagnostics.push_back(std::move(d));
  }
  SortDiagnostics(&result.diagnostics);
  return result;
}

TreeResult LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  static const char* const kTopDirs[] = {"src", "bench", "tools", "tests",
                                         "examples"};
  std::vector<fs::path> files;
  for (const char* top : kTopDirs) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string generic = entry.path().generic_string();
      if (generic.find("lint_fixtures") != std::string::npos) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  Analyzer analyzer;
  const std::string root_prefix = (fs::path(root) / "").generic_string();
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream content;
    content << in.rdbuf();
    std::string rel = file.generic_string();
    if (HasPrefix(rel, root_prefix)) rel = rel.substr(root_prefix.size());
    analyzer.AddFile(rel, content.str());
  }
  return analyzer.Run();
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string severity = "error";
  for (const RuleInfo& rule : Rules()) {
    if (rule.id == d.rule) severity = rule.severity;
  }
  std::ostringstream os;
  os << d.file << ":" << d.line << ": " << severity << ": [" << d.rule << "] "
     << d.message;
  return os.str();
}

}  // namespace eagle::lint
