// Phase 1 of eagle-lint v2: the translation-unit index.
//
// The v1 linter saw one file at a time, so every rule had to be decidable
// from a single token stream. The cross-file rules (LY01 layering, ST01
// discarded Status, LK01 lock order, HP02 flow-aware hot-path allocation)
// need whole-program facts instead: which file includes which, which
// functions exist and what they return, who calls whom, and where locks
// are taken. The Index is that fact base — phase 2 (include_graph.cpp,
// callgraph.cpp) runs rules over it without ever re-reading source.
//
// Extraction is token-level and heuristic by design (no real C++ front
// end; see lexer.h). Function extents come from brace matching at
// namespace/class scope, call sites from `ident (` inside a body, and
// name resolution is by terminal identifier. The rules downstream
// compensate: ambiguous names (two functions named `Validate` with
// different return types) are skipped rather than guessed, so the
// heuristics only ever under-report.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace eagle::lint {

// One resolved `#include "..."` directive. `target` is the repo-relative
// path of the included file when it resolves to an indexed file;
// unresolved includes (system headers, generated files) keep the raw
// spelling and resolved == false.
struct IncludeSite {
  std::string target;
  bool resolved = false;
  int line = 1;
};

// A call site inside a function body: `name` is the terminal identifier
// before the '(' (qualifiers and receivers stripped).
struct CallSite {
  std::string name;
  int line = 1;
  int col = 1;
};

// One lock-acquisition site: a lock_guard / unique_lock / scoped_lock /
// shared_lock declaration. `mutexes` holds the normalized identity of
// each mutex argument (see NormalizeMutexArg in index.cpp); a multi-mutex
// std::scoped_lock acquires atomically with deadlock avoidance, so
// `ordered` is false and the site imposes no internal ordering.
struct LockSite {
  std::vector<std::string> mutexes;
  // Mutexes still held (acquired in an enclosing or earlier-same scope
  // that has not closed) when this site executes. LK01's ordering edges
  // come straight from held × acquired. A manual unique_lock::unlock()
  // is not modelled, so `held` over-approximates — by design: the fix
  // for a flagged pair is a consistent global order, which also makes
  // the over-approximation vacuous.
  std::vector<std::string> held;
  bool ordered = true;
  int line = 1;
  int col = 1;
  int depth = 0;       // brace depth inside the function at the site
  std::size_t seq = 0; // position in the function's lock sequence
};

// A function definition (or bodyless declaration) found in a file.
struct FunctionInfo {
  std::string name;       // terminal name: "Run"
  std::string qualified;  // as written: "ExecutionSimulator::Run"
  std::string file;       // repo-relative path
  int line = 1;
  int col = 1;
  bool has_body = false;
  bool returns_status = false;  // return type is Status/StatusOr by value
  // Direct allocation inside the body (new / malloc family /
  // make_unique / make_shared), regardless of path allowlists — HP02
  // applies the allowlist, the index just records the fact.
  bool allocates = false;
  int alloc_line = 0;
  std::string alloc_what;
  std::vector<CallSite> calls;   // only for definitions
  std::vector<LockSite> locks;   // only for definitions
};

// Everything phase 1 knows about one file.
struct FileIndex {
  std::string path;  // repo-relative, forward slashes
  LexedFile lexed;
  std::vector<IncludeSite> includes;
  std::vector<FunctionInfo> functions;
  // class name -> mutex-typed data members declared directly in its body
  // (std::mutex / shared_mutex / recursive_mutex).
  std::map<std::string, std::set<std::string>> mutex_members;
  // line -> rule ids waived on that line (from eagle-lint: allow(...)).
  std::map<int, std::set<std::string>> suppressions;
};

class Index {
 public:
  // Adds one file. Include resolution and cross-file aggregates are
  // computed lazily by Finalize(), which the accessors below call.
  void AddFile(const std::string& rel_path, const std::string& source);

  const std::vector<FileIndex>& files() const;
  const FileIndex* Find(const std::string& path) const;

  // Function names that *unambiguously* return Status/StatusOr by value:
  // every indexed declaration or definition with that name agrees. Names
  // with conflicting signatures (e.g. a void RetryPolicy::Validate next
  // to a Status ClusterSpec::Validate) are excluded so ST01 never
  // guesses.
  const std::set<std::string>& status_only_functions() const;

  // All definitions with the given terminal name (callgraph resolution).
  std::vector<const FunctionInfo*> Definitions(const std::string& name) const;

 private:
  void Finalize() const;

  // mutable: Finalize() (const, lazy) patches include resolution in place.
  mutable std::vector<FileIndex> files_;
  mutable bool finalized_ = false;
  mutable std::set<std::string> status_only_;
  mutable std::map<std::string, std::vector<const FunctionInfo*>> defs_;
};

// Shared helper: extracts `// eagle-lint: allow(RULE)` suppressions from
// a comment stream. A suppression covers the comment's own line(s) and
// the following line.
std::map<int, std::set<std::string>> CollectSuppressions(
    const std::vector<Comment>& comments);

}  // namespace eagle::lint
