// Phase-2 rules built on the call/lock facts in the Index.
//
//   ST01  a call to a function that unambiguously returns
//         support::Status/StatusOr by value, used as a full discarded
//         statement, is an error. `(void)`-casting the call still fires
//         unless an adjacent `eagle-lint: allow(ST01)` justifies it —
//         the cast silences the compiler's [[nodiscard]], the comment
//         documents why that is safe.
//   LK01  two functions acquiring the same two mutexes in opposite
//         orders deadlock under contention. The rule builds the global
//         acquisition-order graph from every lock_guard / unique_lock /
//         scoped_lock / shared_lock site (a multi-mutex scoped_lock
//         acquires atomically and imposes no internal order) and flags
//         each inverted pair at both sites.
//   HP02  flow-aware escalation of HP01: a hot-path function (src/nn,
//         src/sim/simulator.*, src/sim/delta.*) whose call graph reaches
//         an allocating function outside the arena/workspace/support
//         allowlist is flagged with the full call chain. Names that
//         resolve to more than one definition are skipped, so the rule
//         only under-reports, never guesses.
#pragma once

#include <vector>

#include "index.h"
#include "linter.h"

namespace eagle::lint {

std::vector<Diagnostic> CheckDiscardedStatus(const Index& index);
std::vector<Diagnostic> CheckLockOrder(const Index& index);
std::vector<Diagnostic> CheckHotPathEscape(const Index& index);

}  // namespace eagle::lint
