#include "callgraph.h"

#include <map>
#include <optional>
#include <set>
#include <string>

namespace eagle::lint {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.compare(0, std::string(prefix).size(), prefix) == 0;
}

std::size_t MatchParen(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "(")) ++depth;
    if (IsPunct(toks[j], ")")) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

// Index of the "(" matching the ")" at `close`, or npos.
std::size_t MatchParenBack(const std::vector<Token>& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (IsPunct(toks[j], ")")) ++depth;
    if (IsPunct(toks[j], "(")) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return std::string::npos;
}

bool SuppressedAt(const FileIndex& file, int line, const char* rule) {
  const auto it = file.suppressions.find(line);
  if (it == file.suppressions.end()) return false;
  return it->second.count(rule) > 0 || it->second.count("all") > 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// ST01 — discarded Status/StatusOr return values.

std::vector<Diagnostic> CheckDiscardedStatus(const Index& index) {
  std::vector<Diagnostic> out;
  const std::set<std::string>& names = index.status_only_functions();
  if (names.empty()) return out;

  for (const FileIndex& file : index.files()) {
    const std::vector<Token>& toks = file.lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdentifier || !IsPunct(toks[i + 1], "(") ||
          names.count(toks[i].text) == 0) {
        continue;
      }
      // The whole call must be the full expression: `...);` with nothing
      // consuming the value after the close.
      const std::size_t close = MatchParen(toks, i + 1);
      if (close + 1 >= toks.size() || !IsPunct(toks[close + 1], ";")) continue;

      // Walk back over the receiver/qualifier chain (`a.b->C::name`).
      std::size_t j = i;
      while (j >= 2 &&
             (IsPunct(toks[j - 1], "::") || IsPunct(toks[j - 1], ".") ||
              IsPunct(toks[j - 1], "->")) &&
             toks[j - 2].kind == TokKind::kIdentifier) {
        j -= 2;
      }
      if (j >= 1 && IsPunct(toks[j - 1], "::")) --j;

      bool statement = false;
      bool voided = false;
      if (j == 0) {
        statement = true;
      } else {
        const Token& prev = toks[j - 1];
        // Note ":" is NOT a statement context: it is usually the false
        // arm of a ternary (`x ? a() : b();` — consumed), and a `case`
        // label before a discard is rare enough to under-report.
        if (IsPunct(prev, ";") || IsPunct(prev, "{") || IsPunct(prev, "}") ||
            prev.kind == TokKind::kPp) {
          statement = true;
        } else if (prev.kind == TokKind::kIdentifier &&
                   (prev.text == "else" || prev.text == "do")) {
          statement = true;
        } else if (IsPunct(prev, ")")) {
          const std::size_t open = MatchParenBack(toks, j - 1);
          if (open != std::string::npos) {
            if (open + 2 == j - 1 && toks[open + 1].kind ==
                                         TokKind::kIdentifier &&
                toks[open + 1].text == "void") {
              statement = true;  // (void)Call(); — cast-to-void discard
              voided = true;
            } else if (open >= 1 &&
                       toks[open - 1].kind == TokKind::kIdentifier &&
                       (toks[open - 1].text == "if" ||
                        toks[open - 1].text == "while" ||
                        toks[open - 1].text == "for" ||
                        toks[open - 1].text == "switch")) {
              statement = true;  // `if (c) Call();` — the call is the body
            }
          }
        }
      }
      if (!statement) continue;

      const std::string what = voided
          ? "' is (void)-cast away — the cast silences [[nodiscard]], so it "
            "needs an adjacent 'eagle-lint: allow(ST01)' comment justifying "
            "why the error cannot matter here"
          : "' is discarded — check it, propagate it, or (void)-cast it "
            "with an adjacent 'eagle-lint: allow(ST01)' justification";
      out.push_back(Diagnostic{
          "ST01", file.path, toks[i].line,
          "Status/StatusOr return value of '" + toks[i].text + what,
          toks[i].col});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// LK01 — opposite-order mutex acquisition.

std::vector<Diagnostic> CheckLockOrder(const Index& index) {
  struct EdgeSite {
    std::string fn;
    std::string file;
    int line = 1;
    int col = 1;
  };
  // (held, acquired) -> first site establishing that order.
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  for (const FileIndex& file : index.files()) {
    for (const FunctionInfo& fn : file.functions) {
      for (const LockSite& site : fn.locks) {
        for (const std::string& held : site.held) {
          for (const std::string& acquired : site.mutexes) {
            if (held == acquired) continue;
            edges.try_emplace({held, acquired},
                              EdgeSite{fn.qualified, file.path, site.line,
                                       site.col});
          }
        }
      }
    }
  }

  std::vector<Diagnostic> out;
  for (const auto& [key, site] : edges) {
    const auto& [a, b] = key;
    if (a > b) continue;  // handle each unordered pair once
    const auto inverse = edges.find({b, a});
    if (inverse == edges.end()) continue;
    const EdgeSite& other = inverse->second;
    const auto describe = [](const std::string& held,
                             const std::string& acquired,
                             const EdgeSite& here, const EdgeSite& there) {
      return "lock-order inversion: '" + held + "' is held while '" +
             acquired + "' is acquired in " + here.fn + ", but " + there.fn +
             " (" + there.file + ":" + std::to_string(there.line) +
             ") acquires them in the opposite order — deadlock under "
             "contention; pick one global acquisition order";
    };
    out.push_back(Diagnostic{"LK01", site.file, site.line,
                             describe(a, b, site, other), site.col});
    out.push_back(Diagnostic{"LK01", other.file, other.line,
                             describe(b, a, other, site), other.col});
  }
  return out;
}

// ---------------------------------------------------------------------------
// HP02 — hot-path functions whose call graph reaches an allocation.

namespace {

bool IsHotPath(const std::string& path) {
  return HasPrefix(path, "src/nn/") || HasPrefix(path, "src/sim/simulator.") ||
         HasPrefix(path, "src/sim/delta.");
}

// The sanctioned allocation substrate: the arena and workspace pools plus
// src/support (telemetry/metrics registration and the resource pool —
// init-time allocation that hot paths may call through, never per-step).
bool IsSanctionedAlloc(const std::string& path) {
  return HasPrefix(path, "src/nn/arena.") ||
         HasPrefix(path, "src/sim/sim_workspace.") ||
         HasPrefix(path, "src/support/");
}

class EscapeAnalysis {
 public:
  explicit EscapeAnalysis(const Index& index) : index_(index) {}

  // The chain of definitions from calling `name` to an unsanctioned
  // allocation, or empty when every path is clean. Names resolving to
  // zero (external) or multiple (ambiguous) definitions are treated as
  // clean — under-reporting, never guessing.
  const std::vector<const FunctionInfo*>& Reaches(const std::string& name) {
    static const std::vector<const FunctionInfo*> kClean;
    const auto memo = memo_.find(name);
    if (memo != memo_.end()) return memo->second;
    if (in_progress_.count(name) > 0) return kClean;  // cycle guard
    in_progress_.insert(name);

    std::vector<const FunctionInfo*> chain;
    const auto defs = index_.Definitions(name);
    if (defs.size() == 1 && !IsSanctionedAlloc(defs[0]->file) &&
        !DefSuppressed(*defs[0])) {
      chain = ChainFrom(*defs[0]);
    }
    in_progress_.erase(name);
    return memo_.emplace(name, std::move(chain)).first->second;
  }

  // The escape chain for a known definition (used for hot entry points,
  // where the definition is in hand and suppression is handled by the
  // caller via the emitted diagnostic's line).
  std::vector<const FunctionInfo*> ChainFrom(const FunctionInfo& fn) {
    if (fn.allocates && !AllocSuppressed(fn)) return {&fn};
    for (const CallSite& call : fn.calls) {
      const auto& sub = Reaches(call.name);
      if (!sub.empty()) {
        std::vector<const FunctionInfo*> chain{&fn};
        chain.insert(chain.end(), sub.begin(), sub.end());
        return chain;
      }
    }
    return {};
  }

  bool AllocSuppressed(const FunctionInfo& fn) const {
    const FileIndex* file = index_.Find(fn.file);
    return file != nullptr && SuppressedAt(*file, fn.alloc_line, "HP02");
  }

 private:
  bool DefSuppressed(const FunctionInfo& fn) const {
    const FileIndex* file = index_.Find(fn.file);
    return file != nullptr && SuppressedAt(*file, fn.line, "HP02");
  }

  const Index& index_;
  std::map<std::string, std::vector<const FunctionInfo*>> memo_;
  std::set<std::string> in_progress_;
};

}  // namespace

std::vector<Diagnostic> CheckHotPathEscape(const Index& index) {
  std::vector<Diagnostic> out;
  EscapeAnalysis analysis(index);
  for (const FileIndex& file : index.files()) {
    if (!IsHotPath(file.path) || IsSanctionedAlloc(file.path)) continue;
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.has_body) continue;
      // Direct allocation in a hot-path function: diagnose at the
      // allocation itself so a justification comment sits next to it.
      if (fn.allocates) {
        out.push_back(Diagnostic{
            "HP02", file.path, fn.alloc_line,
            "hot-path function '" + fn.qualified + "' allocates directly ('" +
                fn.alloc_what +
                "') — take scratch from the tensor arena / SimWorkspace "
                "pools, or justify one-time construction with an adjacent "
                "eagle-lint: allow(HP02)",
            1});
      }
      // Transitive escape through the call graph.
      std::vector<const FunctionInfo*> chain;
      for (const CallSite& call : fn.calls) {
        const auto& sub = analysis.Reaches(call.name);
        if (!sub.empty()) {
          chain.assign(sub.begin(), sub.end());
          break;
        }
      }
      if (chain.empty()) continue;
      std::string spelled = fn.qualified;
      for (const FunctionInfo* step : chain) spelled += " → " + step->qualified;
      const FunctionInfo& sink = *chain.back();
      out.push_back(Diagnostic{
          "HP02", file.path, fn.line,
          "hot-path function '" + fn.qualified +
              "' reaches an allocation outside the arena/workspace pools: " +
              spelled + " (allocates via '" + sink.alloc_what + "' at " +
              sink.file + ":" + std::to_string(sink.alloc_line) + ")",
          fn.col});
    }
  }
  return out;
}

}  // namespace eagle::lint
