// Minimal C++ lexer for eagle-lint.
//
// Produces a flat token stream (comments stripped into a side channel,
// preprocessor directives folded into single tokens) that the rule
// engine in linter.cpp pattern-matches against and the cross-file index
// in index.cpp builds function extents from. This is deliberately not a
// full C++ front end: eagle-lint checks repo conventions (banned
// identifiers, iteration over unordered containers, layering, lock
// order), all of which are decidable at token level, and taking a real
// parser as a dependency would violate the repo's no-external-deps rule.
//
// Literal handling matters more here than in a toy lexer: a raw string
// holding `std::mutex` or `new` must never leak identifier tokens, or
// every rule downstream misfires. The lexer therefore understands
// encoding prefixes on raw strings (R, uR, u8R, UR, LR), custom raw
// delimiters, digit separators (1'000'000, 0xFF'00), and raw strings
// inside preprocessor directives.
#pragma once

#include <string>
#include <vector>

namespace eagle::lint {

enum class TokKind {
  kIdentifier,  // foo, std, unordered_map
  kNumber,      // 42, 0x1p-3, 1.5e9, 1'000'000
  kString,      // "..." / R"(...)" (text holds the unquoted contents)
  kChar,        // '...' (text holds the unquoted contents)
  kPunct,       // operators & punctuation, maximal munch ("::", "->", ...)
  kPp,          // one whole preprocessor directive, continuations joined
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column of the token's first character
};

struct Comment {
  int line = 1;        // line the comment starts on
  int end_line = 1;    // line the comment ends on (block comments span)
  std::string text;    // without the // or /* */ markers
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes C++ source. Never fails: malformed input degrades into
// punctuation tokens rather than aborting, so the linter can still scan
// the rest of the file.
LexedFile Lex(const std::string& source);

}  // namespace eagle::lint
