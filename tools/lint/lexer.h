// Minimal C++ lexer for eagle-lint.
//
// Produces a flat token stream (comments stripped into a side channel,
// preprocessor directives folded into single tokens) that the rule
// engine in linter.cpp pattern-matches against. This is deliberately not
// a full C++ front end: eagle-lint checks repo conventions (banned
// identifiers, iteration over unordered containers, macro hygiene), all
// of which are decidable at token level, and taking a real parser as a
// dependency would violate the repo's no-external-deps rule.
#pragma once

#include <string>
#include <vector>

namespace eagle::lint {

enum class TokKind {
  kIdentifier,  // foo, std, unordered_map
  kNumber,      // 42, 0x1p-3, 1.5e9
  kString,      // "..." (text holds the unquoted contents)
  kChar,        // '...' (text holds the unquoted contents)
  kPunct,       // operators & punctuation, maximal munch ("::", "->", ...)
  kPp,          // one whole preprocessor directive, continuations joined
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
};

struct Comment {
  int line = 1;        // line the comment starts on
  int end_line = 1;    // line the comment ends on (block comments span)
  std::string text;    // without the // or /* */ markers
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes C++ source. Never fails: malformed input degrades into
// punctuation tokens rather than aborting, so the linter can still scan
// the rest of the file.
LexedFile Lex(const std::string& source);

}  // namespace eagle::lint
