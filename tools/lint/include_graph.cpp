#include "include_graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace eagle::lint {

namespace {

struct Layer {
  const char* dir;
  int rank;
};

// The DAG as data. partition sits between graph and nn: it consumes the
// op graph and produces groupings the nn policy embeds.
const Layer kLayers[] = {
    {"support", 0}, {"graph", 1}, {"partition", 2}, {"nn", 3},
    {"sim", 4},     {"models", 5}, {"core", 6},      {"rl", 7},
};

std::string LayerName(int rank) {
  for (const Layer& layer : kLayers) {
    if (layer.rank == rank) return layer.dir;
  }
  return "?";
}

std::string ChainSpelling() {
  std::string out;
  for (const std::string& name : LayerChain()) {
    if (!out.empty()) out += " → ";
    out += name;
  }
  return out;
}

// Depth-first cycle finder over the resolved include graph. Reports each
// cycle once (canonicalized by its sorted member set).
class CycleFinder {
 public:
  CycleFinder(const std::map<std::string, std::vector<IncludeSite>>& edges,
              const Index& index, std::vector<Diagnostic>* out)
      : edges_(edges), index_(index), out_(out) {}

  void Run() {
    for (const auto& [file, unused] : edges_) Visit(file);
  }

 private:
  void Visit(const std::string& file) {
    if (done_.count(file) > 0) return;
    if (on_stack_.count(file) > 0) {
      Report(file);
      return;
    }
    on_stack_.insert(file);
    stack_.push_back(file);
    const auto it = edges_.find(file);
    if (it != edges_.end()) {
      for (const IncludeSite& inc : it->second) {
        if (inc.resolved) Visit(inc.target);
      }
    }
    stack_.pop_back();
    on_stack_.erase(file);
    done_.insert(file);
  }

  void Report(const std::string& back_to) {
    // The cycle is the stack suffix starting at `back_to`.
    auto begin = std::find(stack_.begin(), stack_.end(), back_to);
    if (begin == stack_.end()) return;
    std::vector<std::string> members(begin, stack_.end());
    std::vector<std::string> key = members;
    std::sort(key.begin(), key.end());
    if (!reported_.insert(key).second) return;

    std::string chain;
    for (const std::string& member : members) chain += member + " → ";
    chain += back_to;
    int line = 1;
    const std::string& next = members.size() > 1 ? members[1] : back_to;
    if (const FileIndex* fi = index_.Find(back_to)) {
      for (const IncludeSite& inc : fi->includes) {
        if (inc.resolved && inc.target == next) {
          line = inc.line;
          break;
        }
      }
    }
    out_->push_back(Diagnostic{
        "LY01", back_to, line,
        "include cycle: " + chain +
            " — break the cycle by moving the shared declarations into "
            "the lower layer",
        1});
  }

  const std::map<std::string, std::vector<IncludeSite>>& edges_;
  const Index& index_;
  std::vector<Diagnostic>* out_;
  std::set<std::string> on_stack_;
  std::set<std::string> done_;
  std::vector<std::string> stack_;
  std::set<std::vector<std::string>> reported_;
};

}  // namespace

int LayerRank(const std::string& path) {
  if (path.compare(0, 4, "src/") != 0) return -1;
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return -2;  // loose file directly in src/
  const std::string dir = path.substr(4, slash - 4);
  for (const Layer& layer : kLayers) {
    if (dir == layer.dir) return layer.rank;
  }
  return -2;
}

const std::vector<std::string>& LayerChain() {
  static const std::vector<std::string> chain = [] {
    std::vector<std::string> names;
    for (const Layer& layer : kLayers) names.push_back(layer.dir);
    return names;
  }();
  return chain;
}

std::vector<Diagnostic> CheckLayering(const Index& index) {
  std::vector<Diagnostic> out;
  std::map<std::string, std::vector<IncludeSite>> edges;
  for (const FileIndex& file : index.files()) {
    edges[file.path] = file.includes;

    const int from_rank = LayerRank(file.path);
    if (from_rank == -2) {
      out.push_back(Diagnostic{
          "LY01", file.path, 1,
          "file is under src/ but in no registered layer — the layer "
          "chain is " + ChainSpelling() +
              "; register new layers in tools/lint/include_graph.cpp and "
              "docs/STATIC_ANALYSIS.md",
          1});
      continue;
    }
    if (from_rank < 0) continue;  // tools/tests/bench may include anything

    for (const IncludeSite& inc : file.includes) {
      if (!inc.resolved) continue;
      const int to_rank = LayerRank(inc.target);
      if (to_rank < 0) continue;
      if (to_rank > from_rank) {
        out.push_back(Diagnostic{
            "LY01", file.path, inc.line,
            "layering violation: " + file.path + " (layer " +
                LayerName(from_rank) + ") includes " + inc.target +
                " (layer " + LayerName(to_rank) + ") — the layer DAG is " +
                ChainSpelling() +
                " and higher layers may depend on lower ones, never the "
                "reverse",
            1});
      }
    }
  }
  CycleFinder(edges, index, &out).Run();
  return out;
}

}  // namespace eagle::lint
