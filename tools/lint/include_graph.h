// LY01: the layer DAG, enforced from real include resolution.
//
// The repo is layered
//
//   support → graph → partition → nn → sim → models → core → rl
//
// (left is lowest; an arrow means "may be depended on by"). A file in
// layer L may include files in L or any layer to its left, never to its
// right — src/support quietly including src/sim is exactly the drift
// this rule exists to catch. Layering is checked on every direct
// resolved include edge; because the layers form a total order, checking
// direct edges is automatically transitively closed (a legal chain can
// never reach a higher layer). Include cycles — which a total order
// cannot express — are detected separately and diagnosed with the full
// edge chain.
#pragma once

#include <string>
#include <vector>

#include "index.h"
#include "linter.h"

namespace eagle::lint {

// Rank of the layer owning `path` (0 = support … 7 = rl), or -1 when the
// path is not under src/ (tools/tests/bench are free to include
// anything), or -2 when it is under src/ but in no known layer directory
// (LY01 flags that too: new layers must be registered here and in docs).
int LayerRank(const std::string& path);

// The layer chain, lowest first (for diagnostics and --list-rules).
const std::vector<std::string>& LayerChain();

// Runs LY01 over the index: back-edge detection on every resolved
// include edge between src/ files, unknown-layer detection, and include
// cycle detection across the whole indexed tree.
std::vector<Diagnostic> CheckLayering(const Index& index);

}  // namespace eagle::lint
