// eagle-lint CLI.
//
//   eagle-lint --root=<repo>      lint the whole tree (src bench tools
//                                 tests examples) with both phases:
//                                 per-file rules + cross-file rules
//                                 (LY01/ST01/LK01/HP02); exit 1 on any
//                                 finding
//   eagle-lint <file>...          lint specific files with the per-file
//                                 rules (cross-file rules need the whole
//                                 tree; paths are used as-is for scoping)
//   eagle-lint --format=json      machine-readable report (schema below)
//   eagle-lint --list-rules       print the rule catalogue
//
// JSON schema (stable — CI annotation depends on it):
//   {
//     "findings": [
//       {"rule": "LY01", "path": "src/...", "line": 7, "column": 1,
//        "message": "..."},
//       ...
//     ],
//     "suppressed": <count of findings waived by allow(...) comments>,
//     "files_scanned": <count>
//   }
//
// Registered as the `lint_repo` ctest so the tree must stay lint-clean.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "linter.h"

namespace {

int ListRules() {
  for (const auto& rule : eagle::lint::Rules()) {
    std::printf("%s  [%s]  %s\n", rule.id.c_str(), rule.severity.c_str(),
                rule.summary.c_str());
    for (const auto& scope : rule.scopes) {
      std::printf("      scope: %s\n", scope.c_str());
    }
    for (const auto& allow : rule.allow) {
      std::printf("      allow: %s\n", allow.c_str());
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: eagle-lint [--root=DIR | FILE...] [--format=json] "
               "[--list-rules]\n");
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<eagle::lint::Diagnostic>& diagnostics,
               int suppressed, int scanned) {
  std::printf("{\n  \"findings\": [");
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = diagnostics[i];
    std::printf("%s\n    {\"rule\": \"%s\", \"path\": \"%s\", \"line\": %d, "
                "\"column\": %d, \"message\": \"%s\"}",
                i == 0 ? "" : ",", JsonEscape(d.rule).c_str(),
                JsonEscape(d.file).c_str(), d.line, d.col,
                JsonEscape(d.message).c_str());
  }
  std::printf("%s],\n", diagnostics.empty() ? "" : "\n  ");
  std::printf("  \"suppressed\": %d,\n", suppressed);
  std::printf("  \"files_scanned\": %d\n}\n", scanned);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return ListRules();
    if (arg == "--help" || arg == "-h") return Usage();
    if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty() && files.empty()) root = ".";

  std::vector<eagle::lint::Diagnostic> diagnostics;
  int scanned = 0;
  int suppressed = 0;
  if (!root.empty()) {
    const auto result = eagle::lint::LintTree(root);
    diagnostics = result.diagnostics;
    scanned = result.files_scanned;
    suppressed = result.suppressed;
    if (scanned == 0) {
      std::fprintf(stderr, "eagle-lint: no sources found under %s\n",
                   root.c_str());
      return 2;
    }
  }
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "eagle-lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    auto diags = eagle::lint::LintSource(file, content.str());
    diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
    ++scanned;
  }

  if (json) {
    PrintJson(diagnostics, suppressed, scanned);
  } else {
    for (const auto& d : diagnostics) {
      std::printf("%s\n", eagle::lint::FormatDiagnostic(d).c_str());
    }
    std::printf("eagle-lint: %zu finding(s) in %d file(s)\n",
                diagnostics.size(), scanned);
  }
  return diagnostics.empty() ? 0 : 1;
}
