// eagle-lint CLI.
//
//   eagle-lint --root=<repo>     lint the whole tree (src bench tools
//                                tests examples); exit 1 on any finding
//   eagle-lint <file>...         lint specific files (paths are used
//                                as-is for rule scoping)
//   eagle-lint --list-rules      print the rule catalogue
//
// Registered as the `lint_repo` ctest so the tree must stay lint-clean.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "linter.h"

namespace {

int ListRules() {
  for (const auto& rule : eagle::lint::Rules()) {
    std::printf("%s  [%s]  %s\n", rule.id.c_str(), rule.severity.c_str(),
                rule.summary.c_str());
    for (const auto& scope : rule.scopes) {
      std::printf("      scope: %s\n", scope.c_str());
    }
    for (const auto& allow : rule.allow) {
      std::printf("      allow: %s\n", allow.c_str());
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: eagle-lint [--root=DIR | FILE...] [--list-rules]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return ListRules();
    if (arg == "--help" || arg == "-h") return Usage();
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty() && files.empty()) root = ".";

  std::vector<eagle::lint::Diagnostic> diagnostics;
  int scanned = 0;
  if (!root.empty()) {
    const auto result = eagle::lint::LintTree(root);
    diagnostics = result.diagnostics;
    scanned = result.files_scanned;
    if (scanned == 0) {
      std::fprintf(stderr, "eagle-lint: no sources found under %s\n",
                   root.c_str());
      return 2;
    }
  }
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "eagle-lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    auto diags = eagle::lint::LintSource(file, content.str());
    diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
    ++scanned;
  }

  for (const auto& d : diagnostics) {
    std::printf("%s\n", eagle::lint::FormatDiagnostic(d).c_str());
  }
  std::printf("eagle-lint: %zu finding(s) in %d file(s)\n",
              diagnostics.size(), scanned);
  return diagnostics.empty() ? 0 : 1;
}
