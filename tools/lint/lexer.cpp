#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace eagle::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first (maximal munch).
const char* const kOperators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPpDirective();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void LexLineComment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') text += src_[pos_++];
    out_.comments.push_back(Comment{start_line, start_line, std::move(text)});
  }

  void LexBlockComment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    out_.comments.push_back(Comment{start_line, line_, std::move(text)});
  }

  // One directive, backslash continuations joined; trailing // comment on
  // the directive line is recorded so suppressions work there too.
  void LexPpDirective() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        text += ' ';
        continue;
      }
      text += c;
      ++pos_;
    }
    Emit(TokKind::kPp, std::move(text), start_line);
  }

  void LexIdentifierOrLiteralPrefix() {
    // Raw string literal: R"delim( ... )delim"
    if (src_[pos_] == 'R' && Peek(1) == '"') {
      LexRawString();
      return;
    }
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) text += src_[pos_++];
    Emit(TokKind::kIdentifier, std::move(text), start_line);
  }

  void LexRawString() {
    const int start_line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // (
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() &&
           src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    pos_ += closer.size();
    if (pos_ > src_.size()) pos_ = src_.size();
    Emit(TokKind::kString, std::move(text), start_line);
  }

  void LexNumber() {
    const int start_line = line_;
    std::string text;
    // Loose scan: digits, hex/bin prefixes, digit separators, exponents.
    // (No rule inspects numeric values, so precision doesn't matter —
    // the scan just has to not split "1.5e-9" into pieces.)
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        text += c;
        ++pos_;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (Peek(0) == '+' || Peek(0) == '-')) {
          text += src_[pos_++];
        }
        continue;
      }
      break;
    }
    Emit(TokKind::kNumber, std::move(text), start_line);
  }

  void LexString() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep going
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    Emit(TokKind::kString, std::move(text), start_line);
  }

  void LexChar() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // unterminated char literal
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    Emit(TokKind::kChar, std::move(text), start_line);
  }

  void LexPunct() {
    for (const char* op : kOperators) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src_.compare(pos_, len, op) == 0) {
        Emit(TokKind::kPunct, op, line_);
        pos_ += len;
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace eagle::lint
