#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace eagle::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first (maximal munch).
const char* const kOperators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",
};

// Encoding prefixes that can precede a raw string literal. A plain
// identifier ending in R ("FOOR") followed by a quote is macro-adjacent
// string concatenation, not a raw string, so the whole prefix must match.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "uR" || ident == "u8R" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        NewLine();
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPpDirective();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // The column of the character at `pos` on the current line (1-based).
  int ColAt(std::size_t pos) const {
    return static_cast<int>(pos - line_begin_) + 1;
  }

  // Call with pos_ still on the '\n'.
  void NewLine() {
    ++line_;
    line_begin_ = pos_ + 1;
  }

  void Emit(TokKind kind, std::string text, int line, int col) {
    out_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  void LexLineComment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') text += src_[pos_++];
    out_.comments.push_back(Comment{start_line, start_line, std::move(text)});
  }

  void LexBlockComment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') NewLine();
      text += src_[pos_++];
    }
    out_.comments.push_back(Comment{start_line, line_, std::move(text)});
  }

  // One directive, backslash continuations joined; trailing // comment on
  // the directive line is recorded so suppressions work there too. Raw
  // strings inside the directive (`#define SCHEMA R"({"a"://})"`) are
  // consumed verbatim so a // or /* inside one never truncates the
  // directive.
  void LexPpDirective() {
    const int start_line = line_;
    const int start_col = ColAt(pos_);
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        NewLine();
        line_begin_ = pos_;  // continuation: next char starts the line
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        text += ' ';
        continue;
      }
      if (c == '"' || (IsIdentStart(c) && LooksLikeRawStringAt(pos_))) {
        // Copy the whole string literal (raw or plain) into the directive
        // text so its contents can't be mistaken for directive structure.
        const std::size_t begin = pos_;
        if (c == '"') {
          SkipPlainStringLiteral();
        } else {
          while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
          SkipRawStringLiteral();
        }
        text.append(src_, begin, pos_ - begin);
        continue;
      }
      text += c;
      ++pos_;
    }
    Emit(TokKind::kPp, std::move(text), start_line, start_col);
  }

  // True when the identifier starting at `at` is a raw-string prefix
  // immediately followed by a double quote.
  bool LooksLikeRawStringAt(std::size_t at) const {
    std::string ident;
    while (at < src_.size() && IsIdentChar(src_[at])) ident += src_[at++];
    return at < src_.size() && src_[at] == '"' && IsRawStringPrefix(ident);
  }

  void LexIdentifierOrLiteralPrefix() {
    const int start_line = line_;
    const int start_col = ColAt(pos_);
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) text += src_[pos_++];
    // Raw string literal with any encoding prefix: R"…", uR"…", u8R"…",
    // UR"…", LR"…". Without this, `u8R"(std::mutex)"` lexed as the
    // identifier `u8R` plus a plain string, leaking the raw contents as
    // real tokens (the PR-8 lexer regression fixtures pin this down).
    if (pos_ < src_.size() && src_[pos_] == '"' && IsRawStringPrefix(text)) {
      LexRawString(start_line, start_col);
      return;
    }
    // Encoded plain string / char literal (u8"…", L'…'): emit the prefix
    // as an identifier and let the literal lex normally next iteration —
    // its contents are still confined to a single literal token.
    Emit(TokKind::kIdentifier, std::move(text), start_line, start_col);
  }

  // pos_ is on the opening quote; the prefix (if any) has been consumed.
  void LexRawString(int start_line, int start_col) {
    ++pos_;  // "
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      delim += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '(') ++pos_;
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() &&
           src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') NewLine();
      text += src_[pos_++];
    }
    pos_ += closer.size();
    if (pos_ > src_.size()) pos_ = src_.size();
    Emit(TokKind::kString, std::move(text), start_line, start_col);
  }

  // Skips a complete raw string starting at the opening quote (used by
  // the pp-directive scan, which keeps the source text verbatim).
  void SkipRawStringLiteral() {
    if (pos_ >= src_.size() || src_[pos_] != '"') return;
    ++pos_;
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      delim += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '(') ++pos_;
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size() &&
           src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') NewLine();
      ++pos_;
    }
    pos_ += closer.size();
    if (pos_ > src_.size()) pos_ = src_.size();
  }

  // Skips a plain "..." literal starting at the opening quote.
  void SkipPlainStringLiteral() {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
  }

  void LexNumber() {
    const int start_line = line_;
    const int start_col = ColAt(pos_);
    std::string text;
    // Loose scan: digits, hex/bin prefixes, digit separators, exponents.
    // (No rule inspects numeric values, so precision doesn't matter —
    // the scan just has to not split "1.5e-9" or "1'000'000" into
    // pieces.) A separator is consumed only when a digit or literal
    // letter follows, exactly as the grammar requires: a trailing
    // apostrophe after a number starts a char literal instead of being
    // swallowed, so the tokens after it keep their real kinds.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\'') {
        if (!std::isalnum(static_cast<unsigned char>(Peek(1)))) break;
        text += c;
        ++pos_;
        continue;
      }
      if (IsIdentChar(c) || c == '.') {
        text += c;
        ++pos_;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (Peek(0) == '+' || Peek(0) == '-')) {
          text += src_[pos_++];
        }
        continue;
      }
      break;
    }
    Emit(TokKind::kNumber, std::move(text), start_line, start_col);
  }

  void LexString() {
    const int start_line = line_;
    const int start_col = ColAt(pos_);
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') NewLine();  // unterminated; keep going
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    Emit(TokKind::kString, std::move(text), start_line, start_col);
  }

  void LexChar() {
    const int start_line = line_;
    const int start_col = ColAt(pos_);
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // unterminated char literal
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    Emit(TokKind::kChar, std::move(text), start_line, start_col);
  }

  void LexPunct() {
    for (const char* op : kOperators) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src_.compare(pos_, len, op) == 0) {
        Emit(TokKind::kPunct, op, line_, ColAt(pos_));
        pos_ += len;
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]), line_, ColAt(pos_));
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::size_t line_begin_ = 0;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace eagle::lint
