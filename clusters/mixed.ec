# Mixed-speed single box: two P100-class cards plus two older, slower
# cards with more memory, all behind one PCIe root complex (no NVLink).
# Mirrors sim::MakeMixedSpeedCluster().
device /node0/cpu:0 cpu gflops=80 mem_bw=60 overhead=25 mem=128849018880
device /node0/gpu:0 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node0/gpu:1 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node0/gpu:2 gpu gflops=900 mem_bw=550 overhead=50 mem=22548578304
device /node0/gpu:3 gpu gflops=900 mem_bw=550 overhead=50 mem=22548578304
link /node0/cpu:0 /node0/gpu:0 bw=11 lat=50 chan=pcie0 bidir
link /node0/cpu:0 /node0/gpu:1 bw=11 lat=50 chan=pcie0 bidir
link /node0/cpu:0 /node0/gpu:2 bw=11 lat=50 chan=pcie0 bidir
link /node0/cpu:0 /node0/gpu:3 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:0 /node0/gpu:1 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:0 /node0/gpu:2 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:0 /node0/gpu:3 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:1 /node0/gpu:2 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:1 /node0/gpu:3 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:2 /node0/gpu:3 bw=11 lat=50 chan=pcie0 bidir
