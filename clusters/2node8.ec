# Two-node 8-GPU cluster: each node is one fully NVLink-connected island
# of 4 P100-class GPUs behind a shared PCIe root complex; nodes talk over
# InfiniBand through one NIC per node (all egress from a node shares that
# node's nic channel). Mirrors sim::MakeTwoNodeNvlinkIbCluster().
device /node0/cpu:0 cpu gflops=80 mem_bw=60 overhead=25 mem=128849018880
device /node0/gpu:0 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node0/gpu:1 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node0/gpu:2 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node0/gpu:3 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node1/cpu:0 cpu gflops=80 mem_bw=60 overhead=25 mem=128849018880
device /node1/gpu:0 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node1/gpu:1 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node1/gpu:2 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
device /node1/gpu:3 gpu gflops=2500 mem_bw=550 overhead=50 mem=11811160064
# intra-node: host<->GPU over the shared PCIe root, GPU<->GPU over NVLink
link /node0/cpu:0 /node0/gpu:0 bw=11 lat=50 chan=pcie0 bidir
link /node0/cpu:0 /node0/gpu:1 bw=11 lat=50 chan=pcie0 bidir
link /node0/cpu:0 /node0/gpu:2 bw=11 lat=50 chan=pcie0 bidir
link /node0/cpu:0 /node0/gpu:3 bw=11 lat=50 chan=pcie0 bidir
link /node0/gpu:0 /node0/gpu:1 bw=44 lat=6 bidir
link /node0/gpu:0 /node0/gpu:2 bw=44 lat=6 bidir
link /node0/gpu:0 /node0/gpu:3 bw=44 lat=6 bidir
link /node0/gpu:1 /node0/gpu:2 bw=44 lat=6 bidir
link /node0/gpu:1 /node0/gpu:3 bw=44 lat=6 bidir
link /node0/gpu:2 /node0/gpu:3 bw=44 lat=6 bidir
link /node1/cpu:0 /node1/gpu:0 bw=11 lat=50 chan=pcie1 bidir
link /node1/cpu:0 /node1/gpu:1 bw=11 lat=50 chan=pcie1 bidir
link /node1/cpu:0 /node1/gpu:2 bw=11 lat=50 chan=pcie1 bidir
link /node1/cpu:0 /node1/gpu:3 bw=11 lat=50 chan=pcie1 bidir
link /node1/gpu:0 /node1/gpu:1 bw=44 lat=6 bidir
link /node1/gpu:0 /node1/gpu:2 bw=44 lat=6 bidir
link /node1/gpu:0 /node1/gpu:3 bw=44 lat=6 bidir
link /node1/gpu:1 /node1/gpu:2 bw=44 lat=6 bidir
link /node1/gpu:1 /node1/gpu:3 bw=44 lat=6 bidir
link /node1/gpu:2 /node1/gpu:3 bw=44 lat=6 bidir
# inter-node: IB, every transfer leaving a node queues on its NIC
link /node0/cpu:0 /node1/cpu:0 bw=9 lat=130 chan=nic0
link /node1/cpu:0 /node0/cpu:0 bw=9 lat=130 chan=nic1
link /node0/cpu:0 /node1/gpu:0 bw=9 lat=130 chan=nic0
link /node1/gpu:0 /node0/cpu:0 bw=9 lat=130 chan=nic1
link /node0/cpu:0 /node1/gpu:1 bw=9 lat=130 chan=nic0
link /node1/gpu:1 /node0/cpu:0 bw=9 lat=130 chan=nic1
link /node0/cpu:0 /node1/gpu:2 bw=9 lat=130 chan=nic0
link /node1/gpu:2 /node0/cpu:0 bw=9 lat=130 chan=nic1
link /node0/cpu:0 /node1/gpu:3 bw=9 lat=130 chan=nic0
link /node1/gpu:3 /node0/cpu:0 bw=9 lat=130 chan=nic1
link /node0/gpu:0 /node1/cpu:0 bw=9 lat=130 chan=nic0
link /node1/cpu:0 /node0/gpu:0 bw=9 lat=130 chan=nic1
link /node0/gpu:0 /node1/gpu:0 bw=9 lat=130 chan=nic0
link /node1/gpu:0 /node0/gpu:0 bw=9 lat=130 chan=nic1
link /node0/gpu:0 /node1/gpu:1 bw=9 lat=130 chan=nic0
link /node1/gpu:1 /node0/gpu:0 bw=9 lat=130 chan=nic1
link /node0/gpu:0 /node1/gpu:2 bw=9 lat=130 chan=nic0
link /node1/gpu:2 /node0/gpu:0 bw=9 lat=130 chan=nic1
link /node0/gpu:0 /node1/gpu:3 bw=9 lat=130 chan=nic0
link /node1/gpu:3 /node0/gpu:0 bw=9 lat=130 chan=nic1
link /node0/gpu:1 /node1/cpu:0 bw=9 lat=130 chan=nic0
link /node1/cpu:0 /node0/gpu:1 bw=9 lat=130 chan=nic1
link /node0/gpu:1 /node1/gpu:0 bw=9 lat=130 chan=nic0
link /node1/gpu:0 /node0/gpu:1 bw=9 lat=130 chan=nic1
link /node0/gpu:1 /node1/gpu:1 bw=9 lat=130 chan=nic0
link /node1/gpu:1 /node0/gpu:1 bw=9 lat=130 chan=nic1
link /node0/gpu:1 /node1/gpu:2 bw=9 lat=130 chan=nic0
link /node1/gpu:2 /node0/gpu:1 bw=9 lat=130 chan=nic1
link /node0/gpu:1 /node1/gpu:3 bw=9 lat=130 chan=nic0
link /node1/gpu:3 /node0/gpu:1 bw=9 lat=130 chan=nic1
link /node0/gpu:2 /node1/cpu:0 bw=9 lat=130 chan=nic0
link /node1/cpu:0 /node0/gpu:2 bw=9 lat=130 chan=nic1
link /node0/gpu:2 /node1/gpu:0 bw=9 lat=130 chan=nic0
link /node1/gpu:0 /node0/gpu:2 bw=9 lat=130 chan=nic1
link /node0/gpu:2 /node1/gpu:1 bw=9 lat=130 chan=nic0
link /node1/gpu:1 /node0/gpu:2 bw=9 lat=130 chan=nic1
link /node0/gpu:2 /node1/gpu:2 bw=9 lat=130 chan=nic0
link /node1/gpu:2 /node0/gpu:2 bw=9 lat=130 chan=nic1
link /node0/gpu:2 /node1/gpu:3 bw=9 lat=130 chan=nic0
link /node1/gpu:3 /node0/gpu:2 bw=9 lat=130 chan=nic1
link /node0/gpu:3 /node1/cpu:0 bw=9 lat=130 chan=nic0
link /node1/cpu:0 /node0/gpu:3 bw=9 lat=130 chan=nic1
link /node0/gpu:3 /node1/gpu:0 bw=9 lat=130 chan=nic0
link /node1/gpu:0 /node0/gpu:3 bw=9 lat=130 chan=nic1
link /node0/gpu:3 /node1/gpu:1 bw=9 lat=130 chan=nic0
link /node1/gpu:1 /node0/gpu:3 bw=9 lat=130 chan=nic1
link /node0/gpu:3 /node1/gpu:2 bw=9 lat=130 chan=nic0
link /node1/gpu:2 /node0/gpu:3 bw=9 lat=130 chan=nic1
link /node0/gpu:3 /node1/gpu:3 bw=9 lat=130 chan=nic0
link /node1/gpu:3 /node0/gpu:3 bw=9 lat=130 chan=nic1
