#!/usr/bin/env python3
"""Plot the figure benches' CSV output (matplotlib, optional).

Usage:
    scripts/plot_results.py results/ [out_dir]

Reads figN_best.csv / figN_samples.csv written by bench_fig* and renders
one PNG per figure, mirroring the paper's Figs. 2 and 5-7: scatter of
per-sample measured per-step times plus the best-so-far staircase, per
approach, against simulated training hours.
"""
import csv
import os
import sys
from collections import defaultdict


def read_series(path):
    series = defaultdict(lambda: ([], []))
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            xs, ys = series[row["series"]]
            xs.append(float(row[list(row)[1]]))
            ys.append(float(row[list(row)[2]]))
    return series


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    results = sys.argv[1]
    out_dir = sys.argv[2] if len(sys.argv) > 2 else results
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; only validating CSVs")
        plt = None

    figures = [name[: -len("_best.csv")]
               for name in sorted(os.listdir(results))
               if name.endswith("_best.csv")]
    if not figures:
        print(f"no fig*_best.csv files under {results}")
        return 1

    for fig in figures:
        best = read_series(os.path.join(results, f"{fig}_best.csv"))
        samples_path = os.path.join(results, f"{fig}_samples.csv")
        samples = read_series(samples_path) if os.path.exists(samples_path) \
            else {}
        print(f"{fig}: {', '.join(best)} "
              f"({sum(len(x) for x, _ in best.values())} best points)")
        if plt is None:
            continue
        plt.figure(figsize=(7, 4.2))
        for name, (xs, ys) in samples.items():
            plt.scatter(xs, ys, s=4, alpha=0.25)
        for name, (xs, ys) in best.items():
            plt.step(xs, ys, where="post", label=name, linewidth=1.8)
        plt.xlabel("simulated training hours")
        plt.ylabel("per-step time (s)")
        plt.title(fig)
        plt.legend()
        plt.tight_layout()
        out = os.path.join(out_dir, f"{fig}.png")
        plt.savefig(out, dpi=140)
        plt.close()
        print(f"  wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
