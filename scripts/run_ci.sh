#!/usr/bin/env bash
# The one-command CI gate, chaining every check the repo ships:
#   1. configure + build,
#   2. the tier-1 test suite,
#   3. a timed whole-tree eagle-lint v2 pass in JSON mode (cross-file
#      rules LY01/ST01/LK01/HP02 included) that must finish inside the
#      5 s tier-1 budget,
#   4. static analysis (eagle-lint, header self-containment, audited
#      tests, clang-tidy when installed — scripts/run_static_analysis.sh),
#   5. a telemetry smoke run: a tiny bench_fig5 training run with
#      --telemetry-out / --profile-out must produce JSONL that
#      tools/metrics_report parses and a Chrome trace containing
#      trainer-phase spans (see docs/OBSERVABILITY.md),
#   6. a kernel-bench smoke run: bench_micro --smoke must complete and
#      emit well-formed BENCH_kernels.json (tiny shapes — it guards the
#      harness and the naive-reference plumbing, not the perf ratios;
#      see docs/PERFORMANCE.md),
#   7. an ingestion fuzz smoke: graph_fuzz built with ASan+UBSan mutates
#      seeded .eg/.json corpora 10k/2k times against the hardened parser
#      (any crash or uncaught throw fails here), corrupts the shipped
#      cluster-spec files 2k times each against the cluster importer,
#      and runs a 100k-op generate→ingest→validate→group→simulate pass
#      end to end — once on the default box and once on the 2node8
#      hierarchical topology (see docs/GRAPH_FORMATS.md),
#   8. a delta differential smoke under the same sanitizer build:
#      graph_fuzz --mode=delta replays random single- and multi-op move
#      sequences on zoo + fuzz graphs — swept across the default, 2node8
#      and mixed topologies — and fails on the first result that is not
#      bit-identical to a fresh full run (see docs/SIMULATOR.md).
# Usage: scripts/run_ci.sh [build-dir]
set -euo pipefail
BUILD=${1:-build-ci}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j

echo "=== tier-1 test suite ==="
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")
echo TESTS_CLEAN

echo "=== eagle-lint v2 (cross-file, timed) ==="
# The two-phase linter must stay fast enough to live inside plain ctest:
# record its wall time over the whole tree and enforce the 5 s budget
# (the same budget the lint_repo ctest carries as TIMEOUT).
LINT_START=$(date +%s%N)
"$BUILD/tools/lint/eagle-lint" --root=. --format=json
LINT_MS=$(( ($(date +%s%N) - LINT_START) / 1000000 ))
echo "lint wall time: ${LINT_MS} ms"
test "$LINT_MS" -lt 5000 ||
  { echo "lint exceeded its 5 s tier-1 budget"; exit 1; }
echo LINT_V2_CLEAN

echo "=== static analysis ==="
scripts/run_static_analysis.sh "$BUILD-audit"

echo "=== telemetry smoke ==="
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$BUILD/bench/bench_fig5" --samples=20 --threads=2 \
  --telemetry-out="$SMOKE/run.jsonl" --profile-out="$SMOKE/profile.json" \
  --csv="$SMOKE/"
# The JSONL must cover the whole run and the profile must contain
# trainer-phase spans (an empty traceEvents array would grep clean on
# the header alone, so match an actual span name).
test -s "$SMOKE/run.jsonl"
grep -q '"event":"run_start"' "$SMOKE/run.jsonl"
grep -q '"event":"round"' "$SMOKE/run.jsonl"
grep -q '"event":"run_end"' "$SMOKE/run.jsonl"
grep -q '"name":"train\.' "$SMOKE/profile.json"
grep -q '"name":"eval\.' "$SMOKE/profile.json"
# metrics_report must parse every line and render the summary tables.
"$BUILD/tools/metrics_report" --in="$SMOKE/run.jsonl" --csv="$SMOKE/report_"
test -s "$SMOKE/report_runs.csv"
test -s "$SMOKE/report_phases.csv"
echo TELEMETRY_SMOKE_CLEAN

echo "=== kernel bench smoke ==="
"$BUILD/bench/bench_micro" --smoke --out="$SMOKE/BENCH_kernels.json" \
  --delta-out="$SMOKE/BENCH_delta.json"
test -s "$SMOKE/BENCH_kernels.json"
grep -q '"schema": "eagle.bench_kernels.v1"' "$SMOKE/BENCH_kernels.json"
grep -q '"smoke": true' "$SMOKE/BENCH_kernels.json"
grep -q '"kernel": "gemm"' "$SMOKE/BENCH_kernels.json"
grep -q '"graph": "Inception-V3"' "$SMOKE/BENCH_kernels.json"
test -s "$SMOKE/BENCH_delta.json"
grep -q '"schema": "eagle.bench_delta.v2"' "$SMOKE/BENCH_delta.json"
grep -q '"pattern": "repeat"' "$SMOKE/BENCH_delta.json"
grep -q '"pattern": "single_op"' "$SMOKE/BENCH_delta.json"
grep -q '"bert_repeat_speedup"' "$SMOKE/BENCH_delta.json"
echo BENCH_SMOKE_CLEAN

echo "=== ingestion fuzz smoke (ASan+UBSan) ==="
# A dedicated sanitizer build of just the fuzz driver: the mutation loop
# must never crash, throw, or trip a sanitizer — every corrupted input
# comes back as a structured taxonomy error.
cmake -B "$BUILD-fuzz" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEAGLE_SANITIZE=address
cmake --build "$BUILD-fuzz" -j --target graph_fuzz
FUZZ="$BUILD-fuzz/tools/graph_fuzz"
"$FUZZ" --mode=generate --ops=2000 --seed=3 --out="$SMOKE/corpus.eg"
"$FUZZ" --mode=generate --ops=500 --seed=4 --out="$SMOKE/corpus.json"
"$FUZZ" --mode=fuzz --in="$SMOKE/corpus.eg" --iters=10000 --seed=5
"$FUZZ" --mode=fuzz --in="$SMOKE/corpus.json" --iters=2000 --seed=6
# The cluster importer gets the same treatment: corrupted copies of the
# shipped topology specs must come back as taxonomy errors, never a
# crash or sanitizer report.
"$FUZZ" --mode=cluster-fuzz --in=clusters/2node8.ec --iters=2000 --seed=5
"$FUZZ" --mode=cluster-fuzz --in=clusters/mixed.ec --iters=2000 --seed=6
"$FUZZ" --mode=e2e --ops=100000 --seed=7
"$FUZZ" --mode=e2e --ops=100000 --seed=7 --cluster=2node8
echo FUZZ_SMOKE_CLEAN

echo "=== delta differential smoke (ASan+UBSan) ==="
# Same sanitizer binary: every delta-path evaluation across random move
# sequences must be field-for-field identical to a fresh full run, on
# all three builtin topologies (default, 2node8, mixed).
"$FUZZ" --mode=delta --iters=25 --seed=8
echo DELTA_DIFF_CLEAN

echo CI_CLEAN
