#!/usr/bin/env bash
# Static analysis + audited test pass:
#   1. eagle-lint over the whole tree (determinism / concurrency /
#      iteration-order rules — see docs/STATIC_ANALYSIS.md),
#   2. header self-containment (every header compiles on its own),
#   3. the tier-1 test suite in an EAGLE_AUDIT build, where the
#      simulator re-verifies every schedule it produces,
#   4. clang-tidy over compile_commands.json, when installed.
# Usage: scripts/run_static_analysis.sh [build-dir]
set -euo pipefail
BUILD=${1:-build-audit}

# RelWithDebInfo rather than Debug so the audited ctest pass stays fast;
# EAGLE_AUDIT=ON also keeps EAGLE_DCHECK live despite NDEBUG.
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DEAGLE_AUDIT=ON
cmake --build "$BUILD" -j

echo "=== eagle-lint (two-phase, JSON) ==="
# One JSON-mode run: the exit code fails on any unsuppressed finding,
# and the machine-readable output is kept for inspection. "findings"
# is empty on a clean tree even when justified allow(...) waivers are
# present ("suppressed" counts those separately).
LINT_JSON=$(mktemp)
"$BUILD/tools/lint/eagle-lint" --root=. --format=json | tee "$LINT_JSON"
grep -q '"findings": \[\]' "$LINT_JSON" ||
  { echo "unsuppressed lint findings (see above)"; rm -f "$LINT_JSON"; exit 1; }
rm -f "$LINT_JSON"
echo LINT_CLEAN

echo "=== header self-containment ==="
for header in $(find src -name '*.h' | sort); do
  # Compile a one-line TU including only this header: it must bring in
  # everything it needs itself.
  echo "#include \"${header#src/}\"" |
    c++ -std=c++20 -fsyntax-only -I src -x c++ - ||
    { echo "not self-contained: $header"; exit 1; }
done
echo HEADERS_SELF_CONTAINED

echo "=== audited test suite ==="
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")
echo AUDITED_TESTS_CLEAN

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy ==="
  find src tools -name '*.cpp' | sort |
    xargs -P "$(nproc)" -n 8 clang-tidy -p "$BUILD" --quiet
  echo CLANG_TIDY_CLEAN
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo STATIC_ANALYSIS_CLEAN
