#!/usr/bin/env bash
# Regenerates every paper table and figure. Usage:
#   scripts/run_benches.sh [build-dir] [out-dir]
set -euo pipefail
BUILD=${1:-build}
OUT=${2:-results}
mkdir -p "$OUT"
for b in table1 table2 table3 table4 fig2 fig5 fig6 fig7 ablation baselines placeto faults; do
  echo "=== bench_$b ==="
  "$BUILD/bench/bench_$b" --csv="$OUT/"
done
echo "=== bench_micro ==="
"$BUILD/bench/bench_micro" --benchmark_min_time=0.05
echo ALL_BENCHES_DONE
