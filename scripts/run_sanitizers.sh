#!/usr/bin/env bash
# Builds the tier-1 test suite with AddressSanitizer + UBSan and runs it.
# Usage: scripts/run_sanitizers.sh [build-dir]
set -eu
BUILD=${1:-build-asan}
cmake -B "$BUILD" -S . -DEAGLE_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")
echo SANITIZERS_CLEAN
