#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under sanitizers:
#   1. AddressSanitizer + UBSan (memory errors, UB)
#   2. ThreadSanitizer (data races in the parallel evaluation service)
# Usage: scripts/run_sanitizers.sh [asan-build-dir] [tsan-build-dir]
set -euo pipefail
ASAN_BUILD=${1:-build-asan}
TSAN_BUILD=${2:-build-tsan}

# Fail fast and loudly: the first sanitizer report aborts the test run
# instead of scrolling past, so a red run can never print *_CLEAN.
export ASAN_OPTIONS=halt_on_error=1
export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1
export TSAN_OPTIONS=halt_on_error=1

cmake -B "$ASAN_BUILD" -S . -DEAGLE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD" -j
(cd "$ASAN_BUILD" && ctest --output-on-failure -j "$(nproc)")
echo ASAN_UBSAN_CLEAN

cmake -B "$TSAN_BUILD" -S . -DEAGLE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD" -j
(cd "$TSAN_BUILD" && ctest --output-on-failure -j "$(nproc)")
echo TSAN_CLEAN

echo SANITIZERS_CLEAN
