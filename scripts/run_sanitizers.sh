#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under sanitizers:
#   1. AddressSanitizer + UBSan (memory errors, UB)
#   2. ThreadSanitizer (data races in the parallel evaluation service)
# Usage: scripts/run_sanitizers.sh [asan-build-dir] [tsan-build-dir]
set -eu
ASAN_BUILD=${1:-build-asan}
TSAN_BUILD=${2:-build-tsan}

cmake -B "$ASAN_BUILD" -S . -DEAGLE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD" -j
(cd "$ASAN_BUILD" && ctest --output-on-failure -j "$(nproc)")
echo ASAN_UBSAN_CLEAN

cmake -B "$TSAN_BUILD" -S . -DEAGLE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD" -j
(cd "$TSAN_BUILD" && ctest --output-on-failure -j "$(nproc)")
echo TSAN_CLEAN

echo SANITIZERS_CLEAN
