// Table I reproduction: per-step time of placements found by the
// hierarchical model with different groupers (learned feed-forward vs
// METIS vs fluid communities / "Networkx").
//
// All three rows share the same placer (seq2seq with attention-after, as
// in the Hierarchical Planner the paper instrumented) and the same PPO
// budget; only the grouper changes.
//
// Expected shape (paper): Feed-forward <= METIS < Networkx on every
// model, with the gap widening on BERT.
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

namespace {

rl::TrainResult RunGrouper(const std::string& grouper,
                           bench::BenchContext& context,
                           const BenchConfig& config) {
  const auto dims = config.dims();
  std::unique_ptr<rl::PolicyAgent> agent;
  if (grouper == "feed-forward") {
    core::HierarchicalAgentConfig agent_config;
    agent_config.display_name = "grouper:feed-forward";
    agent_config.dims = dims;
    agent_config.grouper = core::GrouperKind::kLearned;
    agent_config.placer = core::PlacerKind::kSeq2Seq;
    agent_config.attention = core::AttentionVariant::kAfter;
    agent_config.use_bridge = false;
    agent_config.seed = config.seed;
    agent = std::make_unique<core::HierarchicalAgent>(
        context.graph, context.cluster, std::move(agent_config));
  } else {
    auto grouping =
        grouper == "metis"
            ? bench::MetisGrouping(context.graph, dims.num_groups,
                                   config.seed)
            : bench::FluidGrouping(context.graph, dims.num_groups,
                                   config.seed);
    agent = core::MakeFixedGrouperAgent(
        context.graph, context.cluster, std::move(grouping),
        core::PlacerKind::kSeq2Seq, core::AttentionVariant::kAfter, dims,
        config.seed, "grouper:" + grouper);
  }
  return bench::TrainOnBenchmark(*agent, context, rl::Algorithm::kPpo,
                                 config);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "Table I: hierarchical model with different groupers");
  bench::AddCommonFlags(args, /*default_samples=*/220);
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  support::Table table(
      "TABLE I: Per-step time (in seconds) of placements found by the "
      "hierarchical model with different groupers.");
  table.SetHeader({"Models", "Feed-forward", "METIS", "Networkx(fluid)"});
  for (auto benchmark : config.benchmarks) {
    auto context = bench::MakeContext(benchmark, &config);
    std::vector<std::string> row{models::BenchmarkName(benchmark)};
    for (const char* grouper : {"feed-forward", "metis", "fluid"}) {
      row.push_back(
          bench::FormatResult(RunGrouper(grouper, context, config)));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "table1");
  return bench::Finish(config);
}
