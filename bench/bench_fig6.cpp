// Fig. 6 reproduction: per-step time of the placement for GNMT found by
// Hierarchical Planner / Post / EAGLE during training.
//
// Expected shape (paper): HP and EAGLE find a good placement quickly and
// keep exploring (EAGLE more aggressively); Post starts badly and
// converges to a local optimum above the others.
#include "bench/bench_figs.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("Fig. 6: GNMT training curves");
  bench::AddCommonFlags(args, /*default_samples=*/300);
  if (!args.Parse(argc, argv)) return 0;
  const auto config = bench::ReadCommonFlags(args);
  bench::RunCurves("fig6", models::Benchmark::kGNMT,
                   bench::PaperApproaches(), config);
  return bench::Finish(config);
}
