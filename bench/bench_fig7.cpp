// Fig. 7 reproduction: per-step time of the placement for BERT found by
// Hierarchical Planner / Post / EAGLE during training.
//
// Expected shape (paper): HP fails to learn BERT (stays bad); Post is
// stable and good; EAGLE explores aggressively early and finds the best
// placement by the end.
#include "bench/bench_figs.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("Fig. 7: BERT training curves");
  bench::AddCommonFlags(args, /*default_samples=*/300);
  if (!args.Parse(argc, argv)) return 0;
  const auto config = bench::ReadCommonFlags(args);
  bench::RunCurves("fig7", models::Benchmark::kBertBase,
                   bench::PaperApproaches(), config);
  return bench::Finish(config);
}
