// Table III reproduction: EAGLE trained with REINFORCE vs PPO vs PPO
// joint with cross-entropy minimization (§III-D).
//
// Expected shape (paper): PPO best overall; PPO+CE competitive on GNMT
// but trapped in a local optimum on BERT; REINFORCE worst on the large
// models, tied on Inception-V3.
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

int main(int argc, char** argv) {
  support::ArgParser args("Table III: EAGLE under different RL algorithms");
  bench::AddCommonFlags(args, /*default_samples=*/250);
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  support::Table table(
      "TABLE III: Per-step time (in seconds) of placements found by EAGLE "
      "trained with three different algorithms.");
  table.SetHeader({"Models", "REINFORCE", "PPO", "PPO+CE"});
  for (auto benchmark : config.benchmarks) {
    auto context = bench::MakeContext(benchmark, &config);
    std::vector<std::string> row{models::BenchmarkName(benchmark)};
    for (auto algorithm : {rl::Algorithm::kReinforce, rl::Algorithm::kPpo,
                           rl::Algorithm::kPpoCe}) {
      auto agent = core::MakeEagleAgent(context.graph, context.cluster,
                                        config.dims(), config.seed);
      row.push_back(bench::FormatResult(
          bench::TrainOnBenchmark(*agent, context, algorithm, config)));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "table3");
  return bench::Finish(config);
}
