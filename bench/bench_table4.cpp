// Table IV reproduction — the headline comparison: Single GPU, Human
// Expert, Hierarchical Planner, Post, EAGLE (PPO), EAGLE (PPO+CE) on
// Inception-V3 / GNMT / BERT.
//
// Expected shape (paper):
//   Inception — everyone ties near the single-GPU time, RL a touch
//   better; GNMT — Single GPU OOM, EAGLE < Hierarchical Planner < Human
//   Expert, Post stuck in a local optimum; BERT — Single GPU and Human
//   Expert OOM, EAGLE < Post < Hierarchical Planner, EAGLE ~15-20% ahead
//   of Post.
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

int main(int argc, char** argv) {
  support::ArgParser args("Table IV: final placements vs all baselines");
  bench::AddCommonFlags(args, /*default_samples=*/300);
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  support::Table table(
      "TABLE IV: Per-step time (in seconds) of placements found by "
      "different approaches (lower is better). OOM stands for "
      "Out-Of-Memory.");
  table.SetHeader({"Models", "Single GPU", "Human Experts",
                   "Hierarchical Planner", "Post", "EAGLE (PPO)",
                   "EAGLE (PPO+CE)"});
  for (auto benchmark : config.benchmarks) {
    auto context = bench::MakeContext(benchmark, &config);
    std::vector<std::string> row{models::BenchmarkName(benchmark)};

    // Pre-defined placements (evaluated directly, no training).
    row.push_back(bench::FormatEval(context.env->Evaluate(
        core::SingleGpuPlacement(context.graph, context.cluster), nullptr)));
    const auto expert = core::HumanExpertPlacement(benchmark, context.graph,
                                                   context.cluster);
    row.push_back(expert ? bench::FormatEval(
                               context.env->Evaluate(*expert, nullptr))
                         : std::string("OOM"));

    // RL approaches, each trained as published: HP with REINFORCE, Post
    // with PPO+CE, EAGLE with both PPO and PPO+CE.
    {
      auto hp = core::MakeHierarchicalPlanner(context.graph, context.cluster,
                                              config.dims(), config.seed);
      row.push_back(bench::FormatResult(bench::TrainOnBenchmark(
          *hp, context, rl::Algorithm::kReinforce, config)));
    }
    {
      auto post = core::MakePostAgent(context.graph, context.cluster,
                                      /*num_groups=*/16, config.seed);
      row.push_back(bench::FormatResult(bench::TrainOnBenchmark(
          *post, context, rl::Algorithm::kPpoCe, config)));
    }
    for (auto algorithm : {rl::Algorithm::kPpo, rl::Algorithm::kPpoCe}) {
      auto agent = core::MakeEagleAgent(context.graph, context.cluster,
                                        config.dims(), config.seed);
      row.push_back(bench::FormatResult(
          bench::TrainOnBenchmark(*agent, context, algorithm, config)));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "table4");
  return bench::Finish(config);
}
