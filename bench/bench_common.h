// Shared plumbing for the paper-reproduction benches (Tables I–IV,
// Figs. 2, 5–7): flag parsing, agent construction, training-run drivers
// and result formatting.
//
// Every bench accepts:
//   --samples=N     placements evaluated per training run (default sized
//                   for a single CPU core; the paper's agents saw a few
//                   hundred placements in their 3.5–6 h budgets too)
//   --seed=S        base RNG seed (tables regenerate identically per seed)
//   --full          paper-scale agent dimensions (256 groups, 512 LSTM)
//   --models=a,b    subset of inception_v3,gnmt,bert
//   --csv=prefix    also write <prefix><name>.csv next to stdout output
//   --threads=N     evaluation threads (core::EvalService); results are
//                   bit-identical at any thread count
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/load_graphs.h"
#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/eval_service.h"
#include "core/expert_policies.h"
#include "core/post_agent.h"
#include "models/zoo.h"
#include "partition/fluid.h"
#include "partition/metis_like.h"
#include "rl/trainer.h"
#include "support/args.h"
#include "support/atomic_file.h"
#include "support/json.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "support/telemetry.h"

namespace eagle::bench {

struct BenchConfig {
  int samples = 250;
  std::uint64_t seed = 7;
  bool full = false;
  // Evaluation threads per training run (core::EvalService). Changing
  // this changes wall-clock time only, never results.
  int threads = 1;
  std::vector<models::Benchmark> benchmarks;
  // Names of --load graphs registered in the zoo's imported-graph
  // registry (models::FindImportedGraph), in flag order.
  std::vector<std::string> imported_graphs;
  std::string csv_prefix;
  // Fault-injected measurement (sim::FaultProfileFromString syntax;
  // all-zero disables).
  sim::FaultProfile faults;
  // Cluster topology every bench row runs against: a builtin name
  // (default, 2node8, mixed) or a .ec/.json spec file resolved through
  // sim::ResolveCluster. The raw flag value is kept for labelling.
  std::string cluster_name;
  sim::ClusterSpec cluster;
  // Crash-safe training checkpoints: when checkpoint_dir is set every
  // training run snapshots to <dir>/<model>_<agent>_<algorithm>.ckpt;
  // resume restores the snapshot and continues.
  std::string checkpoint_dir;
  bool resume = false;
  // Run telemetry artifacts: --telemetry-out streams one JSON line per
  // training round (consumed by tools/metrics_report); --profile-out
  // writes a Chrome-trace profile of the trainer's phase spans on exit
  // (same viewer as tools/trace_placement schedules). Both are pure
  // observers — results stay bit-identical with them enabled.
  std::string telemetry_out;
  std::string profile_out;

  core::AgentDims dims() const {
    return full ? core::AgentDims::PaperScale() : core::AgentDims{};
  }
};

inline void AddCommonFlags(support::ArgParser& args, int default_samples) {
  args.AddInt("samples", default_samples, "placements per training run");
  args.AddInt("seed", 7, "base RNG seed");
  args.AddBool("full", false, "paper-scale agent dimensions");
  args.AddString("models", "inception_v3,gnmt,bert",
                 "comma-separated benchmark subset");
  args.AddString("csv", "", "CSV output path prefix (empty: no CSV)");
  args.AddString("load", "",
                 "comma-separated graph files (.eg or .json) to import, "
                 "validate and register alongside the benchmarks; "
                 "malformed files exit 2 with a file:line diagnostic");
  args.AddInt("threads", 1,
              "evaluation threads (0: hardware count; results are "
              "bit-identical at any thread count)");
  args.AddBool("verbose", false, "log progress per minibatch");
  args.AddString("faults", "",
                 "fault profile, e.g. 0.1 or crash=0.1,down=0.02,"
                 "straggler=0.2,slowdown=3,link=0.1,linkfactor=4,seed=9");
  args.AddString("cluster", "",
                 "cluster topology: default, 2node8, mixed, or a "
                 ".ec/.json cluster-spec file; malformed specs exit 2 "
                 "with a file:line:column diagnostic");
  args.AddString("checkpoint-dir", "",
                 "directory for crash-safe training checkpoints");
  args.AddBool("resume", false,
               "resume training runs from --checkpoint-dir snapshots");
  args.AddString("telemetry-out", "",
                 "JSONL run telemetry path (one line per training round; "
                 "summarize with metrics_report)");
  args.AddString("profile-out", "",
                 "Chrome-trace profile of trainer phase spans (open in "
                 "Perfetto / chrome://tracing)");
}

// Benches track artifact-write failures (CSV, history, telemetry,
// profile) here and exit non-zero through Finish() so a full disk never
// looks like a successful run.
inline int& ArtifactFailures() {
  static int failures = 0;
  return failures;
}

inline void ReportArtifactFailure(const std::string& what,
                                  const std::string& path) {
  ++ArtifactFailures();
  EAGLE_LOG(Error) << "failed to write " << what << " to '" << path << "'";
}

inline BenchConfig ReadCommonFlags(const support::ArgParser& args) {
  BenchConfig config;
  config.samples = static_cast<int>(args.GetInt("samples"));
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  config.full = args.GetBool("full");
  config.csv_prefix = args.GetString("csv");
  config.threads = static_cast<int>(args.GetInt("threads"));
  if (config.threads <= 0) {
    config.threads = support::ThreadPool::HardwareThreads();
  }
  config.faults = sim::FaultProfileFromString(args.GetString("faults"));
  config.cluster_name = args.GetString("cluster");
  config.cluster = ResolveClusterOrExit(config.cluster_name);
  config.checkpoint_dir = args.GetString("checkpoint-dir");
  config.resume = args.GetBool("resume");
  std::string list = args.GetString("models");
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!name.empty()) {
      config.benchmarks.push_back(models::BenchmarkFromName(name));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (args.GetBool("verbose")) {
    support::SetLogLevel(support::LogLevel::kDebug);
  }
  config.imported_graphs = ImportGraphsOrExit(args.GetString("load"));
  config.telemetry_out = args.GetString("telemetry-out");
  config.profile_out = args.GetString("profile-out");
  if (!config.telemetry_out.empty() &&
      !support::telemetry::OpenRunLog(config.telemetry_out)) {
    ReportArtifactFailure("telemetry", config.telemetry_out);
  }
  if (!config.profile_out.empty()) {
    support::metrics::EnableProfiling(true);
  }
  return config;
}

// Per-benchmark fixture: graph + cluster + environment.
struct BenchContext {
  models::Benchmark benchmark;
  graph::OpGraph graph;
  sim::ClusterSpec cluster;
  std::unique_ptr<core::PlacementEnvironment> env;
};

// When `config` is given its fault profile is installed into the
// environment (retries with backoff, graceful degradation — see
// core::EnvironmentOptions) and its --cluster topology is used; a null
// config keeps the fault-free default cluster.
inline BenchContext MakeContext(models::Benchmark benchmark,
                                const BenchConfig* config = nullptr) {
  BenchContext context;
  context.benchmark = benchmark;
  context.graph = models::BuildBenchmark(benchmark);
  context.cluster =
      config != nullptr ? config->cluster : sim::MakeDefaultCluster();
  core::EnvironmentOptions env_options;
  if (config != nullptr) env_options.faults = config->faults;
  context.env = std::make_unique<core::PlacementEnvironment>(
      context.graph, context.cluster, env_options);
  return context;
}

// Paper hyperparameters (§IV-C) with the bench's sample budget.
inline rl::TrainerOptions PaperTrainerOptions(rl::Algorithm algorithm,
                                              int samples,
                                              std::uint64_t seed) {
  rl::TrainerOptions options;
  options.algorithm = algorithm;
  options.total_samples = samples;
  options.minibatch_size = 10;
  options.ppo.clip_epsilon = 0.3;
  options.ppo.epochs = 4;
  options.ppo.entropy_coef = 0.01;
  options.ce.num_elites = 5;
  options.ce_interval = 50;
  options.adam.lr = 0.01;
  options.adam.clip_norm = 1.0;
  options.seed = seed;
  return options;
}

// Serializes a metrics snapshot (usually a delta) into JSON object
// members: "counters":{...},"gauges":{...},"histograms":{...}. Round
// lines keep histograms compact (count/sum); run_end lines carry the
// full bucket counts so metrics_report can interpolate run-level
// quantiles.
inline void AppendSnapshotJson(std::ostringstream& os,
                               const support::metrics::Snapshot& snap,
                               bool full_histograms) {
  namespace json = support::json;
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "" : ",") << "\"" << json::Escape(name) << "\":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "" : ",") << "\"" << json::Escape(name)
       << "\":" << json::Num(value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    os << (first ? "" : ",") << "\"" << json::Escape(name)
       << "\":{\"count\":" << hist.count << ",\"sum\":" << json::Num(hist.sum);
    if (full_histograms) {
      os << ",\"min\":" << json::Num(hist.min)
         << ",\"max\":" << json::Num(hist.max) << ",\"bounds\":[";
      for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
        os << (i ? "," : "") << json::Num(hist.bounds[i]);
      }
      os << "],\"counts\":[";
      for (std::size_t i = 0; i < hist.counts.size(); ++i) {
        os << (i ? "," : "") << hist.counts[i];
      }
      os << "]";
    }
    os << "}";
    first = false;
  }
  os << "}";
}

inline rl::TrainResult TrainOnBenchmark(
    rl::PolicyAgent& agent, BenchContext& context, rl::Algorithm algorithm,
    const BenchConfig& config,
    const rl::ProgressCallback& on_progress = nullptr) {
  namespace json = support::json;
  namespace telemetry = support::telemetry;
  support::Stopwatch stopwatch;
  auto options = PaperTrainerOptions(algorithm, config.samples, config.seed);
  if (!config.checkpoint_dir.empty()) {
    options.checkpoint_dir = config.checkpoint_dir;
    options.checkpoint_name =
        std::string(models::BenchmarkName(context.benchmark)) + "_" +
        agent.name() + "_" + rl::AlgorithmName(algorithm);
    options.resume = config.resume;
  }
  core::EvalService service(*context.env, config.threads);
  options.evaluator = &service;

  // JSONL run telemetry: a run_start header, one line per round (counter
  // and span-histogram deltas), and a run_end trailer with the full
  // per-run histogram buckets. Observers only — the callback reads
  // finished RoundStats and never feeds anything back into training.
  const std::string model_name = models::BenchmarkName(context.benchmark);
  const std::string agent_name = agent.name();
  const std::string algo_name = rl::AlgorithmName(algorithm);
  std::shared_ptr<support::metrics::Snapshot> run_start_snap;
  if (telemetry::Enabled()) {
    run_start_snap = std::make_shared<support::metrics::Snapshot>(
        support::metrics::TakeSnapshot());
    auto prev = std::make_shared<support::metrics::Snapshot>(*run_start_snap);
    std::ostringstream os;
    os << "{\"event\":\"run_start\",\"model\":\"" << json::Escape(model_name)
       << "\",\"agent\":\"" << json::Escape(agent_name)
       << "\",\"algorithm\":\"" << json::Escape(algo_name)
       << "\",\"samples\":" << options.total_samples
       << ",\"minibatch\":" << options.minibatch_size
       << ",\"threads\":" << service.num_threads()
       << ",\"seed\":" << options.seed << "}";
    telemetry::WriteLine(os.str());
    options.on_round = [prev](const rl::RoundStats& stats) {
      support::metrics::Snapshot now = support::metrics::TakeSnapshot();
      const support::metrics::Snapshot delta = now.DeltaSince(*prev);
      *prev = std::move(now);
      std::ostringstream line;
      line << "{\"event\":\"round\",\"round\":" << stats.round_index
           << ",\"samples_in_round\":" << stats.samples_in_round
           << ",\"total_samples\":" << stats.total_samples
           << ",\"sim_hours\":" << json::Num(stats.virtual_hours)
           << ",\"best_per_step_s\":"
           << json::Num(stats.best_per_step_seconds)
           << ",\"updated_policy\":"
           << (stats.updated_policy ? "true" : "false") << ",";
      AppendSnapshotJson(line, delta, /*full_histograms=*/false);
      line << "}";
      telemetry::WriteLine(line.str());
    };
  }

  auto result = rl::TrainAgent(agent, *context.env, options, on_progress);

  if (telemetry::Enabled() && run_start_snap != nullptr) {
    const support::metrics::Snapshot delta =
        support::metrics::TakeSnapshot().DeltaSince(*run_start_snap);
    std::ostringstream os;
    os << "{\"event\":\"run_end\",\"model\":\"" << json::Escape(model_name)
       << "\",\"agent\":\"" << json::Escape(agent_name)
       << "\",\"algorithm\":\"" << json::Escape(algo_name)
       << "\",\"total_samples\":" << result.total_samples
       << ",\"invalid_samples\":" << result.invalid_samples
       << ",\"sim_hours\":" << json::Num(result.total_virtual_hours)
       << ",\"best_per_step_s\":" << json::Num(result.best_per_step_seconds)
       << ",\"best_found_at_hours\":" << json::Num(result.best_found_at_hours)
       << ",\"wall_seconds\":" << json::Num(stopwatch.ElapsedSeconds()) << ",";
    AppendSnapshotJson(os, delta, /*full_histograms=*/true);
    os << "}";
    telemetry::WriteLine(os.str());
  }
  EAGLE_LOG(Info) << models::BenchmarkName(context.benchmark) << " / "
                  << agent.name() << " / " << rl::AlgorithmName(algorithm)
                  << ": best "
                  << (result.found_valid
                          ? support::Table::Num(result.best_per_step_seconds)
                          : "OOM")
                  << " s/step, " << result.invalid_samples << "/"
                  << result.total_samples << " invalid, "
                  << support::Table::Num(result.total_virtual_hours, 2)
                  << " simulated hours, wall "
                  << support::Table::Num(stopwatch.ElapsedSeconds(), 1)
                  << " s";
  if (config.faults.enabled()) {
    EAGLE_LOG(Info) << "  faults: " << context.env->attempts()
                    << " attempts, " << context.env->transient_failures()
                    << " failures, " << context.env->timeouts()
                    << " timeouts, " << context.env->retries() << " retries, "
                    << context.env->exhausted_evaluations()
                    << " gave up, backoff "
                    << support::Table::Num(
                           context.env->backoff_seconds_total(), 1)
                    << " s";
  }
  return result;
}

// Fixed groupings used by Tables I/II and the Post baseline.
inline graph::Grouping MetisGrouping(const graph::OpGraph& graph,
                                     int num_groups, std::uint64_t seed) {
  partition::MetisOptions options;
  options.num_parts = num_groups;
  options.seed = seed;
  return partition::MetisPartition(graph, options);
}

inline graph::Grouping FluidGrouping(const graph::OpGraph& graph,
                                     int num_groups, std::uint64_t seed) {
  partition::FluidOptions options;
  options.num_communities = num_groups;
  options.seed = seed;
  return partition::FluidCommunities(graph, options);
}

inline std::string FormatResult(const rl::TrainResult& result) {
  return result.found_valid
             ? support::Table::Num(result.best_per_step_seconds)
             : std::string("OOM");
}

inline std::string FormatEval(const sim::EvalResult& eval) {
  return eval.valid ? support::Table::Num(eval.true_per_step_seconds)
                    : std::string("OOM");
}

inline void MaybeWriteCsv(const support::Table& table,
                          const BenchConfig& config,
                          const std::string& name) {
  if (!config.csv_prefix.empty()) {
    const std::string path = config.csv_prefix + name + ".csv";
    if (!table.WriteCsv(path)) ReportArtifactFailure("CSV", path);
  }
}

// End-of-run artifact flush: writes the Chrome-trace profile when
// --profile-out was set, closes the telemetry sink, and folds any write
// failure (including earlier CSV/history ones) into the process exit
// code. Benches `return bench::Finish(config);`.
inline int Finish(const BenchConfig& config) {
  if (!config.profile_out.empty() &&
      !support::metrics::WriteProfile(config.profile_out)) {
    ReportArtifactFailure("profile", config.profile_out);
  }
  if (support::telemetry::Enabled() && !support::telemetry::Close()) {
    ReportArtifactFailure("telemetry", config.telemetry_out);
  }
  return ArtifactFailures() == 0 ? 0 : 1;
}

// Training-history export. Invalid samples carry an infinity sentinel in
// per_step_seconds; JSON has no Infinity literal and CSV consumers choke
// on "inf", so those cells serialize as `null` / an empty field.

inline std::string HistoryToJson(const std::vector<rl::HistoryPoint>& history) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < history.size(); ++i) {
    const rl::HistoryPoint& point = history[i];
    if (i) os << ",";
    os << "\n  {\"sample\": " << point.sample_index
       << ", \"sim_hours\": " << point.virtual_hours
       << ", \"per_step_s\": ";
    if (std::isfinite(point.per_step_seconds)) {
      os << point.per_step_seconds;
    } else {
      os << "null";
    }
    os << ", \"best_per_step_s\": ";
    if (std::isfinite(point.best_so_far_seconds)) {
      os << point.best_so_far_seconds;
    } else {
      os << "null";
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

inline bool WriteHistoryJson(const std::string& path,
                             const std::vector<rl::HistoryPoint>& history) {
  const bool ok = support::WriteFileAtomic(path, [&](std::ostream& out) {
    out << HistoryToJson(history);
    return static_cast<bool>(out);
  });
  if (!ok) ReportArtifactFailure("history JSON", path);
  return ok;
}

inline bool WriteHistoryCsv(const std::string& path,
                            const std::vector<rl::HistoryPoint>& history) {
  const bool ok = support::WriteFileAtomic(path, [&](std::ostream& out) {
    out << "sample,sim_hours,per_step_s,best_per_step_s\n";
    for (const rl::HistoryPoint& point : history) {
      out << point.sample_index << "," << point.virtual_hours << ",";
      if (std::isfinite(point.per_step_seconds)) out << point.per_step_seconds;
      out << ",";
      if (std::isfinite(point.best_so_far_seconds)) {
        out << point.best_so_far_seconds;
      }
      out << "\n";
    }
    return static_cast<bool>(out);
  });
  if (!ok) ReportArtifactFailure("history CSV", path);
  return ok;
}

}  // namespace eagle::bench
