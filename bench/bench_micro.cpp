// Hot-path microbenchmarks: the optimized kernels raced against their
// frozen naive references, in one binary, with min-of-repeats timing.
//
// Two sections, matching the two hot loops of a training round:
//   - GEMM at placer shapes: optimized (nn::GemmAccum & friends) vs the
//     bit-identity oracle (nn::naive::*) vs the seed-commit kernels
//     verbatim (bench::prepr::*, zero-skip and contraction included —
//     the true pre-PR baseline the acceptance ratios compare against;
//     the oracle is itself faster than pre-PR because removing the
//     zero-skip branch and spelling fma explicitly helps the compiler);
//   - simulator steps/sec on the paper graphs (ExecutionSimulator with
//     its pooled SimWorkspace vs sim::naive::RunReference, which is the
//     pre-workspace implementation verbatim, i.e. also the pre-PR
//     baseline).
//
// Optimized and oracle are bit-identical by construction
// (tests/test_kernels.cpp, tests/test_sim.cpp prove it), so the ratios
// below are pure throughput.
// Timing uses calibrated inner loops and the *minimum* over --repeats
// outer repeats: on a shared/noisy machine the minimum is the best
// estimate of the undisturbed cost, and naive/optimized run interleaved
// so drift hits both sides equally.
//
// GEMM rows tagged "placer" are the grouper/placer forward mat-mul
// shapes the ≥3× acceptance target is defined over; untagged rows
// (skinny logits projection, transposed backward variants) are coverage
// for the trajectory — see the GemmCase comment for why the skinny
// shape cannot reach 3× on this machine at all.
//
// Writes results/BENCH_kernels.json (override with --out=PATH) so future
// PRs have a perf trajectory; --smoke shrinks shapes and repeats for the
// CI wiring in scripts/run_ci.sh.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/load_graphs.h"
#include "bench/prepr_kernels.h"
#include "models/zoo.h"
#include "nn/layers.h"
#include "nn/naive_ref.h"
#include "nn/tensor.h"
#include "sim/measurement.h"
#include "sim/naive_ref.h"
#include "sim/simulator.h"
#include "support/args.h"
#include "support/atomic_file.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace eagle;

struct BenchTiming {
  double seconds_per_call = 0.0;  // min over repeats
  long long iterations = 0;       // per repeat, after calibration
};

// Calibrates `fn` to run for roughly `target_seconds` per repeat, then
// reports the fastest repeat. `fn(iters)` must execute the payload
// exactly `iters` times.
template <typename Fn>
BenchTiming MeasureMinOfRepeats(Fn&& fn, int repeats, double target_seconds) {
  long long iters = 1;
  for (;;) {
    support::Stopwatch watch;
    fn(iters);
    const double elapsed = watch.ElapsedSeconds();
    if (elapsed >= target_seconds || iters >= (1LL << 30)) {
      BenchTiming timing;
      timing.iterations = iters;
      timing.seconds_per_call = elapsed / static_cast<double>(iters);
      for (int r = 1; r < repeats; ++r) {
        support::Stopwatch repeat_watch;
        fn(iters);
        timing.seconds_per_call =
            std::min(timing.seconds_per_call,
                     repeat_watch.ElapsedSeconds() / static_cast<double>(iters));
      }
      return timing;
    }
    // Aim past the target so the final repeat is comfortably long.
    const double growth =
        elapsed > 0.0 ? target_seconds * 1.4 / elapsed : 16.0;
    iters = std::max(iters + 1, static_cast<long long>(
                                    static_cast<double>(iters) * growth));
  }
}

struct GemmCase {
  const char* kernel;  // "gemm" | "gemm_ta" | "gemm_tb"
  int m, k, n;
  // True for the placer/grouper forward mat-mul shapes the ≥3× target is
  // defined over. The other rows are supplementary coverage: the skinny
  // logits projection's naive baseline already runs from L1 (23+ GFLOP/s,
  // so 3× would exceed the machine's 67 GFLOP/s fma peak), and the
  // transposed backward variants are tracked for the perf trajectory.
  bool placer = false;
};

struct GemmRow {
  GemmCase shape;
  double prepr_gflops = 0.0;  // seed-commit kernel, seed flags
  double naive_gflops = 0.0;  // bit-identity oracle (nn::naive)
  double opt_gflops = 0.0;
  double speedup_vs_prepr = 0.0;
  double speedup_vs_naive = 0.0;
};

GemmRow RunGemmCase(const GemmCase& shape, int repeats, double target_seconds) {
  support::Rng rng(11);
  // Operand shapes per kernel convention: gemm is a(m,k)·b(k,n);
  // gemm_ta is aᵀ(k,m)·b(k,n) reducing over rows; gemm_tb is
  // a(m,n)·bᵀ(k,n) producing (m,k).
  const bool ta = std::string(shape.kernel) == "gemm_ta";
  const bool tb = std::string(shape.kernel) == "gemm_tb";
  nn::Tensor a = ta ? nn::Tensor(shape.k, shape.m)
                    : (tb ? nn::Tensor(shape.m, shape.n)
                          : nn::Tensor(shape.m, shape.k));
  nn::Tensor b = tb ? nn::Tensor(shape.k, shape.n)
                    : nn::Tensor(shape.k, shape.n);
  nn::Tensor out = tb ? nn::Tensor(shape.m, shape.k)
                      : nn::Tensor(shape.m, shape.n);
  nn::UniformInit(a, -1, 1, rng);
  nn::UniformInit(b, -1, 1, rng);
  out.Fill(0.0f);
  // The pre-PR contender runs on the same values but in seed storage
  // (std::vector-backed, malloc alignment): the arena's 32-byte
  // alignment is part of this rewrite's win and must not be credited to
  // the baseline.
  bench::prepr::Tensor pa(a), pb(b), pout(out);

  const double flops_per_call = 2.0 * shape.m * shape.k * shape.n;
  const auto measure = [&](auto kernel) {
    return MeasureMinOfRepeats(
        [&](long long iters) {
          for (long long i = 0; i < iters; ++i) kernel(a, b, out);
        },
        repeats, target_seconds);
  };
  // Interleave-by-section: all contenders run back to back on the same
  // operands, so machine-level drift cannot favor one side.
  const BenchTiming opt =
      measure(ta ? nn::GemmTransAAccum : tb ? nn::GemmTransBAccum
                                            : nn::GemmAccum);
  const BenchTiming naive = measure(ta   ? nn::naive::GemmTransAAccum
                                    : tb ? nn::naive::GemmTransBAccum
                                         : nn::naive::GemmAccum);
  const auto prepr_kernel = ta   ? bench::prepr::GemmTransAAccum
                            : tb ? bench::prepr::GemmTransBAccum
                                 : bench::prepr::GemmAccum;
  const BenchTiming prepr = MeasureMinOfRepeats(
      [&](long long iters) {
        for (long long i = 0; i < iters; ++i) prepr_kernel(pa, pb, pout);
      },
      repeats, target_seconds);

  GemmRow row;
  row.shape = shape;
  row.prepr_gflops = flops_per_call / prepr.seconds_per_call / 1e9;
  row.naive_gflops = flops_per_call / naive.seconds_per_call / 1e9;
  row.opt_gflops = flops_per_call / opt.seconds_per_call / 1e9;
  row.speedup_vs_prepr = prepr.seconds_per_call / opt.seconds_per_call;
  row.speedup_vs_naive = naive.seconds_per_call / opt.seconds_per_call;
  return row;
}

struct SimRow {
  std::string graph;
  int num_ops = 0;
  double naive_steps_per_sec = 0.0;
  double opt_steps_per_sec = 0.0;
  double speedup = 0.0;
};

SimRow RunSimCaseOnGraph(const std::string& label,
                         const graph::OpGraph& graph,
                         const sim::ClusterSpec& cluster, int repeats,
                         double target_seconds) {
  const sim::SimulatorOptions options;
  sim::ExecutionSimulator simulator(graph, cluster, options);
  // The frozen reference gets the same constructor-cached priorities the
  // historical simulator had, outside the timed region.
  const std::vector<int> priorities = sim::naive::CriticalPriorities(graph);

  support::Rng rng(1);
  std::vector<sim::DeviceId> devices(static_cast<std::size_t>(graph.num_ops()));
  for (auto& d : devices) {
    d = static_cast<sim::DeviceId>(
        rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }
  sim::Placement placement(graph, devices);
  placement.Normalize(graph, cluster);

  const BenchTiming opt = MeasureMinOfRepeats(
      [&](long long iters) {
        for (long long i = 0; i < iters; ++i) {
          volatile double sink = simulator.Run(placement).step_seconds;
          (void)sink;
        }
      },
      repeats, target_seconds);
  const BenchTiming naive = MeasureMinOfRepeats(
      [&](long long iters) {
        for (long long i = 0; i < iters; ++i) {
          volatile double sink =
              sim::naive::RunReference(graph, cluster, options, priorities,
                                       placement)
                  .step_seconds;
          (void)sink;
        }
      },
      repeats, target_seconds);

  SimRow row;
  row.graph = label;
  row.num_ops = graph.num_ops();
  row.naive_steps_per_sec = 1.0 / naive.seconds_per_call;
  row.opt_steps_per_sec = 1.0 / opt.seconds_per_call;
  row.speedup = naive.seconds_per_call / opt.seconds_per_call;
  return row;
}

SimRow RunSimCase(models::Benchmark benchmark,
                  const sim::ClusterSpec& cluster, bool reduced, int repeats,
                  double target_seconds) {
  models::ZooOptions zoo;
  zoo.reduced = reduced;
  return RunSimCaseOnGraph(models::BenchmarkName(benchmark),
                           models::BuildBenchmark(benchmark, zoo), cluster,
                           repeats, target_seconds);
}

// ---- delta re-simulation section (results/BENCH_delta.json) ----
//
// Measures two evaluation patterns the training loop produces, both
// against one persistent DeltaContext. Results are bit-identical to full
// runs in every pattern (tests/test_delta.cpp and the EAGLE_AUDIT
// cross-check enforce it), so the ratios are pure throughput.
//
//  - "repeat": the same placement evaluated over and over (a converged
//    policy re-sampling its incumbent, or repeated candidate scoring).
//    After one priming fallback every run is a cone-0 cache serve — this
//    is where delta re-simulation earns its ≥5× acceptance target.
//  - "single_op": Placeto-style sequences where each placement differs
//    from its predecessor by one random op move. The simulator emits
//    transfers eagerly at producer finish, so moving a backward-pass op
//    re-routes a forward activation shipped near t=0 and the genuine
//    invalidation cone spans most of the schedule; bit-identical replay
//    cannot beat the full run here, and the fallback backoff keeps the
//    delta path close to parity instead (see docs/PERFORMANCE.md).
struct DeltaRow {
  std::string graph;
  std::string pattern;
  int num_ops = 0;
  double full_steps_per_sec = 0.0;
  double delta_steps_per_sec = 0.0;
  double speedup = 0.0;
  std::int64_t hits = 0;
  std::int64_t fallbacks = 0;
  double cone_mean = 0.0;  // invalidated ops per delta hit
};

DeltaRow RunDeltaCaseOnGraph(const std::string& label,
                             const std::string& pattern,
                             const graph::OpGraph& graph,
                             const sim::ClusterSpec& cluster, int repeats,
                             double target_seconds) {
  const sim::SimulatorOptions options;
  sim::ExecutionSimulator simulator(graph, cluster, options);

  support::Rng rng(1);
  std::vector<sim::DeviceId> devices(static_cast<std::size_t>(graph.num_ops()));
  for (auto& d : devices) {
    d = static_cast<sim::DeviceId>(
        rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }
  const int kCycle = pattern == "repeat" ? 1 : 64;
  std::vector<sim::Placement> cycle;
  cycle.reserve(static_cast<std::size_t>(kCycle));
  for (int i = 0; i < kCycle; ++i) {
    sim::Placement placement(graph, devices);
    placement.Normalize(graph, cluster);
    cycle.push_back(std::move(placement));
    devices[static_cast<std::size_t>(rng.NextBelow(
        static_cast<std::uint64_t>(graph.num_ops())))] =
        static_cast<sim::DeviceId>(
            rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }

  const BenchTiming full = MeasureMinOfRepeats(
      [&](long long iters) {
        for (long long i = 0; i < iters; ++i) {
          volatile double sink =
              simulator.Run(cycle[static_cast<std::size_t>(i % kCycle)])
                  .step_seconds;
          (void)sink;
        }
      },
      repeats, target_seconds);
  sim::DeltaContext ctx;  // persists across calibration and all repeats
  const BenchTiming delta = MeasureMinOfRepeats(
      [&](long long iters) {
        for (long long i = 0; i < iters; ++i) {
          volatile double sink =
              simulator
                  .RunWithContext(cycle[static_cast<std::size_t>(i % kCycle)],
                                  ctx)
                  .step_seconds;
          (void)sink;
        }
      },
      repeats, target_seconds);

  DeltaRow row;
  row.graph = label;
  row.pattern = pattern;
  row.num_ops = graph.num_ops();
  row.full_steps_per_sec = 1.0 / full.seconds_per_call;
  row.delta_steps_per_sec = 1.0 / delta.seconds_per_call;
  row.speedup = full.seconds_per_call / delta.seconds_per_call;
  row.hits = ctx.stats.hits;
  row.fallbacks = ctx.stats.fallbacks;
  row.cone_mean = ctx.stats.hits > 0 ? static_cast<double>(ctx.stats.cone_ops) /
                                           static_cast<double>(ctx.stats.hits)
                                     : 0.0;
  return row;
}

std::string RenderDeltaJson(const std::vector<DeltaRow>& rows, bool smoke,
                            int repeats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"eagle.bench_delta.v2\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"repeats\": " << repeats << ",\n";
  os << "  \"simulator\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"graph\": \"" << support::json::Escape(r.graph)
       << "\", \"pattern\": \"" << support::json::Escape(r.pattern)
       << "\", \"num_ops\": " << r.num_ops
       << ", \"full_steps_per_sec\": "
       << support::json::Num(r.full_steps_per_sec)
       << ", \"delta_steps_per_sec\": "
       << support::json::Num(r.delta_steps_per_sec)
       << ", \"speedup\": " << support::json::Num(r.speedup)
       << ", \"hits\": " << r.hits << ", \"fallbacks\": " << r.fallbacks
       << ", \"cone_mean_ops\": " << support::json::Num(r.cone_mean) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  double single_min = 0.0, bert_single = 0.0, bert_repeat = 0.0;
  for (const auto& r : rows) {
    if (r.pattern == "single_op") {
      single_min =
          single_min == 0.0 ? r.speedup : std::min(single_min, r.speedup);
      if (r.graph == "BERT") bert_single = r.speedup;
    } else if (r.pattern == "repeat" && r.graph == "BERT") {
      bert_repeat = r.speedup;
    }
  }
  os << "  \"summary\": {\"single_op_min_speedup\": "
     << support::json::Num(single_min)
     << ", \"bert_single_op_speedup\": " << support::json::Num(bert_single)
     << ", \"bert_repeat_speedup\": " << support::json::Num(bert_repeat)
     << "}\n";
  os << "}\n";
  return os.str();
}

std::string RenderJson(const std::vector<GemmRow>& gemm,
                       const std::vector<SimRow>& sims, bool smoke,
                       int repeats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"eagle.bench_kernels.v1\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"repeats\": " << repeats << ",\n";
  os << "  \"simd\": "
#ifdef EAGLE_SIMD
     << "true"
#else
     << "false"
#endif
     << ",\n";
  os << "  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemm.size(); ++i) {
    const auto& r = gemm[i];
    os << "    {\"kernel\": \"" << r.shape.kernel << "\", \"m\": "
       << r.shape.m << ", \"k\": " << r.shape.k << ", \"n\": " << r.shape.n
       << ", \"placer\": " << (r.shape.placer ? "true" : "false")
       << ", \"prepr_gflops\": " << support::json::Num(r.prepr_gflops)
       << ", \"naive_gflops\": " << support::json::Num(r.naive_gflops)
       << ", \"opt_gflops\": " << support::json::Num(r.opt_gflops)
       << ", \"speedup_vs_prepr\": " << support::json::Num(r.speedup_vs_prepr)
       << ", \"speedup_vs_naive\": " << support::json::Num(r.speedup_vs_naive)
       << "}" << (i + 1 < gemm.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"simulator\": [\n";
  for (std::size_t i = 0; i < sims.size(); ++i) {
    const auto& r = sims[i];
    os << "    {\"graph\": \"" << support::json::Escape(r.graph)
       << "\", \"num_ops\": " << r.num_ops
       << ", \"naive_steps_per_sec\": "
       << support::json::Num(r.naive_steps_per_sec)
       << ", \"opt_steps_per_sec\": "
       << support::json::Num(r.opt_steps_per_sec)
       << ", \"speedup\": " << support::json::Num(r.speedup) << "}"
       << (i + 1 < sims.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  double placer_min = 0.0, all_min = 0.0, sim_min = 0.0;
  for (const auto& r : gemm) {
    all_min = all_min == 0.0 ? r.speedup_vs_prepr
                             : std::min(all_min, r.speedup_vs_prepr);
    if (!r.shape.placer) continue;
    placer_min = placer_min == 0.0 ? r.speedup_vs_prepr
                                   : std::min(placer_min, r.speedup_vs_prepr);
  }
  for (const auto& r : sims) {
    sim_min = sim_min == 0.0 ? r.speedup : std::min(sim_min, r.speedup);
  }
  os << "  \"summary\": {\"gemm_min_speedup_vs_prepr\": "
     << support::json::Num(placer_min)
     << ", \"gemm_min_speedup_all_shapes\": " << support::json::Num(all_min)
     << ", \"sim_min_speedup\": " << support::json::Num(sim_min) << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "Hot-path microbenchmarks: optimized GEMM kernels and the "
      "workspace simulator vs their frozen naive references. Writes a "
      "BENCH_kernels.json perf baseline.");
  args.AddBool("smoke", false,
               "tiny shapes and short repeats (CI wiring; ratios are "
               "still reported but not meaningful)");
  args.AddInt("repeats", 7, "outer repeats; the minimum is reported");
  args.AddDouble("target-ms", 60.0, "per-repeat calibrated duration");
  args.AddString("out", "results/BENCH_kernels.json",
                 "output JSON path (empty string: stdout only)");
  args.AddString("delta-out", "results/BENCH_delta.json",
                 "delta re-simulation section output path (empty string: "
                 "stdout only)");
  args.AddString("load", "",
                 "comma-separated graph files (.eg or .json) to add as "
                 "extra simulator rows; malformed files exit 2 with a "
                 "file:line diagnostic");
  args.AddString("cluster", "",
                 "cluster topology for the simulator rows: default, "
                 "2node8, mixed, or a .ec/.json cluster-spec file");
  if (!args.Parse(argc, argv)) return 0;

  const std::vector<std::string> imported =
      bench::ImportGraphsOrExit(args.GetString("load"));
  const sim::ClusterSpec cluster =
      bench::ResolveClusterOrExit(args.GetString("cluster"));

  const bool smoke = args.GetBool("smoke");
  const int repeats = smoke ? 2 : static_cast<int>(args.GetInt("repeats"));
  const double target_seconds =
      (smoke ? 5.0 : args.GetDouble("target-ms")) / 1e3;

  // Placer shapes: the grouper FFN and seq2seq placer mat-muls are
  // square-ish 64–256 blocks; the skinny case is the per-step logits
  // projection (batch rows × hidden).
  std::vector<GemmCase> gemm_cases;
  if (smoke) {
    gemm_cases = {{"gemm", 48, 48, 48, true},
                  {"gemm_ta", 32, 32, 32, false},
                  {"gemm_tb", 32, 32, 32, false}};
  } else {
    gemm_cases = {{"gemm", 64, 64, 64, true},
                  {"gemm", 128, 128, 128, true},
                  {"gemm", 256, 256, 256, true},
                  {"gemm", 8, 256, 256, false},
                  {"gemm_ta", 128, 128, 128, false},
                  {"gemm_tb", 128, 128, 128, false}};
  }

  std::vector<GemmRow> gemm;
  for (const auto& c : gemm_cases) {
    gemm.push_back(RunGemmCase(c, repeats, target_seconds));
    const auto& r = gemm.back();
    std::cout << r.shape.kernel << " " << r.shape.m << "x" << r.shape.k << "x"
              << r.shape.n << ": pre-PR " << r.prepr_gflops
              << " GFLOP/s, oracle " << r.naive_gflops << " GFLOP/s, opt "
              << r.opt_gflops << " GFLOP/s, speedup vs pre-PR "
              << r.speedup_vs_prepr << "x\n";
  }

  std::vector<SimRow> sims;
  for (const auto benchmark : models::AllBenchmarks()) {
    sims.push_back(
        RunSimCase(benchmark, cluster, smoke, repeats, target_seconds));
    const auto& r = sims.back();
    std::cout << "sim " << r.graph << " (" << r.num_ops << " ops): naive "
              << r.naive_steps_per_sec << " steps/s, opt "
              << r.opt_steps_per_sec << " steps/s, speedup " << r.speedup
              << "x\n";
  }
  for (const std::string& name : imported) {
    sims.push_back(RunSimCaseOnGraph(name, *models::FindImportedGraph(name),
                                     cluster, repeats, target_seconds));
    const auto& r = sims.back();
    std::cout << "sim " << r.graph << " (" << r.num_ops
              << " ops, imported): naive " << r.naive_steps_per_sec
              << " steps/s, opt " << r.opt_steps_per_sec
              << " steps/s, speedup " << r.speedup << "x\n";
  }

  std::vector<DeltaRow> deltas;
  for (const auto benchmark : models::AllBenchmarks()) {
    models::ZooOptions zoo;
    zoo.reduced = smoke;
    const graph::OpGraph graph = models::BuildBenchmark(benchmark, zoo);
    for (const char* pattern : {"repeat", "single_op"}) {
      deltas.push_back(RunDeltaCaseOnGraph(models::BenchmarkName(benchmark),
                                           pattern, graph, cluster, repeats,
                                           target_seconds));
      const auto& r = deltas.back();
      std::cout << "delta " << r.graph << "/" << r.pattern << " ("
                << r.num_ops << " ops): full " << r.full_steps_per_sec
                << " evals/s, delta " << r.delta_steps_per_sec
                << " evals/s, speedup " << r.speedup << "x (" << r.hits
                << " hits / " << r.fallbacks << " fallbacks, mean cone "
                << r.cone_mean << " ops)\n";
    }
  }

  const std::string json = RenderJson(gemm, sims, smoke, repeats);
  const std::string out = args.GetString("out");
  if (!out.empty()) {
    if (!support::WriteFileAtomic(
            out, [&](std::ostream& os) { return bool(os << json); })) {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
    std::cout << "wrote " << out << "\n";
  } else {
    std::cout << json;
  }
  const std::string delta_json = RenderDeltaJson(deltas, smoke, repeats);
  const std::string delta_out = args.GetString("delta-out");
  if (!delta_out.empty()) {
    if (!support::WriteFileAtomic(delta_out, [&](std::ostream& os) {
          return bool(os << delta_json);
        })) {
      std::cerr << "failed to write " << delta_out << "\n";
      return 1;
    }
    std::cout << "wrote " << delta_out << "\n";
  } else {
    std::cout << delta_json;
  }
  return 0;
}
