// Substrate microbenchmarks (google-benchmark): simulator evaluation
// throughput, partitioner latency, NN kernel and agent step costs. These
// quantify the per-sample cost budget behind the table/figure benches.
#include <benchmark/benchmark.h>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/eval_service.h"
#include "models/zoo.h"
#include "nn/layers.h"
#include "partition/fluid.h"
#include "partition/metis_like.h"
#include "rl/ppo.h"
#include "sim/measurement.h"

namespace {

using namespace eagle;

const graph::OpGraph& BenchmarkGraph(int index) {
  static const graph::OpGraph inception =
      models::BuildBenchmark(models::Benchmark::kInceptionV3);
  static const graph::OpGraph gnmt =
      models::BuildBenchmark(models::Benchmark::kGNMT);
  static const graph::OpGraph bert =
      models::BuildBenchmark(models::Benchmark::kBertBase);
  switch (index) {
    case 0: return inception;
    case 1: return gnmt;
    default: return bert;
  }
}

const char* GraphLabel(int index) {
  return index == 0 ? "inception" : index == 1 ? "gnmt" : "bert";
}

void BM_SimulatorStep(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(static_cast<int>(state.range(0)));
  const auto cluster = sim::MakeDefaultCluster();
  sim::ExecutionSimulator simulator(graph, cluster);
  support::Rng rng(1);
  std::vector<sim::DeviceId> devices(static_cast<std::size_t>(graph.num_ops()));
  for (auto& d : devices) d = static_cast<sim::DeviceId>(rng.NextBelow(5));
  sim::Placement placement(graph, devices);
  placement.Normalize(graph, cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(placement).step_seconds);
  }
  state.SetLabel(GraphLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SimulatorStep)->Arg(0)->Arg(1)->Arg(2);

void BM_MetisPartition(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(static_cast<int>(state.range(0)));
  partition::MetisOptions options;
  options.num_parts = 48;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::MetisPartition(graph, options));
  }
  state.SetLabel(GraphLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_MetisPartition)->Arg(0)->Arg(1)->Arg(2);

void BM_FluidPartition(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(static_cast<int>(state.range(0)));
  partition::FluidOptions options;
  options.num_communities = 48;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::FluidCommunities(graph, options));
  }
  state.SetLabel(GraphLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FluidPartition)->Arg(0)->Arg(1)->Arg(2);

void BM_GemmSquare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  support::Rng rng(2);
  nn::Tensor a(n, n), b(n, n), out(n, n);
  nn::UniformInit(a, -1, 1, rng);
  nn::UniformInit(b, -1, 1, rng);
  for (auto _ : state) {
    out.Fill(0.0f);
    nn::GemmAccum(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256);

void BM_AgentSampleDecision(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(static_cast<int>(state.range(0)));
  const auto cluster = sim::MakeDefaultCluster();
  auto agent = core::MakeEagleAgent(graph, cluster, core::AgentDims{}, 1);
  support::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent->SampleDecision(rng).logp);
  }
  state.SetLabel(GraphLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_AgentSampleDecision)->Arg(0)->Arg(1)->Arg(2);

void BM_PpoMinibatchUpdate(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(static_cast<int>(state.range(0)));
  const auto cluster = sim::MakeDefaultCluster();
  auto agent = core::MakeEagleAgent(graph, cluster, core::AgentDims{}, 1);
  support::Rng rng(4);
  std::vector<rl::Sample> batch;
  for (int i = 0; i < 10; ++i) {
    auto sample = agent->SampleDecision(rng);
    sample.advantage = rng.NextGaussian();
    batch.push_back(std::move(sample));
  }
  nn::Adam adam(agent->params());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rl::PpoUpdate(*agent, adam, batch, {}));
  }
  state.SetLabel(GraphLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_PpoMinibatchUpdate)->Arg(0)->Arg(1)->Arg(2);

void BM_EnvironmentEvaluate(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(static_cast<int>(state.range(0)));
  const auto cluster = sim::MakeDefaultCluster();
  core::EnvironmentOptions options;
  options.cache_evaluations = false;
  core::PlacementEnvironment env(graph, cluster, options);
  support::Rng rng(5);
  auto agent = core::MakeEagleAgent(graph, cluster, core::AgentDims{}, 1);
  const auto sample = agent->SampleDecision(rng);
  const auto placement = agent->ToPlacement(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.Evaluate(placement, &rng).per_step_seconds);
  }
  state.SetLabel(GraphLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_EnvironmentEvaluate)->Arg(0)->Arg(1)->Arg(2);

// Thread-scaling sweep for the parallel evaluation service: one GNMT
// minibatch of 10 distinct placements per iteration, fanned out over
// N workers. Results are bit-identical across N (the determinism
// contract); only wall-clock time should change.
void BM_EvalServiceBatch(benchmark::State& state) {
  const auto& graph = BenchmarkGraph(1);  // gnmt: the largest sim graph
  const auto cluster = sim::MakeDefaultCluster();
  core::EnvironmentOptions options;
  options.cache_evaluations = false;
  core::PlacementEnvironment env(graph, cluster, options);
  core::EvalService service(env, static_cast<int>(state.range(0)));
  support::Rng rng(6);
  auto agent = core::MakeEagleAgent(graph, cluster, core::AgentDims{}, 1);
  std::vector<sim::Placement> placements;
  for (int i = 0; i < 10; ++i) {
    placements.push_back(agent->ToPlacement(agent->SampleDecision(rng)));
  }
  for (auto _ : state) {
    std::vector<support::Rng> rngs;
    for (std::size_t i = 0; i < placements.size(); ++i) {
      rngs.push_back(rng.Split(i));
    }
    const auto results = service.EvaluateBatch(placements, rngs);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(placements.size()));
  state.SetLabel("threads=" + std::to_string(service.num_threads()));
}
BENCHMARK(BM_EvalServiceBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
