// Robustness bench: best per-step time found by EAGLE (PPO) as the
// measurement environment degrades. Each column injects faults at an
// increasing base rate r (transient session crashes at r, hard device
// downs at r/4, stragglers at r, degraded links at r — the
// sim::FaultProfileFromString bare-number shorthand). Retries with
// exponential backoff keep training alive; exhausted evaluations fall
// back to the invalid-placement penalty, so runs complete even at high
// rates — at the cost of virtual measurement hours and sample quality.
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

namespace {

std::vector<double> ParseRates(const std::string& list) {
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string token =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) rates.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  EAGLE_CHECK_MSG(!rates.empty(), "--rates needs at least one value");
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("Faults: EAGLE robustness vs fault-injection rate");
  bench::AddCommonFlags(args, /*default_samples=*/150);
  args.AddString("rates", "0,0.05,0.1,0.2",
                 "comma-separated base fault rates to sweep");
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);
  const auto rates = ParseRates(args.GetString("rates"));

  support::Table table(
      "FAULTS: best per-step time (s) found by EAGLE (PPO) vs injected "
      "fault rate, with retry/failure accounting.");
  table.SetHeader({"Models", "rate", "best s/step", "invalid", "attempts",
                   "failures", "timeouts", "retries", "gave up",
                   "sim hours"});
  for (auto benchmark : config.benchmarks) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      BenchConfig run_config = config;
      // The bare-number shorthand of sim::FaultProfileFromString.
      run_config.faults.transient_failure_rate = rates[i];
      run_config.faults.device_down_rate = rates[i] / 4.0;
      run_config.faults.straggler_rate = rates[i];
      run_config.faults.degraded_link_rate = rates[i];
      // Distinct fault stream per (model, rate) cell, reproducible per
      // --seed.
      run_config.faults.seed =
          config.seed * 1000 + static_cast<std::uint64_t>(i);
      auto context = bench::MakeContext(benchmark, &run_config);
      auto agent = core::MakeEagleAgent(context.graph, context.cluster,
                                        run_config.dims(), run_config.seed);
      const auto result = bench::TrainOnBenchmark(
          *agent, context, rl::Algorithm::kPpo, run_config);
      table.AddRow({models::BenchmarkName(benchmark),
                    support::Table::Num(rates[i], 2),
                    bench::FormatResult(result),
                    std::to_string(result.invalid_samples),
                    std::to_string(context.env->attempts()),
                    std::to_string(context.env->transient_failures()),
                    std::to_string(context.env->timeouts()),
                    std::to_string(context.env->retries()),
                    std::to_string(context.env->exhausted_evaluations()),
                    support::Table::Num(result.total_virtual_hours, 2)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "faults");
  return bench::Finish(config);
}
