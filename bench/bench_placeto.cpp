// Extension bench (§II-C discussion): Placeto-style incremental placement
// vs EAGLE's one-shot placement on the paper benchmarks.
//
// Placeto evaluates the placement after every single group move, which is
// only affordable against a simulator — its cost column is therefore
// "simulator evaluations", while EAGLE's is simulated measurement hours.
// The paper's argument is that per-change rewards ease credit assignment
// but need far more environment interactions; both sides are visible
// here.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/placeto_agent.h"

using namespace eagle;
using bench::BenchConfig;

int main(int argc, char** argv) {
  support::ArgParser args("Placeto vs EAGLE");
  bench::AddCommonFlags(args, /*default_samples=*/250);
  args.AddInt("episodes", 40, "Placeto sweeps over the groups");
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  support::Table table(
      "PLACETO vs EAGLE: best per-step time (s) and interaction budgets.");
  table.SetHeader({"Models", "Placeto", "sim evals", "EAGLE (PPO)",
                   "sim hours"});
  for (auto benchmark : config.benchmarks) {
    auto context = bench::MakeContext(benchmark, &config);
    core::PlacetoOptions placeto;
    placeto.episodes = static_cast<int>(args.GetInt("episodes"));
    placeto.num_groups = config.dims().num_groups;
    placeto.seed = config.seed;
    core::PlacetoAgent placeto_agent(context.graph, context.cluster,
                                     placeto);
    const auto placeto_result = placeto_agent.Train();

    auto eagle_agent = core::MakeEagleAgent(context.graph, context.cluster,
                                            config.dims(), config.seed);
    const auto eagle_result = bench::TrainOnBenchmark(
        *eagle_agent, context, rl::Algorithm::kPpo, config);

    table.AddRow(
        {models::BenchmarkName(benchmark),
         placeto_result.found_valid
             ? support::Table::Num(placeto_result.best_per_step_seconds)
             : "OOM",
         std::to_string(placeto_result.simulator_evaluations),
         bench::FormatResult(eagle_result),
         support::Table::Num(eagle_result.total_virtual_hours, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "placeto");
  return bench::Finish(config);
}
