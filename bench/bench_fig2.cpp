// Fig. 2 reproduction: per-step time of the placement for BERT found by
// the hierarchical model with different groupers during training.
//
// Expected shape (paper): the learned feed-forward grouper explores well
// (dips below the heuristics mid-training) but its coupled training is
// unstable on BERT; METIS/fluid with a fixed grouping converge smoothly.
#include "bench/bench_figs.h"

using namespace eagle;
using bench::BenchConfig;

int main(int argc, char** argv) {
  support::ArgParser args("Fig. 2: BERT training curves per grouper");
  bench::AddCommonFlags(args, /*default_samples=*/250);
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  auto fixed_grouper_agent = [](const std::string& grouper) {
    return [grouper](const bench::BenchContext& context,
                     const BenchConfig& config_inner) {
      auto grouping =
          grouper == "METIS"
              ? bench::MetisGrouping(context.graph,
                                     config_inner.dims().num_groups,
                                     config_inner.seed)
              : bench::FluidGrouping(context.graph,
                                     config_inner.dims().num_groups,
                                     config_inner.seed);
      return std::unique_ptr<rl::PolicyAgent>(core::MakeFixedGrouperAgent(
          context.graph, context.cluster, std::move(grouping),
          core::PlacerKind::kSeq2Seq, core::AttentionVariant::kAfter,
          config_inner.dims(), config_inner.seed, grouper));
    };
  };

  std::vector<bench::CurveAgent> agents{
      bench::CurveAgent{
          "Feed-forward",
          [](const bench::BenchContext& context,
             const BenchConfig& config_inner) {
            core::HierarchicalAgentConfig agent_config;
            agent_config.display_name = "Feed-forward";
            agent_config.dims = config_inner.dims();
            agent_config.grouper = core::GrouperKind::kLearned;
            agent_config.placer = core::PlacerKind::kSeq2Seq;
            agent_config.attention = core::AttentionVariant::kAfter;
            agent_config.use_bridge = false;
            agent_config.seed = config_inner.seed;
            return std::unique_ptr<rl::PolicyAgent>(
                std::make_unique<core::HierarchicalAgent>(
                    context.graph, context.cluster, std::move(agent_config)));
          },
          rl::Algorithm::kPpo},
      bench::CurveAgent{"METIS", fixed_grouper_agent("METIS"),
                        rl::Algorithm::kPpo},
      bench::CurveAgent{"Networkx(fluid)", fixed_grouper_agent("fluid"),
                        rl::Algorithm::kPpo},
  };
  bench::RunCurves("fig2", models::Benchmark::kBertBase, agents, config);
  return bench::Finish(config);
}
