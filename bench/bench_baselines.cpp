// Baseline-comparison bench (reproduces the §III-D design discussion):
// EMA advantage baseline (Eq. 4) vs an A2C-style learned value network.
// The paper rejected the critic because "the value network does not have
// enough samples to be trained" — at a few hundred rewards per run the
// EMA baseline should find better placements faster.
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

int main(int argc, char** argv) {
  support::ArgParser args("Baselines: EMA vs learned value network");
  bench::AddCommonFlags(args, /*default_samples=*/220);
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  support::Table table(
      "BASELINES: per-step time (s) of the best placement found by EAGLE "
      "(PPO) with different advantage baselines.");
  table.SetHeader({"Models", "EMA (paper)", "Value network (A2C-style)"});
  for (auto benchmark : config.benchmarks) {
    std::vector<std::string> row{models::BenchmarkName(benchmark)};
    for (auto baseline :
         {rl::BaselineKind::kEma, rl::BaselineKind::kValueNetwork}) {
      auto context = bench::MakeContext(benchmark, &config);
      auto agent = core::MakeEagleAgent(context.graph, context.cluster,
                                        config.dims(), config.seed);
      auto options = bench::PaperTrainerOptions(rl::Algorithm::kPpo,
                                                config.samples, config.seed);
      options.baseline = baseline;
      options.num_devices = context.cluster.num_devices();
      support::Stopwatch stopwatch;
      const auto result = rl::TrainAgent(*agent, *context.env, options);
      EAGLE_LOG(Info)
          << models::BenchmarkName(benchmark) << " / "
          << (baseline == rl::BaselineKind::kEma ? "EMA" : "value-net")
          << ": best " << bench::FormatResult(result) << ", wall "
          << support::Table::Num(stopwatch.ElapsedSeconds(), 1) << " s";
      row.push_back(bench::FormatResult(result));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "baselines");
  return bench::Finish(config);
}
