// Shared driver for the training-curve figures (Figs. 2, 5–7): trains a
// set of named agents on one benchmark, records per-sample measured
// per-step times and the running best against the simulated wall clock,
// renders an ASCII chart and writes the series to CSV.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace eagle::bench {

struct CurveAgent {
  std::string name;
  std::function<std::unique_ptr<rl::PolicyAgent>(const BenchContext&,
                                                 const BenchConfig&)>
      make;
  rl::Algorithm algorithm = rl::Algorithm::kPpo;
};

inline void RunCurves(const std::string& figure_name,
                      models::Benchmark benchmark,
                      const std::vector<CurveAgent>& agents,
                      const BenchConfig& config) {
  std::vector<support::SeriesPoint> best_points;
  std::vector<support::SeriesPoint> sample_points;
  support::Table table(figure_name + ": convergence summary");
  table.SetHeader({"Approach", "best s/step", "found at (sim h)",
                   "invalid", "sim hours"});

  for (const auto& spec : agents) {
    auto context = MakeContext(benchmark, &config);
    auto agent = spec.make(context, config);
    const auto on_progress = [&](const rl::HistoryPoint& point) {
      if (std::isfinite(point.per_step_seconds)) {
        sample_points.push_back(
            {point.virtual_hours, point.per_step_seconds, spec.name});
      }
      if (std::isfinite(point.best_so_far_seconds)) {
        best_points.push_back(
            {point.virtual_hours, point.best_so_far_seconds, spec.name});
      }
    };
    const auto result = TrainOnBenchmark(*agent, context, spec.algorithm,
                                         config, on_progress);
    table.AddRow({spec.name, FormatResult(result),
                  support::Table::Num(result.best_found_at_hours, 2),
                  std::to_string(result.invalid_samples),
                  support::Table::Num(result.total_virtual_hours, 2)});
    if (!config.csv_prefix.empty()) {
      // Full per-sample history, invalid samples included (as null /
      // empty-cell sentinels — see WriteHistoryJson).
      std::string slug = spec.name;
      for (char& c : slug) c = (c == ' ' || c == '/') ? '_' : c;
      const std::string base =
          config.csv_prefix + figure_name + "_" + slug + "_history";
      WriteHistoryJson(base + ".json", result.history);
      WriteHistoryCsv(base + ".csv", result.history);
    }
  }

  std::printf("%s — per-step time of the best placement found so far vs "
              "simulated training hours\n",
              figure_name.c_str());
  std::fputs(support::RenderAsciiSeries(best_points).c_str(), stdout);
  std::fputs(table.ToString().c_str(), stdout);
  MaybeWriteCsv(table, config, figure_name + "_summary");
  if (!config.csv_prefix.empty()) {
    const std::string best_path =
        config.csv_prefix + figure_name + "_best.csv";
    if (!support::WriteSeriesCsv(best_path, "sim_hours", "best_per_step_s",
                                 best_points)) {
      ReportArtifactFailure("series CSV", best_path);
    }
    const std::string samples_path =
        config.csv_prefix + figure_name + "_samples.csv";
    if (!support::WriteSeriesCsv(samples_path, "sim_hours", "per_step_s",
                                 sample_points)) {
      ReportArtifactFailure("series CSV", samples_path);
    }
  }
}

// The three RL approaches compared in Figs. 5–7, trained as published.
inline std::vector<CurveAgent> PaperApproaches() {
  return {
      CurveAgent{"Hierarchical Planner",
                 [](const BenchContext& context, const BenchConfig& config) {
                   return std::unique_ptr<rl::PolicyAgent>(
                       core::MakeHierarchicalPlanner(context.graph,
                                                     context.cluster,
                                                     config.dims(),
                                                     config.seed));
                 },
                 rl::Algorithm::kReinforce},
      CurveAgent{"Post",
                 [](const BenchContext& context, const BenchConfig& config) {
                   return std::unique_ptr<rl::PolicyAgent>(
                       core::MakePostAgent(context.graph, context.cluster,
                                           /*num_groups=*/16, config.seed));
                 },
                 rl::Algorithm::kPpoCe},
      CurveAgent{"EAGLE",
                 [](const BenchContext& context, const BenchConfig& config) {
                   return std::unique_ptr<rl::PolicyAgent>(
                       core::MakeEagleAgent(context.graph, context.cluster,
                                            config.dims(), config.seed));
                 },
                 rl::Algorithm::kPpo},
  };
}

}  // namespace eagle::bench
