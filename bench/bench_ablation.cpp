// Ablation bench (beyond the paper's tables): which of EAGLE's
// ingredients buys what? Starting from full EAGLE, each variant removes
// one design choice DESIGN.md calls out:
//
//   full EAGLE        bridge RNN + attention-before + reconstructed
//                     state vectors (PPO everywhere)
//   - bridge          grouper coupled to the placer only through the
//                     sampled grouping (HP-style coupling)
//   - reconstruction  raw HP-style state vectors
//   - attention-pos   attention applied after the decoder (Fig. 4b)
//   none (≈ HP+PPO)   all three removed
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

namespace {

struct Variant {
  const char* name;
  bool bridge;
  graph::FeatureMode features;
  core::AttentionVariant attention;
};

rl::TrainResult RunVariant(const Variant& variant,
                           bench::BenchContext& context,
                           const BenchConfig& config) {
  core::HierarchicalAgentConfig agent_config;
  agent_config.display_name = variant.name;
  agent_config.dims = config.dims();
  agent_config.grouper = core::GrouperKind::kLearned;
  agent_config.placer = core::PlacerKind::kSeq2Seq;
  agent_config.attention = variant.attention;
  agent_config.use_bridge = variant.bridge;
  agent_config.features = variant.features;
  agent_config.seed = config.seed;
  core::HierarchicalAgent agent(context.graph, context.cluster,
                                std::move(agent_config));
  return bench::TrainOnBenchmark(agent, context, rl::Algorithm::kPpo,
                                 config);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("Ablation: EAGLE ingredients on/off");
  bench::AddCommonFlags(args, /*default_samples=*/220);
  if (!args.Parse(argc, argv)) return 0;
  BenchConfig config = bench::ReadCommonFlags(args);

  const Variant variants[] = {
      {"full EAGLE", true, graph::FeatureMode::kReconstructed,
       core::AttentionVariant::kBefore},
      {"- bridge RNN", false, graph::FeatureMode::kReconstructed,
       core::AttentionVariant::kBefore},
      {"- reconstruction", true, graph::FeatureMode::kRaw,
       core::AttentionVariant::kBefore},
      {"- attention-before", true, graph::FeatureMode::kReconstructed,
       core::AttentionVariant::kAfter},
      {"none (HP+PPO)", false, graph::FeatureMode::kRaw,
       core::AttentionVariant::kAfter},
  };

  support::Table table(
      "ABLATION: per-step time (s) of the best placement per variant.");
  std::vector<std::string> header{"Variant"};
  for (auto benchmark : config.benchmarks) {
    header.push_back(models::BenchmarkName(benchmark));
  }
  table.SetHeader(std::move(header));
  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : variants) {
    rows.push_back({variant.name});
  }
  for (auto benchmark : config.benchmarks) {
    for (std::size_t i = 0; i < std::size(variants); ++i) {
      auto context = bench::MakeContext(benchmark, &config);
      rows[i].push_back(
          bench::FormatResult(RunVariant(variants[i], context, config)));
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "ablation");
  return bench::Finish(config);
}
