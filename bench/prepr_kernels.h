// The GEMM kernels exactly as the repo shipped them before the blocked/
// SIMD rewrite — zero-skip branch, implicit a*b+c contraction — compiled
// in their own translation unit with the pre-rewrite floating-point
// flags (-ffp-contract=fast; see bench/CMakeLists.txt). bench_micro
// times them as the "pre-PR" column of BENCH_kernels.json, so the
// recorded speedups are measured against the genuine historical code
// under the same harness, not remembered from an older run.
//
// prepr::Tensor reproduces the seed storage too: the old nn::Tensor kept
// its data in a std::vector<float>, whose glibc allocation lands 16
// bytes past a 32-byte boundary — measurably slower at the 256-wide
// shapes than the 32-byte-aligned arena the rewrite introduced. Timing
// the old kernels on new-arena operands flatters the baseline by up to
// 2x, so the pre-PR column gets the pre-PR allocator as well.
//
// Not an oracle: the zero-skip drops NaN/Inf propagation and contraction
// changes rounding, which is exactly why these are frozen *here* and not
// in src/. Bit-identity is proven against nn::naive instead
// (tests/test_kernels.cpp).
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace eagle::bench::prepr {

// Seed-commit tensor storage: row-major floats in a std::vector.
class Tensor {
 public:
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0.0f) {}
  // Copies an arena-backed tensor's contents into seed storage.
  explicit Tensor(const nn::Tensor& t) : Tensor(t.rows(), t.cols()) {
    for (int i = 0; i < rows_; ++i) {
      const float* src = t.row(i);
      float* dst = row(i);
      for (int j = 0; j < cols_; ++j) dst[j] = src[j];
    }
  }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const float* row(int i) const {
    return data_.data() + static_cast<std::size_t>(i) * cols_;
  }
  float* row(int i) { return data_.data() + static_cast<std::size_t>(i) * cols_; }
  std::string ShapeString() const {
    return std::to_string(rows_) + "x" + std::to_string(cols_);
  }

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out);
void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out);
void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace eagle::bench::prepr
