// Heterogeneous-cluster comparison: the Table-IV headline rows (Single
// GPU, Human Experts, METIS-balanced, EAGLE PPO) replayed on the two
// shipped hierarchical topologies instead of the paper's single-root
// 4-GPU box:
//
//   2node8 — two nodes of 4 NVLink-meshed GPUs each, PCIe to the host,
//            nodes joined by one InfiniBand NIC per node (shared egress
//            channel);
//   mixed  — one box mixing two fast and two slow GPUs on a shared PCIe
//            root.
//
// Expected shape: the gap between EAGLE and the oblivious baselines
// widens — Single GPU cannot use the second node at all, the GNMT expert
// stripes layers across nodes without knowing the IB hop is ~20x slower
// than NVLink, and METIS balances edge cut but not device speed, so it
// pays on mixed where the slow GPUs stall the critical path.
//
// --cluster pins a single topology (builtin name or .ec/.json spec
// file); the default sweeps both. Writes results/BENCH_clusters.json
// (override with --out=PATH) plus the usual --csv tables.
#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

#include "bench/bench_common.h"
#include "graph/grouped_graph.h"

using namespace eagle;
using bench::BenchConfig;

namespace {

// One measured cell: the formatted table entry plus the raw seconds for
// the JSON artifact (NaN = OOM, serialized as null).
struct Cell {
  std::string label;
  double seconds = std::nan("");
};

Cell EvalCell(const sim::EvalResult& eval) {
  return {bench::FormatEval(eval),
          eval.valid ? eval.true_per_step_seconds : std::nan("")};
}

Cell TrainCell(const rl::TrainResult& result) {
  return {bench::FormatResult(result),
          result.found_valid ? result.best_per_step_seconds : std::nan("")};
}

// The trace_placement "balanced" policy: METIS groups (4 per device)
// round-robined over the GPUs, then normalized so CPU-pinned ops land on
// the host. Deliberately speed- and topology-oblivious — it is the
// strongest non-learned baseline that needs no model knowledge.
sim::Placement MetisBalancedPlacement(const graph::OpGraph& graph,
                                      const sim::ClusterSpec& cluster,
                                      std::uint64_t seed) {
  partition::MetisOptions options;
  options.num_parts = 4 * cluster.num_devices();
  options.seed = seed;
  const auto grouping = partition::MetisPartition(graph, options);
  graph::GroupedGraph grouped(graph, grouping, options.num_parts);
  const auto gpus = cluster.Gpus();
  std::vector<std::int32_t> group_devices(
      static_cast<std::size_t>(options.num_parts));
  for (int g = 0; g < options.num_parts; ++g) {
    group_devices[static_cast<std::size_t>(g)] =
        gpus[static_cast<std::size_t>(g) % gpus.size()];
  }
  sim::Placement placement(graph, grouped.ExpandToOps(group_devices));
  placement.Normalize(graph, cluster);
  return placement;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "Heterogeneous clusters: baselines vs EAGLE on hierarchical "
      "topologies");
  bench::AddCommonFlags(args, /*default_samples=*/220);
  args.AddString("out", "results/BENCH_clusters.json",
                 "JSON results path (empty string: stdout tables only)");
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  // --cluster pins one topology; the default sweeps both shipped
  // hierarchical builtins (the homogeneous default box is already
  // covered by bench_table4).
  std::vector<std::pair<std::string, sim::ClusterSpec>> topologies;
  if (!config.cluster_name.empty()) {
    topologies.emplace_back(config.cluster_name, config.cluster);
  } else {
    topologies.emplace_back("2node8", sim::MakeTwoNodeNvlinkIbCluster());
    topologies.emplace_back("mixed", sim::MakeMixedSpeedCluster());
  }

  namespace json = support::json;
  std::ostringstream out_json;
  out_json << "{\n  \"samples\": " << config.samples
           << ",\n  \"seed\": " << config.seed << ",\n  \"topologies\": {";
  bool first_topo = true;

  for (const auto& [topo_name, topo_cluster] : topologies) {
    BenchConfig topo_config = config;
    topo_config.cluster_name = topo_name;
    topo_config.cluster = topo_cluster;

    support::Table table(
        "CLUSTERS (" + topo_name + ", " +
        std::to_string(topo_cluster.num_devices()) +
        " devices): per-step time (in seconds) of placements found by "
        "different approaches (lower is better). OOM stands for "
        "Out-Of-Memory.");
    table.SetHeader({"Models", "Single GPU", "Human Experts",
                     "METIS (balanced)", "EAGLE (PPO)"});

    out_json << (first_topo ? "" : ",") << "\n    \""
             << json::Escape(topo_name) << "\": {";
    first_topo = false;
    bool first_model = true;

    for (auto benchmark : config.benchmarks) {
      auto context = bench::MakeContext(benchmark, &topo_config);
      std::vector<Cell> cells;

      // Pre-defined placements (evaluated directly, no training).
      cells.push_back(EvalCell(context.env->Evaluate(
          core::SingleGpuPlacement(context.graph, context.cluster),
          nullptr)));
      const auto expert = core::HumanExpertPlacement(
          benchmark, context.graph, context.cluster);
      cells.push_back(expert ? EvalCell(context.env->Evaluate(*expert,
                                                              nullptr))
                             : Cell{"OOM", std::nan("")});
      cells.push_back(EvalCell(context.env->Evaluate(
          MetisBalancedPlacement(context.graph, context.cluster,
                                 config.seed),
          nullptr)));

      // The learned row: EAGLE trained with PPO against this topology.
      auto agent = core::MakeEagleAgent(context.graph, context.cluster,
                                        config.dims(), config.seed);
      cells.push_back(TrainCell(bench::TrainOnBenchmark(
          *agent, context, rl::Algorithm::kPpo, topo_config)));

      std::vector<std::string> row{models::BenchmarkName(benchmark)};
      out_json << (first_model ? "" : ",") << "\n      \""
               << json::Escape(models::BenchmarkName(benchmark)) << "\": {";
      first_model = false;
      const char* keys[] = {"single_gpu", "expert", "metis_balanced",
                            "eagle_ppo"};
      for (std::size_t i = 0; i < cells.size(); ++i) {
        row.push_back(cells[i].label);
        out_json << (i ? "," : "") << "\"" << keys[i] << "\": ";
        if (std::isfinite(cells[i].seconds)) {
          out_json << json::Num(cells[i].seconds);
        } else {
          out_json << "null";
        }
      }
      out_json << "}";
      table.AddRow(std::move(row));
    }
    out_json << "\n    }";

    std::fputs(table.ToString().c_str(), stdout);
    bench::MaybeWriteCsv(table, config, "clusters_" + topo_name);
  }
  out_json << "\n  }\n}\n";

  const std::string out = args.GetString("out");
  if (!out.empty()) {
    if (!support::WriteFileAtomic(out, [&](std::ostream& os) {
          os << out_json.str();
          return static_cast<bool>(os);
        })) {
      bench::ReportArtifactFailure("results JSON", out);
    } else {
      std::printf("wrote %s\n", out.c_str());
    }
  }
  return bench::Finish(config);
}
