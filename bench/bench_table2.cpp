// Table II reproduction: per-step time of placements found by the agent
// with a METIS grouper and different placers — Seq2Seq with attention
// before the decoder, Seq2Seq with attention after, and GCN.
//
// Expected shape (paper): seq2seq beats GCN on every model; before ≈
// after on Inception/GNMT, before clearly better on BERT.
#include <cstdio>

#include "bench/bench_common.h"

using namespace eagle;
using bench::BenchConfig;

namespace {

rl::TrainResult RunPlacer(const std::string& placer,
                          bench::BenchContext& context,
                          const graph::Grouping& grouping,
                          const BenchConfig& config) {
  const auto dims = config.dims();
  const core::PlacerKind kind = placer == "gcn" ? core::PlacerKind::kGcn
                                                : core::PlacerKind::kSeq2Seq;
  const core::AttentionVariant attention =
      placer == "before" ? core::AttentionVariant::kBefore
                         : core::AttentionVariant::kAfter;
  auto agent = core::MakeFixedGrouperAgent(
      context.graph, context.cluster, grouping, kind, attention, dims,
      config.seed, "placer:" + placer);
  return bench::TrainOnBenchmark(*agent, context, rl::Algorithm::kPpo,
                                 config);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("Table II: METIS grouper with different placers");
  bench::AddCommonFlags(args, /*default_samples=*/220);
  if (!args.Parse(argc, argv)) return 0;
  const BenchConfig config = bench::ReadCommonFlags(args);

  support::Table table(
      "TABLE II: Per-step time (in seconds) of placements found by the "
      "agent with METIS grouper and different placers.");
  table.SetHeader(
      {"Models", "Seq2Seq(before)", "Seq2Seq(after)", "GCN"});
  for (auto benchmark : config.benchmarks) {
    auto context = bench::MakeContext(benchmark, &config);
    const auto grouping = bench::MetisGrouping(
        context.graph, config.dims().num_groups, config.seed);
    std::vector<std::string> row{models::BenchmarkName(benchmark)};
    for (const char* placer : {"before", "after", "gcn"}) {
      row.push_back(
          bench::FormatResult(RunPlacer(placer, context, grouping, config)));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
  bench::MaybeWriteCsv(table, config, "table2");
  return bench::Finish(config);
}
