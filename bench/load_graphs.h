// --load / --cluster flag plumbing shared by the benches: import user
// graph files (.eg / .json) through the hardened ingestion pipeline and
// register them in the model zoo so bench rows can refer to them by
// name; resolve cluster topology specs the same way.
//
// Kept separate from bench_common.h so bench_micro (which links only
// nn/sim/models, not the RL stack) can use it too.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "graph/ingest.h"
#include "models/zoo.h"
#include "sim/cluster_ingest.h"

namespace eagle::bench {

// Registry name for an imported file: the basename without extension
// ("runs/my_net.eg" → "my_net").
inline std::string ImportedGraphName(const std::string& path) {
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

// Imports, validates and registers every file in the comma-separated
// `list`; returns the registered names in order. A malformed graph is a
// friendly exit 2 with the parser's file:line:column diagnostic on
// stderr — the same convention as the tools (inspect_model,
// trace_placement).
inline std::vector<std::string> ImportGraphsOrExit(const std::string& list) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos <= list.size() && !list.empty()) {
    const std::size_t comma = list.find(',', pos);
    const std::string path =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!path.empty()) {
      support::StatusOr<graph::OpGraph> parsed =
          graph::ImportGraphFile(path);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        std::exit(2);
      }
      const std::string name = ImportedGraphName(path);
      const support::Status status =
          models::RegisterImportedGraph(name, std::move(parsed).value());
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        std::exit(2);
      }
      names.push_back(name);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return names;
}

// Resolves a --cluster value (builtin name or spec file path) through
// sim::ResolveCluster; a malformed or unvalidatable spec is the same
// friendly exit 2 with the parser's file:line:column diagnostic.
inline sim::ClusterSpec ResolveClusterOrExit(const std::string& spec) {
  support::StatusOr<sim::ClusterSpec> cluster = sim::ResolveCluster(spec);
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(cluster).value();
}

}  // namespace eagle::bench
