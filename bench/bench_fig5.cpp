// Fig. 5 reproduction: per-step time of the placement for Inception-V3
// found by Hierarchical Planner / Post / EAGLE during training.
//
// Expected shape (paper): all three reach the optimum; EAGLE is the
// fastest to get there; HP wastes its early budget on invalid placements.
#include "bench/bench_figs.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("Fig. 5: Inception-V3 training curves");
  bench::AddCommonFlags(args, /*default_samples=*/300);
  if (!args.Parse(argc, argv)) return 0;
  const auto config = bench::ReadCommonFlags(args);
  bench::RunCurves("fig5", models::Benchmark::kInceptionV3,
                   bench::PaperApproaches(), config);
  return bench::Finish(config);
}
