// Define your own computational graph with the GraphBuilder API (or load
// one from the .eg text format), add training ops, and let EAGLE place it.
// Demonstrates everything a downstream user needs to bring a new model.
//
//   $ ./custom_model [--samples=N] [--load=path/to/graph.eg]
//                    [--dump=path/to/out.eg]
#include <cstdio>
#include <utility>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/expert_policies.h"
#include "graph/graph_io.h"
#include "graph/ingest.h"
#include "models/builder.h"
#include "models/op_cost.h"
#include "models/training_graph.h"
#include "rl/trainer.h"
#include "support/args.h"
#include "support/table.h"

using namespace eagle;

namespace {

// A small mixture-of-experts-like block: a router feeding four expert
// MLPs whose outputs are concatenated — branch-parallel, with a memory
// footprint that rewards spreading experts over devices.
graph::OpGraph BuildMoeModel() {
  models::GraphBuilder b;
  using graph::OpType;
  using graph::TensorShape;
  const std::int64_t batch = 64, dim = 4096, experts = 4;

  b.SetLayerScope("input");
  auto input = b.Add(OpType::kPlaceholder, "tokens", TensorShape{batch, dim},
                     {});
  auto router = b.Add(
      OpType::kMatMul, "router", TensorShape{batch, experts}, {input},
      {.flops = models::MatMulFlops(batch, dim, experts),
       .param_bytes = models::DenseParamBytes(dim, experts)});

  std::vector<graph::OpId> outputs;
  for (int e = 0; e < experts; ++e) {
    const std::string scope = "expert" + std::to_string(e);
    b.SetLayerScope(scope);
    auto up = b.Add(OpType::kMatMul, scope + "/up",
                    TensorShape{batch, 4 * dim}, {input, router},
                    {.flops = models::MatMulFlops(batch, dim, 4 * dim),
                     .param_bytes = models::DenseParamBytes(dim, 4 * dim)});
    auto act = b.Add(OpType::kGelu, scope + "/gelu",
                     TensorShape{batch, 4 * dim}, {up},
                     {.flops = models::ElementwiseFlops(batch * 4 * dim * 8)});
    auto down = b.Add(OpType::kMatMul, scope + "/down",
                      TensorShape{batch, dim}, {act},
                      {.flops = models::MatMulFlops(batch, 4 * dim, dim),
                       .param_bytes = models::DenseParamBytes(4 * dim, dim)});
    outputs.push_back(down);
  }
  b.SetLayerScope("head");
  auto combined = b.Add(OpType::kConcat, "combine",
                        TensorShape{batch, experts * dim}, outputs);
  auto labels = b.Add(OpType::kPlaceholder, "labels", TensorShape{batch}, {},
                      {.cpu_only = true});
  auto loss = b.Add(OpType::kCrossEntropy, "loss", TensorShape{1},
                    {combined, labels},
                    {.flops = models::ElementwiseFlops(batch * experts * dim)});

  graph::OpGraph graph = b.TakeGraph();
  models::AddTrainingOps(graph, loss);
  return graph;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE on a user-defined model");
  args.AddInt("samples", 150, "placements to evaluate");
  args.AddInt("seed", 5, "RNG seed");
  args.AddString("load", "", "load a graph from a .eg or .json file instead");
  args.AddString("dump", "", "write the graph to a .eg file and exit");
  if (!args.Parse(argc, argv)) return 0;

  graph::OpGraph graph;
  if (args.GetString("load").empty()) {
    graph = BuildMoeModel();
  } else {
    // Hardened ingestion: a malformed file is a diagnostic with the
    // offending file:line:column and exit 2, never an abort.
    support::StatusOr<graph::OpGraph> parsed =
        graph::ImportGraphFile(args.GetString("load"));
    if (!parsed.ok()) {
      std::fprintf(stderr, "custom_model: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    graph = std::move(parsed).value();
  }
  std::printf("model: %s\n", graph.StatsString().c_str());
  if (!args.GetString("dump").empty()) {
    if (!graph::SaveTextFile(graph, args.GetString("dump"))) {
      std::printf("cannot write %s\n", args.GetString("dump").c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.GetString("dump").c_str());
    return 0;
  }

  sim::ClusterSpec cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster);
  auto agent = core::MakeEagleAgent(
      graph, cluster, core::AgentDims{},
      static_cast<std::uint64_t>(args.GetInt("seed")));
  rl::TrainerOptions options;
  options.total_samples = static_cast<int>(args.GetInt("samples"));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  const auto result = rl::TrainAgent(*agent, env, options);

  const auto single =
      env.Evaluate(core::SingleGpuPlacement(graph, cluster), nullptr);
  std::printf("single GPU: %s\n",
              single.valid
                  ? support::Table::Num(single.true_per_step_seconds, 4).c_str()
                  : "OOM");
  std::printf("EAGLE:      %s  (%s)\n",
              result.found_valid
                  ? support::Table::Num(result.best_per_step_seconds, 4).c_str()
                  : "none",
              result.found_valid
                  ? result.best_placement.ToString(graph, cluster).c_str()
                  : "-");
  return 0;
}
