// Compare grouping strategies on GNMT (§III-B): learned feed-forward vs
// METIS vs fluid communities, both on raw partition quality (edge cut,
// balance) and on the per-step time of the placement each enables.
//
//   $ ./compare_groupers [--samples=N] [--groups=K]
#include <cstdio>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "models/gnmt.h"
#include "partition/bisection.h"
#include "partition/fluid.h"
#include "partition/metis_like.h"
#include "rl/trainer.h"
#include "support/args.h"
#include "support/table.h"

using namespace eagle;

namespace {

void PrintPartitionQuality(const graph::OpGraph& graph,
                           const graph::Grouping& grouping, int num_groups,
                           const char* name) {
  const auto wg = partition::BuildWeightedGraph(graph);
  const auto metrics = partition::ComputeMetrics(wg, grouping, num_groups);
  std::printf("%-16s cut %8.3f GB   balance %.2f   nonempty groups %d/%d\n",
              name, static_cast<double>(metrics.cut_weight) / (1 << 30),
              metrics.balance, metrics.num_nonempty, num_groups);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("Grouper comparison on GNMT");
  args.AddInt("samples", 150, "placements per training run");
  args.AddInt("groups", 48, "number of operation groups");
  args.AddInt("seed", 3, "RNG seed");
  if (!args.Parse(argc, argv)) return 0;
  const int k = static_cast<int>(args.GetInt("groups"));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed"));

  graph::OpGraph graph = models::BuildGNMT();
  sim::ClusterSpec cluster = sim::MakeDefaultCluster();
  std::printf("GNMT: %s\n\n", graph.StatsString().c_str());

  // Static partition quality (what min-cut heuristics optimize)…
  partition::MetisOptions metis;
  metis.num_parts = k;
  metis.seed = seed;
  const auto metis_grouping = partition::MetisPartition(graph, metis);
  partition::FluidOptions fluid;
  fluid.num_communities = k;
  fluid.seed = seed;
  const auto fluid_grouping = partition::FluidCommunities(graph, fluid);
  partition::BisectionOptions bisect;
  bisect.num_parts = k;
  bisect.seed = seed;
  const auto bisect_grouping = partition::BisectionPartition(graph, bisect);
  PrintPartitionQuality(graph, metis_grouping, k, "METIS");
  PrintPartitionQuality(graph, fluid_grouping, k, "fluid");
  PrintPartitionQuality(graph, bisect_grouping, k, "bisection");

  // …vs what actually matters: the per-step time of the placement the
  // placer learns on top of each grouping.
  core::AgentDims dims;
  dims.num_groups = k;
  rl::TrainerOptions options;
  options.total_samples = static_cast<int>(args.GetInt("samples"));
  options.seed = seed;

  support::Table table("\nPlacement quality per grouper");
  table.SetHeader({"Grouper", "best s/step", "invalid samples"});
  struct Entry {
    const char* name;
    graph::Grouping grouping;  // empty == learned
  };
  std::vector<Entry> entries{{"feed-forward", {}},
                             {"METIS", metis_grouping},
                             {"fluid", fluid_grouping},
                             {"bisection", bisect_grouping}};
  for (auto& entry : entries) {
    core::PlacementEnvironment env(graph, cluster);
    std::unique_ptr<rl::PolicyAgent> agent;
    if (entry.grouping.empty()) {
      agent = core::MakeEagleAgent(graph, cluster, dims, seed);
    } else {
      agent = core::MakeFixedGrouperAgent(
          graph, cluster, entry.grouping, core::PlacerKind::kSeq2Seq,
          core::AttentionVariant::kBefore, dims, seed, entry.name);
    }
    const auto result = rl::TrainAgent(*agent, env, options);
    table.AddRow({entry.name,
                  result.found_valid
                      ? support::Table::Num(result.best_per_step_seconds)
                      : "OOM",
                  std::to_string(result.invalid_samples)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
