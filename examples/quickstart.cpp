// Quickstart: build a small model, train EAGLE briefly, and inspect the
// best placement it finds.
//
//   $ ./quickstart [--samples=N]
//
// This walks the full public API surface: model builders (eagle::models),
// the simulated 4-GPU cluster and environment (eagle::sim / eagle::core),
// the EAGLE agent (eagle::core) and the RL training loop (eagle::rl).
#include <cstdio>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/expert_policies.h"
#include "models/synthetic.h"
#include "rl/trainer.h"
#include "support/args.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE quickstart");
  args.AddInt("samples", 120, "placements to evaluate during training");
  args.AddInt("seed", 1, "RNG seed");
  if (!args.Parse(argc, argv)) return 0;

  // 1. A workload: four heavy parallel chains — the classic case where
  //    model parallelism wins. Swap in models::BuildBertBase() etc. for
  //    the paper benchmarks.
  graph::OpGraph graph = models::BuildParallelChains(
      /*width=*/4, /*depth=*/10, /*tensor_elems=*/1 << 18,
      /*flops_per_op=*/2e10);
  std::printf("model: %s\n", graph.StatsString().c_str());

  // 2. The environment: the paper's machine — 4x P100 + CPU — simulated,
  //    with the 15-step measurement protocol of §IV-C.
  sim::ClusterSpec cluster = sim::MakeDefaultCluster();
  std::printf("cluster: %s\n", cluster.ToString().c_str());
  core::PlacementEnvironment env(graph, cluster);

  // 3. The EAGLE agent: FFN grouper + bridge RNN + seq2seq placer with
  //    attention-before, and PPO with the paper's hyperparameters.
  auto agent = core::MakeEagleAgent(
      graph, cluster, core::AgentDims{},
      static_cast<std::uint64_t>(args.GetInt("seed")));

  rl::TrainerOptions options;
  options.total_samples = static_cast<int>(args.GetInt("samples"));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  const rl::TrainResult result = rl::TrainAgent(*agent, env, options);

  // 4. Results: compare against the single-GPU baseline.
  const auto single_gpu =
      env.Evaluate(core::SingleGpuPlacement(graph, cluster), nullptr);
  std::printf("\nsingle GPU:        %.4f s/step\n",
              single_gpu.true_per_step_seconds);
  std::printf("EAGLE best:        %.4f s/step  (found after %.2f simulated "
              "hours, %d/%d samples invalid)\n",
              result.best_per_step_seconds, result.best_found_at_hours,
              result.invalid_samples, result.total_samples);
  std::printf("placement:         %s\n",
              result.best_placement.ToString(graph, cluster).c_str());
  const double speedup =
      single_gpu.true_per_step_seconds / result.best_per_step_seconds;
  std::printf("speedup vs 1 GPU:  %.2fx\n", speedup);
  return 0;
}
