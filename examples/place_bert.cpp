// Place BERT-Base across 4 GPUs — the paper's flagship scenario (§IV):
// the model OOMs on any single GPU, so the agent must learn real model
// parallelism. Prints the learned per-device breakdown and memory use.
//
//   $ ./place_bert [--samples=N] [--algo=ppo|ppo_ce]
#include <cstdio>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/expert_policies.h"
#include "models/bert.h"
#include "rl/trainer.h"
#include "support/args.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("EAGLE on BERT-Base");
  args.AddInt("samples", 200, "placements to evaluate");
  args.AddInt("seed", 7, "RNG seed");
  args.AddString("algo", "ppo", "training algorithm: ppo | ppo_ce");
  if (!args.Parse(argc, argv)) return 0;

  graph::OpGraph graph = models::BuildBertBase();
  sim::ClusterSpec cluster = sim::MakeDefaultCluster();
  std::printf("BERT-Base (seq 384, batch 24): %s\n",
              graph.StatsString().c_str());
  core::PlacementEnvironment env(graph, cluster);

  // Show why this needs model parallelism at all.
  const auto single =
      env.Evaluate(core::SingleGpuPlacement(graph, cluster), nullptr);
  std::printf("single GPU: %s\n",
              single.valid ? "fits (unexpected!)" : "OOM — as in the paper");

  const auto algorithm = args.GetString("algo") == "ppo_ce"
                             ? rl::Algorithm::kPpoCe
                             : rl::Algorithm::kPpo;
  auto agent = core::MakeEagleAgent(
      graph, cluster, core::AgentDims{},
      static_cast<std::uint64_t>(args.GetInt("seed")));
  rl::TrainerOptions options;
  options.algorithm = algorithm;
  options.total_samples = static_cast<int>(args.GetInt("samples"));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  const auto result = rl::TrainAgent(*agent, env, options);

  if (!result.found_valid) {
    std::printf("no valid placement found — raise --samples\n");
    return 1;
  }
  std::printf("\nbest placement: %.3f s/step after %.2f simulated hours "
              "(%d/%d invalid samples)\n",
              result.best_per_step_seconds, result.best_found_at_hours,
              result.invalid_samples, result.total_samples);

  // Per-device breakdown of the winning placement.
  const auto eval = env.Evaluate(result.best_placement, nullptr);
  const auto counts = result.best_placement.OpsPerDevice(cluster);
  std::printf("%-10s %8s %12s %12s\n", "device", "ops", "busy (s)",
              "peak mem (GB)");
  for (sim::DeviceId d = 0; d < cluster.num_devices(); ++d) {
    std::printf("%-10s %8d %12.4f %12.2f\n",
                cluster.device(d).name.c_str(),
                counts[static_cast<std::size_t>(d)],
                eval.step.device_busy_seconds[static_cast<std::size_t>(d)],
                static_cast<double>(
                    eval.step.device_peak_bytes[static_cast<std::size_t>(d)]) /
                    (1 << 30));
  }
  std::printf("cross-device traffic: %.2f GB over %d transfers per step\n",
              static_cast<double>(eval.step.transfer_bytes_total) / (1 << 30),
              eval.step.num_transfers);
  return 0;
}
