// GNMT batch-size sweep: reproduces the paper's §IV-A setup decision.
// "We increase the batch size of the model from 128 to 256, such that it
//  cannot fit into a single GPU" — this sweep shows exactly where the
// single-GPU OOM boundary sits and how the placement problem changes
// character across it.
//
//   $ ./sweep_gnmt_batch [--samples=N]
#include <cstdio>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/expert_policies.h"
#include "models/gnmt.h"
#include "rl/trainer.h"
#include "support/args.h"
#include "support/table.h"

using namespace eagle;

int main(int argc, char** argv) {
  support::ArgParser args("GNMT batch-size sweep");
  args.AddInt("samples", 120, "EAGLE training budget per batch size");
  args.AddInt("seed", 9, "RNG seed");
  args.AddBool("train", true, "also train EAGLE per batch size");
  if (!args.Parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed"));

  const auto cluster = sim::MakeDefaultCluster();
  support::Table table("GNMT across batch sizes (4x P100 + CPU)");
  table.SetHeader({"batch", "single GPU", "peak mem (GB)", "human expert",
                   "EAGLE best"});

  for (int batch : {64, 128, 192, 256, 384}) {
    models::GnmtConfig config;
    config.batch = batch;
    const auto graph = models::BuildGNMT(config);
    core::PlacementEnvironment env(graph, cluster);

    const auto single =
        env.Evaluate(core::SingleGpuPlacement(graph, cluster), nullptr);
    const auto expert = core::HumanExpertPlacement(models::Benchmark::kGNMT,
                                                   graph, cluster);
    const auto expert_eval = env.Evaluate(*expert, nullptr);

    std::string eagle_cell = "-";
    if (args.GetBool("train")) {
      auto agent =
          core::MakeEagleAgent(graph, cluster, core::AgentDims{}, seed);
      rl::TrainerOptions options;
      options.total_samples = static_cast<int>(args.GetInt("samples"));
      options.seed = seed;
      const auto result = rl::TrainAgent(*agent, env, options);
      eagle_cell = result.found_valid
                       ? support::Table::Num(result.best_per_step_seconds)
                       : "none";
    }

    const auto gpus = cluster.Gpus();
    table.AddRow(
        {std::to_string(batch),
         single.valid ? support::Table::Num(single.true_per_step_seconds)
                      : "OOM",
         support::Table::Num(
             static_cast<double>(
                 single.step.device_peak_bytes[static_cast<std::size_t>(
                     gpus.front())]) /
                 (1 << 30),
             1),
         expert_eval.valid
             ? support::Table::Num(expert_eval.true_per_step_seconds)
             : "OOM",
         eagle_cell});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nThe paper trains at batch 256 — just past the single-GPU "
              "boundary — so a learned multi-device placement is the only "
              "way to train at all.\n");
  return 0;
}
