// Self-tests for eagle-lint: every rule must fire on its seeded fixture
// (tests/lint_fixtures/) with the right id and line, suppressions must
// silence findings, and the real tree must lint clean.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/linter.h"

namespace eagle::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path =
      std::string(EAGLE_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> RuleIds(const std::vector<Diagnostic>& diags) {
  std::set<std::string> ids;
  for (const Diagnostic& d : diags) ids.insert(d.rule);
  return ids;
}

std::set<int> Lines(const std::vector<Diagnostic>& diags) {
  std::set<int> lines;
  for (const Diagnostic& d : diags) lines.insert(d.line);
  return lines;
}

TEST(LintRules, CatalogueIsWellFormed) {
  const auto& rules = Rules();
  ASSERT_FALSE(rules.empty());
  std::set<std::string> ids;
  for (const RuleInfo& rule : rules) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule " << rule.id;
    EXPECT_EQ(rule.severity, "error");
    EXPECT_FALSE(rule.summary.empty());
  }
  EXPECT_EQ(ids, (std::set<std::string>{"ND01", "ND02", "CC01", "DC01",
                                        "CP01", "HS01", "WC01", "HP01",
                                        "IN01"}));
}

TEST(LintRules, NondeterminismFixtureFires) {
  const std::string src = ReadFixture("nondeterminism.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"ND01"});
  // random_device, rand(), time(), getenv() — and nothing for the plain
  // `time` field at the bottom of the fixture.
  EXPECT_EQ(Lines(diags), (std::set<int>{7, 12, 16, 20}));
}

TEST(LintRules, NondeterminismAllowlistExempts) {
  const std::string src = ReadFixture("nondeterminism.cpp");
  EXPECT_TRUE(LintSource("src/support/thread_pool.cpp", src).empty());
}

TEST(LintRules, UnorderedIterationFixtureFires) {
  const std::string src = ReadFixture("unordered_iter.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"ND02"});
  // The range-for and the .begin() walk; the point lookup is fine.
  EXPECT_EQ(Lines(diags), (std::set<int>{10, 18}));
}

TEST(LintRules, UnorderedIterationScopedToOrderedLayers) {
  const std::string src = ReadFixture("unordered_iter.cpp");
  // Outside src/core, src/rl, src/sim the rule does not apply.
  EXPECT_TRUE(LintSource("bench/fixture.cpp", src).empty());
}

TEST(LintRules, UnorderedIterationSeesCompanionHeader) {
  // Member declared in the header, iterated in the .cpp — the companion
  // header parameter is what makes this visible (the EvalCache case).
  const std::string header =
      "#pragma once\n#include <unordered_map>\n"
      "struct S { std::unordered_map<int, int> table; };\n";
  const std::string source =
      "int Sum(const S& s) {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : s.table) total += v;\n"
      "  return total;\n"
      "}\n";
  const auto diags = LintSource("src/core/fixture.cpp", source, header);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "ND02");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintRules, ConcurrencyFixtureFires) {
  const std::string src = ReadFixture("concurrency.cpp");
  const auto diags = LintSource("src/rl/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"CC01"});
  // Two headers, the mutex, the atomic, and the lock_guard line.
  EXPECT_GE(diags.size(), 5u);
}

TEST(LintRules, ConcurrencyAllowedInSanctionedLayers) {
  const std::string src = ReadFixture("concurrency.cpp");
  EXPECT_TRUE(LintSource("src/support/fixture.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/core/eval_service.cpp", src).empty());
}

TEST(LintRules, DcheckSideEffectFixtureFires) {
  const std::string src = ReadFixture("dcheck_side_effect.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"DC01"});
  // ++, assignment, mutating member call; the pure read stays clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{9, 11, 16}));
}

TEST(LintRules, CheckpointMagicFixtureFires) {
  const std::string src = ReadFixture("checkpoint_magic.cpp");
  const auto diags = LintSource("src/rl/fixture.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "CP01");
  EXPECT_EQ(diags[0].line, 8);
}

TEST(LintRules, CheckpointMagicCleanWithVersionReference) {
  const std::string src = ReadFixture("checkpoint_magic.cpp") +
                          "constexpr int kVersionDigit = "
                          "kCheckpointFormatVersion;\n";
  EXPECT_TRUE(LintSource("src/rl/fixture.cpp", src).empty());
}

TEST(LintRules, MissingPragmaOnceFires) {
  const std::string src = ReadFixture("missing_pragma_once.h");
  const auto diags = LintSource("src/core/fixture.h", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "HS01");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, PragmaOnceOnlyAppliesToHeaders) {
  const std::string src = ReadFixture("missing_pragma_once.h");
  EXPECT_TRUE(LintSource("src/core/fixture.cpp", src).empty());
}

TEST(LintRules, WallClockFixtureFires) {
  const std::string src = ReadFixture("wall_clock.cpp");
  const auto diags = LintSource("src/rl/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"WC01"});
  // Only the standalone Stopwatch declaration; the member accesses and
  // comment mentions at the bottom of the fixture stay clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{9}));
}

TEST(LintRules, WallClockConfinedToSupportAndSinks) {
  const std::string src = ReadFixture("wall_clock.cpp");
  // src/support owns the clock; bench/ and tools/ are telemetry sinks
  // outside the rule's scope.
  EXPECT_TRUE(LintSource("src/support/metrics.cpp", src).empty());
  EXPECT_TRUE(LintSource("bench/fixture.cpp", src).empty());
  EXPECT_TRUE(LintSource("tools/fixture.cpp", src).empty());
}

TEST(LintRules, HotPathAllocFixtureFires) {
  const std::string src = ReadFixture("hot_path_alloc.cpp");
  const auto diags = LintSource("src/nn/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"HP01"});
  // The <unordered_map> include, raw new, std::malloc, std::free, and the
  // hash-map declaration; the vector scratch and the pool's member `free`
  // stay clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{5, 9, 10, 11, 15}));
}

TEST(LintRules, HotPathAllocScopedToKernelsAndExemptsPools) {
  const std::string src = ReadFixture("hot_path_alloc.cpp");
  EXPECT_EQ(RuleIds(LintSource("src/sim/simulator.cpp", src)),
            std::set<std::string>{"HP01"});
  // The delta-replay path carries the same no-allocation contract as the
  // simulator inner loop it splices into.
  EXPECT_EQ(RuleIds(LintSource("src/sim/delta.cpp", src)),
            std::set<std::string>{"HP01"});
  // The pools themselves are the sanctioned allocation layer.
  EXPECT_TRUE(LintSource("src/nn/arena.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/sim/sim_workspace.cpp", src).empty());
  // Outside the kernel files the rule does not apply at all.
  EXPECT_TRUE(LintSource("src/rl/fixture.cpp", src).empty());
}

TEST(LintRules, RawNumericParseFixtureFires) {
  const std::string src = ReadFixture("raw_numeric_parse.cpp");
  const auto diags = LintSource("src/graph/ingest.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"IN01"});
  // std::stoll, strtod and sscanf calls; the member access and the
  // variable named stod stay clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{7, 11, 15}));
}

TEST(LintRules, RawNumericParseScopedToGraphLayer) {
  const std::string src = ReadFixture("raw_numeric_parse.cpp");
  // parse_num.* is the sanctioned conversion layer; src/support parses
  // trusted input (args, telemetry JSON) and is out of scope entirely.
  EXPECT_TRUE(LintSource("src/graph/parse_num.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/support/json.cpp", src).empty());
  EXPECT_TRUE(LintSource("tools/fixture.cpp", src).empty());
}

TEST(LintRules, SuppressionsSilenceFindings) {
  const std::string src = ReadFixture("suppressed.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_TRUE(diags.empty()) << FormatDiagnostic(diags[0]);
  // The same file without its suppression comments does flag: strip them
  // to prove the comments are what silences the findings.
  std::string stripped = src;
  std::string::size_type at;
  while ((at = stripped.find("// eagle-lint:")) != std::string::npos) {
    stripped.erase(at, stripped.find('\n', at) - at);
  }
  EXPECT_FALSE(LintSource("src/core/fixture.cpp", stripped).empty());
}

TEST(LintRules, FormatDiagnosticIsFileLineParsable) {
  const std::string src = ReadFixture("nondeterminism.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  ASSERT_FALSE(diags.empty());
  const std::string line = FormatDiagnostic(diags[0]);
  EXPECT_EQ(line.rfind("src/core/fixture.cpp:7: error: [ND01]", 0), 0u)
      << line;
}

TEST(LintTreeTest, RealTreeIsClean) {
  const TreeResult result = LintTree(EAGLE_SOURCE_DIR);
  EXPECT_GT(result.files_scanned, 100);
  for (const Diagnostic& d : result.diagnostics) {
    ADD_FAILURE() << FormatDiagnostic(d);
  }
}

}  // namespace
}  // namespace eagle::lint
