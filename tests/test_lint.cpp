// Self-tests for eagle-lint: every rule must fire on its seeded fixture
// (tests/lint_fixtures/) with the right id and line, suppressions must
// silence findings, and the real tree must lint clean.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/lexer.h"
#include "tools/lint/linter.h"

namespace eagle::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path =
      std::string(EAGLE_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> RuleIds(const std::vector<Diagnostic>& diags) {
  std::set<std::string> ids;
  for (const Diagnostic& d : diags) ids.insert(d.rule);
  return ids;
}

std::set<int> Lines(const std::vector<Diagnostic>& diags) {
  std::set<int> lines;
  for (const Diagnostic& d : diags) lines.insert(d.line);
  return lines;
}

TEST(LintRules, CatalogueIsWellFormed) {
  const auto& rules = Rules();
  ASSERT_FALSE(rules.empty());
  std::set<std::string> ids;
  for (const RuleInfo& rule : rules) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule " << rule.id;
    EXPECT_EQ(rule.severity, "error");
    EXPECT_FALSE(rule.summary.empty());
  }
  EXPECT_EQ(ids, (std::set<std::string>{"ND01", "ND02", "CC01", "DC01",
                                        "CP01", "HS01", "WC01", "HP01",
                                        "IN01", "LY01", "ST01", "LK01",
                                        "HP02"}));
}

TEST(LintRules, NondeterminismFixtureFires) {
  const std::string src = ReadFixture("nondeterminism.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"ND01"});
  // random_device, rand(), time(), getenv() — and nothing for the plain
  // `time` field at the bottom of the fixture.
  EXPECT_EQ(Lines(diags), (std::set<int>{7, 12, 16, 20}));
}

TEST(LintRules, NondeterminismAllowlistExempts) {
  const std::string src = ReadFixture("nondeterminism.cpp");
  EXPECT_TRUE(LintSource("src/support/thread_pool.cpp", src).empty());
}

TEST(LintRules, UnorderedIterationFixtureFires) {
  const std::string src = ReadFixture("unordered_iter.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"ND02"});
  // The range-for and the .begin() walk; the point lookup is fine.
  EXPECT_EQ(Lines(diags), (std::set<int>{10, 18}));
}

TEST(LintRules, UnorderedIterationScopedToOrderedLayers) {
  const std::string src = ReadFixture("unordered_iter.cpp");
  // Outside src/core, src/rl, src/sim the rule does not apply.
  EXPECT_TRUE(LintSource("bench/fixture.cpp", src).empty());
}

TEST(LintRules, UnorderedIterationSeesCompanionHeader) {
  // Member declared in the header, iterated in the .cpp — the companion
  // header parameter is what makes this visible (the EvalCache case).
  const std::string header =
      "#pragma once\n#include <unordered_map>\n"
      "struct S { std::unordered_map<int, int> table; };\n";
  const std::string source =
      "int Sum(const S& s) {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : s.table) total += v;\n"
      "  return total;\n"
      "}\n";
  const auto diags = LintSource("src/core/fixture.cpp", source, header);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "ND02");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintRules, ConcurrencyFixtureFires) {
  const std::string src = ReadFixture("concurrency.cpp");
  const auto diags = LintSource("src/rl/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"CC01"});
  // Two headers, the mutex, the atomic, and the lock_guard line.
  EXPECT_GE(diags.size(), 5u);
}

TEST(LintRules, ConcurrencyAllowedInSanctionedLayers) {
  const std::string src = ReadFixture("concurrency.cpp");
  EXPECT_TRUE(LintSource("src/support/fixture.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/core/eval_service.cpp", src).empty());
}

TEST(LintRules, DcheckSideEffectFixtureFires) {
  const std::string src = ReadFixture("dcheck_side_effect.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"DC01"});
  // ++, assignment, mutating member call; the pure read stays clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{9, 11, 16}));
}

TEST(LintRules, CheckpointMagicFixtureFires) {
  const std::string src = ReadFixture("checkpoint_magic.cpp");
  const auto diags = LintSource("src/rl/fixture.cpp", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "CP01");
  EXPECT_EQ(diags[0].line, 8);
}

TEST(LintRules, CheckpointMagicCleanWithVersionReference) {
  const std::string src = ReadFixture("checkpoint_magic.cpp") +
                          "constexpr int kVersionDigit = "
                          "kCheckpointFormatVersion;\n";
  EXPECT_TRUE(LintSource("src/rl/fixture.cpp", src).empty());
}

TEST(LintRules, MissingPragmaOnceFires) {
  const std::string src = ReadFixture("missing_pragma_once.h");
  const auto diags = LintSource("src/core/fixture.h", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "HS01");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, PragmaOnceOnlyAppliesToHeaders) {
  const std::string src = ReadFixture("missing_pragma_once.h");
  EXPECT_TRUE(LintSource("src/core/fixture.cpp", src).empty());
}

TEST(LintRules, WallClockFixtureFires) {
  const std::string src = ReadFixture("wall_clock.cpp");
  const auto diags = LintSource("src/rl/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"WC01"});
  // Only the standalone Stopwatch declaration; the member accesses and
  // comment mentions at the bottom of the fixture stay clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{9}));
}

TEST(LintRules, WallClockConfinedToSupportAndSinks) {
  const std::string src = ReadFixture("wall_clock.cpp");
  // src/support owns the clock; bench/ and tools/ are telemetry sinks
  // outside the rule's scope.
  EXPECT_TRUE(LintSource("src/support/metrics.cpp", src).empty());
  EXPECT_TRUE(LintSource("bench/fixture.cpp", src).empty());
  EXPECT_TRUE(LintSource("tools/fixture.cpp", src).empty());
}

TEST(LintRules, HotPathAllocFixtureFires) {
  const std::string src = ReadFixture("hot_path_alloc.cpp");
  const auto diags = LintSource("src/nn/fixture.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"HP01"});
  // The <unordered_map> include, raw new, std::malloc, std::free, and the
  // hash-map declaration; the vector scratch and the pool's member `free`
  // stay clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{5, 9, 10, 11, 15}));
}

TEST(LintRules, HotPathAllocScopedToKernelsAndExemptsPools) {
  const std::string src = ReadFixture("hot_path_alloc.cpp");
  EXPECT_EQ(RuleIds(LintSource("src/sim/simulator.cpp", src)),
            std::set<std::string>{"HP01"});
  // The delta-replay path carries the same no-allocation contract as the
  // simulator inner loop it splices into.
  EXPECT_EQ(RuleIds(LintSource("src/sim/delta.cpp", src)),
            std::set<std::string>{"HP01"});
  // The pools themselves are the sanctioned allocation layer.
  EXPECT_TRUE(LintSource("src/nn/arena.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/sim/sim_workspace.cpp", src).empty());
  // Outside the kernel files the rule does not apply at all.
  EXPECT_TRUE(LintSource("src/rl/fixture.cpp", src).empty());
}

TEST(LintRules, RawNumericParseFixtureFires) {
  const std::string src = ReadFixture("raw_numeric_parse.cpp");
  const auto diags = LintSource("src/graph/ingest.cpp", src);
  EXPECT_EQ(RuleIds(diags), std::set<std::string>{"IN01"});
  // std::stoll, strtod and sscanf calls; the member access and the
  // variable named stod stay clean.
  EXPECT_EQ(Lines(diags), (std::set<int>{7, 11, 15}));
}

TEST(LintRules, RawNumericParseScopedToGraphLayer) {
  const std::string src = ReadFixture("raw_numeric_parse.cpp");
  // parse_num.* is the sanctioned conversion layer; src/support parses
  // trusted input (args, telemetry JSON) and is out of scope entirely.
  EXPECT_TRUE(LintSource("src/graph/parse_num.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/support/json.cpp", src).empty());
  EXPECT_TRUE(LintSource("tools/fixture.cpp", src).empty());
  // The cluster-spec importer parses the same class of untrusted files
  // as src/graph and is in scope; the rest of src/sim is not.
  EXPECT_EQ(RuleIds(LintSource("src/sim/cluster_ingest.cpp", src)),
            std::set<std::string>{"IN01"});
  EXPECT_TRUE(LintSource("src/sim/cluster.cpp", src).empty());
}

TEST(LintRules, SuppressionsSilenceFindings) {
  const std::string src = ReadFixture("suppressed.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  EXPECT_TRUE(diags.empty()) << FormatDiagnostic(diags[0]);
  // The same file without its suppression comments does flag: strip them
  // to prove the comments are what silences the findings.
  std::string stripped = src;
  std::string::size_type at;
  while ((at = stripped.find("// eagle-lint:")) != std::string::npos) {
    stripped.erase(at, stripped.find('\n', at) - at);
  }
  EXPECT_FALSE(LintSource("src/core/fixture.cpp", stripped).empty());
}

TEST(LintRules, FormatDiagnosticIsFileLineParsable) {
  const std::string src = ReadFixture("nondeterminism.cpp");
  const auto diags = LintSource("src/core/fixture.cpp", src);
  ASSERT_FALSE(diags.empty());
  const std::string line = FormatDiagnostic(diags[0]);
  EXPECT_EQ(line.rfind("src/core/fixture.cpp:7: error: [ND01]", 0), 0u)
      << line;
}

// --- Cross-file (two-phase) rules --------------------------------------

TEST(CrossFileRules, LayeringBackEdgeFires) {
  Analyzer analyzer;
  analyzer.AddFile("src/sim/engine.h", ReadFixture("layering_engine.h"));
  analyzer.AddFile("src/support/low.h", ReadFixture("layering_low.h"));
  const TreeResult result = analyzer.Run();
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "LY01");
  EXPECT_EQ(result.diagnostics[0].file, "src/support/low.h");
  EXPECT_EQ(result.diagnostics[0].line, 5);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(CrossFileRules, LayeringSuppressionSilencesBackEdge) {
  Analyzer analyzer;
  analyzer.AddFile("src/sim/engine.h", ReadFixture("layering_engine.h"));
  analyzer.AddFile("src/support/low.h",
                   ReadFixture("layering_low_suppressed.h"));
  const TreeResult result = analyzer.Run();
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 1);
}

TEST(CrossFileRules, IncludeCycleDiagnosed) {
  // Same-layer cycle: no back-edge, but the DFS must still flag it.
  Analyzer analyzer;
  analyzer.AddFile("src/sim/a.h", "#pragma once\n#include \"sim/b.h\"\n");
  analyzer.AddFile("src/sim/b.h", "#pragma once\n#include \"sim/a.h\"\n");
  const TreeResult result = analyzer.Run();
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "LY01");
  EXPECT_NE(result.diagnostics[0].message.find("include cycle"),
            std::string::npos)
      << result.diagnostics[0].message;
}

TEST(CrossFileRules, DiscardedStatusFires) {
  Analyzer analyzer;
  analyzer.AddFile("src/graph/api.h", ReadFixture("discarded_status_api.h"));
  analyzer.AddFile("src/graph/use.cpp",
                   ReadFixture("discarded_status_use.cpp"));
  const TreeResult result = analyzer.Run();
  EXPECT_EQ(RuleIds(result.diagnostics), std::set<std::string>{"ST01"});
  // Plain discard, discard inside the if-body, and the unjustified
  // (void) cast; the consumed call and the suppressed cast stay clean.
  EXPECT_EQ(Lines(result.diagnostics), (std::set<int>{8, 11, 16}));
  EXPECT_EQ(result.suppressed, 1);
}

TEST(CrossFileRules, LockOrderInversionFiresAtBothSites) {
  Analyzer analyzer;
  analyzer.AddFile("src/support/lock_order_first.cpp",
                   ReadFixture("lock_order_first.cpp"));
  analyzer.AddFile("src/support/lock_order_second.cpp",
                   ReadFixture("lock_order_second.cpp"));
  const TreeResult result = analyzer.Run();
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(RuleIds(result.diagnostics), std::set<std::string>{"LK01"});
  EXPECT_EQ(result.diagnostics[0].file, "src/support/lock_order_first.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 15);
  EXPECT_EQ(result.diagnostics[1].file, "src/support/lock_order_second.cpp");
  EXPECT_EQ(result.diagnostics[1].line, 13);
}

TEST(CrossFileRules, LockOrderConsistentOrderIsClean) {
  Analyzer analyzer;
  analyzer.AddFile("src/support/lock_order_first.cpp",
                   ReadFixture("lock_order_first.cpp"));
  const TreeResult result = analyzer.Run();
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(CrossFileRules, LockOrderSuppressionSilencesOneSite) {
  Analyzer analyzer;
  analyzer.AddFile("src/support/lock_order_first.cpp",
                   ReadFixture("lock_order_first.cpp"));
  analyzer.AddFile("src/support/lock_order_second.cpp",
                   ReadFixture("lock_order_second_suppressed.cpp"));
  const TreeResult result = analyzer.Run();
  // The waived site goes quiet; its counterpart still points at the pair.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "src/support/lock_order_first.cpp");
  EXPECT_EQ(result.suppressed, 1);
}

TEST(CrossFileRules, HotPathEscapeFires) {
  Analyzer analyzer;
  analyzer.AddFile("src/graph/alloc_helper.h",
                   ReadFixture("hot_path_escape_helper.h"));
  analyzer.AddFile("src/nn/kernel_fixture.cpp",
                   ReadFixture("hot_path_escape_kernel.cpp"));
  const TreeResult result = analyzer.Run();
  EXPECT_EQ(RuleIds(result.diagnostics), std::set<std::string>{"HP02"});
  // Line 10: Step's definition (transitive escape through GrabBuffer).
  // Line 16: the direct make_unique, invisible to textual HP01.
  EXPECT_EQ(Lines(result.diagnostics), (std::set<int>{10, 16}));
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/nn/kernel_fixture.cpp");
  }
}

TEST(CrossFileRules, HotPathEscapeNamesTheChain) {
  Analyzer analyzer;
  analyzer.AddFile("src/graph/alloc_helper.h",
                   ReadFixture("hot_path_escape_helper.h"));
  analyzer.AddFile("src/nn/kernel_fixture.cpp",
                   ReadFixture("hot_path_escape_kernel.cpp"));
  const TreeResult result = analyzer.Run();
  bool saw_chain = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.message.find("GrabBuffer") != std::string::npos &&
        d.message.find("src/graph/alloc_helper.h:6") != std::string::npos) {
      saw_chain = true;
    }
  }
  EXPECT_TRUE(saw_chain) << "transitive diagnostic must name the sink";
}

TEST(CrossFileRules, HotPathEscapeSuppressionSilences) {
  Analyzer analyzer;
  analyzer.AddFile("src/graph/alloc_helper.h",
                   ReadFixture("hot_path_escape_helper.h"));
  analyzer.AddFile("src/nn/kernel_fixture.cpp",
                   ReadFixture("hot_path_escape_kernel_suppressed.cpp"));
  const TreeResult result = analyzer.Run();
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 2);
}

// --- Lexer regressions -------------------------------------------------

TEST(LexerRegression, RawStringContentsDoNotLeakTokens) {
  // Encoding-prefixed raw strings (u8R, LR, uR, UR) once leaked their
  // contents as real tokens; every literal in the fixture would then
  // trip ND01 or CC01 under a scoped path.
  const std::string src = ReadFixture("lexer_literals.cpp");
  EXPECT_TRUE(LintSource("src/rl/fixture.cpp", src).empty());
  const LexedFile lexed = Lex(src);
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "mutex") << "raw string leaked at line " << t.line;
    EXPECT_NE(t.text, "rand") << "raw string leaked at line " << t.line;
    EXPECT_NE(t.text, "time") << "raw string leaked at line " << t.line;
    EXPECT_NE(t.text, "srand") << "raw string leaked at line " << t.line;
  }
}

TEST(LexerRegression, DigitSeparatorsStayOneToken) {
  const LexedFile lexed = Lex("int x = f(1'000'000, 'm');\n");
  bool saw_number = false;
  bool saw_char = false;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kNumber && t.text == "1'000'000") {
      saw_number = true;
    }
    if (t.kind == TokKind::kChar && t.text == "m") saw_char = true;
  }
  // A greedy separator scan would swallow ", '" and mangle both tokens.
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_char);
}

TEST(LexerRegression, RawStringInsidePpDirective) {
  const LexedFile lexed =
      Lex("#define SCHEMA R\"({\"a\"://})\"\nint after = 1;\n");
  // The raw string's // must not start a comment that eats the line, and
  // the code after the directive must still lex.
  bool saw_after = false;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kIdentifier && t.text == "after") {
      saw_after = true;
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(LintTreeTest, RealTreeIsClean) {
  const TreeResult result = LintTree(EAGLE_SOURCE_DIR);
  EXPECT_GT(result.files_scanned, 100);
  for (const Diagnostic& d : result.diagnostics) {
    ADD_FAILURE() << FormatDiagnostic(d);
  }
  // The tree carries at least one justified waiver (the one-time
  // parameter-store construction in src/nn/layers.cpp).
  EXPECT_GE(result.suppressed, 1);
}

}  // namespace
}  // namespace eagle::lint
