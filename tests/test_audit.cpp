// Schedule-auditor tests: the real simulator must audit clean on every
// benchmark graph, and hand-broken schedules must each trip the
// invariant they violate (sim/audit.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "models/zoo.h"
#include "sim/audit.h"
#include "sim/placement.h"
#include "sim/simulator.h"

namespace eagle::sim {
namespace {

SimulatorOptions RecordingOptions() {
  SimulatorOptions options;
  options.record_schedule = true;
  return options;
}

// Round-robin over the GPUs: enough spread to exercise transfers,
// channel contention and per-device memory on every benchmark.
Placement RoundRobin(const graph::OpGraph& graph, const ClusterSpec& cluster) {
  const std::vector<DeviceId> gpus = cluster.Gpus();
  std::vector<DeviceId> devices(static_cast<std::size_t>(graph.num_ops()));
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    devices[static_cast<std::size_t>(i)] =
        gpus[static_cast<std::size_t>(i) % gpus.size()];
  }
  Placement placement(graph, std::move(devices));
  placement.Normalize(graph, cluster);
  return placement;
}

bool HasViolation(const AuditReport& report, const std::string& invariant) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const AuditViolation& v) {
                       return v.invariant == invariant;
                     });
}

struct Audited {
  graph::OpGraph graph;
  ClusterSpec cluster;
  Placement placement;
  StepResult result;
};

Audited RunBenchmark(models::Benchmark benchmark) {
  Audited out;
  models::ZooOptions zoo;
  zoo.reduced = true;
  out.graph = models::BuildBenchmark(benchmark, zoo);
  out.cluster = MakeDefaultCluster();
  out.placement = RoundRobin(out.graph, out.cluster);
  ExecutionSimulator sim(out.graph, out.cluster, RecordingOptions());
  out.result = sim.Run(out.placement);
  return out;
}

AuditReport Audit(const Audited& a) {
  return AuditSchedule(a.result, a.graph, a.cluster, a.placement,
                       RecordingOptions());
}

TEST(AuditClean, InceptionV3) {
  const Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  ASSERT_FALSE(a.result.schedule.empty());
  ASSERT_FALSE(a.result.transfers.empty());
  const AuditReport report = Audit(a);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditClean, Gnmt) {
  const Audited a = RunBenchmark(models::Benchmark::kGNMT);
  const AuditReport report = Audit(a);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditClean, BertBase) {
  const Audited a = RunBenchmark(models::Benchmark::kBertBase);
  const AuditReport report = Audit(a);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditClean, TightMemoryClusterStaysConsistent) {
  // Under a shrunken-memory cluster the simulator may report OOM; the
  // auditor must still agree with whatever it reported.
  models::ZooOptions zoo;
  zoo.reduced = true;
  const auto graph =
      models::BuildBenchmark(models::Benchmark::kInceptionV3, zoo);
  const auto cluster = MakeScaledCluster(0.02).value();
  const Placement placement = RoundRobin(graph, cluster);
  ExecutionSimulator sim(graph, cluster, RecordingOptions());
  const StepResult result = sim.Run(placement);
  const AuditReport report =
      AuditSchedule(result, graph, cluster, placement, RecordingOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditBroken, TimeRegression) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  ScheduledOp& victim = a.result.schedule[a.result.schedule.size() / 2];
  victim.end_seconds = victim.start_seconds - 1.0;
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "device-monotonic")) << report.ToString();
}

TEST(AuditBroken, MissingOp) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  a.result.schedule.pop_back();
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "schedule-complete")) << report.ToString();
}

TEST(AuditBroken, ConsumerStartsBeforePredecessor) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  // Pull an op with predecessors back to time zero: it now starts before
  // its inputs exist.
  for (ScheduledOp& rec : a.result.schedule) {
    if (!a.graph.in_edges(rec.op).empty() && rec.start_seconds > 0.0) {
      rec.end_seconds -= rec.start_seconds;
      rec.start_seconds = 0.0;
      break;
    }
  }
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "precedence")) << report.ToString();
}

TEST(AuditBroken, RemovedTransfer) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  ASSERT_FALSE(a.result.transfers.empty());
  a.result.num_transfers -= 1;
  a.result.transfer_bytes_total -= a.result.transfers.front().bytes;
  a.result.transfers.erase(a.result.transfers.begin());
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "transfer-missing")) << report.ToString();
}

TEST(AuditBroken, OverlappingChannelTransfers) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  auto& transfers = a.result.transfers;
  // Find two transfers serialized on one channel and slide the later one
  // under the earlier.
  bool tampered = false;
  for (std::size_t i = 0; i < transfers.size() && !tampered; ++i) {
    for (std::size_t j = i + 1; j < transfers.size() && !tampered; ++j) {
      if (a.cluster.link_channel(transfers[i].src, transfers[i].dst) !=
          a.cluster.link_channel(transfers[j].src, transfers[j].dst)) {
        continue;
      }
      ScheduledTransfer& early =
          transfers[i].start_seconds <= transfers[j].start_seconds
              ? transfers[i]
              : transfers[j];
      ScheduledTransfer& late =
          transfers[i].start_seconds <= transfers[j].start_seconds
              ? transfers[j]
              : transfers[i];
      if (late.start_seconds < early.end_seconds) continue;  // already odd
      late.start_seconds = early.start_seconds;
      tampered = true;
    }
  }
  ASSERT_TRUE(tampered);
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "transfer-channel-overlap"))
      << report.ToString();
}

TEST(AuditBroken, LeakedAllocation) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  // Understate one device's peak: the liveness replay allocates more
  // than the result admits to — a leak in the accounting.
  bool tampered = false;
  for (auto& peak : a.result.device_peak_bytes) {
    if (peak > 0) {
      peak -= 1;
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "memory-accounting")) << report.ToString();
}

TEST(AuditBroken, FalseOom) {
  Audited a = RunBenchmark(models::Benchmark::kInceptionV3);
  ASSERT_FALSE(a.result.oom);
  a.result.oom = true;
  a.result.oom_device = a.cluster.Gpus().front();
  const AuditReport report = Audit(a);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "oom-consistency")) << report.ToString();
}

TEST(AuditReportTest, ToStringListsViolations) {
  AuditReport report;
  report.violations.push_back(AuditViolation{"precedence", "op 3 too early"});
  report.dropped = 2;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("3 schedule-invariant violation(s)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[precedence]"), std::string::npos);
  EXPECT_NE(text.find("2 more"), std::string::npos);
}

}  // namespace
}  // namespace eagle::sim
