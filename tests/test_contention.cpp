// Tests for link contention channels (shared PCIe root complex) and
// trainer checkpointing.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "models/synthetic.h"
#include "nn/serialize.h"
#include "rl/trainer.h"
#include "sim/simulator.h"

namespace eagle {
namespace {

TEST(LinkChannels, DefaultChannelsDistinct) {
  const auto cluster = sim::MakeDefaultCluster();
  // Every directed pair gets its own channel by default.
  EXPECT_NE(cluster.link_channel(0, 1), cluster.link_channel(0, 2));
  EXPECT_NE(cluster.link_channel(0, 1), cluster.link_channel(1, 0));
  EXPECT_LT(cluster.link_channel(0, 1), cluster.num_link_channels());
}

TEST(LinkChannels, SharedHostBusMapsHostLinks) {
  sim::ClusterOptions options;
  options.shared_host_bus = true;
  const auto cluster = sim::MakeDefaultCluster(options);
  EXPECT_EQ(cluster.link_channel(0, 1), cluster.link_channel(0, 2));
  EXPECT_EQ(cluster.link_channel(1, 0), cluster.link_channel(3, 0));
  // GPU-peer links stay independent.
  EXPECT_NE(cluster.link_channel(1, 2), cluster.link_channel(1, 3));
}

TEST(LinkChannels, SharedBusSlowsConcurrentHostTransfers) {
  // One producer on CPU feeding big tensors to consumers on all four
  // GPUs: with independent host links the four transfers overlap; with a
  // shared bus they serialize and the step takes longer.
  graph::OpGraph g;
  graph::OpDef src;
  src.name = "src";
  src.type = graph::OpType::kPlaceholder;
  src.output_shape = graph::TensorShape{1 << 24};  // 64 MB
  src.cpu_only = true;
  g.AddOp(src);
  for (int i = 0; i < 4; ++i) {
    graph::OpDef sink;
    sink.name = "sink" + std::to_string(i);
    sink.type = graph::OpType::kMatMul;
    sink.flops = 1e6;
    sink.output_shape = graph::TensorShape{16};
    g.AddOp(sink);
    g.AddEdge(0, 1 + i);
  }
  std::vector<sim::DeviceId> devices{0, 1, 2, 3, 4};

  const auto independent = sim::MakeDefaultCluster();
  sim::Placement p1(g, devices);
  p1.Normalize(g, independent);
  const auto t_independent =
      sim::ExecutionSimulator(g, independent).Run(p1).step_seconds;

  sim::ClusterOptions shared_options;
  shared_options.shared_host_bus = true;
  const auto shared = sim::MakeDefaultCluster(shared_options);
  sim::Placement p2(g, devices);
  p2.Normalize(g, shared);
  const auto t_shared =
      sim::ExecutionSimulator(g, shared).Run(p2).step_seconds;

  EXPECT_GT(t_shared, t_independent * 2.0);
}

TEST(Checkpoint, TrainerWritesOnImprovement) {
  const std::string path = ::testing::TempDir() + "/eagle_ckpt.bin";
  std::remove(path.c_str());
  auto graph = models::BuildParallelChains(2, 6, 1 << 14, 1e9);
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster);
  core::AgentDims dims;
  dims.num_groups = 8;
  dims.placer_hidden = 16;
  auto agent = core::MakeEagleAgent(graph, cluster, dims, 4);
  rl::TrainerOptions options;
  options.total_samples = 20;
  options.checkpoint_path = path;
  const auto result = rl::TrainAgent(*agent, env, options);
  ASSERT_TRUE(result.found_valid);

  // The checkpoint restores into an identically-shaped agent.
  auto restored = core::MakeEagleAgent(graph, cluster, dims, 999);
  EXPECT_GT(nn::LoadParams(restored->params(), path), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eagle
