#include <gtest/gtest.h>

#include <cmath>

#include "rl/value_baseline.h"

namespace eagle::rl {
namespace {

Sample MakeSample(std::vector<std::int32_t> devices, double reward) {
  Sample sample;
  sample.group_devices = std::move(devices);
  sample.reward = reward;
  sample.valid = true;
  return sample;
}

TEST(ValueBaseline, PredictsBeforeTrainingIsFinite) {
  ValueBaseline critic(5);
  const double v = critic.Predict(MakeSample({0, 1, 2, 3, 4}, 0.0));
  EXPECT_TRUE(std::isfinite(v));
}

TEST(ValueBaseline, LearnsDecisionConditionedValues) {
  // Two decision mixes with very different rewards: after training the
  // critic must separate them.
  ValueBaseline critic(3, {.hidden = 8, .lr = 0.05, .epochs_per_batch = 4});
  const Sample good = MakeSample({0, 0, 0, 0}, -1.0);
  const Sample bad = MakeSample({2, 2, 2, 2}, -5.0);
  for (int i = 0; i < 200; ++i) {
    critic.Update({good, bad});
  }
  EXPECT_NEAR(critic.Predict(good), -1.0, 0.5);
  EXPECT_NEAR(critic.Predict(bad), -5.0, 0.5);
  EXPECT_LT(critic.Predict(bad), critic.Predict(good));
}

TEST(ValueBaseline, MseDecreases) {
  ValueBaseline critic(4, {.hidden = 8, .lr = 0.05, .epochs_per_batch = 2});
  std::vector<Sample> batch{MakeSample({0, 1}, -2.0),
                            MakeSample({2, 3}, -4.0)};
  const double first = critic.Update(batch);
  double last = first;
  for (int i = 0; i < 100; ++i) last = critic.Update(batch);
  EXPECT_LT(last, first);
}

TEST(ValueBaseline, EmptyBatchNoop) {
  ValueBaseline critic(3);
  EXPECT_DOUBLE_EQ(critic.Update({}), 0.0);
}

TEST(ValueBaseline, EmptyDecisionHandled) {
  ValueBaseline critic(3);
  Sample sample;
  sample.reward = -1.0;
  EXPECT_TRUE(std::isfinite(critic.Predict(sample)));
  EXPECT_GE(critic.Update({sample}), 0.0);
}

TEST(ValueBaseline, RejectsOutOfRangeDevice) {
  ValueBaseline critic(2);
  EXPECT_THROW(critic.Predict(MakeSample({5}, 0.0)), std::logic_error);
}

}  // namespace
}  // namespace eagle::rl
