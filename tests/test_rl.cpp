#include <gtest/gtest.h>

#include <cmath>

#include "models/synthetic.h"
#include "rl/baseline.h"
#include "rl/cross_entropy.h"
#include "rl/ppo.h"
#include "rl/reinforce.h"
#include "rl/reward.h"
#include "rl/trainer.h"

namespace eagle::rl {
namespace {

// A tiny two-op policy over the default 5-device cluster: logits are a raw
// parameter matrix, one categorical per op. Serves as the minimal
// PolicyAgent for algorithm and trainer tests.
class StubAgent : public PolicyAgent {
 public:
  StubAgent(const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
            std::uint64_t seed)
      : graph_(&graph), cluster_(&cluster) {
    logits_ = store_.Create("logits", graph.num_ops(),
                            cluster.num_devices());
    support::Rng rng(seed);
    nn::UniformInit(logits_->value, -0.01f, 0.01f, rng);
  }

  Sample SampleDecision(support::Rng& rng) override {
    nn::Tape tape;
    nn::Var probs = tape.Softmax(tape.Param(logits_));
    Sample sample;
    sample.grouping.resize(static_cast<std::size_t>(graph_->num_ops()));
    sample.group_devices.resize(static_cast<std::size_t>(graph_->num_ops()));
    std::vector<int> picks(static_cast<std::size_t>(graph_->num_ops()));
    for (int i = 0; i < graph_->num_ops(); ++i) {
      sample.grouping[static_cast<std::size_t>(i)] = i;  // one op per group
      const auto d = static_cast<int>(rng.NextFromProbs(
          tape.value(probs).row(i),
          static_cast<std::size_t>(cluster_->num_devices())));
      sample.group_devices[static_cast<std::size_t>(i)] = d;
      picks[static_cast<std::size_t>(i)] = d;
    }
    nn::Var logp = tape.Sum(
        tape.PickPerRow(tape.LogSoftmax(tape.Param(logits_)), picks));
    sample.logp = tape.value(logp).at(0, 0);
    return sample;
  }

  Score ScoreDecision(nn::Tape& tape, const Sample& sample) override {
    std::vector<int> picks(sample.group_devices.begin(),
                           sample.group_devices.end());
    nn::Var logsm = tape.LogSoftmax(tape.Param(logits_));
    nn::Var probs = tape.Softmax(tape.Param(logits_));
    Score score;
    score.logp = tape.Sum(tape.PickPerRow(logsm, picks));
    score.entropy = tape.Scale(
        tape.Sum(tape.Mul(probs, logsm)),
        -1.0f / static_cast<float>(graph_->num_ops()));
    return score;
  }

  sim::Placement ToPlacement(const Sample& sample) const override {
    std::vector<sim::DeviceId> devices(sample.group_devices.begin(),
                                       sample.group_devices.end());
    sim::Placement placement(*graph_, std::move(devices));
    placement.Normalize(*graph_, *cluster_);
    return placement;
  }

  nn::ParamStore& params() override { return store_; }
  const char* name() const override { return "stub"; }

  float Probability(int op, int device) const {
    nn::Tape tape;
    nn::Var probs = tape.Softmax(
        const_cast<StubAgent*>(this)->MakeLogitsVar(tape));
    return tape.value(probs).at(op, device);
  }

 private:
  nn::Var MakeLogitsVar(nn::Tape& tape) { return tape.Param(logits_); }

  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  nn::ParamStore store_;
  nn::Parameter* logits_;
};

// Environment rewarding device 1 for every op; device 4 is "OOM".
class StubEnv : public Environment {
 public:
  sim::EvalResult Evaluate(const sim::Placement& placement,
                           support::Rng*) override {
    sim::EvalResult result;
    result.measurement_cost_seconds = 60.0;
    bool oom = false;
    double time = 1.0;
    for (int i = 0; i < placement.num_ops(); ++i) {
      if (placement.device(i) == 4) oom = true;
      if (placement.device(i) != 1) time += 1.0;
    }
    if (oom) {
      result.valid = false;
      return result;
    }
    result.valid = true;
    result.per_step_seconds = time;
    result.true_per_step_seconds = time;
    return result;
  }
  double InvalidPenaltySeconds() const override { return 100.0; }
};

graph::OpGraph TinyGraph() { return models::BuildChain(1, 16, 1e6); }

TEST(Reward, NegativeSqrt) {
  sim::EvalResult eval;
  eval.valid = true;
  eval.per_step_seconds = 4.0;
  EXPECT_DOUBLE_EQ(ComputeReward(eval, {100.0}), -2.0);
}

TEST(Reward, PenaltyForInvalid) {
  sim::EvalResult eval;
  eval.valid = false;
  EXPECT_DOUBLE_EQ(ComputeReward(eval, {25.0}), -5.0);
}

TEST(Baseline, EmaTracksRewards) {
  EmaBaseline baseline(0.5);
  EXPECT_DOUBLE_EQ(baseline.AdvantageAndUpdate(10.0), 0.0);  // seeds
  EXPECT_DOUBLE_EQ(baseline.value(), 10.0);
  // Advantage uses baseline BEFORE update.
  EXPECT_DOUBLE_EQ(baseline.AdvantageAndUpdate(20.0), 10.0);
  EXPECT_DOUBLE_EQ(baseline.value(), 15.0);
}

TEST(CrossEntropy, SelectsTopValidByReward) {
  std::vector<Sample> pool(5);
  pool[0].valid = true;
  pool[0].reward = -3.0;
  pool[1].valid = false;
  pool[1].reward = 100.0;  // invalid: excluded even with high reward
  pool[2].valid = true;
  pool[2].reward = -1.0;
  pool[3].valid = true;
  pool[3].reward = -2.0;
  pool[4].valid = true;
  pool[4].reward = -5.0;
  const auto elites = SelectElites(pool, 2);
  ASSERT_EQ(elites.size(), 2u);
  EXPECT_EQ(elites[0], 2u);
  EXPECT_EQ(elites[1], 3u);
}

TEST(CrossEntropy, EmptyPoolNoop) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 1);
  nn::Adam adam(agent.params());
  EXPECT_EQ(CrossEntropyUpdate(agent, adam, {}, {}), 0);
}

TEST(Reinforce, MovesPolicyTowardAdvantage) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 2);
  nn::Adam adam(agent.params());
  // A batch where choosing device 1 for all ops had positive advantage.
  Sample good;
  good.grouping = {0, 1};
  good.group_devices = {1, 1};
  good.advantage = 1.0;
  const float before = agent.Probability(0, 1);
  for (int i = 0; i < 10; ++i) {
    ReinforceUpdate(agent, adam, {good}, {});
  }
  EXPECT_GT(agent.Probability(0, 1), before);
}

TEST(Ppo, MovesPolicyAndClipsRatio) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 3);
  nn::Adam adam(agent.params());
  Sample good;
  good.grouping = {0, 1};
  good.group_devices = {1, 1};
  good.advantage = 1.0;
  // logp_old ≈ uniform over 5 devices for 2 ops.
  good.logp = 2.0 * std::log(1.0 / 5.0);
  const float before = agent.Probability(0, 1);
  PpoOptions options;
  const auto stats = PpoUpdate(agent, adam, {good}, options);
  EXPECT_GT(agent.Probability(0, 1), before);
  // After clip-region training the realized ratio stays near 1+ε.
  EXPECT_LE(stats.mean_ratio_last, (1.0 + options.clip_epsilon) * 1.5);
  EXPECT_GT(stats.grad_norm_last, 0.0);
}

TEST(Ppo, NegativeAdvantageReducesProbability) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 4);
  nn::Adam adam(agent.params());
  Sample bad;
  bad.grouping = {0, 1};
  bad.group_devices = {2, 2};
  bad.advantage = -1.0;
  bad.logp = 2.0 * std::log(1.0 / 5.0);
  const float before = agent.Probability(0, 2);
  PpoUpdate(agent, adam, {bad}, {});
  EXPECT_LT(agent.Probability(0, 2), before);
}

TEST(Ppo, DecisionNormalizationKeepsRatiosMeaningful) {
  // With a joint logp over many decisions, an unnormalized ratio would be
  // exp(large) and saturate the clip; normalized by num_decisions the
  // realized mean ratio stays near 1.
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 21);
  nn::Adam adam(agent.params());
  support::Rng rng(22);
  Sample sample = agent.SampleDecision(rng);
  sample.advantage = 1.0;
  sample.logp -= 50.0;          // pretend the sampling policy was far away
  sample.num_decisions = 100;   // ...across 100 decisions
  PpoOptions options;
  const auto stats = PpoUpdate(agent, adam, {sample}, options);
  EXPECT_GT(stats.mean_ratio_last, 0.5);
  EXPECT_LT(stats.mean_ratio_last, 5.0);

  // Without normalization the same sample saturates at the clamp bound.
  StubAgent agent2(graph, cluster, 21);
  nn::Adam adam2(agent2.params());
  options.normalize_by_decisions = false;
  const auto stats2 = PpoUpdate(agent2, adam2, {sample}, options);
  EXPECT_GT(stats2.mean_ratio_last, 100.0);
}

TEST(Trainer, LearnsStubEnvironment) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 5);
  StubEnv env;
  TrainerOptions options;
  options.total_samples = 200;
  options.seed = 6;
  const auto result = TrainAgent(agent, env, options);
  EXPECT_TRUE(result.found_valid);
  // Optimal step time is 1.0 (all ops on device 1).
  EXPECT_NEAR(result.best_per_step_seconds, 1.0, 1e-9);
  EXPECT_EQ(result.total_samples, 200);
  // Virtual clock: 200 samples x 60 s.
  EXPECT_NEAR(result.total_virtual_hours, 200 * 60.0 / 3600.0, 1e-9);
}

TEST(Trainer, HistoryBestMonotone) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 7);
  StubEnv env;
  TrainerOptions options;
  options.total_samples = 60;
  const auto result = TrainAgent(agent, env, options);
  ASSERT_EQ(result.history.size(), 60u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i].best_so_far_seconds,
              result.history[i - 1].best_so_far_seconds);
    EXPECT_GE(result.history[i].virtual_hours,
              result.history[i - 1].virtual_hours);
  }
}

TEST(Trainer, CountsInvalidSamples) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 8);
  StubEnv env;
  TrainerOptions options;
  options.total_samples = 100;
  options.seed = 9;
  const auto result = TrainAgent(agent, env, options);
  // Device 4 is sampled sometimes early on -> some invalid samples.
  EXPECT_GT(result.invalid_samples, 0);
  EXPECT_LT(result.invalid_samples, 100);
}

TEST(Trainer, VirtualBudgetStopsEarly) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubAgent agent(graph, cluster, 10);
  StubEnv env;
  TrainerOptions options;
  options.total_samples = 1000;
  options.max_virtual_hours = 0.5;  // 30 samples x 60 s = 0.5 h
  const auto result = TrainAgent(agent, env, options);
  EXPECT_LE(result.total_samples, 31);
}

TEST(Trainer, DeterministicForSeed) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubEnv env;
  TrainerOptions options;
  options.total_samples = 80;
  options.seed = 11;
  StubAgent agent1(graph, cluster, 12);
  const auto r1 = TrainAgent(agent1, env, options);
  StubAgent agent2(graph, cluster, 12);
  const auto r2 = TrainAgent(agent2, env, options);
  EXPECT_EQ(r1.best_per_step_seconds, r2.best_per_step_seconds);
  EXPECT_EQ(r1.invalid_samples, r2.invalid_samples);
}

TEST(Trainer, AllAlgorithmsRun) {
  auto graph = TinyGraph();
  const auto cluster = sim::MakeDefaultCluster();
  StubEnv env;
  for (auto algorithm :
       {Algorithm::kReinforce, Algorithm::kPpo, Algorithm::kPpoCe}) {
    StubAgent agent(graph, cluster, 13);
    TrainerOptions options;
    options.algorithm = algorithm;
    options.total_samples = 60;
    options.ce_interval = 20;
    const auto result = TrainAgent(agent, env, options);
    EXPECT_TRUE(result.found_valid) << AlgorithmName(algorithm);
    EXPECT_LT(result.best_per_step_seconds, 3.0 + 1e-9)
        << AlgorithmName(algorithm);
  }
}

TEST(Trainer, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kPpo), "PPO");
  EXPECT_STREQ(AlgorithmName(Algorithm::kPpoCe), "PPO+CE");
  EXPECT_STREQ(AlgorithmName(Algorithm::kReinforce), "REINFORCE");
}

}  // namespace
}  // namespace eagle::rl
