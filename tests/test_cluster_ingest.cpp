// Cluster-spec ingestion and device-model tests: the malformed-fixture
// corpus (tests/cluster_fixtures/, one code+line assertion per case), the
// happy-path .ec/.json grammars including channel labels and the default
// tier, ResolveCluster name dispatch, the hierarchical builders, and the
// PR's device-model bugfix regressions (dense channel re-indexing under
// AddDevice interleaving, zero-cost self transfers, unconfigured-link
// validation, MakeScaledCluster status propagation).
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "sim/cluster_ingest.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "support/status.h"

namespace eagle::sim {
namespace {

using support::ErrorCode;
using support::Status;
using support::StatusOr;

std::string FixturePath(const std::string& name) {
  return std::string(EAGLE_SOURCE_DIR) + "/tests/cluster_fixtures/" + name;
}

std::string ShippedClusterPath(const std::string& name) {
  return std::string(EAGLE_SOURCE_DIR) + "/clusters/" + name;
}

// ---------------------------------------------------------------------------
// The malformed-fixture corpus: every file must come back as the
// manifest's taxonomy code, at the manifest's line, never as a throw.

struct FixtureCase {
  std::string file;
  ErrorCode code = ErrorCode::kOk;
  int line = -1;  // -1: no line attribution expected
  bool tiny = false;
};

std::vector<FixtureCase> ReadManifest() {
  std::ifstream in(FixturePath("MANIFEST"));
  EXPECT_TRUE(in.good()) << "missing " << FixturePath("MANIFEST");
  std::vector<FixtureCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    FixtureCase c;
    std::string code, line_spec, flag;
    fields >> c.file >> code >> line_spec >> flag;
    EXPECT_TRUE(support::ErrorCodeFromName(code, &c.code))
        << "bad code in MANIFEST: " << line;
    if (line_spec != "-") c.line = std::stoi(line_spec);
    c.tiny = flag == "tiny";
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(ClusterFixtureCorpus, EveryFixtureFailsWithItsDocumentedCodeAndLine) {
  const std::vector<FixtureCase> cases = ReadManifest();
  ASSERT_GE(cases.size(), 40u) << "fixture corpus shrank";
  for (const FixtureCase& c : cases) {
    ClusterIngestOptions opts;
    if (c.tiny) opts.limits.max_devices = 3;
    const std::string path = FixturePath(c.file);
    const StatusOr<ClusterSpec> parsed = ImportClusterFile(path, opts);
    ASSERT_FALSE(parsed.ok()) << c.file << " unexpectedly parsed";
    const Status& status = parsed.status();
    EXPECT_EQ(support::ErrorCodeName(status.code()),
              std::string(support::ErrorCodeName(c.code)))
        << c.file << ": " << status.ToString();
    EXPECT_EQ(status.file(), path) << status.ToString();
    if (c.line >= 0) {
      EXPECT_EQ(status.line(), c.line) << c.file << ": " << status.ToString();
    }
    EXPECT_FALSE(status.message().empty());
  }
}

TEST(ClusterFixtureCorpus, CoversTheClusterTaxonomy) {
  // Every code the cluster parsers can produce except kIo (which needs an
  // unopenable file, covered below) must appear in the corpus. kUnknownOp
  // is graph-only: clusters have no op-type catalogue.
  std::map<ErrorCode, int> seen;
  for (const FixtureCase& c : ReadManifest()) seen[c.code]++;
  for (ErrorCode code :
       {ErrorCode::kSyntax, ErrorCode::kDuplicateOp, ErrorCode::kDuplicateEdge,
        ErrorCode::kDanglingRef, ErrorCode::kCycle,
        ErrorCode::kNumericOverflow, ErrorCode::kResourceLimit}) {
    EXPECT_GT(seen[code], 0)
        << "no fixture for " << support::ErrorCodeName(code);
  }
}

TEST(ImportClusterFile, MissingFileIsIo) {
  const auto result = ImportClusterFile(FixturePath("does_not_exist.ec"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kIo);
}

// ---------------------------------------------------------------------------
// Happy paths: both grammars, channel labels, the default tier.

constexpr char kTextSpec[] = R"(# two GPUs behind one root, an IB default
device host cpu gflops=80 mem_bw=60 overhead=25 mem=1073741824
device fast gpu gflops=2500 mem_bw=550 overhead=50 mem=536870912
device slow gpu gflops=900 mem=268435456
default_link bw=9 lat=130
link host fast bw=11 lat=50 chan=root bidir
link host slow bw=11 lat=50 chan=root bidir
link fast slow bw=44 lat=6 bidir
)";

TEST(ParseTextCluster, ParsesDevicesLinksChannelsAndDefaults) {
  const auto parsed = ParseTextCluster(std::string(kTextSpec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& c = parsed.value();
  ASSERT_EQ(c.num_devices(), 3);
  EXPECT_EQ(c.device(0).name, "host");
  EXPECT_EQ(c.device(0).kind, DeviceKind::kCPU);
  EXPECT_DOUBLE_EQ(c.device(1).gflops, 2500.0);
  EXPECT_EQ(c.device(1).memory_bytes, 536870912);
  // Unspecified attrs keep the DeviceSpec defaults.
  EXPECT_DOUBLE_EQ(c.device(2).mem_bw_gbps, 500.0);
  EXPECT_EQ(c.FirstCpu(), 0);
  EXPECT_EQ(c.Gpus().size(), 2u);

  // Explicit links carry their own specs; both directions of a bidir
  // line share the channel label.
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_gbps, 11.0);
  EXPECT_DOUBLE_EQ(c.link(1, 2).bandwidth_gbps, 44.0);
  EXPECT_EQ(c.link_channel(0, 1), c.link_channel(1, 0));
  EXPECT_EQ(c.link_channel(0, 1), c.link_channel(0, 2));
  EXPECT_NE(c.link_channel(1, 2), c.link_channel(0, 1));
  EXPECT_NE(c.link_channel(1, 2), c.link_channel(2, 1));

  // Every pair is covered explicitly here, but the declared default tier
  // still participates in validation.
  EXPECT_TRUE(c.has_default_link());
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ParseTextCluster, DefaultTierFillsOmittedPairs) {
  const char* spec =
      "device a gpu\n"
      "device b gpu\n"
      "default_link bw=9 lat=130\n";
  const auto parsed = ParseTextCluster(std::string(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& c = parsed.value();
  EXPECT_FALSE(c.link_configured(0, 1));
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_gbps, 9.0);
  EXPECT_DOUBLE_EQ(c.link(1, 0).latency_us, 130.0);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ClusterFromJson, ParsesTheObjectForm) {
  const char* spec = R"({
    "devices": [
      {"name": "host", "kind": "cpu", "gflops": 80, "memory_bytes": 1024},
      {"name": "g0", "kind": "gpu", "gflops": 2500, "mem_bw_gbps": 550,
       "launch_overhead_us": 50},
      {"name": "g1", "kind": "gpu", "gflops": 900}
    ],
    "default_link": {"bandwidth_gbps": 9, "latency_us": 130},
    "links": [
      {"src": "host", "dst": "g0", "bandwidth_gbps": 11, "latency_us": 50,
       "channel": "root", "bidir": true},
      {"src": "host", "dst": "g1", "bandwidth_gbps": 11, "latency_us": 50,
       "channel": "root", "bidir": true},
      {"src": "g0", "dst": "g1", "bandwidth_gbps": 44, "latency_us": 6}
    ]
  })";
  const auto parsed = ClusterFromJson(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& c = parsed.value();
  ASSERT_EQ(c.num_devices(), 3);
  EXPECT_EQ(c.device(0).kind, DeviceKind::kCPU);
  EXPECT_DOUBLE_EQ(c.device(2).gflops, 900.0);
  EXPECT_EQ(c.link_channel(0, 1), c.link_channel(2, 0));
  EXPECT_DOUBLE_EQ(c.link(1, 2).bandwidth_gbps, 44.0);
  // g1 -> g0 is omitted: served by the default tier.
  EXPECT_FALSE(c.link_configured(2, 1));
  EXPECT_DOUBLE_EQ(c.link(2, 1).bandwidth_gbps, 9.0);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ResolveCluster, NamesAndFilesDispatch) {
  ASSERT_TRUE(ResolveCluster("").ok());
  EXPECT_EQ(ResolveCluster("").value().num_devices(), 5);
  ASSERT_TRUE(ResolveCluster("default").ok());
  ASSERT_TRUE(ResolveCluster("2node8").ok());
  EXPECT_EQ(ResolveCluster("2node8").value().num_devices(), 10);
  ASSERT_TRUE(ResolveCluster("mixed").ok());
  EXPECT_EQ(ResolveCluster("mixed").value().num_devices(), 5);
  const auto missing = ResolveCluster("no_such_cluster.ec");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kIo);
}

TEST(ShippedClusters, TwoNodeSpecLoadsAndMatchesTheBuilderShape) {
  const auto parsed = ImportClusterFile(ShippedClusterPath("2node8.ec"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& c = parsed.value();
  const ClusterSpec built = MakeTwoNodeNvlinkIbCluster();
  ASSERT_EQ(c.num_devices(), built.num_devices());
  for (DeviceId i = 0; i < c.num_devices(); ++i) {
    EXPECT_EQ(c.device(i).name, built.device(i).name);
    EXPECT_EQ(c.device(i).kind, built.device(i).kind);
    EXPECT_DOUBLE_EQ(c.device(i).gflops, built.device(i).gflops);
    EXPECT_EQ(c.device(i).memory_bytes, built.device(i).memory_bytes);
  }
  for (DeviceId s = 0; s < c.num_devices(); ++s) {
    for (DeviceId d = 0; d < c.num_devices(); ++d) {
      if (s == d) continue;
      EXPECT_DOUBLE_EQ(c.link(s, d).bandwidth_gbps,
                       built.link(s, d).bandwidth_gbps)
          << s << "->" << d;
      EXPECT_DOUBLE_EQ(c.link(s, d).latency_us, built.link(s, d).latency_us)
          << s << "->" << d;
    }
  }
  // Channel structure: both nodes' egress NICs are shared channels, and
  // the file's labels induce the same sharing the builder does.
  const DeviceId node0_gpu = 1, node1_gpu = 6, node1_cpu = 5;
  EXPECT_EQ(c.link_channel(node0_gpu, node1_gpu),
            c.link_channel(0, node1_cpu));  // both leave node 0
  EXPECT_NE(c.link_channel(node0_gpu, node1_gpu),
            c.link_channel(node1_gpu, node0_gpu));  // opposite NICs
  EXPECT_EQ(c.link_channel(0, 1), c.link_channel(0, 2));  // shared root
  EXPECT_NE(c.link_channel(1, 2), c.link_channel(1, 3));  // NVLink p2p
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ShippedClusters, MixedSpecLoadsAndIsHeterogeneous) {
  const auto parsed = ImportClusterFile(ShippedClusterPath("mixed.ec"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& c = parsed.value();
  const ClusterSpec built = MakeMixedSpeedCluster();
  ASSERT_EQ(c.num_devices(), built.num_devices());
  for (DeviceId i = 0; i < c.num_devices(); ++i) {
    EXPECT_DOUBLE_EQ(c.device(i).gflops, built.device(i).gflops) << i;
    EXPECT_EQ(c.device(i).memory_bytes, built.device(i).memory_bytes) << i;
  }
  EXPECT_GT(c.device(1).gflops, c.device(3).gflops);
  EXPECT_LT(c.device(1).memory_bytes, c.device(3).memory_bytes);
  EXPECT_TRUE(c.Validate().ok());
}

// ---------------------------------------------------------------------------
// Hierarchical builders.

TEST(MakeHierarchicalCluster, TiersChannelsAndHeterogeneity) {
  HierarchicalClusterOptions options;
  options.num_nodes = 2;
  options.gpus_per_node = 4;
  options.island_size = 2;  // two NVLink islands per node
  options.per_gpu_gflops = {2500.0, 900.0};
  const ClusterSpec c = MakeHierarchicalCluster(options);
  ASSERT_EQ(c.num_devices(), 10);
  EXPECT_TRUE(c.Validate().ok());

  // Node-major layout: [cpu, g0..g3] per node.
  EXPECT_EQ(c.device(0).kind, DeviceKind::kCPU);
  EXPECT_EQ(c.device(5).kind, DeviceKind::kCPU);
  // Heterogeneity vector cycles within each node.
  EXPECT_DOUBLE_EQ(c.device(1).gflops, 2500.0);
  EXPECT_DOUBLE_EQ(c.device(2).gflops, 900.0);
  EXPECT_DOUBLE_EQ(c.device(3).gflops, 2500.0);
  EXPECT_DOUBLE_EQ(c.device(6).gflops, 2500.0);

  // Tier bandwidths: NVLink within an island > PCIe within a node > IB
  // across nodes.
  const double nv = c.link(1, 2).bandwidth_gbps;    // same island
  const double pcie = c.link(1, 3).bandwidth_gbps;  // cross island
  const double ib = c.link(1, 6).bandwidth_gbps;    // cross node
  EXPECT_GT(nv, pcie);
  EXPECT_GT(pcie, ib);
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_gbps, pcie);  // host link

  // Channels: all of node 0's PCIe traffic shares one channel, all of its
  // IB egress another; NVLink lanes stay point-to-point.
  EXPECT_EQ(c.link_channel(0, 1), c.link_channel(1, 3));
  EXPECT_EQ(c.link_channel(1, 6), c.link_channel(0, 5));
  EXPECT_NE(c.link_channel(1, 6), c.link_channel(6, 1));
  EXPECT_NE(c.link_channel(0, 1), c.link_channel(1, 6));
  EXPECT_NE(c.link_channel(1, 2), c.link_channel(2, 1));
  // 4 custom channels: two roots, two NICs. Dense, so the channel space
  // is exactly customs + per-pair defaults.
  EXPECT_EQ(c.num_custom_channels(), 4);
  EXPECT_EQ(c.num_link_channels(), 4 + 10 * 10);
}

TEST(MakeHierarchicalCluster, SingleNodeHasNoIbTier) {
  HierarchicalClusterOptions options;
  options.num_nodes = 1;
  options.gpus_per_node = 2;
  options.island_size = 2;
  const ClusterSpec c = MakeHierarchicalCluster(options);
  ASSERT_EQ(c.num_devices(), 3);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_DOUBLE_EQ(c.link(1, 2).bandwidth_gbps, options.nvlink_gbps);
  EXPECT_EQ(c.num_custom_channels(), 1);  // just the PCIe root
}

// ---------------------------------------------------------------------------
// Satellite regressions: the device-model bugfixes.

TEST(ClusterSpec, ChannelIndicesStayDenseAcrossAddDeviceInterleaving) {
  // The old scheme stored raw labels and reserved [0, n*n) for them; a
  // label chosen when the cluster was small could alias the default
  // range (or index past num_link_channels()) after AddDevice grew n.
  ClusterSpec c;
  const DeviceId a = c.AddDevice({"a", DeviceKind::kGPU, 100, 100, 1, 1024});
  const DeviceId b = c.AddDevice({"b", DeviceKind::kGPU, 100, 100, 1, 1024});
  c.SetLink(a, b, {10, 5});
  c.SetLink(b, a, {10, 5});
  c.SetLinkChannel(a, b, 7);  // arbitrary sparse labels...
  c.SetLinkChannel(b, a, 1000000);  // ...including ones >= n*n
  EXPECT_EQ(c.num_custom_channels(), 2);
  const int ab = c.link_channel(a, b);
  const int ba = c.link_channel(b, a);
  EXPECT_NE(ab, ba);

  // Growing the cluster re-lays-out the row-major matrices but must not
  // change which links share channels, and every channel index must stay
  // inside [0, num_link_channels()).
  const DeviceId d = c.AddDevice({"d", DeviceKind::kGPU, 100, 100, 1, 1024});
  c.SetLink(a, d, {10, 5});
  c.SetLink(d, a, {10, 5});
  c.SetLink(b, d, {10, 5});
  c.SetLink(d, b, {10, 5});
  c.SetLinkChannel(a, d, 7);        // same label as a->b: shares a channel
  c.SetLinkChannel(d, a, 1000000);  // same label as b->a
  EXPECT_EQ(c.num_custom_channels(), 2);
  EXPECT_EQ(c.link_channel(a, b), c.link_channel(a, d));
  EXPECT_EQ(c.link_channel(b, a), c.link_channel(d, a));
  EXPECT_NE(c.link_channel(a, b), c.link_channel(b, a));
  std::map<int, int> uses;
  for (DeviceId s = 0; s < c.num_devices(); ++s) {
    for (DeviceId t = 0; t < c.num_devices(); ++t) {
      if (s == t) continue;
      const int ch = c.link_channel(s, t);
      EXPECT_GE(ch, 0);
      EXPECT_LT(ch, c.num_link_channels());
      uses[ch]++;
    }
  }
  // No stale aliasing: unlabelled links never collide with each other or
  // with the labelled channels.
  EXPECT_EQ(uses[c.link_channel(b, d)], 1);
  EXPECT_EQ(uses[c.link_channel(d, b)], 1);
  EXPECT_EQ(uses[c.link_channel(a, b)], 2);
  EXPECT_EQ(uses[c.link_channel(b, a)], 2);
}

TEST(ClusterSpec, RelabelledLinkReusesTheDenseSlot) {
  ClusterSpec c;
  const DeviceId a = c.AddDevice({"a", DeviceKind::kGPU, 100, 100, 1, 1024});
  const DeviceId b = c.AddDevice({"b", DeviceKind::kGPU, 100, 100, 1, 1024});
  c.SetLinkChannel(a, b, 5);
  c.SetLinkChannel(b, a, 5);
  EXPECT_EQ(c.num_custom_channels(), 1);
  EXPECT_EQ(c.link_channel(a, b), c.link_channel(b, a));
}

TEST(CostModel, SelfTransfersAreFree) {
  const ClusterSpec cluster = MakeDefaultCluster();
  const CostModel cost(cluster);
  for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
    EXPECT_EQ(cost.TransferSeconds(d, d, 0), 0.0);
    EXPECT_EQ(cost.TransferSeconds(d, d, 1LL << 30), 0.0);
  }
  // And a real transfer is not free, so the zero is the src==dst special
  // case rather than a degenerate model.
  EXPECT_GT(cost.TransferSeconds(0, 1, 1LL << 20), 0.0);
}

TEST(ClusterSpec, UnconfiguredLinkIsAValidateError) {
  ClusterSpec c;
  const DeviceId a = c.AddDevice({"a", DeviceKind::kGPU, 100, 100, 1, 1024});
  const DeviceId b = c.AddDevice({"b", DeviceKind::kGPU, 100, 100, 1, 1024});
  c.SetLink(a, b, {10, 5});
  // b -> a never configured: the old silent 12 GB/s fallback is gone.
  const Status status = c.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kSyntax);
  EXPECT_NE(status.message().find("never configured"), std::string::npos);
  // Declaring a default tier makes the same cluster valid, with the tier
  // serving the unconfigured direction only.
  c.SetDefaultLink({9, 130});
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_DOUBLE_EQ(c.link(a, b).bandwidth_gbps, 10.0);
  EXPECT_DOUBLE_EQ(c.link(b, a).bandwidth_gbps, 9.0);
  // A degenerate default tier is itself a validation error.
  c.SetDefaultLink({0.0, 130});
  EXPECT_EQ(c.Validate().code(), ErrorCode::kNumericOverflow);
}

TEST(MakeScaledCluster, PropagatesStatusInsteadOfAborting) {
  const auto half = MakeScaledCluster(0.5);
  ASSERT_TRUE(half.ok()) << half.status().ToString();
  EXPECT_EQ(half.value().device(1).memory_bytes,
            MakeDefaultCluster().device(1).memory_bytes / 2);
  EXPECT_EQ(MakeScaledCluster(0.0).status().code(),
            ErrorCode::kNumericOverflow);
  EXPECT_EQ(MakeScaledCluster(-1.0).status().code(),
            ErrorCode::kNumericOverflow);
  EXPECT_EQ(MakeScaledCluster(std::numeric_limits<double>::quiet_NaN())
                .status()
                .code(),
            ErrorCode::kNumericOverflow);
  EXPECT_EQ(MakeScaledCluster(std::numeric_limits<double>::infinity())
                .status()
                .code(),
            ErrorCode::kNumericOverflow);
  // A valid scale over degenerate options still fails closed, through the
  // same Validate() the simulator would apply.
  ClusterOptions bad;
  bad.gpu_gflops = -1.0;
  EXPECT_EQ(MakeScaledCluster(0.5, bad).status().code(),
            ErrorCode::kNumericOverflow);
}

}  // namespace
}  // namespace eagle::sim
