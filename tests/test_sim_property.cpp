// Property sweep over the execution simulator: invariants that must hold
// for ANY graph and ANY placement, checked across random DAG shapes,
// seeds, and placement styles.
#include <gtest/gtest.h>

#include "models/synthetic.h"
#include "models/training_graph.h"
#include "sim/measurement.h"
#include "sim/simulator.h"

namespace eagle::sim {
namespace {

struct PropertyCase {
  int layers;
  int width;
  std::uint64_t seed;
  bool training;
};

class SimulatorProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    support::Rng rng(GetParam().seed);
    models::RandomDagConfig config;
    config.layers = GetParam().layers;
    config.width = GetParam().width;
    config.cpu_only_fraction = 0.05;
    config.training = GetParam().training;
    graph_ = models::BuildRandomDag(config, rng);
    cluster_ = MakeDefaultCluster();
  }

  Placement RandomPlacement(std::uint64_t seed) const {
    support::Rng rng(seed);
    std::vector<DeviceId> devices(static_cast<std::size_t>(graph_.num_ops()));
    for (auto& d : devices) {
      d = static_cast<DeviceId>(
          rng.NextBelow(static_cast<std::uint64_t>(cluster_.num_devices())));
    }
    Placement placement(graph_, std::move(devices));
    placement.Normalize(graph_, cluster_);
    return placement;
  }

  graph::OpGraph graph_;
  ClusterSpec cluster_;
};

TEST_P(SimulatorProperty, Deterministic) {
  ExecutionSimulator simulator(graph_, cluster_);
  const auto placement = RandomPlacement(1);
  const auto a = simulator.Run(placement);
  const auto b = simulator.Run(placement);
  EXPECT_DOUBLE_EQ(a.step_seconds, b.step_seconds);
  EXPECT_EQ(a.transfer_bytes_total, b.transfer_bytes_total);
  EXPECT_EQ(a.device_peak_bytes, b.device_peak_bytes);
}

TEST_P(SimulatorProperty, StepBoundsAndBusyTimes) {
  ExecutionSimulator simulator(graph_, cluster_);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const auto result = simulator.Run(RandomPlacement(s));
    // Step time at least the busiest device, at most the serial sum.
    double total_busy = 0.0;
    for (double busy : result.device_busy_seconds) {
      EXPECT_LE(busy, result.step_seconds + 1e-12);
      total_busy += busy;
    }
    EXPECT_GE(total_busy + result.transfer_seconds_total + 1e-12,
              result.step_seconds);
  }
}

TEST_P(SimulatorProperty, SingleDeviceMatchesSerialSum) {
  ExecutionSimulator simulator(graph_, cluster_);
  CostModel cost(cluster_);
  // All on CPU: no cpu_only conflicts, no transfers.
  const auto placement = Placement::AllOnDevice(graph_, cluster_, 0);
  const auto result = simulator.Run(placement);
  double expected = 0.0;
  for (graph::OpId i = 0; i < graph_.num_ops(); ++i) {
    expected += cost.ComputeSeconds(graph_.op(i), 0);
  }
  EXPECT_NEAR(result.step_seconds, expected, expected * 1e-9);
  EXPECT_EQ(result.num_transfers, 0);
}

TEST_P(SimulatorProperty, MemoryPeakAtLeastParams) {
  ExecutionSimulator simulator(graph_, cluster_);
  const auto result = simulator.Run(RandomPlacement(4));
  for (int d = 0; d < cluster_.num_devices(); ++d) {
    EXPECT_GE(result.device_peak_bytes[static_cast<std::size_t>(d)],
              result.device_param_bytes[static_cast<std::size_t>(d)]);
  }
}

TEST_P(SimulatorProperty, TransfersNeverExceedCrossEdges) {
  ExecutionSimulator simulator(graph_, cluster_);
  const auto placement = RandomPlacement(5);
  const auto result = simulator.Run(placement);
  int cross_edges = 0;
  for (const auto& e : graph_.edges()) {
    cross_edges += placement.device(e.src) != placement.device(e.dst);
  }
  EXPECT_LE(result.num_transfers, cross_edges);  // dedup can only reduce
}

TEST_P(SimulatorProperty, NormalizeIdempotent) {
  auto placement = RandomPlacement(6);
  const auto before = placement.Hash();
  placement.Normalize(graph_, cluster_);
  EXPECT_EQ(placement.Hash(), before);
}

TEST_P(SimulatorProperty, MeasurementCostIsExactlySessionPlusSteps) {
  // The virtual clock charges exactly: session setup + first-step
  // parameter placement + total_steps × per-step time (warm-up steps
  // included — they run, they just aren't averaged).
  MeasurementOptions options;
  MeasurementSession session(graph_, cluster_, options);
  for (std::uint64_t s = 8; s <= 10; ++s) {
    const auto placement = RandomPlacement(s);
    const auto eval = session.Evaluate(placement);
    if (eval.valid) {
      const double expected =
          options.session_overhead_seconds +
          session.simulator().ParamTransferSeconds(placement) +
          options.total_steps * eval.true_per_step_seconds;
      EXPECT_NEAR(eval.measurement_cost_seconds, expected,
                  expected * 1e-12);
    } else {
      // OOM still burns the session setup before the framework aborts.
      EXPECT_DOUBLE_EQ(eval.measurement_cost_seconds,
                       options.session_overhead_seconds);
    }
  }
}

TEST_P(SimulatorProperty, MeasurementCostExceedsOverhead) {
  MeasurementOptions options;
  MeasurementSession session(graph_, cluster_, options);
  const auto eval = session.Evaluate(RandomPlacement(7));
  EXPECT_GE(eval.measurement_cost_seconds,
            options.session_overhead_seconds);
  if (eval.valid) {
    EXPECT_GE(eval.measurement_cost_seconds,
              options.total_steps * eval.true_per_step_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorProperty,
    ::testing::Values(PropertyCase{6, 4, 11, false},
                      PropertyCase{12, 8, 12, false},
                      PropertyCase{20, 3, 13, false},
                      PropertyCase{4, 16, 14, false},
                      PropertyCase{8, 6, 15, true},
                      PropertyCase{15, 5, 16, true}));

}  // namespace
}  // namespace eagle::sim
