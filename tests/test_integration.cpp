// End-to-end integration tests: full agents training against the full
// environment on small graphs, checking that learning actually happens and
// that runs are reproducible.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/expert_policies.h"
#include "core/post_agent.h"
#include "models/synthetic.h"
#include "models/zoo.h"
#include "rl/trainer.h"

namespace eagle {
namespace {

using core::AgentDims;

AgentDims TestDims() {
  AgentDims dims;
  dims.num_groups = 12;
  dims.grouper_hidden = 12;
  dims.placer_hidden = 24;
  dims.attn_dim = 12;
  dims.bridge_hidden = 8;
  dims.device_embed_dim = 4;
  return dims;
}

graph::OpGraph WorkloadGraph() {
  // Four heavy parallel chains: the optimal placement spreads chains
  // across GPUs, misplacement on CPU is catastrophic — a clear learning
  // signal with a known good structure.
  return models::BuildParallelChains(4, 10, 1 << 18, 2e10);
}

TEST(Integration, EagleLearnsParallelChains) {
  auto graph = WorkloadGraph();
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster);
  auto agent = core::MakeEagleAgent(graph, cluster, TestDims(), 21);
  rl::TrainerOptions options;
  options.total_samples = 120;
  options.seed = 22;
  const auto result = rl::TrainAgent(*agent, env, options);
  ASSERT_TRUE(result.found_valid);
  // Early samples are far from optimal; training must improve on the
  // first valid sample by a solid margin.
  double first_valid = 0.0;
  for (const auto& point : result.history) {
    if (std::isfinite(point.per_step_seconds)) {
      first_valid = point.per_step_seconds;
      break;
    }
  }
  EXPECT_LT(result.best_per_step_seconds, first_valid);
  // And it must beat the all-on-one-GPU placement (chains parallelize).
  const auto single =
      env.Evaluate(core::SingleGpuPlacement(graph, cluster), nullptr);
  ASSERT_TRUE(single.valid);
  EXPECT_LT(result.best_per_step_seconds,
            single.true_per_step_seconds * 1.05);
}

TEST(Integration, TrainingIsDeterministic) {
  auto graph = models::BuildParallelChains(2, 6, 1 << 14, 1e9);
  const auto cluster = sim::MakeDefaultCluster();
  rl::TrainerOptions options;
  options.total_samples = 40;
  options.seed = 23;

  core::PlacementEnvironment env1(graph, cluster);
  auto agent1 = core::MakeEagleAgent(graph, cluster, TestDims(), 24);
  const auto r1 = rl::TrainAgent(*agent1, env1, options);

  core::PlacementEnvironment env2(graph, cluster);
  auto agent2 = core::MakeEagleAgent(graph, cluster, TestDims(), 24);
  const auto r2 = rl::TrainAgent(*agent2, env2, options);

  EXPECT_DOUBLE_EQ(r1.best_per_step_seconds, r2.best_per_step_seconds);
  EXPECT_EQ(r1.invalid_samples, r2.invalid_samples);
  ASSERT_EQ(r1.history.size(), r2.history.size());
  EXPECT_EQ(r1.history.back().virtual_hours,
            r2.history.back().virtual_hours);
}

TEST(Integration, PostAgentTrainsWithPpoCe) {
  auto graph = WorkloadGraph();
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster);
  auto agent = core::MakePostAgent(graph, cluster, 12, 25);
  rl::TrainerOptions options;
  options.algorithm = rl::Algorithm::kPpoCe;
  options.total_samples = 100;
  options.ce_interval = 30;
  options.seed = 26;
  const auto result = rl::TrainAgent(*agent, env, options);
  ASSERT_TRUE(result.found_valid);
  double first_valid = 0.0;
  for (const auto& point : result.history) {
    if (std::isfinite(point.per_step_seconds)) {
      first_valid = point.per_step_seconds;
      break;
    }
  }
  EXPECT_LT(result.best_per_step_seconds, first_valid * 1.01);
}

TEST(Integration, ReducedBenchmarksTrainEndToEnd) {
  // A fast sanity pass over all three paper benchmarks at reduced scale:
  // the full pipeline (model build -> env -> agent -> trainer) must
  // produce a valid improving placement for each.
  models::ZooOptions zoo;
  zoo.reduced = true;
  const auto cluster = sim::MakeScaledCluster(0.1).value();
  for (auto benchmark : models::AllBenchmarks()) {
    auto graph = models::BuildBenchmark(benchmark, zoo);
    core::PlacementEnvironment env(graph, cluster);
    auto agent = core::MakeEagleAgent(graph, cluster, TestDims(), 27);
    rl::TrainerOptions options;
    options.total_samples = 30;
    options.seed = 28;
    const auto result = rl::TrainAgent(*agent, env, options);
    EXPECT_TRUE(result.found_valid) << models::BenchmarkName(benchmark);
    EXPECT_EQ(result.total_samples, 30);
  }
}

TEST(Integration, EvaluationCacheAcceleratesRevisits) {
  auto graph = models::BuildParallelChains(2, 6, 1 << 14, 1e9);
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster);
  const auto placement = core::SingleGpuPlacement(graph, cluster);
  support::Rng rng(29);
  for (int i = 0; i < 5; ++i) env.Evaluate(placement, &rng);
  EXPECT_EQ(env.cache_hits(), 4);
}

}  // namespace
}  // namespace eagle
