#include <gtest/gtest.h>

#include <sstream>

#include "graph/features.h"
#include "graph/graph_io.h"
#include "graph/grouped_graph.h"
#include "graph/op_graph.h"

namespace eagle::graph {
namespace {

OpGraph Diamond() {
  // a -> b, a -> c, b -> d, c -> d
  OpGraph g;
  OpDef a;
  a.name = "a";
  a.type = OpType::kPlaceholder;
  a.output_shape = TensorShape{4, 4};
  g.AddOp(a);
  OpDef b;
  b.name = "b";
  b.type = OpType::kMatMul;
  b.output_shape = TensorShape{4, 4};
  b.flops = 100.0;
  g.AddOp(b);
  OpDef c = b;
  c.name = "c";
  g.AddOp(c);
  OpDef d = b;
  d.name = "d";
  d.param_bytes = 64;
  g.AddOp(d);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(TensorShape, ElementsAndBytes) {
  TensorShape s{2, 3, 4};
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.Bytes(), 96);
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.ToString(), "[2,3,4]");
}

TEST(TensorShape, ScalarHasOneElement) {
  TensorShape s;
  EXPECT_EQ(s.NumElements(), 1);
  EXPECT_EQ(s.rank(), 0);
}

TEST(TensorShape, NegativeDimRejected) {
  EXPECT_THROW(TensorShape({-1, 2}), std::logic_error);
}

TEST(OpType, NamesRoundTrip) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    const auto type = static_cast<OpType>(i);
    EXPECT_EQ(OpTypeFromName(OpTypeName(type)), type);
  }
  EXPECT_EQ(OpTypeFromName("NotAType"), OpType::kNumOpTypes);
}

TEST(OpGraph, AddAndLookup) {
  OpGraph g = Diamond();
  EXPECT_EQ(g.num_ops(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.FindOp("c"), 2);
  EXPECT_EQ(g.FindOp("nope"), kInvalidOp);
}

TEST(OpGraph, DuplicateNameRejected) {
  OpGraph g;
  OpDef a;
  a.name = "x";
  g.AddOp(a);
  EXPECT_THROW(g.AddOp(a), std::logic_error);
}

TEST(OpGraph, SelfEdgeRejected) {
  OpGraph g;
  OpDef a;
  a.name = "x";
  g.AddOp(a);
  EXPECT_THROW(g.AddEdge(0, 0), std::logic_error);
}

TEST(OpGraph, DefaultEdgeBytesFromProducer) {
  OpGraph g = Diamond();
  EXPECT_EQ(g.edges()[0].bytes, 4 * 4 * 4);
}

TEST(OpGraph, TopologicalOrderRespectsEdges) {
  OpGraph g = Diamond();
  const auto order = g.TopologicalOrder();
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (const auto& e : g.edges()) {
    EXPECT_LT(position[static_cast<std::size_t>(e.src)],
              position[static_cast<std::size_t>(e.dst)]);
  }
}

TEST(OpGraph, CycleDetected) {
  OpGraph g;
  for (int i = 0; i < 2; ++i) {
    OpDef a;
    a.name = "n" + std::to_string(i);
    g.AddOp(a);
  }
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_FALSE(g.IsDag());
  EXPECT_THROW(g.TopologicalOrder(), std::logic_error);
}

TEST(OpGraph, SourcesAndSinks) {
  OpGraph g = Diamond();
  EXPECT_EQ(g.SourceOps(), std::vector<OpId>{0});
  EXPECT_EQ(g.SinkOps(), std::vector<OpId>{3});
}

TEST(OpGraph, Aggregates) {
  OpGraph g = Diamond();
  EXPECT_DOUBLE_EQ(g.TotalFlops(), 300.0);
  EXPECT_EQ(g.TotalParamBytes(), 64);
  EXPECT_EQ(g.CriticalPathLength(), 3);
  const auto stats = g.Summarize();
  EXPECT_EQ(stats.num_ops, 4);
  EXPECT_EQ(stats.critical_path, 3);
}

TEST(GroupedGraph, AggregatesAndTraffic) {
  OpGraph g = Diamond();
  // a,b in group 0; c,d in group 1.
  GroupedGraph grouped(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(grouped.group(0).num_ops, 2);
  EXPECT_EQ(grouped.group(1).num_ops, 2);
  EXPECT_EQ(grouped.group(1).param_bytes, 64);
  // Cross edges: a->c (64 bytes) and b->d (64 bytes).
  EXPECT_EQ(grouped.TrafficBetween(0, 1), 128);
  EXPECT_EQ(grouped.TrafficBetween(1, 0), 0);
  EXPECT_EQ(grouped.CutBytes(), 128);
}

TEST(GroupedGraph, ExpandToOps) {
  OpGraph g = Diamond();
  GroupedGraph grouped(g, {0, 0, 1, 1}, 2);
  const auto devices = grouped.ExpandToOps({3, 7});
  EXPECT_EQ(devices, (std::vector<std::int32_t>{3, 3, 7, 7}));
}

TEST(GroupedGraph, InvalidGroupingRejected) {
  OpGraph g = Diamond();
  EXPECT_THROW(GroupedGraph(g, {0, 0, 1}, 2), std::logic_error);
  EXPECT_THROW(GroupedGraph(g, {0, 0, 1, 5}, 2), std::logic_error);
}

TEST(GroupedGraph, EmptyGroupsAllowed) {
  OpGraph g = Diamond();
  GroupedGraph grouped(g, {0, 0, 0, 0}, 3);
  EXPECT_EQ(grouped.group(1).num_ops, 0);
  EXPECT_EQ(grouped.CutBytes(), 0);
}

TEST(Features, OpFeatureDims) {
  OpGraph g = Diamond();
  const auto raw = BuildOpFeatures(g, FeatureMode::kRaw);
  EXPECT_EQ(static_cast<int>(raw.size()), 4 * OpFeatureDim());
  // One-hot type set for op 0 (Placeholder).
  EXPECT_FLOAT_EQ(raw[static_cast<std::size_t>(
                      static_cast<int>(OpType::kPlaceholder))],
                  1.0f);
}

TEST(Features, ReconstructedIsBounded) {
  OpGraph g = Diamond();
  for (auto v : BuildOpFeatures(g, FeatureMode::kReconstructed)) {
    EXPECT_LE(std::abs(v), 10.0f);
  }
}

TEST(Features, PositionalDimsDistinguishIdenticalOps) {
  // Two MatMuls with identical type/shape must still differ in features
  // via topological rank/depth — the property learned groupers need.
  OpGraph g = Diamond();
  const auto f = BuildOpFeatures(g, FeatureMode::kReconstructed);
  const int dim = OpFeatureDim();
  const float* op_a = f.data();                    // source
  const float* op_d = f.data() + 3 * dim;          // sink
  // rank(a)=0, rank(d)=1; depth(a)=0, depth(d)=max.
  EXPECT_FLOAT_EQ(op_a[kNumOpTypes + 6], 0.0f);
  EXPECT_FLOAT_EQ(op_d[kNumOpTypes + 6], 1.0f);
  EXPECT_FLOAT_EQ(op_a[kNumOpTypes + 7], 0.0f);
  EXPECT_FLOAT_EQ(op_d[kNumOpTypes + 7], 1.0f);
  // b and c share type/shape but differ from d positionally.
  const float* op_b = f.data() + 1 * dim;
  EXPECT_NE(op_b[kNumOpTypes + 6], op_d[kNumOpTypes + 6]);
}

TEST(Features, GroupEmbeddingAdjacencyNormalized) {
  OpGraph g = Diamond();
  GroupedGraph grouped(g, {0, 0, 1, 1}, 2);
  const auto emb =
      BuildGroupEmbeddings(grouped, FeatureMode::kReconstructed, true);
  const int dim = GroupEmbeddingDim(2, true);
  // Adjacency share row sums to 1 for groups with traffic.
  const float* adj0 = emb.data() + kNumOpTypes + 5;
  EXPECT_NEAR(adj0[0] + adj0[1], 1.0f, 1e-5f);
  (void)dim;
}

TEST(Features, NormalizedAdjacencySymmetricRows) {
  OpGraph g = Diamond();
  GroupedGraph grouped(g, {0, 0, 1, 1}, 2);
  const auto adj = BuildNormalizedGroupAdjacency(grouped);
  // Â is symmetric for symmetric connectivity.
  EXPECT_FLOAT_EQ(adj[1], adj[2]);
  EXPECT_GT(adj[0], 0.0f);  // self loops present
}

TEST(GraphIo, DotContainsNodes) {
  OpGraph g = Diamond();
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("MatMul"), std::string::npos);
}

TEST(GraphIo, JsonContainsOpsAndEdges) {
  OpGraph g = Diamond();
  const std::string json = ToJson(g);
  EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
}

TEST(GraphIo, TextRoundTrip) {
  OpGraph g = Diamond();
  g.mutable_op(1).cpu_only = true;
  g.mutable_op(2).layer = "mid";
  std::ostringstream out;
  SaveText(g, out);
  std::istringstream in(out.str());
  OpGraph loaded = LoadText(in);
  ASSERT_EQ(loaded.num_ops(), g.num_ops());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_TRUE(loaded.op(1).cpu_only);
  EXPECT_EQ(loaded.op(2).layer, "mid");
  EXPECT_EQ(loaded.op(3).param_bytes, 64);
  EXPECT_EQ(loaded.edges()[0].bytes, g.edges()[0].bytes);
}

TEST(GraphIo, LoadsCheckedInFixture) {
  OpGraph g = LoadTextFile(std::string(EAGLE_SOURCE_DIR) +
                           "/examples/fixtures/tiny_transformer.eg");
  EXPECT_EQ(g.num_ops(), 17);
  EXPECT_EQ(g.num_edges(), 20);
  EXPECT_TRUE(g.IsDag());
  const OpId loss = g.FindOp("loss");
  ASSERT_NE(loss, kInvalidOp);
  EXPECT_EQ(g.op(loss).type, OpType::kCrossEntropy);
  EXPECT_TRUE(g.op(g.FindOp("labels")).cpu_only);
}

TEST(GraphIo, MalformedTextRejected) {
  std::istringstream in("op onlyname\n");
  EXPECT_THROW(LoadText(in), std::logic_error);
  std::istringstream in2("edge a b\n");
  EXPECT_THROW(LoadText(in2), std::logic_error);
  std::istringstream in3("frob x\n");
  EXPECT_THROW(LoadText(in3), std::logic_error);
}

}  // namespace
}  // namespace eagle::graph
