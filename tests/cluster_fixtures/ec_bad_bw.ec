device a gpu
device b gpu
link a b bw=fast lat=5 bidir
