device a gpu mem=-1
