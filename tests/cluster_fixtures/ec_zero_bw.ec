device a gpu
device b gpu
link a b bw=0 lat=5 bidir
