device a gpu
device b gpu
link a a bw=10 lat=5
