device a gpu gflops=-5
