device a gpu gflops=1e999
