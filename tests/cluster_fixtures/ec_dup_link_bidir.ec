device a gpu
device b gpu
link a b bw=10 lat=5 bidir
link b a bw=10 lat=5
