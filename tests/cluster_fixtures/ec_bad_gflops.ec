device a gpu gflops=fast
