device a gpu
device b gpu
link c b bw=10 lat=5 bidir
