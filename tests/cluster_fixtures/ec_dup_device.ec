device a gpu
device b gpu
device a cpu
