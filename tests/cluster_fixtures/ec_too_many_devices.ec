device a gpu
device b gpu
device c gpu
device d gpu
default_link bw=10 lat=5
