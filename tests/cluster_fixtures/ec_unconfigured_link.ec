device a gpu
device b gpu
link a b bw=10 lat=5
