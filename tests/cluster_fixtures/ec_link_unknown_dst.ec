device a gpu
device b gpu
link a c bw=10 lat=5 bidir
