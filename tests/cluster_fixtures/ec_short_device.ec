device a
