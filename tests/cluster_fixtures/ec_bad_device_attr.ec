device a gpu
device b gpu speed=3
