device a gpu
device b gpu
link a b bw=10 lat=5
link b a bw=10 lat=5
link a b bw=9 lat=5
