device a gpu
directive b
