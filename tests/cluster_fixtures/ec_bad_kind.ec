device a tpu
