default_link bw=1e999 lat=5
device a gpu
