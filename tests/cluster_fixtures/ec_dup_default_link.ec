default_link bw=10 lat=5
default_link bw=9 lat=5
device a gpu
