device a gpu
device b gpu
link a
