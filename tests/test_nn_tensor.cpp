#include <gtest/gtest.h>

#include <cmath>

#include "nn/tensor.h"

namespace eagle::nn {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(t.row(0)[1], 7.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::FromData(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::FromData(2, 2, {1, 2, 3}), std::logic_error);
}

TEST(Tensor, FillAndShape) {
  Tensor t(3, 2);
  t.Fill(4.0f);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(t.at(r, c), 4.0f);
  EXPECT_EQ(t.ShapeString(), "3x2");
  EXPECT_TRUE(t.SameShape(Tensor(3, 2)));
  EXPECT_FALSE(t.SameShape(Tensor(2, 3)));
}

TEST(Gemm, MatchesManual) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(2, 2, {5, 6, 7, 8});
  Tensor out = MatMul(a, b);
  EXPECT_FLOAT_EQ(out.at(0, 0), 19);
  EXPECT_FLOAT_EQ(out.at(0, 1), 22);
  EXPECT_FLOAT_EQ(out.at(1, 0), 43);
  EXPECT_FLOAT_EQ(out.at(1, 1), 50);
}

TEST(Gemm, AccumulatesIntoOut) {
  Tensor a = Tensor::FromData(1, 1, {2});
  Tensor b = Tensor::FromData(1, 1, {3});
  Tensor out(1, 1, 10.0f);
  GemmAccum(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 16.0f);
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a(2, 3), b(2, 3), out(2, 3);
  EXPECT_THROW(GemmAccum(a, b, out), std::logic_error);
}

TEST(Gemm, TransposedVariantsConsistent) {
  // Check aᵀ·b and a·bᵀ against explicit transposition.
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(2, 4, {1, 0, 2, 1, 3, 1, 0, 2});
  Tensor at(3, 2);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  Tensor expected = MatMul(at, b);
  Tensor got(3, 4);
  GemmTransAAccum(a, b, got);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_FLOAT_EQ(got.at(r, c), expected.at(r, c));

  // a(2×3) · bᵀ where b is 4×3:
  Tensor b2 = Tensor::FromData(4, 3, {1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1});
  Tensor got2(2, 4);
  GemmTransBAccum(a, b2, got2);
  // Row 0 of a dotted with rows of b2.
  EXPECT_FLOAT_EQ(got2.at(0, 0), 1);
  EXPECT_FLOAT_EQ(got2.at(0, 1), 2);
  EXPECT_FLOAT_EQ(got2.at(0, 2), 3);
  EXPECT_FLOAT_EQ(got2.at(0, 3), 6);
}

TEST(Axpy, AddsScaled) {
  Tensor x = Tensor::FromData(1, 3, {1, 2, 3});
  Tensor y = Tensor::FromData(1, 3, {10, 10, 10});
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y.at(0, 2), 16.0f);
}

TEST(Norm, SquaredNorm) {
  Tensor t = Tensor::FromData(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(SquaredNorm(t), 25.0);
}

}  // namespace
}  // namespace eagle::nn
