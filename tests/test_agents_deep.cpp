// Deeper agent-behaviour tests: determinism, locality prior properties,
// entropy ranges, and configuration variants of the hierarchical agent.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/grouper_ffn.h"
#include "core/post_agent.h"
#include "models/synthetic.h"
#include "partition/metis_like.h"
#include "rl/trainer.h"

namespace eagle::core {
namespace {

graph::OpGraph TestGraph() {
  support::Rng rng(3);
  models::RandomDagConfig config;
  config.layers = 8;
  config.width = 6;
  return models::BuildRandomDag(config, rng);
}

AgentDims TinyDims() {
  AgentDims dims;
  dims.num_groups = 6;
  dims.grouper_hidden = 8;
  dims.placer_hidden = 12;
  dims.attn_dim = 8;
  dims.bridge_hidden = 6;
  dims.device_embed_dim = 4;
  return dims;
}

TEST(LocalityPrior, ShapeAndBandStructure) {
  auto graph = TestGraph();
  const int k = 5;
  const auto prior = MakeLocalityPrior(graph, k);
  ASSERT_EQ(prior.rows(), graph.num_ops());
  ASSERT_EQ(prior.cols(), k);
  // First op prefers the first group, last op the last group.
  auto argmax_row = [&](int r) {
    int best = 0;
    for (int g = 1; g < k; ++g) {
      if (prior.at(r, g) > prior.at(r, best)) best = g;
    }
    return best;
  };
  EXPECT_EQ(argmax_row(0), 0);
  EXPECT_EQ(argmax_row(graph.num_ops() - 1), k - 1);
  // Every entry is a non-positive penalty, peaking at the band center.
  for (int g = 0; g < k; ++g) EXPECT_LE(prior.at(0, g), 0.0f);
}

TEST(LocalityPrior, ProducesContiguousInitialGroups) {
  // With the prior and an untrained FFN, sampled groupings should have a
  // far smaller cut than without the prior.
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  const auto wg = partition::BuildWeightedGraph(graph);

  auto sample_cut = [&](bool prior_on) {
    HierarchicalAgentConfig config;
    config.dims = TinyDims();
    config.grouper_locality_prior = prior_on;
    config.seed = 5;
    HierarchicalAgent agent(graph, cluster, std::move(config));
    support::Rng rng(6);
    std::int64_t total = 0;
    for (int i = 0; i < 5; ++i) {
      const auto sample = agent.SampleDecision(rng);
      total += partition::CutWeight(wg, sample.grouping);
    }
    return total;
  };
  EXPECT_LT(sample_cut(true), sample_cut(false));
}

TEST(Agents, SamplingDeterministicPerSeed) {
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  auto a1 = MakeEagleAgent(graph, cluster, TinyDims(), 11);
  auto a2 = MakeEagleAgent(graph, cluster, TinyDims(), 11);
  support::Rng rng1(12), rng2(12);
  const auto s1 = a1->SampleDecision(rng1);
  const auto s2 = a2->SampleDecision(rng2);
  EXPECT_EQ(s1.grouping, s2.grouping);
  EXPECT_EQ(s1.group_devices, s2.group_devices);
  EXPECT_DOUBLE_EQ(s1.logp, s2.logp);
}

TEST(Agents, DifferentSeedsDifferentPolicies) {
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  auto a1 = MakeEagleAgent(graph, cluster, TinyDims(), 11);
  auto a2 = MakeEagleAgent(graph, cluster, TinyDims(), 99);
  support::Rng rng1(12), rng2(12);
  EXPECT_NE(a1->SampleDecision(rng1).logp, a2->SampleDecision(rng2).logp);
}

TEST(Agents, NumDecisionsSet) {
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  const auto dims = TinyDims();
  auto eagle = MakeEagleAgent(graph, cluster, dims, 1);
  support::Rng rng(2);
  const auto sample = eagle->SampleDecision(rng);
  // k placement decisions + k effective grouper decisions.
  EXPECT_EQ(sample.num_decisions, 2 * dims.num_groups);

  auto post = MakePostAgent(graph, cluster, 4, 1);
  const auto post_sample = post->SampleDecision(rng);
  EXPECT_EQ(post_sample.num_decisions, 4);
}

TEST(Agents, LogpIsLogProbability) {
  // log π of a sampled joint decision must be negative and finite.
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  auto agent = MakeEagleAgent(graph, cluster, TinyDims(), 21);
  support::Rng rng(22);
  for (int i = 0; i < 5; ++i) {
    const auto sample = agent->SampleDecision(rng);
    EXPECT_LT(sample.logp, 0.0);
    EXPECT_TRUE(std::isfinite(sample.logp));
  }
}

TEST(Agents, GcnVariantEndToEnd) {
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  partition::MetisOptions metis;
  metis.num_parts = 6;
  auto agent = MakeFixedGrouperAgent(
      graph, cluster, partition::MetisPartition(graph, metis),
      PlacerKind::kGcn, AttentionVariant::kBefore, TinyDims(), 31, "gcn");
  core::PlacementEnvironment env(graph, cluster);
  rl::TrainerOptions options;
  options.total_samples = 30;
  const auto result = rl::TrainAgent(*agent, env, options);
  EXPECT_TRUE(result.found_valid);
}

TEST(Agents, LearnedGcnPlacerWithLearnedGrouper) {
  // GCN placer + learned grouper: adjacency is rebuilt per sampled
  // grouping (a distinct code path from the fixed-grouper case).
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  HierarchicalAgentConfig config;
  config.dims = TinyDims();
  config.placer = PlacerKind::kGcn;
  config.use_bridge = false;  // bridge requires seq2seq-style embeddings? no
                              // — it concatenates, works with GCN too, but
                              // keep this variant minimal.
  config.seed = 41;
  HierarchicalAgent agent(graph, cluster, std::move(config));
  support::Rng rng(42);
  const auto sample = agent.SampleDecision(rng);
  nn::Tape tape;
  const auto score = agent.ScoreDecision(tape, sample);
  EXPECT_NEAR(sample.logp, tape.value(score.logp).at(0, 0), 1e-3);
}

TEST(Agents, EntropyWithinCategoricalBounds) {
  auto graph = TestGraph();
  const auto cluster = sim::MakeDefaultCluster();
  auto agent = MakeEagleAgent(graph, cluster, TinyDims(), 51);
  support::Rng rng(52);
  const auto sample = agent->SampleDecision(rng);
  nn::Tape tape;
  const auto score = agent->ScoreDecision(tape, sample);
  const float entropy = tape.value(score.entropy).at(0, 0);
  // Placer entropy <= log(num devices), grouper entropy <= log(k);
  // the combined bonus is their sum.
  const float bound = std::log(5.0f) + std::log(6.0f) + 1e-3f;
  EXPECT_GE(entropy, 0.0f);
  EXPECT_LE(entropy, bound);
}

}  // namespace
}  // namespace eagle::core
