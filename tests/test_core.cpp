#include <gtest/gtest.h>

#include <cmath>

#include "core/bridge_rnn.h"
#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/expert_policies.h"
#include "core/gcn_placer.h"
#include "core/grouper_ffn.h"
#include "core/post_agent.h"
#include "core/seq2seq_placer.h"
#include "models/bert.h"
#include "models/gnmt.h"
#include "models/inception_v3.h"
#include "models/synthetic.h"
#include "models/zoo.h"
#include "partition/metis_like.h"
#include "rl/episode.h"

namespace eagle::core {
namespace {

graph::OpGraph SmallGraph() {
  support::Rng rng(1);
  models::RandomDagConfig config;
  config.layers = 6;
  config.width = 5;
  config.cpu_only_fraction = 0.1;
  return models::BuildRandomDag(config, rng);
}

AgentDims SmallDims() {
  AgentDims dims;
  dims.num_groups = 8;
  dims.grouper_hidden = 8;
  dims.placer_hidden = 16;
  dims.attn_dim = 8;
  dims.bridge_hidden = 8;
  dims.device_embed_dim = 4;
  return dims;
}

TEST(Environment, PenaltyPositiveAndCacheWorks) {
  auto graph = SmallGraph();
  const auto cluster = sim::MakeDefaultCluster();
  PlacementEnvironment env(graph, cluster);
  EXPECT_GT(env.InvalidPenaltySeconds(), 0.0);
  const auto placement = sim::Placement::AllOnDevice(graph, cluster, 1);
  const auto r1 = env.Evaluate(placement, nullptr);
  const auto r2 = env.Evaluate(placement, nullptr);
  EXPECT_EQ(r1.true_per_step_seconds, r2.true_per_step_seconds);
  EXPECT_EQ(env.cache_hits(), 1);
  EXPECT_EQ(env.evaluations(), 2);
}

TEST(Environment, NoiseReappliedOnCacheHits) {
  auto graph = SmallGraph();
  const auto cluster = sim::MakeDefaultCluster();
  PlacementEnvironment env(graph, cluster);
  const auto placement = sim::Placement::AllOnDevice(graph, cluster, 1);
  support::Rng rng(2);
  const auto r1 = env.Evaluate(placement, &rng);
  const auto r2 = env.Evaluate(placement, &rng);
  EXPECT_NE(r1.per_step_seconds, r2.per_step_seconds);
  EXPECT_EQ(r1.true_per_step_seconds, r2.true_per_step_seconds);
}

TEST(GrouperFfn, SampleAndScoreConsistent) {
  auto graph = SmallGraph();
  nn::ParamStore store;
  support::Rng init_rng(3);
  GrouperFFN grouper(store, graph::OpFeatureDim(), 8, 6, init_rng);
  const auto features = MakeOpFeatures(graph, graph::FeatureMode::kReconstructed);

  support::Rng rng(4);
  nn::Tape tape1;
  const auto sampled = grouper.Run(tape1, tape1.Input(features), &rng, nullptr);
  EXPECT_EQ(static_cast<int>(sampled.grouping.size()), graph.num_ops());

  nn::Tape tape2;
  const auto scored =
      grouper.Run(tape2, tape2.Input(features), nullptr, &sampled.grouping);
  EXPECT_FLOAT_EQ(tape1.value(sampled.log_prob).at(0, 0),
                  tape2.value(scored.log_prob).at(0, 0));
  // Entropy of a k-way categorical is at most log k.
  EXPECT_LE(tape1.value(sampled.entropy).at(0, 0),
            std::log(6.0f) + 1e-4f);
  EXPECT_GE(tape1.value(sampled.entropy).at(0, 0), 0.0f);
}

TEST(BridgeRnn, OutputShapeAndGradientPathToGrouper) {
  auto graph = SmallGraph();
  nn::ParamStore store;
  support::Rng init_rng(5);
  GrouperFFN grouper(store, graph::OpFeatureDim(), 8, 6, init_rng);
  BridgeRnn bridge(store, 8, 4, init_rng);
  const auto features = MakeOpFeatures(graph, graph::FeatureMode::kReconstructed);
  support::Rng rng(6);
  nn::Tape tape;
  const auto sampled = grouper.Run(tape, tape.Input(features), &rng, nullptr);
  nn::Var conditioning =
      bridge.Apply(tape, grouper, sampled.softmax, sampled.grouping);
  EXPECT_EQ(tape.value(conditioning).rows(), 6);
  EXPECT_EQ(tape.value(conditioning).cols(), 4);
  // The EAGLE link: a loss on the bridge output reaches grouper params.
  store.ZeroGrads();
  tape.Backward(tape.Sum(conditioning));
  EXPECT_GT(nn::SquaredNorm(store.Find("grouper/l2/w")->grad), 0.0);
}

class PlacerVariants : public ::testing::TestWithParam<AttentionVariant> {};

TEST_P(PlacerVariants, RolloutAndScoringConsistent) {
  nn::ParamStore store;
  support::Rng init_rng(7);
  Seq2SeqPlacer placer(store, /*input_dim=*/10, /*hidden=*/12,
                       /*attn_dim=*/8, /*device_embed_dim=*/4,
                       /*num_devices=*/5, GetParam(), init_rng);
  support::Rng data_rng(8);
  nn::Tensor embeds(7, 10);
  nn::UniformInit(embeds, -1, 1, data_rng);

  support::Rng rng(9);
  nn::Tape tape1;
  const auto rollout = placer.Run(tape1, tape1.Input(embeds), &rng, nullptr);
  ASSERT_EQ(rollout.devices.size(), 7u);
  for (auto d : rollout.devices) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 5);
  }
  nn::Tape tape2;
  const auto scored =
      placer.Run(tape2, tape2.Input(embeds), nullptr, &rollout.devices);
  EXPECT_FLOAT_EQ(tape1.value(rollout.log_prob).at(0, 0),
                  tape2.value(scored.log_prob).at(0, 0));
  EXPECT_EQ(scored.devices, rollout.devices);
}

INSTANTIATE_TEST_SUITE_P(BeforeAndAfter, PlacerVariants,
                         ::testing::Values(AttentionVariant::kBefore,
                                           AttentionVariant::kAfter));

TEST(GcnPlacer, RolloutShapes) {
  nn::ParamStore store;
  support::Rng init_rng(10);
  GcnPlacer placer(store, 10, 12, 5, init_rng);
  support::Rng data_rng(11);
  nn::Tensor embeds(6, 10);
  nn::UniformInit(embeds, -1, 1, data_rng);
  nn::Tensor adj(6, 6, 1.0f / 6.0f);
  support::Rng rng(12);
  nn::Tape tape;
  const auto rollout = placer.Run(tape, tape.Input(embeds), tape.Input(adj),
                                  &rng, nullptr);
  EXPECT_EQ(rollout.devices.size(), 6u);
  nn::Tape tape2;
  const auto scored = placer.Run(tape2, tape2.Input(embeds),
                                 tape2.Input(adj), nullptr,
                                 &rollout.devices);
  EXPECT_FLOAT_EQ(tape.value(rollout.log_prob).at(0, 0),
                  tape2.value(scored.log_prob).at(0, 0));
}

// Every concrete agent must produce identical log-probabilities when
// scoring its own sampled decision — the invariant PPO depends on.
TEST(Agents, SampleScoreLogpConsistency) {
  auto graph = SmallGraph();
  const auto cluster = sim::MakeDefaultCluster();
  const auto dims = SmallDims();

  std::vector<std::unique_ptr<rl::PolicyAgent>> agents;
  agents.push_back(MakeEagleAgent(graph, cluster, dims, 13));
  agents.push_back(MakeHierarchicalPlanner(graph, cluster, dims, 13));
  partition::MetisOptions metis;
  metis.num_parts = dims.num_groups;
  agents.push_back(MakeFixedGrouperAgent(
      graph, cluster, partition::MetisPartition(graph, metis),
      PlacerKind::kSeq2Seq, AttentionVariant::kBefore, dims, 13, "metis"));
  agents.push_back(MakeFixedGrouperAgent(
      graph, cluster, partition::MetisPartition(graph, metis),
      PlacerKind::kGcn, AttentionVariant::kBefore, dims, 13, "gcn"));
  agents.push_back(MakePostAgent(graph, cluster, dims.num_groups, 13));

  support::Rng rng(14);
  for (auto& agent : agents) {
    const auto sample = agent->SampleDecision(rng);
    nn::Tape tape;
    const auto score = agent->ScoreDecision(tape, sample);
    EXPECT_NEAR(sample.logp,
                static_cast<double>(tape.value(score.logp).at(0, 0)),
                1e-3)
        << agent->name();
    // Entropy finite and non-negative.
    EXPECT_GE(tape.value(score.entropy).at(0, 0), 0.0f) << agent->name();
  }
}

TEST(Agents, ToPlacementRespectsConstraints) {
  auto graph = SmallGraph();
  const auto cluster = sim::MakeDefaultCluster();
  auto agent = MakeEagleAgent(graph, cluster, SmallDims(), 15);
  support::Rng rng(16);
  const auto sample = agent->SampleDecision(rng);
  const auto placement = agent->ToPlacement(sample);
  ASSERT_EQ(placement.num_ops(), graph.num_ops());
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    if (graph.op(i).cpu_only) {
      EXPECT_EQ(placement.device(i), cluster.FirstCpu());
    }
  }
}

TEST(Agents, FixedGrouperRequiresCoverage) {
  auto graph = SmallGraph();
  const auto cluster = sim::MakeDefaultCluster();
  EXPECT_THROW(MakeFixedGrouperAgent(graph, cluster, {0, 1, 2},
                                     PlacerKind::kSeq2Seq,
                                     AttentionVariant::kBefore, SmallDims(),
                                     1, "bad"),
               std::logic_error);
}

TEST(ExpertPolicies, SingleGpuPinsCpuOps) {
  auto graph = SmallGraph();
  const auto cluster = sim::MakeDefaultCluster();
  const auto placement = SingleGpuPlacement(graph, cluster);
  bool has_gpu_op = false;
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    if (graph.op(i).cpu_only) {
      EXPECT_EQ(placement.device(i), cluster.FirstCpu());
    } else {
      has_gpu_op |= placement.device(i) == 1;
    }
  }
  EXPECT_TRUE(has_gpu_op);
}

TEST(ExpertPolicies, GnmtExpertUsesAllGpus) {
  models::GnmtConfig config;
  config.seq_len = 6;
  config.hidden = 16;
  config.vocab = 200;
  config.batch = 4;
  auto graph = models::BuildGNMT(config);
  const auto cluster = sim::MakeDefaultCluster();
  const auto placement =
      HumanExpertPlacement(models::Benchmark::kGNMT, graph, cluster);
  ASSERT_TRUE(placement.has_value());
  const auto counts = placement->OpsPerDevice(cluster);
  for (auto gpu : cluster.Gpus()) {
    EXPECT_GT(counts[static_cast<std::size_t>(gpu)], 0) << "gpu " << gpu;
  }
}

TEST(ExpertPolicies, BertHasNoExpert) {
  models::BertConfig config;
  config.layers = 1;
  config.seq_len = 8;
  config.batch = 1;
  auto graph = models::BuildBertBase(config);
  const auto cluster = sim::MakeDefaultCluster();
  EXPECT_FALSE(HumanExpertPlacement(models::Benchmark::kBertBase, graph,
                                    cluster)
                   .has_value());
}

TEST(ExpertPolicies, InceptionExpertEqualsSingleGpu) {
  models::InceptionConfig config;
  auto graph = models::BuildInceptionV3(config);
  const auto cluster = sim::MakeDefaultCluster();
  const auto expert =
      HumanExpertPlacement(models::Benchmark::kInceptionV3, graph, cluster);
  ASSERT_TRUE(expert.has_value());
  EXPECT_EQ(expert->Hash(), SingleGpuPlacement(graph, cluster).Hash());
}

TEST(RunConfig, PaperScaleMatchesPaper) {
  const auto dims = AgentDims::PaperScale();
  EXPECT_EQ(dims.num_groups, 256);
  EXPECT_EQ(dims.grouper_hidden, 64);
  EXPECT_EQ(dims.placer_hidden, 512);
  EXPECT_STREQ(AttentionVariantName(AttentionVariant::kBefore), "before");
  EXPECT_STREQ(AttentionVariantName(AttentionVariant::kAfter), "after");
}

}  // namespace
}  // namespace eagle::core
