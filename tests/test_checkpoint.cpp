// Crash-safe training checkpoints: atomic snapshot files, full-state
// round-trips, and the kill-and-resume guarantee (a checkpointed, killed
// and resumed run reproduces the uninterrupted run bit-compatibly).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "models/synthetic.h"
#include "nn/serialize.h"
#include "rl/checkpoint.h"
#include "rl/trainer.h"

namespace eagle::rl {
namespace {

core::AgentDims TinyDims() {
  core::AgentDims dims;
  dims.num_groups = 6;
  dims.grouper_hidden = 8;
  dims.placer_hidden = 16;
  dims.attn_dim = 8;
  dims.bridge_hidden = 8;
  dims.device_embed_dim = 4;
  return dims;
}

struct Fixture {
  graph::OpGraph graph = models::BuildParallelChains(2, 4, 1 << 14, 1e9);
  sim::ClusterSpec cluster = sim::MakeDefaultCluster();

  core::EnvironmentOptions EnvOptions() const {
    core::EnvironmentOptions options;
    options.faults = sim::FaultProfileFromString("0.15");
    return options;
  }

  std::unique_ptr<core::HierarchicalAgent> Agent(std::uint64_t seed) const {
    return core::MakeEagleAgent(graph, cluster, TinyDims(), seed);
  }

  TrainerOptions Options(int total_samples) const {
    TrainerOptions options;
    options.algorithm = Algorithm::kPpoCe;
    options.total_samples = total_samples;
    options.minibatch_size = 10;
    options.ce_interval = 15;
    options.checkpoint_interval = 10;
    options.seed = 5;
    return options;
  }
};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ParamBlob(PolicyAgent& agent) {
  std::ostringstream blob;
  nn::SaveParams(agent.params(), blob);
  return blob.str();
}

TEST(Checkpoint, KillAndResumeMatchesUninterrupted) {
  Fixture fix;

  // Reference: 40 samples straight through, no checkpointing.
  auto ref_agent = fix.Agent(21);
  core::PlacementEnvironment ref_env(fix.graph, fix.cluster,
                                     fix.EnvOptions());
  const auto reference = TrainAgent(*ref_agent, ref_env, fix.Options(40));

  // "Crash" after 20 samples: the run ends with a final snapshot, exactly
  // what a kill between minibatches leaves behind.
  const std::string dir = FreshDir("eagle_resume_test");
  auto killed_agent = fix.Agent(21);
  core::PlacementEnvironment killed_env(fix.graph, fix.cluster,
                                        fix.EnvOptions());
  auto killed_options = fix.Options(20);
  killed_options.checkpoint_dir = dir;
  killed_options.checkpoint_name = "kill";
  const auto killed =
      TrainAgent(*killed_agent, killed_env, killed_options);
  EXPECT_EQ(killed.total_samples, 20);
  const std::string path = CheckpointFilePath(dir, "kill");
  EXPECT_TRUE(std::filesystem::exists(path));
  // Atomic write: no half-written temp file survives.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Resume in fresh objects (fresh process in real life) to 40 samples.
  auto resumed_agent = fix.Agent(21);
  core::PlacementEnvironment resumed_env(fix.graph, fix.cluster,
                                         fix.EnvOptions());
  auto resumed_options = fix.Options(40);
  resumed_options.checkpoint_dir = dir;
  resumed_options.checkpoint_name = "kill";
  resumed_options.resume = true;
  const auto resumed =
      TrainAgent(*resumed_agent, resumed_env, resumed_options);

  EXPECT_EQ(resumed.total_samples, reference.total_samples);
  EXPECT_EQ(resumed.invalid_samples, reference.invalid_samples);
  EXPECT_EQ(resumed.found_valid, reference.found_valid);
  EXPECT_DOUBLE_EQ(resumed.best_per_step_seconds,
                   reference.best_per_step_seconds);
  EXPECT_DOUBLE_EQ(resumed.total_virtual_hours,
                   reference.total_virtual_hours);
  EXPECT_DOUBLE_EQ(resumed.best_found_at_hours,
                   reference.best_found_at_hours);
  EXPECT_EQ(resumed.best_placement.devices(),
            reference.best_placement.devices());
  ASSERT_EQ(resumed.history.size(), reference.history.size());
  for (std::size_t i = 0; i < reference.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed.history[i].virtual_hours,
                     reference.history[i].virtual_hours);
    EXPECT_DOUBLE_EQ(resumed.history[i].best_so_far_seconds,
                     reference.history[i].best_so_far_seconds);
  }
  // Bit-compatible parameters, not just matching metrics.
  EXPECT_EQ(ParamBlob(*resumed_agent), ParamBlob(*ref_agent));

  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, ResumeWithoutSnapshotStartsFresh) {
  Fixture fix;
  auto plain_agent = fix.Agent(31);
  core::PlacementEnvironment plain_env(fix.graph, fix.cluster,
                                       fix.EnvOptions());
  const auto plain = TrainAgent(*plain_agent, plain_env, fix.Options(20));

  const std::string dir = FreshDir("eagle_resume_empty");
  auto agent = fix.Agent(31);
  core::PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
  auto options = fix.Options(20);
  options.checkpoint_dir = dir;
  options.resume = true;  // nothing there yet: falls back to fresh start
  const auto result = TrainAgent(*agent, env, options);
  EXPECT_EQ(result.total_samples, plain.total_samples);
  EXPECT_DOUBLE_EQ(result.best_per_step_seconds,
                   plain.best_per_step_seconds);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, DataRoundTrip) {
  Fixture fix;
  auto agent = fix.Agent(1);
  nn::Adam optimizer(agent->params());

  CheckpointData data;
  data.result.found_valid = true;
  data.result.best_per_step_seconds = 0.5;
  data.result.best_found_at_hours = 1.25;
  data.result.total_virtual_hours = 2.5;
  data.result.invalid_samples = 3;
  data.result.total_samples = 7;
  data.result.best_placement =
      sim::Placement::FromRaw({1, 2, 1, 3, 0, 2});
  HistoryPoint point;
  point.sample_index = 7;
  point.virtual_hours = 2.5;
  point.per_step_seconds = 0.6;
  point.best_so_far_seconds = 0.5;
  data.result.history = {point};
  data.rng_state = {11, 22, 33, 44};
  data.baseline_value = -0.75;
  data.baseline_initialized = true;
  Sample sample;
  sample.grouping = {0, 1, 1};
  sample.group_devices = {2, 4};
  sample.logp = -1.5;
  sample.num_decisions = 4;
  sample.valid = true;
  sample.per_step_seconds = 0.9;
  sample.reward = -0.7;
  sample.advantage = 0.1;
  data.pool = {sample};
  data.batch = {sample, sample};
  data.since_ce = 3;
  data.env_state = "opaque environment blob";

  const std::string dir = FreshDir("eagle_ckpt_roundtrip");
  const std::string path = CheckpointFilePath(dir, "trainer");
  ASSERT_TRUE(SaveCheckpoint(path, agent->params(), optimizer, data));

  auto restored_agent = fix.Agent(99);  // different init, same shapes
  nn::Adam restored_optimizer(restored_agent->params());
  CheckpointData restored;
  ASSERT_TRUE(LoadCheckpoint(path, restored_agent->params(),
                             restored_optimizer, &restored));
  EXPECT_EQ(ParamBlob(*restored_agent), ParamBlob(*agent));
  EXPECT_EQ(restored.result.total_samples, 7);
  EXPECT_EQ(restored.result.invalid_samples, 3);
  EXPECT_TRUE(restored.result.found_valid);
  EXPECT_DOUBLE_EQ(restored.result.best_per_step_seconds, 0.5);
  EXPECT_DOUBLE_EQ(restored.result.total_virtual_hours, 2.5);
  EXPECT_EQ(restored.result.best_placement.devices(),
            data.result.best_placement.devices());
  ASSERT_EQ(restored.result.history.size(), 1u);
  EXPECT_DOUBLE_EQ(restored.result.history[0].per_step_seconds, 0.6);
  EXPECT_EQ(restored.rng_state, data.rng_state);
  EXPECT_DOUBLE_EQ(restored.baseline_value, -0.75);
  EXPECT_TRUE(restored.baseline_initialized);
  ASSERT_EQ(restored.pool.size(), 1u);
  EXPECT_EQ(restored.pool[0].grouping, sample.grouping);
  EXPECT_EQ(restored.pool[0].group_devices, sample.group_devices);
  EXPECT_DOUBLE_EQ(restored.pool[0].logp, -1.5);
  EXPECT_EQ(restored.pool[0].num_decisions, 4);
  EXPECT_TRUE(restored.pool[0].valid);
  EXPECT_DOUBLE_EQ(restored.pool[0].reward, -0.7);
  EXPECT_DOUBLE_EQ(restored.pool[0].advantage, 0.1);
  ASSERT_EQ(restored.batch.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.batch[1].per_step_seconds, 0.9);
  EXPECT_EQ(restored.since_ce, 3);
  EXPECT_EQ(restored.env_state, "opaque environment blob");
  EXPECT_TRUE(restored.critic_state.empty());
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, V1MagicStillLoads) {
  // The v2 format added Sample::eval_stream; a checkpoint with no stored
  // samples is byte-identical to v1 apart from the magic, so rewriting
  // the version byte yields a faithful v1 file the reader must accept.
  Fixture fix;
  auto agent = fix.Agent(4);
  nn::Adam optimizer(agent->params());
  CheckpointData data;
  data.result.total_samples = 12;
  data.rng_state = {1, 2, 3, 4};

  const std::string dir = FreshDir("eagle_ckpt_v1");
  const std::string path = CheckpointFilePath(dir, "trainer");
  ASSERT_TRUE(SaveCheckpoint(path, agent->params(), optimizer, data));
  {
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(7);
    io.put('1');  // "EAGLCKP2" -> "EAGLCKP1"
  }
  CheckpointData restored;
  ASSERT_TRUE(LoadCheckpoint(path, agent->params(), optimizer, &restored));
  EXPECT_EQ(restored.result.total_samples, 12);
  EXPECT_EQ(restored.rng_state, data.rng_state);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, SampleEvalStreamRoundTrips) {
  Fixture fix;
  auto agent = fix.Agent(5);
  nn::Adam optimizer(agent->params());
  CheckpointData data;
  Sample sample;
  sample.grouping = {0, 1};
  sample.group_devices = {2, 3};
  sample.eval_stream = 0x0123456789abcdefULL;
  data.pool = {sample};

  const std::string dir = FreshDir("eagle_ckpt_stream");
  const std::string path = CheckpointFilePath(dir, "trainer");
  ASSERT_TRUE(SaveCheckpoint(path, agent->params(), optimizer, data));
  CheckpointData restored;
  ASSERT_TRUE(LoadCheckpoint(path, agent->params(), optimizer, &restored));
  ASSERT_EQ(restored.pool.size(), 1u);
  EXPECT_EQ(restored.pool[0].eval_stream, 0x0123456789abcdefULL);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, LoadMissingReturnsFalse) {
  Fixture fix;
  auto agent = fix.Agent(2);
  nn::Adam optimizer(agent->params());
  CheckpointData data;
  EXPECT_FALSE(LoadCheckpoint(::testing::TempDir() + "/eagle_no_such.ckpt",
                              agent->params(), optimizer, &data));
}

TEST(Checkpoint, CorruptOrTruncatedFileThrows) {
  Fixture fix;
  auto agent = fix.Agent(3);
  nn::Adam optimizer(agent->params());
  const std::string dir = FreshDir("eagle_ckpt_corrupt");
  std::filesystem::create_directories(dir);

  const std::string garbage = dir + "/garbage.ckpt";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a checkpoint";
  }
  CheckpointData data;
  EXPECT_THROW(LoadCheckpoint(garbage, agent->params(), optimizer, &data),
               std::logic_error);

  // A good checkpoint cut short mid-file must be rejected, never
  // half-applied silently.
  const std::string path = CheckpointFilePath(dir, "trainer");
  CheckpointData full;
  full.result.total_samples = 5;
  ASSERT_TRUE(SaveCheckpoint(path, agent->params(), optimizer, full));
  std::ifstream in(path, std::ios::binary);
  std::stringstream contents;
  contents << in.rdbuf();
  in.close();
  const std::string bytes = contents.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(LoadCheckpoint(path, agent->params(), optimizer, &data),
               std::logic_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eagle::rl
