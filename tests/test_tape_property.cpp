// Property tests for the autograd tape: random compositions of ops must
// produce analytic gradients matching finite differences, regardless of
// composition shape or seed. This complements test_autograd.cpp's
// per-op checks by exercising interactions (shared subexpressions,
// parameters used many times, deep chains) that per-op tests cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/layers.h"
#include "nn/tape.h"
#include "support/rng.h"

namespace eagle::nn {
namespace {

// Builds a random scalar-valued expression over `p` (R×C) using a small
// op alphabet; the structure is deterministic per seed.
Var RandomExpression(Tape& tape, Var p, support::Rng& rng, int depth) {
  std::vector<Var> pool{p, tape.Tanh(p), tape.Sigmoid(p)};
  const int rows = tape.value(p).rows();
  const int cols = tape.value(p).cols();
  for (int d = 0; d < depth; ++d) {
    const auto pick = [&]() {
      return pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    };
    Var a = pick();
    switch (rng.NextBelow(7)) {
      case 0:
        pool.push_back(tape.Tanh(a));
        break;
      case 1: {
        Var b = pick();
        if (tape.value(a).SameShape(tape.value(b))) {
          pool.push_back(tape.Mul(a, b));
        }
        break;
      }
      case 2: {
        Var b = pick();
        if (tape.value(a).SameShape(tape.value(b))) {
          pool.push_back(tape.Add(a, b));
        }
        break;
      }
      case 3:
        if (tape.value(a).rows() == rows && tape.value(a).cols() == cols) {
          // p^T a keeps things square-ish only when rows==cols; guard.
          if (rows == cols) pool.push_back(tape.MatMul(tape.Transpose(a), a));
        }
        break;
      case 4:
        pool.push_back(tape.Scale(a, 0.5f + rng.NextFloat()));
        break;
      case 5:
        pool.push_back(tape.Softmax(a));
        break;
      case 6:
        pool.push_back(tape.Clamp(a, -0.8f, 0.8f));
        break;
    }
  }
  // Combine everything into a scalar.
  Var acc = tape.Sum(pool.back());
  for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
    acc = tape.Add(acc, tape.Mean(pool[i]));
  }
  return acc;
}

class TapeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TapeProperty, RandomCompositionGradcheck) {
  const std::uint64_t seed = GetParam();
  support::Rng init_rng(seed);
  Parameter p;
  p.name = "p";
  p.value = Tensor(3, 3);
  p.grad = Tensor(3, 3);
  UniformInit(p.value, -0.9f, 0.9f, init_rng);

  auto eval = [&](bool backward) {
    support::Rng rng(seed + 1000);  // same structure every call
    Tape tape;
    Var loss = RandomExpression(tape, tape.Param(&p), rng, 12);
    const double value = tape.value(loss).at(0, 0);
    if (backward) tape.Backward(loss);
    return value;
  };

  p.grad.Fill(0.0f);
  eval(true);
  Tensor analytic = p.grad;

  const float eps = 1e-3f;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const float saved = p.value.at(r, c);
      p.value.at(r, c) = saved + eps;
      const double up = eval(false);
      p.value.at(r, c) = saved - eps;
      const double down = eval(false);
      p.value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double got = analytic.at(r, c);
      const double scale = std::max({1.0, std::abs(numeric), std::abs(got)});
      EXPECT_NEAR(got / scale, numeric / scale, 3e-2)
          << "seed " << seed << " at (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TapeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(TapeProperty, SharedSubexpressionGradients) {
  // y = sum(h * h) with h = tanh(p): dL/dp must route through h twice.
  support::Rng rng(99);
  Parameter p;
  p.name = "p";
  p.value = Tensor(2, 2);
  p.grad = Tensor(2, 2);
  UniformInit(p.value, -1, 1, rng);
  Tape tape;
  Var h = tape.Tanh(tape.Param(&p));
  tape.Backward(tape.Sum(tape.Mul(h, h)));
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      const double t = std::tanh(p.value.at(r, c));
      const double expected = 2.0 * t * (1.0 - t * t);
      EXPECT_NEAR(p.grad.at(r, c), expected, 1e-4);
    }
  }
}

TEST(TapeProperty, DeepChainStable) {
  // 200 chained tanh/scale ops: gradients stay finite (no reallocation
  // UAF regressions — the ConcatCols bug class — and no NaNs).
  support::Rng rng(7);
  Parameter p;
  p.name = "p";
  p.value = Tensor(4, 4);
  p.grad = Tensor(4, 4);
  UniformInit(p.value, -1, 1, rng);
  Tape tape;
  Var x = tape.Param(&p);
  for (int i = 0; i < 200; ++i) {
    x = tape.Tanh(tape.Scale(x, 1.01f));
    if (i % 10 == 0) x = tape.ConcatCols(tape.SliceCols(x, 0, 2),
                                         tape.SliceCols(x, 2, 4));
  }
  tape.Backward(tape.Sum(x));
  for (std::int64_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_TRUE(std::isfinite(p.grad.data()[i]));
  }
}

}  // namespace
}  // namespace eagle::nn
