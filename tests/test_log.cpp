#include <gtest/gtest.h>

#include "support/log.h"

namespace eagle::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These build (and drop) their messages without touching stderr state.
  EAGLE_LOG(Debug) << "dropped " << 1;
  EAGLE_LOG(Info) << "dropped " << 2.5;
  EAGLE_LOG(Warn) << "dropped " << "three";
  SUCCEED();
}

TEST(Log, StreamsArbitraryTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // keep test output clean
  EAGLE_LOG(Error) << "value=" << 42 << " ratio=" << 0.5 << " flag="
                   << true;
  SUCCEED();
}

}  // namespace
}  // namespace eagle::support
