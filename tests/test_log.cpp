#include <gtest/gtest.h>

#include "support/log.h"

namespace eagle::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These build (and drop) their messages without touching stderr state.
  EAGLE_LOG(Debug) << "dropped " << 1;
  EAGLE_LOG(Info) << "dropped " << 2.5;
  EAGLE_LOG(Warn) << "dropped " << "three";
  SUCCEED();
}

TEST(Log, LevelFromStringParsesNamesAndDigits) {
  EXPECT_EQ(LogLevelFromString("debug", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("Warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("warning", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(LogLevelFromString("0", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("2", LogLevel::kError), LogLevel::kWarn);
  // Unrecognized text falls back rather than guessing.
  EXPECT_EQ(LogLevelFromString("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("4", LogLevel::kDebug), LogLevel::kDebug);
}

TEST(Log, PrefixCarriesElapsedTimeThreadTagAndLocation) {
  EXPECT_EQ(FormatLogPrefix(LogLevel::kInfo, "env.cpp", 42, 12.3456, 3),
            "[   12.346s T3 INFO env.cpp:42] ");
  EXPECT_EQ(FormatLogPrefix(LogLevel::kError, "trainer.cpp", 7, 0.0, 0),
            "[    0.000s T0 ERROR trainer.cpp:7] ");
  // __FILE__ paths are reduced to their basename.
  EXPECT_EQ(FormatLogPrefix(LogLevel::kWarn, "/root/repo/src/core/env.cpp",
                            10, 1.0, 1),
            "[    1.000s T1 WARN env.cpp:10] ");
}

TEST(Log, StreamsArbitraryTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // keep test output clean
  EAGLE_LOG(Error) << "value=" << 42 << " ratio=" << 0.5 << " flag="
                   << true;
  SUCCEED();
}

}  // namespace
}  // namespace eagle::support
