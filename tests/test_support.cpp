#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/args.h"
#include "support/atomic_file.h"
#include "support/inplace_function.h"
#include "support/resource_pool.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace eagle::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.NextBelow(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(10);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(12);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.NextCategorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalAllZeroUniform) {
  Rng rng(13);
  std::vector<double> w{0.0, 0.0};
  int ones = 0;
  for (int i = 0; i < 2000; ++i) ones += rng.NextCategorical(w) == 1;
  EXPECT_GT(ones, 700);
  EXPECT_LT(ones, 1300);
}

TEST(Rng, NextFromProbs) {
  Rng rng(14);
  const float probs[3] = {0.0f, 1.0f, 0.0f};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextFromProbs(probs, 3), 1u);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(15);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng rng(16);
  Rng child1 = rng.Split();
  Rng child2 = rng.Split();
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(Rng, NumberedSplitDoesNotAdvanceParent) {
  Rng rng(17);
  Rng twin(17);
  (void)rng.Split(0);
  (void)rng.Split(1);
  (void)rng.Split(99);
  // The const stream API leaves the parent state untouched.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.NextU64(), twin.NextU64());
}

TEST(Rng, NumberedSplitDeterministicPerStream) {
  Rng a(18), b(18);
  for (std::uint64_t stream : {0ull, 1ull, 7ull, 1000000ull}) {
    Rng child_a = a.Split(stream);
    Rng child_b = b.Split(stream);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(child_a.NextU64(), child_b.NextU64()) << "stream " << stream;
    }
  }
}

TEST(Rng, NumberedSplitStreamsDiffer) {
  Rng rng(19);
  // Adjacent stream numbers (the trainer uses consecutive sample indices)
  // must produce decorrelated children.
  Rng c0 = rng.Split(0);
  Rng c1 = rng.Split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c0.NextU64() == c1.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Retry, JitterNeverExceedsMaxBackoff) {
  // Regression: jitter used to be applied after the max clamp, so an
  // upward draw could push the wait past max_backoff_seconds.
  RetryPolicy policy;
  policy.initial_backoff_seconds = 8.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 10.0;
  policy.jitter_fraction = 0.5;
  Rng rng(20);
  for (int trial = 0; trial < 2000; ++trial) {
    for (int failures = 1; failures <= 5; ++failures) {
      const double backoff = policy.BackoffSeconds(failures, &rng);
      ASSERT_LE(backoff, policy.max_backoff_seconds)
          << "failures=" << failures;
      ASSERT_GE(backoff, 0.0);
    }
  }
}

TEST(Retry, NoJitterStaysExact) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 120.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 5.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(6), 120.0);  // capped
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, ClampsToOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) pool.Submit([&completed] { ++completed; });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The failure did not wedge the pool or drop the other tasks.
  EXPECT_EQ(completed.load(), 10);
  pool.Submit([&completed] { ++completed; });
  pool.Wait();
  EXPECT_EQ(completed.load(), 11);
}

TEST(ThreadPool, HardwareThreadsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(AtomicFile, WritesContent) {
  const std::string path = ::testing::TempDir() + "/eagle_atomic.txt";
  ASSERT_TRUE(WriteFileAtomic(path, [](std::ostream& out) {
    out << "hello";
    return true;
  }));
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  // No temp file left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicFile, FailedWriterLeavesOriginalIntact) {
  const std::string path = ::testing::TempDir() + "/eagle_atomic_keep.txt";
  ASSERT_TRUE(WriteFileAtomic(path, [](std::ostream& out) {
    out << "original";
    return true;
  }));
  EXPECT_FALSE(WriteFileAtomic(path, [](std::ostream& out) {
    out << "partial garbage";
    return false;  // simulated serialization failure
  }));
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "original");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Args, ParsesAllTypes) {
  ArgParser args("test");
  args.AddInt("samples", 100, "n");
  args.AddDouble("lr", 0.01, "lr");
  args.AddBool("full", false, "full scale");
  args.AddString("model", "gnmt", "model");
  const char* argv[] = {"prog", "--samples=25", "--lr", "0.5", "--full",
                        "--model=bert", "extra"};
  ASSERT_TRUE(args.Parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(args.GetInt("samples"), 25);
  EXPECT_DOUBLE_EQ(args.GetDouble("lr"), 0.5);
  EXPECT_TRUE(args.GetBool("full"));
  EXPECT_EQ(args.GetString("model"), "bert");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra");
}

TEST(Args, UnknownFlagThrows) {
  ArgParser args;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(args.Parse(2, const_cast<char**>(argv)),
               std::invalid_argument);
}

TEST(Args, BadValueThrows) {
  ArgParser args;
  args.AddInt("n", 1, "n");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(args.Parse(2, const_cast<char**>(argv)),
               std::invalid_argument);
}

TEST(Args, DefaultsPreserved) {
  ArgParser args;
  args.AddInt("n", 42, "n");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(args.GetInt("n"), 42);
}

TEST(Table, RendersAligned) {
  Table t("demo");
  t.SetHeader({"Model", "Time"});
  t.AddRow({"GNMT", Table::Num(1.379, 3)});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("GNMT"), std::string::npos);
  EXPECT_NE(s.find("1.379"), std::string::npos);
}

TEST(Table, NonFiniteRendersAsNullSentinel) {
  EXPECT_EQ(Table::Num(std::numeric_limits<double>::infinity()), "n/a");
  EXPECT_EQ(Table::Num(-std::numeric_limits<double>::infinity()), "n/a");
  EXPECT_EQ(Table::Num(std::numeric_limits<double>::quiet_NaN()), "n/a");
  EXPECT_EQ(Table::Num(1.5, 1), "1.5");
}

TEST(Table, RowWidthChecked) {
  Table t;
  t.SetHeader({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::logic_error);
}

TEST(Table, CsvRoundTrip) {
  Table t;
  t.SetHeader({"name", "value"});
  t.AddRow({"with,comma", "1"});
  const std::string path = ::testing::TempDir() + "/eagle_table.csv";
  ASSERT_TRUE(t.WriteCsv(path));
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "name,value");
  EXPECT_EQ(row, "\"with,comma\",1");
  std::remove(path.c_str());
}

TEST(Series, AsciiChartContainsLegend) {
  std::vector<SeriesPoint> pts{{0.0, 1.0, "a"}, {1.0, 2.0, "b"}};
  const std::string chart = RenderAsciiSeries(pts, 40, 8);
  EXPECT_NE(chart.find("a"), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(Series, CsvWritten) {
  const std::string path = ::testing::TempDir() + "/eagle_series.csv";
  ASSERT_TRUE(WriteSeriesCsv(path, "hours", "seconds",
                             {{0.5, 1.25, "EAGLE"}}));
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "series,hours,seconds");
  EXPECT_EQ(row, "EAGLE,0.5,1.25");
  std::remove(path.c_str());
}

TEST(InplaceFunction, EmptyIsFalsyAndAssignedInvokes) {
  InplaceFunction<64> fn;
  EXPECT_FALSE(fn);
  int calls = 0;
  fn = [&calls] { ++calls; };
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFunction, MoveTransfersClosureAndEmptiesSource) {
  int calls = 0;
  InplaceFunction<64> fn = [&calls] { ++calls; };
  InplaceFunction<64> moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move): emptied by design
  ASSERT_TRUE(moved);
  moved();
  EXPECT_EQ(calls, 1);

  InplaceFunction<64> assigned;
  assigned = std::move(moved);
  ASSERT_TRUE(assigned);
  assigned();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFunction, DestroysCapturesOnceEachLifetimeEnd) {
  // A shared_ptr capture counts live closure copies: destruction and
  // reassignment must run the captured destructor exactly once (tape
  // nodes hold Var handles whose refcounts depend on this).
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  {
    InplaceFunction<64> fn = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(alive.expired());  // closure keeps it alive
    fn = [] {};                     // reassign: old closure destroyed
    EXPECT_TRUE(alive.expired());
  }

  token = std::make_shared<int>(8);
  alive = token;
  {
    InplaceFunction<64> fn = [token] { (void)*token; };
    token.reset();
    InplaceFunction<64> moved = std::move(fn);
    EXPECT_FALSE(alive.expired());  // exactly one live copy, in `moved`
  }
  EXPECT_TRUE(alive.expired());  // scope exit destroyed it
}

TEST(ResourcePool, ReusesReturnedObjectLifo) {
  ResourcePool<std::vector<int>> pool;
  EXPECT_EQ(pool.idle_count(), 0u);
  std::vector<int>* first = nullptr;
  {
    auto lease = pool.Acquire();
    first = lease.get();
    lease->push_back(42);  // grown state survives the round trip
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    auto lease = pool.Acquire();
    EXPECT_EQ(lease.get(), first);
    EXPECT_EQ(lease->size(), 1u);
    EXPECT_EQ(pool.idle_count(), 0u);
  }

  // Concurrent leases are distinct objects; returns restock LIFO, so the
  // most recently returned (cache-warm) object circulates first.
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  EXPECT_NE(a.get(), b.get());
  std::vector<int>* warm = a.get();
  b = ResourcePool<std::vector<int>>::Lease();  // return b first
  a = ResourcePool<std::vector<int>>::Lease();  // then a: top of the list
  EXPECT_EQ(pool.idle_count(), 2u);
  auto next = pool.Acquire();
  EXPECT_EQ(next.get(), warm);
}

TEST(ResourcePool, MovedLeaseReturnsExactlyOnce) {
  ResourcePool<int> pool;
  {
    auto lease = pool.Acquire();
    auto taken = std::move(lease);
    // The moved-from lease returns nothing on destruction.
  }
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(Series, NonFiniteBecomesEmptyCsvField) {
  const std::string path = ::testing::TempDir() + "/eagle_series_inf.csv";
  ASSERT_TRUE(WriteSeriesCsv(
      path, "hours", "seconds",
      {{0.5, std::numeric_limits<double>::infinity(), "EAGLE"},
       {1.0, 2.5, "EAGLE"}}));
  std::ifstream in(path);
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(row1, "EAGLE,0.5,");  // invalid sample: null, not "inf"
  EXPECT_EQ(row2, "EAGLE,1,2.5");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eagle::support
