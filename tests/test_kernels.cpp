// Bit-identity proofs for the blocked/SIMD GEMM kernels and the tensor
// arena: the optimized kernels must match the scalar naive reference
// (nn/naive_ref.h) bit-for-bit on every shape, NaN/Inf must propagate
// through zero operands, and rebuilding a tape on recycled arena buffers
// must reproduce gradients exactly.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/arena.h"
#include "nn/naive_ref.h"
#include "nn/tape.h"
#include "nn/tensor.h"

namespace eagle::nn {
namespace {

// Deterministic fill with sign, magnitude, and exponent spread so any
// reordered or re-rounded accumulation shows up as a bit difference.
Tensor TestMatrix(int rows, int cols, std::uint32_t seed) {
  Tensor t(rows, cols);
  std::uint32_t state = seed * 2654435761u + 12345u;
  float* d = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    state = state * 1664525u + 1013904223u;
    const float mantissa =
        static_cast<float>(static_cast<std::int32_t>(state >> 8) -
                           (1 << 23)) /
        static_cast<float>(1 << 23);
    const int exponent = static_cast<int>(state % 7u) - 3;
    d[i] = std::ldexp(mantissa, exponent);
  }
  return t;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

using KernelFn = void (*)(const Tensor&, const Tensor&, Tensor&);

// Runs optimized vs reference on a(m×k)·b(k×n)-shaped inputs (the caller
// maps m/k/n onto the kernel's own convention) with a non-zero starting
// out so the accumulate path is exercised too.
void ExpectKernelMatches(KernelFn optimized, KernelFn reference, int ar,
                         int ac, int br, int bc, int outr, int outc,
                         std::uint32_t seed) {
  const Tensor a = TestMatrix(ar, ac, seed);
  const Tensor b = TestMatrix(br, bc, seed + 1);
  Tensor out_opt = TestMatrix(outr, outc, seed + 2);
  Tensor out_ref = out_opt;
  optimized(a, b, out_opt);
  reference(a, b, out_ref);
  EXPECT_TRUE(BitIdentical(out_opt, out_ref))
      << "kernel mismatch at " << ar << "x" << ac << " * " << br << "x" << bc;
}

// Covers full tiles, every row/column remainder class, vector shapes
// (1×N, N×1), and empty extents.
const int kDims[] = {0, 1, 2, 3, 5, 7, 8, 13, 16, 17, 24, 31, 33, 64};

TEST(Kernels, GemmAccumBitIdenticalAcrossShapeGrid) {
  std::uint32_t seed = 1;
  for (int m : kDims)
    for (int k : kDims)
      for (int n : kDims)
        ExpectKernelMatches(GemmAccum, naive::GemmAccum, m, k, k, n, m, n,
                            ++seed);
}

TEST(Kernels, GemmTransAAccumBitIdenticalAcrossShapeGrid) {
  std::uint32_t seed = 10001;
  for (int m : kDims)
    for (int k : kDims)
      for (int n : kDims)
        ExpectKernelMatches(GemmTransAAccum, naive::GemmTransAAccum, m, k, m,
                            n, k, n, ++seed);
}

TEST(Kernels, GemmTransBAccumBitIdenticalAcrossShapeGrid) {
  std::uint32_t seed = 20001;
  for (int m : kDims)
    for (int k : kDims)
      for (int n : kDims)
        ExpectKernelMatches(GemmTransBAccum, naive::GemmTransBAccum, m, n, k,
                            n, m, k, ++seed);
}

// Regression for the old `if (av == 0.0f) continue;` zero-skip: a zero in
// one operand must not suppress a NaN/Inf in the other (0 · NaN = NaN,
// 0 · ∞ = NaN), in the optimized kernels and the reference alike.
TEST(Kernels, ZeroTimesNanPropagates) {
  const float kBads[] = {std::numeric_limits<float>::quiet_NaN(),
                         std::numeric_limits<float>::infinity()};
  for (const float bad : kBads) {
    {
      Tensor a = Tensor::FromData(1, 2, {0.0f, 1.0f});
      Tensor b = Tensor::FromData(2, 1, {bad, 2.0f});
      Tensor out(1, 1);
      GemmAccum(a, b, out);
      EXPECT_TRUE(std::isnan(out.at(0, 0)));
      Tensor ref(1, 1);
      naive::GemmAccum(a, b, ref);
      EXPECT_TRUE(std::isnan(ref.at(0, 0)));
    }
    {
      // out(1,1) = aᵀ(1×2)·b(2×1) with the zero row of a against the bad
      // value of b.
      Tensor a = Tensor::FromData(2, 1, {0.0f, 1.0f});
      Tensor b = Tensor::FromData(2, 1, {bad, 2.0f});
      Tensor out(1, 1);
      GemmTransAAccum(a, b, out);
      EXPECT_TRUE(std::isnan(out.at(0, 0)));
      Tensor ref(1, 1);
      naive::GemmTransAAccum(a, b, ref);
      EXPECT_TRUE(std::isnan(ref.at(0, 0)));
    }
    {
      Tensor a = Tensor::FromData(1, 2, {0.0f, 1.0f});
      Tensor b = Tensor::FromData(1, 2, {bad, 2.0f});
      Tensor out(1, 1);
      GemmTransBAccum(a, b, out);
      EXPECT_TRUE(std::isnan(out.at(0, 0)));
      Tensor ref(1, 1);
      naive::GemmTransBAccum(a, b, ref);
      EXPECT_TRUE(std::isnan(ref.at(0, 0)));
    }
  }
}

std::vector<unsigned char> GradBytes(const Tensor& t) {
  std::vector<unsigned char> bytes(
      static_cast<std::size_t>(t.size()) * sizeof(float));
  std::memcpy(bytes.data(), t.data(), bytes.size());
  return bytes;
}

// One forward/backward pass of a small two-layer net on the given tape.
void RunTapePass(Tape& tape, Parameter& w1, Parameter& w2,
                 const Tensor& input) {
  Var x = tape.Input(input);
  Var h = tape.Tanh(tape.MatMul(x, tape.Param(&w1)));
  Var y = tape.MatMul(h, tape.Param(&w2));
  Var loss = tape.Mean(tape.Mul(y, y));
  tape.Backward(loss);
}

TEST(Arena, TapeRebuildOnRecycledBuffersIsBitIdentical) {
  Parameter w1{"w1", TestMatrix(8, 16, 77), Tensor()};
  Parameter w2{"w2", TestMatrix(16, 4, 78), Tensor()};
  const Tensor input = TestMatrix(5, 8, 79);

  Tape tape;
  RunTapePass(tape, w1, w2, input);
  const auto g1_w1 = GradBytes(w1.grad);
  const auto g1_w2 = GradBytes(w2.grad);
  tape.Reset();

  // The second pass performs the identical allocation sequence, so every
  // tensor must come off the freelists the first pass refilled.
  const ArenaStats before = ArenaStatsSnapshot();
  w1.grad.Fill(0.0f);
  w2.grad.Fill(0.0f);
  RunTapePass(tape, w1, w2, input);
  const auto g2_w1 = GradBytes(w1.grad);
  const auto g2_w2 = GradBytes(w2.grad);
  tape.Reset();
  const ArenaStats after = ArenaStatsSnapshot();

  EXPECT_EQ(g1_w1, g2_w1);
  EXPECT_EQ(g1_w2, g2_w2);
  EXPECT_EQ(after.fresh_allocs, before.fresh_allocs)
      << "tape rebuild should not allocate";
  EXPECT_GT(after.pool_hits, before.pool_hits);
}

TEST(Arena, TrimReleasesCachedBytes) {
  {
    Tensor t(64, 64);
    t.Fill(1.0f);
  }
  EXPECT_GT(ArenaStatsSnapshot().pooled_bytes, 0u);
  ArenaTrim();
  EXPECT_EQ(ArenaStatsSnapshot().pooled_bytes, 0u);
}

TEST(Arena, CrossSizeReuseKeepsValuesIntact) {
  // Same bucket, different logical sizes: a 65-float tensor reuses a
  // 100-float tensor's 128-float block; contents must be fully rewritten.
  ArenaTrim();
  { Tensor big(10, 10, 3.0f); }
  Tensor t(13, 5, 0.0f);
  for (int r = 0; r < t.rows(); ++r)
    for (int c = 0; c < t.cols(); ++c) EXPECT_EQ(t.at(r, c), 0.0f);
}

}  // namespace
}  // namespace eagle::nn
