// Fixture: suppression syntax — every violation below carries an
// eagle-lint allow() comment, so the file must lint clean.
#include <cstdlib>
#include <unordered_map>

int SuppressedRoll() {
  return rand() % 6;  // eagle-lint: allow(ND01) — fixture exercises suppression
}

int SuppressedSum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // eagle-lint: allow(ND02) — the comment line also covers the next line
  for (const auto& [key, value] : counts) {
    total += key + value;
  }
  return total;
}

const char* SuppressAll() {
  return getenv("EAGLE_FIXTURE");  // eagle-lint: allow(all)
}
