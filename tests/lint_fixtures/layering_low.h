// LY01 positive fixture: a support-layer header including a sim-layer
// header — a back-edge in the layer DAG.
#pragma once

#include "sim/engine.h"

namespace fixture {
inline int LowStep() { return EngineStep(); }
}  // namespace fixture
