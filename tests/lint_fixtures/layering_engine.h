// LY01 cross-file fixture: the sim-layer header that layering_low.h
// illegally reaches up into. Legal on its own.
#pragma once

namespace fixture {
inline int EngineStep() { return 1; }
}  // namespace fixture
