// Fixture: ND01 — nondeterminism sources outside the allowlist.
// Linted by test_lint.cpp under a synthetic src/core/ path.
#include <cstdlib>
#include <random>

int SeedFromEntropy() {
  std::random_device entropy;             // ND01: random_device
  return static_cast<int>(entropy());
}

int LegacyRoll() {
  return rand() % 6;                      // ND01: rand()
}

double WallClockSeconds() {
  return static_cast<double>(time(nullptr));  // ND01: time()
}

const char* ThreadsFromEnv() {
  return getenv("EAGLE_THREADS");         // ND01: getenv()
}

// Not a finding: `time` used as a plain identifier, not a call.
struct Event {
  double time = 0.0;
};

double EventTime(const Event& e) { return e.time; }
