// ST01 positive fixture: call sites of fixture::Check, declared in
// discarded_status_api.h as returning Status by value.
#include "graph/api.h"

namespace fixture {

void Caller() {
  Check(1);
  Status kept = Check(2);
  if (kept.ok()) {
    Check(3);
  }
}

void Voided() {
  (void)Check(4);
}

void Justified() {
  // probe only; failure cannot matter here  eagle-lint: allow(ST01)
  (void)Check(5);
}

}  // namespace fixture
