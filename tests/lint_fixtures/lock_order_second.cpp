// LK01 cross-file fixture (2/2): the inverted acquisition order.
#include <mutex>

namespace fixture {

struct Pools {
  std::mutex io;
  std::mutex net;
};

inline void Second(Pools& pools) {
  std::lock_guard<std::mutex> hold_net(pools.net);
  std::lock_guard<std::mutex> hold_io(pools.io);
}

}  // namespace fixture
