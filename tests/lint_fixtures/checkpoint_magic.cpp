// Fixture: CP01 — checkpoint magic embedded without referencing the
// format-version constant.
#include <ostream>

namespace fixture {

void WriteHeader(std::ostream& out) {
  out.write("EAGLCKP9", 8);  // CP01: magic with a hard-coded version digit
}

}  // namespace fixture
