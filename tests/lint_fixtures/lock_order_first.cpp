// LK01 cross-file fixture (1/2): acquires io, then net while io is
// still held. Legal on its own; the opposite order in
// lock_order_second.cpp makes the pair a deadlock.
#include <mutex>

namespace fixture {

struct Pools {
  std::mutex io;
  std::mutex net;
};

inline void First(Pools& pools) {
  std::lock_guard<std::mutex> hold_io(pools.io);
  std::lock_guard<std::mutex> hold_net(pools.net);
}

}  // namespace fixture
