// Fixture: DC01 — side effects inside EAGLE_DCHECK (which compiles to
// (void)0 in Release builds, silently dropping the effect).
#include <vector>

#define EAGLE_DCHECK(cond) ((void)0)

int Consume(std::vector<int>& queue) {
  int taken = 0;
  EAGLE_DCHECK(++taken > 0);            // DC01: increment
  EAGLE_DCHECK(!queue.empty());         // fine: pure read
  EAGLE_DCHECK((taken = 1) == 1);       // DC01: assignment
  return taken;
}

void Reset(std::vector<int>& queue) {
  EAGLE_DCHECK((queue.clear(), true));  // DC01: mutating member call
}
