// LK01 suppression fixture: the inverted order from
// lock_order_second.cpp, waived with an inline justification.
#include <mutex>

namespace fixture {

struct Pools {
  std::mutex io;
  std::mutex net;
};

inline void Second(Pools& pools) {
  std::lock_guard<std::mutex> hold_net(pools.net);
  // shutdown path; io is never contended here  eagle-lint: allow(LK01)
  std::lock_guard<std::mutex> hold_io(pools.io);
}

}  // namespace fixture
