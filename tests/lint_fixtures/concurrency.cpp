// Fixture: CC01 — raw concurrency primitives outside the sanctioned
// layer. Linted by test_lint.cpp under a synthetic src/rl/ path.
#include <atomic>  // CC01: concurrency header
#include <mutex>   // CC01: concurrency header

namespace fixture {

std::mutex g_lock;                 // CC01: std::mutex
std::atomic<int> g_counter{0};     // CC01: std::atomic

int Bump() {
  std::lock_guard<std::mutex> hold(g_lock);  // CC01 (twice)
  return g_counter.fetch_add(1);
}

}  // namespace fixture
