// Lexer regression fixture: every literal below contains text that
// would trip ND01/CC01 if the lexer leaked raw-string contents as real
// tokens or mis-consumed digit separators. LintSource must come back
// clean on this file under a scoped path like src/rl/.
namespace fixture {
inline const char* a = R"(std::mutex guard; rand();)";
inline const char* b = u8R"(time(nullptr))";
inline const char* c = LR"sep(std::thread worker;)sep";
inline const char* d = uR"(srand(42))";
inline const char* e = UR"(std::atomic<int> hits;)";
inline int big = 1'000'000;
inline int mask = 0xFF'00;
inline double rate = 1.5e-9;
}  // namespace fixture
