// HP02 cross-file fixture: an allocating helper outside the hot path
// and outside the arena/workspace allowlist.
#pragma once

namespace fixture {
inline int* GrabBuffer(int n) { return new int[n]; }
}  // namespace fixture
