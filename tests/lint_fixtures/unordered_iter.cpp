// Fixture: ND02 — iteration over unordered containers in ordered-only
// code. Linted by test_lint.cpp under a synthetic src/core/ path.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int SumValues(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [name, value] : counts) {  // ND02: range-for
    total += value + static_cast<int>(name.size());
  }
  return total;
}

std::vector<int> Drain(std::unordered_set<int>& pending) {
  std::vector<int> out;
  for (auto it = pending.begin(); it != pending.end(); ++it) {  // ND02
    out.push_back(*it);
  }
  return out;
}

// Not a finding: point lookups don't depend on iteration order.
bool Contains(const std::unordered_set<int>& pending, int id) {
  return pending.find(id) != pending.end();
}
