// WC01 fixture: raw Stopwatch wall-clock reads in hot-path code. Only
// the standalone identifier fires; member access spelled Stopwatch and
// the word in comments stay clean.
#include "support/stopwatch.h"

namespace fixture {

double TimeOneRound() {
  eagle::support::Stopwatch watch;  // line 9: WC01
  return watch.ElapsedSeconds();
}

// A Stopwatch mention in prose never fires, and neither does member
// access on some unrelated API.
int ReadField(Harness& h) {
  return h.Stopwatch + h.timers->Stopwatch;
}

}  // namespace fixture
