// HP02 positive fixture: a hot-path kernel file whose call graph
// escapes to an allocating helper in another file, plus a direct
// make_unique — which textual HP01 cannot see.
#include <memory>

#include "graph/alloc_helper.h"

namespace fixture {

inline void Step(float* out, int n) {
  int* scratch = GrabBuffer(n);
  out[0] = static_cast<float>(scratch[0] + n);
}

inline void Direct() {
  auto owned = std::make_unique<int>(7);
  *owned = 1;
}

}  // namespace fixture
