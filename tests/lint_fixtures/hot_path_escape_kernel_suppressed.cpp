// HP02 suppression fixture: the same escapes as
// hot_path_escape_kernel.cpp, each waived with a justification.
#include <memory>

#include "graph/alloc_helper.h"

namespace fixture {

// builds the lookup table once at session setup  eagle-lint: allow(HP02)
inline void Step(float* out, int n) {
  int* scratch = GrabBuffer(n);
  out[0] = static_cast<float>(scratch[0] + n);
}

inline void Direct() {
  // one-time init scratch  eagle-lint: allow(HP02)
  auto owned = std::make_unique<int>(7);
  *owned = 1;
}

}  // namespace fixture
