// Fixture: HP01 — raw heap allocation and unordered containers in the
// hot-path kernel layer (src/nn, src/sim/simulator.cpp). Linted by
// test_lint.cpp under a synthetic src/nn/ path.
#include <cstdlib>
#include <unordered_map>
#include <vector>

float* AllocScratch(int n) {
  float* raw = new float[n];                    // HP01: raw new
  void* more = std::malloc(sizeof(float) * n);  // HP01: allocator call
  std::free(more);                              // HP01: allocator call
  return raw;
}

std::unordered_map<int, float> g_slot_cache;  // HP01: hash map

// Not findings: pooled vectors, and member APIs that merely share a
// name with the allocator.
template <typename Pool>
int Recycle(Pool& pool) {
  std::vector<int> scratch(4, 0);
  pool.free(static_cast<int>(scratch.size()));
  return static_cast<int>(scratch.size());
}
