// ST01 cross-file fixture: the header declaring a Status-returning API.
// Call sites live in discarded_status_use.cpp; the rule needs both files
// to know Check() unambiguously returns Status by value.
#pragma once

namespace fixture {
struct Status {
  bool ok() const { return true; }
};
Status Check(int value);
}  // namespace fixture
