// Fixture: HS01 — header without #pragma once.
namespace fixture {

inline int Twice(int x) { return 2 * x; }

}  // namespace fixture
