// IN01 fixture: raw numeric conversions in the ingestion layer. Seeded
// violations — this file is excluded from the real-tree lint.
#include <cstdlib>
#include <string>

long long ParseCount(const std::string& token) {
  return std::stoll(token);  // line 7: throws on overflow
}

double ParseRatio(const char* token) {
  return strtod(token, nullptr);  // line 11: saturates silently
}

int ParsePair(const char* line, int* a, int* b) {
  return sscanf(line, "%d %d", a, b);  // line 15
}

// Clean: member access named like a conversion is some other API, and a
// mere mention of stoll in a comment or variable name never fires.
struct Reader;
long long ViaMember(const Reader& r, const std::string& s) {
  int stod = 0;  // a variable named stod, never called
  return r.stoll(s) + stod;
}
