// LY01 suppression fixture: the same back-edge, waived with an inline
// justification.
#pragma once

// transitional: engine types move down next release  eagle-lint: allow(LY01)
#include "sim/engine.h"

namespace fixture {
inline int LowStep() { return EngineStep(); }
}  // namespace fixture
