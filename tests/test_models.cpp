#include <gtest/gtest.h>

#include <set>

#include "models/bert.h"
#include "models/gnmt.h"
#include "models/inception_v3.h"
#include "models/synthetic.h"
#include "models/training_graph.h"
#include "models/zoo.h"
#include "sim/measurement.h"

namespace eagle::models {
namespace {

using graph::OpGraph;
using graph::OpType;

TEST(TrainingGraph, MirrorsForwardOps) {
  OpGraph g = BuildChain(5);
  const int forward_ops = g.num_ops();
  const graph::OpId loss = g.FindOp("op4");
  const int added = AddTrainingOps(g, loss);
  EXPECT_GT(added, 0);
  EXPECT_GT(g.num_ops(), forward_ops);
  // Every chain op reaches the loss, so every one gets a gradient twin.
  EXPECT_NE(g.FindOp("grad/op0"), graph::kInvalidOp);
  EXPECT_NE(g.FindOp("grad/op4"), graph::kInvalidOp);
  EXPECT_TRUE(g.IsDag());
}

TEST(TrainingGraph, GradientFlowsBackward) {
  OpGraph g = BuildChain(3);
  AddTrainingOps(g, g.FindOp("op2"));
  // grad/op2 -> grad/op1 edge must exist (reverse of op1 -> op2).
  const graph::OpId g2 = g.FindOp("grad/op2");
  const graph::OpId g1 = g.FindOp("grad/op1");
  bool found = false;
  for (auto ei : g.out_edges(g2)) {
    found |= g.edges()[static_cast<std::size_t>(ei)].dst == g1;
  }
  EXPECT_TRUE(found);
}

TEST(TrainingGraph, SavedActivationEdges) {
  OpGraph g = BuildChain(3);
  AddTrainingOps(g, g.FindOp("op2"));
  const graph::OpId fwd = g.FindOp("op1");
  const graph::OpId bwd = g.FindOp("grad/op1");
  bool found = false;
  for (auto ei : g.out_edges(fwd)) {
    found |= g.edges()[static_cast<std::size_t>(ei)].dst == bwd;
  }
  EXPECT_TRUE(found);
}

TEST(TrainingGraph, OptimizerOpsColocatedWithParams) {
  graph::OpGraph g;
  graph::OpDef var;
  var.name = "w";
  var.type = OpType::kVariable;
  var.output_shape = graph::TensorShape{16, 16};
  var.param_bytes = 1024;
  g.AddOp(var);
  graph::OpDef use;
  use.name = "mm";
  use.type = OpType::kMatMul;
  use.output_shape = graph::TensorShape{16, 16};
  use.flops = 100;
  g.AddOp(use);
  g.AddEdge(0, 1);
  AddTrainingOps(g, 1);
  const graph::OpId adam = g.FindOp("adam/w");
  ASSERT_NE(adam, graph::kInvalidOp);
  EXPECT_EQ(g.op(adam).colocation_group, g.op(0).colocation_group);
  EXPECT_GE(g.op(0).colocation_group, 0);
  // Optimizer slots: m and v resident next to params.
  EXPECT_EQ(g.op(adam).param_bytes, 2 * 1024);
}

TEST(TrainingGraph, OpsOffLossPathNotMirrored) {
  OpGraph g = BuildParallelChains(2, 2);
  // Use the tail of chain 0 as the loss; chain 1 ops feed only the join.
  const graph::OpId loss = g.FindOp("chain0_op1");
  AddTrainingOps(g, loss);
  EXPECT_NE(g.FindOp("grad/chain0_op0"), graph::kInvalidOp);
  EXPECT_EQ(g.FindOp("grad/chain1_op0"), graph::kInvalidOp);
}

TEST(Synthetic, ChainIsDagWithExpectedSize) {
  OpGraph g = BuildChain(10);
  EXPECT_EQ(g.num_ops(), 11);  // + input
  EXPECT_EQ(g.CriticalPathLength(), 11);
}

TEST(Synthetic, ParallelChainsShape) {
  OpGraph g = BuildParallelChains(4, 3);
  EXPECT_EQ(g.num_ops(), 1 + 4 * 3 + 1);
  EXPECT_EQ(g.SinkOps().size(), 1u);
  EXPECT_TRUE(g.IsDag());
}

TEST(Synthetic, RandomDagValidAndSeeded) {
  RandomDagConfig config;
  config.layers = 6;
  config.width = 5;
  support::Rng rng1(3), rng2(3);
  OpGraph a = BuildRandomDag(config, rng1);
  OpGraph b = BuildRandomDag(config, rng2);
  EXPECT_TRUE(a.IsDag());
  EXPECT_EQ(a.num_ops(), b.num_ops());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(Inception, GraphShape) {
  OpGraph g = BuildInceptionV3();
  EXPECT_GT(g.num_ops(), 600);
  EXPECT_TRUE(g.IsDag());
  // Forward ~5.7 GFLOP at batch 1; training roughly triples it.
  EXPECT_GT(g.TotalFlops(), 10e9);
  EXPECT_LT(g.TotalFlops(), 100e9);
  EXPECT_NE(g.FindOp("grad/logits"), graph::kInvalidOp);
}

TEST(Inception, InferenceOnlySmaller) {
  InceptionConfig config;
  config.training = false;
  OpGraph inference = BuildInceptionV3(config);
  OpGraph training = BuildInceptionV3();
  EXPECT_LT(inference.num_ops(), training.num_ops());
}

TEST(Gnmt, GraphShape) {
  OpGraph g = BuildGNMT();
  EXPECT_GT(g.num_ops(), 3000);
  EXPECT_TRUE(g.IsDag());
  // CPU-pinned embedding lookups present (2 per timestep + grads).
  int cpu_only = 0;
  for (const auto& op : g.ops()) cpu_only += op.cpu_only;
  EXPECT_GE(cpu_only, 2 * 45);
}

TEST(Gnmt, LayersTaggedForExpertPlacement) {
  GnmtConfig config;
  config.seq_len = 4;
  config.vocab = 100;
  config.hidden = 8;
  config.batch = 2;
  OpGraph g = BuildGNMT(config);
  std::set<std::string> layers;
  for (const auto& op : g.ops()) layers.insert(op.layer);
  EXPECT_TRUE(layers.count("encoder/lstm0"));
  EXPECT_TRUE(layers.count("decoder/lstm3"));
  EXPECT_TRUE(layers.count("attention"));
  EXPECT_TRUE(layers.count("softmax"));
}

TEST(Gnmt, WeightsSharedViaVariableOps) {
  GnmtConfig config;
  config.seq_len = 5;
  config.vocab = 100;
  config.hidden = 8;
  config.batch = 2;
  config.training = false;
  OpGraph g = BuildGNMT(config);
  const graph::OpId w = g.FindOp("enc1_w");
  ASSERT_NE(w, graph::kInvalidOp);
  // One weight-read edge per timestep.
  EXPECT_EQ(static_cast<int>(g.out_edges(w).size()), config.seq_len);
}

TEST(Bert, GraphShape) {
  OpGraph g = BuildBertBase();
  EXPECT_GT(g.num_ops(), 1000);
  EXPECT_TRUE(g.IsDag());
  // 12 layers x 12 heads of per-head attention ops.
  EXPECT_NE(g.FindOp("layer11/head11/scores"), graph::kInvalidOp);
  EXPECT_NE(g.FindOp("grad/layer0/ffn_in"), graph::kInvalidOp);
}

TEST(Bert, FlopsInExpectedRange) {
  OpGraph g = BuildBertBase();
  // Forward ≈ 2.1 TFLOP (incl. MLM head) at b24/s384; training ≈ 3x.
  EXPECT_GT(g.TotalFlops(), 3e12);
  EXPECT_LT(g.TotalFlops(), 12e12);
}

TEST(Zoo, NamesRoundTrip) {
  EXPECT_EQ(BenchmarkFromName("inception_v3"), Benchmark::kInceptionV3);
  EXPECT_EQ(BenchmarkFromName("gnmt"), Benchmark::kGNMT);
  EXPECT_EQ(BenchmarkFromName("bert"), Benchmark::kBertBase);
  EXPECT_THROW(BenchmarkFromName("alexnet"), std::logic_error);
  for (auto bm : AllBenchmarks()) {
    EXPECT_NE(std::string(BenchmarkName(bm)), "?");
  }
}

TEST(Zoo, ReducedGraphsAreSmaller) {
  ZooOptions reduced;
  reduced.reduced = true;
  for (auto bm : {Benchmark::kGNMT, Benchmark::kBertBase}) {
    OpGraph small = BuildBenchmark(bm, reduced);
    OpGraph full = BuildBenchmark(bm);
    EXPECT_LT(small.num_ops(), full.num_ops());
    EXPECT_TRUE(small.IsDag());
  }
}

// The paper's memory story (§IV-A): Inception fits on one GPU; GNMT at
// batch 256 and BERT-Base at b24/s384 do not; GNMT at the default batch
// 128 does.
TEST(MemoryStory, SingleGpuFeasibility) {
  const auto cluster = sim::MakeDefaultCluster();
  auto evaluate_single_gpu = [&cluster](const OpGraph& g) {
    sim::MeasurementSession session(g, cluster);
    const auto placement = sim::Placement::AllOnDevice(g, cluster, 1);
    return session.Evaluate(placement);
  };
  EXPECT_TRUE(evaluate_single_gpu(BuildInceptionV3()).valid);
  EXPECT_FALSE(evaluate_single_gpu(BuildGNMT()).valid);
  EXPECT_FALSE(evaluate_single_gpu(BuildBertBase()).valid);
  GnmtConfig small_batch;
  small_batch.batch = 128;
  EXPECT_TRUE(evaluate_single_gpu(BuildGNMT(small_batch)).valid);
}

}  // namespace
}  // namespace eagle::models
