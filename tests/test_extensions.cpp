// Tests for the extension components: recursive-bisection partitioner and
// the Placeto-style incremental agent.
#include <gtest/gtest.h>

#include "core/placeto_agent.h"
#include "models/synthetic.h"
#include "partition/bisection.h"
#include "models/zoo.h"
#include "partition/metis_like.h"

namespace eagle {
namespace {

TEST(Bisection, ValidAndBalanced) {
  support::Rng rng(1);
  models::RandomDagConfig config;
  config.layers = 12;
  config.width = 8;
  auto g = models::BuildRandomDag(config, rng);
  const auto wg = partition::BuildWeightedGraph(g);
  partition::BisectionOptions options;
  options.num_parts = 8;
  const auto part = partition::BisectionPartitionWeighted(wg, options);
  const auto metrics = partition::ComputeMetrics(wg, part, 8);
  EXPECT_EQ(metrics.num_nonempty, 8);
  EXPECT_LE(metrics.balance, 1.6);  // recursive tolerance compounds
}

TEST(Bisection, BetterThanRandomCut) {
  auto g = models::BuildParallelChains(4, 16);
  const auto wg = partition::BuildWeightedGraph(g);
  partition::BisectionOptions options;
  options.num_parts = 4;
  const auto part = partition::BisectionPartitionWeighted(wg, options);
  support::Rng rng(2);
  partition::Partitioning random_part(part.size());
  for (auto& p : random_part) {
    p = static_cast<std::int32_t>(rng.NextBelow(4));
  }
  EXPECT_LT(partition::CutWeight(wg, part),
            partition::CutWeight(wg, random_part));
}

TEST(Bisection, NonPowerOfTwoParts) {
  auto g = models::BuildChain(30);
  partition::BisectionOptions options;
  options.num_parts = 5;
  const auto part = partition::BisectionPartition(g, options);
  const auto wg = partition::BuildWeightedGraph(g);
  partition::ValidatePartitioning(wg, part, 5);
  const auto metrics = partition::ComputeMetrics(wg, part, 5);
  EXPECT_EQ(metrics.num_nonempty, 5);
}

TEST(Bisection, SingleVertexAndPart) {
  auto g = models::BuildChain(1);  // input + one op
  // Drop to a single-vertex case by partitioning into 1 part anyway.
  partition::BisectionOptions options;
  options.num_parts = 1;
  const auto part = partition::BisectionPartition(g, options);
  ASSERT_EQ(part.size(), 2u);
  EXPECT_EQ(part[0], 0);
  EXPECT_EQ(part[1], 0);
}

TEST(Bisection, Deterministic) {
  auto g = models::BuildParallelChains(3, 10);
  partition::BisectionOptions options;
  options.num_parts = 6;
  options.seed = 11;
  EXPECT_EQ(partition::BisectionPartition(g, options),
            partition::BisectionPartition(g, options));
}

TEST(Placeto, ImprovesOnParallelChains) {
  auto g = models::BuildParallelChains(4, 8, 1 << 18, 2e10);
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacetoOptions options;
  options.episodes = 15;
  options.num_groups = 8;
  options.seed = 3;
  core::PlacetoAgent agent(g, cluster, options);
  const auto result = agent.Train();
  ASSERT_TRUE(result.found_valid);
  // Episodes start from all-on-one-GPU; spreading the chains must win.
  sim::ExecutionSimulator simulator(g, cluster);
  const auto single = simulator.Run(
      sim::Placement::AllOnDevice(g, cluster, cluster.Gpus().front()));
  EXPECT_LT(result.best_per_step_seconds, single.step_seconds);
  // One sim evaluation per group change plus one per episode start.
  EXPECT_EQ(result.simulator_evaluations,
            options.episodes * (options.num_groups + 1));
  ASSERT_EQ(result.episode_best.size(),
            static_cast<std::size_t>(options.episodes));
  // Best-so-far is monotone over episodes.
  for (std::size_t i = 1; i < result.episode_best.size(); ++i) {
    EXPECT_LE(result.episode_best[i], result.episode_best[i - 1]);
  }
}

TEST(Placeto, HandlesOomStartState) {
  // BERT-like memory pressure at tiny scale: the all-on-one-GPU start is
  // invalid; the agent must still find valid placements.
  models::ZooOptions zoo;
  zoo.reduced = true;
  auto g = models::BuildBenchmark(models::Benchmark::kBertBase, zoo);
  const auto cluster = sim::MakeScaledCluster(0.02).value();
  core::PlacetoOptions options;
  options.episodes = 8;
  options.num_groups = 12;
  core::PlacetoAgent agent(g, cluster, options);
  const auto result = agent.Train();
  EXPECT_TRUE(result.found_valid);
}

}  // namespace
}  // namespace eagle
