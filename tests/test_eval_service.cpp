// core::EvalService — the parallel minibatch evaluation layer — and the
// determinism contract behind it: training with N evaluation threads is
// bit-identical to training serially (history, best placement, counters,
// parameters, checkpoints), at any thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/eval_cache.h"
#include "core/eval_service.h"
#include "models/synthetic.h"
#include "nn/serialize.h"
#include "rl/checkpoint.h"
#include "rl/trainer.h"
#include "support/thread_pool.h"

namespace eagle::core {
namespace {

core::AgentDims TinyDims() {
  core::AgentDims dims;
  dims.num_groups = 6;
  dims.grouper_hidden = 8;
  dims.placer_hidden = 16;
  dims.attn_dim = 8;
  dims.bridge_hidden = 8;
  dims.device_embed_dim = 4;
  return dims;
}

// Faults + measurement noise on, so every RNG stream the service manages
// (per-sample noise children, per-sample fault children, backoff jitter)
// is actually exercised by the determinism comparisons below.
struct Fixture {
  graph::OpGraph graph = models::BuildParallelChains(2, 4, 1 << 14, 1e9);
  sim::ClusterSpec cluster = sim::MakeDefaultCluster();

  EnvironmentOptions EnvOptions() const {
    EnvironmentOptions options;
    options.faults = sim::FaultProfileFromString("0.15");
    return options;
  }

  std::unique_ptr<HierarchicalAgent> Agent(std::uint64_t seed) const {
    return MakeEagleAgent(graph, cluster, TinyDims(), seed);
  }

  rl::TrainerOptions Options(int total_samples) const {
    rl::TrainerOptions options;
    options.algorithm = rl::Algorithm::kPpoCe;
    options.total_samples = total_samples;
    options.minibatch_size = 10;
    options.ce_interval = 15;
    options.seed = 5;
    return options;
  }
};

std::string ParamBlob(rl::PolicyAgent& agent) {
  std::ostringstream blob;
  nn::SaveParams(agent.params(), blob);
  return blob.str();
}

struct RunOutput {
  rl::TrainResult result;
  std::string params;
  int cache_hits = 0;
  int attempts = 0;
  int retries = 0;
  int exhausted = 0;
  double backoff_seconds = 0.0;
};

// One full training run with a fresh agent/environment; threads < 0
// means "no evaluator" — the trainer's inline serial path.
RunOutput RunTraining(const Fixture& fix, int threads, int total_samples) {
  auto agent = fix.Agent(21);
  PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
  auto options = fix.Options(total_samples);
  std::unique_ptr<EvalService> service;
  if (threads >= 0) {
    service = std::make_unique<EvalService>(env, threads);
    options.evaluator = service.get();
  }
  RunOutput out;
  out.result = rl::TrainAgent(*agent, env, options);
  out.params = ParamBlob(*agent);
  out.cache_hits = env.cache_hits();
  out.attempts = env.attempts();
  out.retries = env.retries();
  out.exhausted = env.exhausted_evaluations();
  out.backoff_seconds = env.backoff_seconds_total();
  return out;
}

void ExpectBitIdentical(const RunOutput& a, const RunOutput& b,
                        const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.total_samples, b.result.total_samples);
  EXPECT_EQ(a.result.invalid_samples, b.result.invalid_samples);
  EXPECT_EQ(a.result.found_valid, b.result.found_valid);
  // Exact double equality throughout: "equivalent up to rounding" would
  // mean thread scheduling leaked into results.
  EXPECT_EQ(a.result.best_per_step_seconds, b.result.best_per_step_seconds);
  EXPECT_EQ(a.result.best_found_at_hours, b.result.best_found_at_hours);
  EXPECT_EQ(a.result.total_virtual_hours, b.result.total_virtual_hours);
  EXPECT_EQ(a.result.best_placement.devices(),
            b.result.best_placement.devices());
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t i = 0; i < a.result.history.size(); ++i) {
    EXPECT_EQ(a.result.history[i].sample_index,
              b.result.history[i].sample_index);
    EXPECT_EQ(a.result.history[i].virtual_hours,
              b.result.history[i].virtual_hours);
    EXPECT_EQ(a.result.history[i].per_step_seconds,
              b.result.history[i].per_step_seconds);
    EXPECT_EQ(a.result.history[i].best_so_far_seconds,
              b.result.history[i].best_so_far_seconds);
  }
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
}

TEST(EvalService, TrainingBitIdenticalAcrossThreadCounts) {
  Fixture fix;
  const auto inline_serial = RunTraining(fix, -1, 40);
  const auto one_thread = RunTraining(fix, 1, 40);
  const auto two_threads = RunTraining(fix, 2, 40);
  const auto eight_threads = RunTraining(fix, 8, 40);
  ExpectBitIdentical(inline_serial, one_thread, "inline vs 1 thread");
  ExpectBitIdentical(one_thread, two_threads, "1 vs 2 threads");
  ExpectBitIdentical(one_thread, eight_threads, "1 vs 8 threads");
}

// The determinism contract extends to what lands on disk: a checkpointed
// run must write byte-for-byte the same checkpoint file at any thread
// count. This pins the whole serialized state — parameters, Adam slots,
// RNG streams, env fault counters — against scheduling leaks from the
// pooled simulator workspaces the evaluation threads now lease.
TEST(EvalService, CheckpointBytesIdenticalAcrossThreadCounts) {
  Fixture fix;

  const auto run_checkpointed = [&](int threads, const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/eagle_ckpt_bytes_" + tag;
    std::filesystem::remove_all(dir);
    auto agent = fix.Agent(21);
    PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
    EvalService service(env, threads);
    auto options = fix.Options(40);
    options.evaluator = &service;
    options.checkpoint_dir = dir;
    options.checkpoint_name = "bytes";
    options.checkpoint_interval = 10;
    rl::TrainAgent(*agent, env, options);

    std::ifstream in(rl::CheckpointFilePath(dir, "bytes"),
                     std::ios::binary);
    EXPECT_TRUE(in.good());
    std::ostringstream bytes;
    bytes << in.rdbuf();
    std::filesystem::remove_all(dir);
    return bytes.str();
  };

  const std::string one_thread = run_checkpointed(1, "t1");
  const std::string eight_threads = run_checkpointed(8, "t8");
  EXPECT_FALSE(one_thread.empty());
  EXPECT_EQ(one_thread, eight_threads);
}

TEST(EvalService, BatchMatchesSerialEvaluateExactly) {
  Fixture fix;
  auto agent = fix.Agent(3);
  support::Rng sampler(4);

  std::vector<sim::Placement> placements;
  for (int i = 0; i < 12; ++i) {
    placements.push_back(agent->ToPlacement(agent->SampleDecision(sampler)));
  }
  // Duplicate placements inside one batch: the in-round cache-hit
  // accounting must mirror the interleaved serial run.
  placements.push_back(placements[0]);
  placements.push_back(placements[5]);

  auto make_rngs = [&]() {
    std::vector<support::Rng> rngs;
    for (std::size_t i = 0; i < placements.size(); ++i) {
      rngs.push_back(sampler.Split(i));
    }
    return rngs;
  };

  PlacementEnvironment serial_env(fix.graph, fix.cluster, fix.EnvOptions());
  auto serial_rngs = make_rngs();
  std::vector<sim::EvalResult> serial_results;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    serial_results.push_back(
        serial_env.Evaluate(placements[i], &serial_rngs[i]));
  }

  PlacementEnvironment pool_env(fix.graph, fix.cluster, fix.EnvOptions());
  EvalService service(pool_env, 4);
  auto pool_rngs = make_rngs();
  const auto pool_results = service.EvaluateBatch(placements, pool_rngs);

  ASSERT_EQ(pool_results.size(), serial_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(pool_results[i].valid, serial_results[i].valid);
    EXPECT_EQ(pool_results[i].per_step_seconds,
              serial_results[i].per_step_seconds);
    EXPECT_EQ(pool_results[i].true_per_step_seconds,
              serial_results[i].true_per_step_seconds);
    EXPECT_EQ(pool_results[i].measurement_cost_seconds,
              serial_results[i].measurement_cost_seconds);
    EXPECT_EQ(pool_results[i].attempts, serial_results[i].attempts);
  }
  EXPECT_EQ(pool_env.evaluations(), serial_env.evaluations());
  EXPECT_EQ(pool_env.cache_hits(), serial_env.cache_hits());
  EXPECT_EQ(pool_env.attempts(), serial_env.attempts());
  EXPECT_EQ(pool_env.retries(), serial_env.retries());
  EXPECT_EQ(pool_env.backoff_seconds_total(),
            serial_env.backoff_seconds_total());
  EXPECT_EQ(pool_env.cache().size(), serial_env.cache().size());
}

TEST(EvalService, KillAndResumeThroughParallelPath) {
  Fixture fix;

  // Reference: 40 samples straight through on 4 threads.
  const auto reference = RunTraining(fix, 4, 40);

  const std::string dir = ::testing::TempDir() + "/eagle_parallel_resume";
  std::filesystem::remove_all(dir);

  // "Crash" after 20 samples (the run's final snapshot is exactly what a
  // kill between minibatches leaves behind), then resume to 40 — all
  // through the 4-thread service.
  {
    auto agent = fix.Agent(21);
    PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
    EvalService service(env, 4);
    auto options = fix.Options(20);
    options.evaluator = &service;
    options.checkpoint_dir = dir;
    options.checkpoint_name = "kill";
    options.checkpoint_interval = 10;
    const auto killed = rl::TrainAgent(*agent, env, options);
    EXPECT_EQ(killed.total_samples, 20);
  }
  auto resumed_agent = fix.Agent(21);
  PlacementEnvironment resumed_env(fix.graph, fix.cluster, fix.EnvOptions());
  EvalService resumed_service(resumed_env, 4);
  auto resumed_options = fix.Options(40);
  resumed_options.evaluator = &resumed_service;
  resumed_options.checkpoint_dir = dir;
  resumed_options.checkpoint_name = "kill";
  resumed_options.checkpoint_interval = 10;
  resumed_options.resume = true;
  const auto resumed =
      rl::TrainAgent(*resumed_agent, resumed_env, resumed_options);

  EXPECT_EQ(resumed.total_samples, reference.result.total_samples);
  EXPECT_EQ(resumed.invalid_samples, reference.result.invalid_samples);
  EXPECT_EQ(resumed.best_per_step_seconds,
            reference.result.best_per_step_seconds);
  EXPECT_EQ(resumed.total_virtual_hours,
            reference.result.total_virtual_hours);
  EXPECT_EQ(resumed.best_placement.devices(),
            reference.result.best_placement.devices());
  ASSERT_EQ(resumed.history.size(), reference.result.history.size());
  for (std::size_t i = 0; i < resumed.history.size(); ++i) {
    EXPECT_EQ(resumed.history[i].virtual_hours,
              reference.result.history[i].virtual_hours);
    EXPECT_EQ(resumed.history[i].per_step_seconds,
              reference.result.history[i].per_step_seconds);
  }
  EXPECT_EQ(ParamBlob(*resumed_agent), reference.params);
  std::filesystem::remove_all(dir);
}

// A resumed run must also match when the thread count CHANGES across the
// kill — the checkpoint encodes streams, not scheduling.
TEST(EvalService, ResumeWithDifferentThreadCountStillMatches) {
  Fixture fix;
  const auto reference = RunTraining(fix, 1, 30);

  const std::string dir = ::testing::TempDir() + "/eagle_thread_switch";
  std::filesystem::remove_all(dir);
  {
    auto agent = fix.Agent(21);
    PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
    EvalService service(env, 8);
    auto options = fix.Options(20);
    options.evaluator = &service;
    options.checkpoint_dir = dir;
    options.checkpoint_name = "switch";
    rl::TrainAgent(*agent, env, options);
  }
  auto agent = fix.Agent(21);
  PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
  EvalService service(env, 2);
  auto options = fix.Options(30);
  options.evaluator = &service;
  options.checkpoint_dir = dir;
  options.checkpoint_name = "switch";
  options.resume = true;
  const auto resumed = rl::TrainAgent(*agent, env, options);

  EXPECT_EQ(resumed.total_samples, reference.result.total_samples);
  EXPECT_EQ(resumed.best_per_step_seconds,
            reference.result.best_per_step_seconds);
  EXPECT_EQ(resumed.total_virtual_hours,
            reference.result.total_virtual_hours);
  EXPECT_EQ(ParamBlob(*agent), reference.params);
  std::filesystem::remove_all(dir);
}

// Concurrency stress for TSan: hammer one environment through a wide
// service with duplicate-heavy batches so the cache, counters and fault
// stream all see real contention.
TEST(EvalService, ConcurrentStress) {
  Fixture fix;
  EnvironmentOptions env_options = fix.EnvOptions();
  env_options.eval_cache_capacity = 32;  // force concurrent-era evictions
  PlacementEnvironment env(fix.graph, fix.cluster, env_options);
  EvalService service(env, 8);
  auto agent = fix.Agent(7);
  support::Rng sampler(8);

  std::vector<sim::Placement> distinct;
  for (int i = 0; i < 24; ++i) {
    distinct.push_back(agent->ToPlacement(agent->SampleDecision(sampler)));
  }
  for (int round = 0; round < 8; ++round) {
    std::vector<sim::Placement> batch;
    std::vector<support::Rng> rngs;
    for (int i = 0; i < 48; ++i) {
      batch.push_back(distinct[static_cast<std::size_t>(
          sampler.NextBelow(distinct.size()))]);
      rngs.push_back(sampler.Split(static_cast<std::uint64_t>(i)));
    }
    const auto results = service.EvaluateBatch(batch, rngs);
    ASSERT_EQ(results.size(), batch.size());
  }
  EXPECT_EQ(env.evaluations(), 8 * 48);
  EXPECT_LE(env.cache().size(), 32 + static_cast<int>(EvalCache::kNumShards));
}

TEST(EvalCache, CapacityBoundsGrowth) {
  EvalCache cache(/*max_entries=*/32);  // ceil(32/16) = 2 per shard
  EXPECT_EQ(cache.max_entries(), 32);
  sim::EvalResult result;
  result.valid = true;
  for (int i = 0; i < 200; ++i) {
    result.per_step_seconds = static_cast<double>(i);
    cache.InsertByHash(static_cast<std::uint64_t>(i),
                       {static_cast<sim::DeviceId>(i), 1}, result);
  }
  EXPECT_LE(cache.size(), 32);
  EXPECT_GT(cache.evictions(), 0);
}

TEST(EvalCache, EvictsLeastRecentlyUsedEntry) {
  EvalCache cache(/*max_entries=*/32);  // 2 entries per shard
  sim::EvalResult result;
  result.valid = true;
  const std::vector<sim::DeviceId> d0{0, 0}, d1{1, 1}, d2{2, 2};
  // Hashes 0, 16, 32 all land in shard 0 (hash mod 16 == 0).
  cache.InsertByHash(0, d0, result);
  cache.InsertByHash(16, d1, result);
  sim::EvalResult out;
  EXPECT_TRUE(cache.LookupByHash(0, d0, &out));  // keep entry 0 hot
  cache.InsertByHash(32, d2, result);            // shard full: evict LRU
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.LookupByHash(0, d0, &out));    // hot entry survived
  EXPECT_FALSE(cache.LookupByHash(16, d1, &out));  // stale entry evicted
  EXPECT_TRUE(cache.LookupByHash(32, d2, &out));
  EXPECT_EQ(cache.size(), 2);
}

TEST(EvalCache, UnboundedByDefault) {
  EvalCache cache;
  EXPECT_EQ(cache.max_entries(), 0);
  sim::EvalResult result;
  result.valid = true;
  for (int i = 0; i < 500; ++i) {
    cache.Insert(sim::Placement::FromRaw({static_cast<std::int32_t>(i), 0,
                                          1, 2}),
                 result);
  }
  EXPECT_EQ(cache.size(), 500);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(EvalCache, EnvironmentHonorsCapacityOption) {
  Fixture fix;
  EnvironmentOptions options = fix.EnvOptions();
  options.faults = sim::FaultProfile{};  // noiseless accounting
  options.eval_cache_capacity = 8;
  PlacementEnvironment env(fix.graph, fix.cluster, options);
  auto agent = fix.Agent(9);
  support::Rng sampler(10);
  for (int i = 0; i < 100; ++i) {
    const auto placement = agent->ToPlacement(agent->SampleDecision(sampler));
    support::Rng rng = sampler.Split(static_cast<std::uint64_t>(i));
    env.Evaluate(placement, &rng);
  }
  EXPECT_LE(env.cache().size(), 8 + static_cast<int>(EvalCache::kNumShards));
  EXPECT_GT(env.cache().evictions(), 0);
}

}  // namespace
}  // namespace eagle::core
