// Tests for the bench harness plumbing (flag parsing, context creation,
// fixed groupings, result formatting) — the shared code every paper
// table/figure is generated through.
#include <gtest/gtest.h>

#include "bench/bench_common.h"

namespace eagle::bench {
namespace {

TEST(BenchFlags, DefaultsAndModelList) {
  support::ArgParser args("t");
  AddCommonFlags(args, 123);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.Parse(1, const_cast<char**>(argv)));
  const BenchConfig config = ReadCommonFlags(args);
  EXPECT_EQ(config.samples, 123);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_FALSE(config.full);
  ASSERT_EQ(config.benchmarks.size(), 3u);
  EXPECT_EQ(config.benchmarks[0], models::Benchmark::kInceptionV3);
  EXPECT_EQ(config.benchmarks[2], models::Benchmark::kBertBase);
}

TEST(BenchFlags, SubsetAndFull) {
  support::ArgParser args("t");
  AddCommonFlags(args, 100);
  const char* argv[] = {"prog", "--models=gnmt,bert", "--full",
                        "--samples=9", "--seed=42"};
  ASSERT_TRUE(args.Parse(5, const_cast<char**>(argv)));
  const BenchConfig config = ReadCommonFlags(args);
  ASSERT_EQ(config.benchmarks.size(), 2u);
  EXPECT_EQ(config.benchmarks[0], models::Benchmark::kGNMT);
  EXPECT_TRUE(config.full);
  EXPECT_EQ(config.dims().num_groups, 256);  // paper scale
  EXPECT_EQ(config.samples, 9);
  EXPECT_EQ(config.seed, 42u);
}

TEST(BenchFlags, UnknownModelThrows) {
  support::ArgParser args("t");
  AddCommonFlags(args, 100);
  const char* argv[] = {"prog", "--models=alexnet"};
  ASSERT_TRUE(args.Parse(2, const_cast<char**>(argv)));
  EXPECT_THROW(ReadCommonFlags(args), std::logic_error);
}

TEST(BenchContext, BuildsEnvironmentPerBenchmark) {
  auto context = MakeContext(models::Benchmark::kInceptionV3);
  EXPECT_GT(context.graph.num_ops(), 0);
  EXPECT_EQ(context.cluster.num_devices(), 5);
  EXPECT_GT(context.env->InvalidPenaltySeconds(), 0.0);
}

TEST(BenchGroupings, MetisAndFluidValid) {
  auto context = MakeContext(models::Benchmark::kInceptionV3);
  for (int k : {8, 24}) {
    const auto metis = MetisGrouping(context.graph, k, 1);
    const auto fluid = FluidGrouping(context.graph, k, 1);
    graph::ValidateGrouping(context.graph, metis, k);
    graph::ValidateGrouping(context.graph, fluid, k);
  }
}

TEST(BenchFormat, ResultsAndEvals) {
  rl::TrainResult result;
  EXPECT_EQ(FormatResult(result), "OOM");  // no valid placement found
  result.found_valid = true;
  result.best_per_step_seconds = 1.2345;
  EXPECT_EQ(FormatResult(result), "1.234");

  sim::EvalResult eval;
  EXPECT_EQ(FormatEval(eval), "OOM");
  eval.valid = true;
  eval.true_per_step_seconds = 0.5;
  EXPECT_EQ(FormatEval(eval), "0.500");
}

TEST(BenchTrainerOptions, PaperHyperparameters) {
  const auto options =
      PaperTrainerOptions(rl::Algorithm::kPpoCe, 300, 9);
  EXPECT_EQ(options.minibatch_size, 10);
  EXPECT_DOUBLE_EQ(options.ppo.clip_epsilon, 0.3);
  EXPECT_EQ(options.ppo.epochs, 4);
  EXPECT_DOUBLE_EQ(options.ppo.entropy_coef, 0.01);
  EXPECT_EQ(options.ce.num_elites, 5);
  EXPECT_EQ(options.ce_interval, 50);
  EXPECT_DOUBLE_EQ(options.adam.lr, 0.01);
  EXPECT_DOUBLE_EQ(options.adam.clip_norm, 1.0);
  EXPECT_EQ(options.total_samples, 300);
  EXPECT_EQ(options.seed, 9u);
}

}  // namespace
}  // namespace eagle::bench
