#include <gtest/gtest.h>

#include "models/synthetic.h"
#include "models/zoo.h"
#include "sim/cost_model.h"
#include "sim/measurement.h"
#include "sim/memory_model.h"
#include "sim/naive_ref.h"
#include "sim/placement.h"
#include "sim/simulator.h"

namespace eagle::sim {
namespace {

using graph::OpDef;
using graph::OpGraph;
using graph::OpType;
using graph::TensorShape;

ClusterSpec TwoGpuCluster() {
  ClusterOptions options;
  options.num_gpus = 2;
  return MakeDefaultCluster(options);
}

TEST(Cluster, DefaultShape) {
  const auto cluster = MakeDefaultCluster();
  EXPECT_EQ(cluster.num_devices(), 5);  // CPU + 4 GPUs
  EXPECT_EQ(cluster.FirstCpu(), 0);
  EXPECT_EQ(cluster.Gpus().size(), 4u);
  EXPECT_EQ(cluster.device(0).kind, DeviceKind::kCPU);
}

TEST(Cluster, ScaledMemory) {
  const auto half = MakeScaledCluster(0.5).value();
  const auto full = MakeDefaultCluster();
  EXPECT_EQ(half.device(1).memory_bytes, full.device(1).memory_bytes / 2);
}

TEST(CostModel, MonotonicInFlops) {
  const auto cluster = MakeDefaultCluster();
  CostModel cost(cluster);
  OpDef small, big;
  small.flops = 1e6;
  big.flops = 1e9;
  small.output_shape = big.output_shape = TensorShape{1};
  EXPECT_LT(cost.ComputeSeconds(small, 1), cost.ComputeSeconds(big, 1));
}

TEST(CostModel, GpuFasterForHeavyOps) {
  const auto cluster = MakeDefaultCluster();
  CostModel cost(cluster);
  OpDef heavy;
  heavy.flops = 1e10;
  heavy.output_shape = TensorShape{1024};
  EXPECT_LT(cost.ComputeSeconds(heavy, 1), cost.ComputeSeconds(heavy, 0));
}

TEST(CostModel, CpuFasterForTinyOps) {
  // The effect the paper reports on Inception-V3: "some operations are
  // actually running faster on the CPU devices".
  const auto cluster = MakeDefaultCluster();
  CostModel cost(cluster);
  OpDef tiny;
  tiny.flops = 1e3;
  tiny.output_shape = TensorShape{8};
  EXPECT_LT(cost.ComputeSeconds(tiny, 0), cost.ComputeSeconds(tiny, 1));
}

TEST(CostModel, TransferZeroSameDevice) {
  const auto cluster = MakeDefaultCluster();
  CostModel cost(cluster);
  EXPECT_DOUBLE_EQ(cost.TransferSeconds(1, 1, 1 << 20), 0.0);
  EXPECT_GT(cost.TransferSeconds(1, 2, 1 << 20), 0.0);
}

TEST(CostModel, TransferScalesWithBytes) {
  const auto cluster = MakeDefaultCluster();
  CostModel cost(cluster);
  const double small = cost.TransferSeconds(1, 2, 1 << 10);
  const double large = cost.TransferSeconds(1, 2, 1 << 30);
  EXPECT_GT(large, small * 100);
}

TEST(Placement, CpuOnlyPinned) {
  OpGraph g;
  OpDef a;
  a.name = "lookup";
  a.type = OpType::kEmbeddingLookup;
  a.cpu_only = true;
  a.output_shape = TensorShape{4};
  g.AddOp(a);
  const auto cluster = MakeDefaultCluster();
  auto placement = Placement::AllOnDevice(g, cluster, 2);
  EXPECT_EQ(placement.device(0), cluster.FirstCpu());
}

TEST(Placement, ColocationCollapsesToLeader) {
  OpGraph g;
  for (int i = 0; i < 3; ++i) {
    OpDef op;
    op.name = "n" + std::to_string(i);
    op.output_shape = TensorShape{4};
    op.colocation_group = i < 2 ? 0 : -1;
    g.AddOp(op);
  }
  const auto cluster = MakeDefaultCluster();
  Placement placement(g, {1, 3, 2});
  placement.Normalize(g, cluster);
  EXPECT_EQ(placement.device(1), placement.device(0));  // follows leader
  EXPECT_EQ(placement.device(2), 2);                    // untouched
}

TEST(Placement, CpuOnlyDragsColocationGroup) {
  OpGraph g;
  OpDef pinned;
  pinned.name = "pinned";
  pinned.cpu_only = true;
  pinned.colocation_group = 0;
  pinned.output_shape = TensorShape{4};
  g.AddOp(pinned);
  OpDef friend_op;
  friend_op.name = "friend";
  friend_op.colocation_group = 0;
  friend_op.output_shape = TensorShape{4};
  g.AddOp(friend_op);
  const auto cluster = MakeDefaultCluster();
  Placement placement(g, {1, 2});
  placement.Normalize(g, cluster);
  EXPECT_EQ(placement.device(0), cluster.FirstCpu());
  EXPECT_EQ(placement.device(1), cluster.FirstCpu());
}

TEST(Placement, HashDiffers) {
  OpGraph g = models::BuildChain(8);
  const auto cluster = MakeDefaultCluster();
  auto p1 = Placement::AllOnDevice(g, cluster, 1);
  auto p2 = Placement::AllOnDevice(g, cluster, 2);
  EXPECT_NE(p1.Hash(), p2.Hash());
}

TEST(Simulator, ChainSerializes) {
  // On one device a chain's step time is the sum of its op times.
  OpGraph g = models::BuildChain(10, 1 << 10, 1e9);
  const auto cluster = TwoGpuCluster();
  ExecutionSimulator simulator(g, cluster);
  const auto result =
      simulator.Run(Placement::AllOnDevice(g, cluster, 1));
  CostModel cost(cluster);
  double expected = 0.0;
  for (graph::OpId i = 0; i < g.num_ops(); ++i) {
    expected += cost.ComputeSeconds(g.op(i), 1);
  }
  EXPECT_NEAR(result.step_seconds, expected, 1e-9);
  EXPECT_FALSE(result.oom);
}

TEST(Simulator, ParallelChainsBenefitFromTwoGpus) {
  OpGraph g = models::BuildParallelChains(2, 12, 1 << 10, 5e9);
  const auto cluster = TwoGpuCluster();
  ExecutionSimulator simulator(g, cluster);
  const auto single = simulator.Run(Placement::AllOnDevice(g, cluster, 1));

  // Chain 0 on GPU1, chain 1 on GPU2.
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()), 1);
  for (graph::OpId i = 0; i < g.num_ops(); ++i) {
    if (g.op(i).layer == "chain1") devices[static_cast<std::size_t>(i)] = 2;
  }
  Placement split(g, devices);
  split.Normalize(g, cluster);
  const auto parallel = simulator.Run(split);
  EXPECT_LT(parallel.step_seconds, single.step_seconds * 0.7);
}

TEST(Simulator, StepAtLeastBusiestDevice) {
  support::Rng rng(5);
  models::RandomDagConfig config;
  config.layers = 8;
  config.width = 6;
  OpGraph g = models::BuildRandomDag(config, rng);
  const auto cluster = MakeDefaultCluster();
  ExecutionSimulator simulator(g, cluster);
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()));
  for (auto& d : devices) d = static_cast<DeviceId>(rng.NextBelow(5));
  Placement placement(g, devices);
  placement.Normalize(g, cluster);
  const auto result = simulator.Run(placement);
  for (double busy : result.device_busy_seconds) {
    EXPECT_GE(result.step_seconds + 1e-12, busy);
  }
}

TEST(Simulator, TransferDedup) {
  // A variable read by many consumers on one remote device is shipped
  // once per step (TF send/recv dedup), not once per edge.
  OpGraph g;
  OpDef var;
  var.name = "w";
  var.type = OpType::kVariable;
  var.output_shape = TensorShape{1};
  var.param_bytes = 64 << 20;
  g.AddOp(var);
  for (int i = 0; i < 10; ++i) {
    OpDef use;
    use.name = "mm" + std::to_string(i);
    use.type = OpType::kMatMul;
    use.flops = 1e6;
    use.output_shape = TensorShape{16};
    g.AddOp(use);
    g.AddEdge(0, 1 + i, 64 << 20);
  }
  const auto cluster = TwoGpuCluster();
  ExecutionSimulator simulator(g, cluster);
  std::vector<DeviceId> devices(11, 2);
  devices[0] = 1;  // weights live on GPU1, consumers on GPU2
  Placement placement(g, devices);
  placement.Normalize(g, cluster);
  const auto result = simulator.Run(placement);
  EXPECT_EQ(result.num_transfers, 1);
  EXPECT_EQ(result.transfer_bytes_total, 64 << 20);
}

TEST(Simulator, CrossDeviceChainPaysTransfers) {
  OpGraph g = models::BuildChain(6, 1 << 20, 1e8);
  const auto cluster = TwoGpuCluster();
  ExecutionSimulator simulator(g, cluster);
  const auto local = simulator.Run(Placement::AllOnDevice(g, cluster, 1));
  // Alternate devices along the chain: every edge crosses.
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()));
  for (graph::OpId i = 0; i < g.num_ops(); ++i) {
    devices[static_cast<std::size_t>(i)] = 1 + (i % 2);
  }
  Placement alternating(g, devices);
  alternating.Normalize(g, cluster);
  const auto remote = simulator.Run(alternating);
  EXPECT_GT(remote.step_seconds, local.step_seconds);
  EXPECT_EQ(remote.num_transfers, g.num_edges());
}

TEST(MemoryModel, PeakSweep) {
  std::vector<LiveInterval> intervals{
      {0.0, 2.0, 100}, {1.0, 3.0, 50}, {2.5, 4.0, 75}};
  EXPECT_EQ(PeakLiveBytes(intervals), 150);
}

TEST(MemoryModel, FreeBeforeAllocAtSameTime) {
  std::vector<LiveInterval> intervals{{0.0, 1.0, 100}, {1.0, 2.0, 100}};
  EXPECT_EQ(PeakLiveBytes(intervals), 100);
}

TEST(MemoryModel, EmptyAndDegenerate) {
  EXPECT_EQ(PeakLiveBytes({}), 0);
  EXPECT_EQ(PeakLiveBytes({{1.0, 1.0, 100}}), 0);  // zero-length interval
}

TEST(Simulator, OomDetected) {
  OpGraph g;
  OpDef big;
  big.name = "big";
  big.type = OpType::kVariable;
  big.output_shape = TensorShape{1};
  big.param_bytes = 64LL << 30;  // 64 GB of parameters
  g.AddOp(big);
  const auto cluster = TwoGpuCluster();
  ExecutionSimulator simulator(g, cluster);
  const auto result = simulator.Run(Placement::AllOnDevice(g, cluster, 1));
  EXPECT_TRUE(result.oom);
  EXPECT_EQ(result.oom_device, 1);
  // The CPU (120 GB) can hold it.
  const auto on_cpu = simulator.Run(Placement::AllOnDevice(g, cluster, 0));
  EXPECT_FALSE(on_cpu.oom);
}

TEST(Simulator, MemoryTrackingCanBeDisabled) {
  OpGraph g;
  OpDef big;
  big.name = "big";
  big.type = OpType::kVariable;
  big.output_shape = TensorShape{1};
  big.param_bytes = 64LL << 30;
  g.AddOp(big);
  const auto cluster = TwoGpuCluster();
  SimulatorOptions options;
  options.track_memory = false;
  ExecutionSimulator simulator(g, cluster, options);
  EXPECT_FALSE(simulator.Run(Placement::AllOnDevice(g, cluster, 1)).oom);
}

// Exact StepResult equality (doubles compared with ==, not tolerance):
// the workspace simulator must reproduce the frozen reference bit for
// bit, since both fold the same costs in the same order.
void ExpectStepResultsIdentical(const StepResult& got,
                                const StepResult& want) {
  EXPECT_EQ(got.oom, want.oom);
  EXPECT_EQ(got.oom_device, want.oom_device);
  EXPECT_EQ(got.step_seconds, want.step_seconds);
  EXPECT_EQ(got.device_busy_seconds, want.device_busy_seconds);
  EXPECT_EQ(got.device_peak_bytes, want.device_peak_bytes);
  EXPECT_EQ(got.device_param_bytes, want.device_param_bytes);
  EXPECT_EQ(got.transfer_seconds_total, want.transfer_seconds_total);
  EXPECT_EQ(got.transfer_bytes_total, want.transfer_bytes_total);
  EXPECT_EQ(got.num_transfers, want.num_transfers);
  ASSERT_EQ(got.schedule.size(), want.schedule.size());
  for (std::size_t i = 0; i < got.schedule.size(); ++i) {
    EXPECT_EQ(got.schedule[i].op, want.schedule[i].op);
    EXPECT_EQ(got.schedule[i].device, want.schedule[i].device);
    EXPECT_EQ(got.schedule[i].start_seconds, want.schedule[i].start_seconds);
    EXPECT_EQ(got.schedule[i].end_seconds, want.schedule[i].end_seconds);
  }
  ASSERT_EQ(got.transfers.size(), want.transfers.size());
  for (std::size_t i = 0; i < got.transfers.size(); ++i) {
    EXPECT_EQ(got.transfers[i].producer, want.transfers[i].producer);
    EXPECT_EQ(got.transfers[i].src, want.transfers[i].src);
    EXPECT_EQ(got.transfers[i].dst, want.transfers[i].dst);
    EXPECT_EQ(got.transfers[i].bytes, want.transfers[i].bytes);
    EXPECT_EQ(got.transfers[i].start_seconds, want.transfers[i].start_seconds);
    EXPECT_EQ(got.transfers[i].end_seconds, want.transfers[i].end_seconds);
  }
}

TEST(Simulator, MatchesFrozenReferenceOnModelZoo) {
  const auto cluster = MakeDefaultCluster();
  models::ZooOptions zoo;
  zoo.reduced = true;
  SimulatorOptions options;
  options.record_schedule = true;
  for (const auto benchmark : models::AllBenchmarks()) {
    SCOPED_TRACE(models::BenchmarkName(benchmark));
    const OpGraph g = models::BuildBenchmark(benchmark, zoo);
    ExecutionSimulator simulator(g, cluster, options);
    support::Rng rng(17);
    // Several runs on one simulator instance: the second and third reuse
    // the pooled workspace, so any stale epoch-stamped state shows up as
    // a mismatch against the allocate-fresh-every-time reference.
    for (int round = 0; round < 3; ++round) {
      std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()));
      for (auto& d : devices) {
        d = static_cast<DeviceId>(rng.NextBelow(
            static_cast<std::uint64_t>(cluster.num_devices())));
      }
      Placement placement(g, devices);
      placement.Normalize(g, cluster);
      ExpectStepResultsIdentical(
          simulator.Run(placement),
          naive::RunReference(g, cluster, options, placement, nullptr,
                              /*record_schedule=*/true));
    }
  }
}

TEST(Simulator, MatchesFrozenReferenceUnderFaults) {
  const auto cluster = MakeDefaultCluster();
  const OpGraph g =
      models::BuildBenchmark(models::Benchmark::kInceptionV3, {true, true});
  SimulatorOptions options;
  options.record_schedule = true;
  ExecutionSimulator simulator(g, cluster, options);
  FaultDraw faults;
  faults.device_down.assign(static_cast<std::size_t>(cluster.num_devices()),
                            false);
  faults.device_compute_scale.assign(
      static_cast<std::size_t>(cluster.num_devices()), 1.0);
  faults.device_compute_scale[2] = 2.5;  // straggler GPU
  faults.link_scale.assign(
      static_cast<std::size_t>(cluster.num_link_channels()), 1.0);
  faults.link_scale[0] = 3.0;  // degraded channel
  support::Rng rng(23);
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()));
  for (auto& d : devices) {
    d = static_cast<DeviceId>(
        rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }
  Placement placement(g, devices);
  placement.Normalize(g, cluster);
  ExpectStepResultsIdentical(
      simulator.Run(placement, &faults),
      naive::RunReference(g, cluster, options, placement, &faults,
                          /*record_schedule=*/true));
}

TEST(Simulator, TransferDedupKeysOnExactBytes) {
  // Two transfers from one producer to the same device with different
  // byte sizes are distinct physical sends. The sizes below collide in
  // the retired 32-bit byte-size hash (1000·K and 2971216073·K share
  // their top 32 bits for K = 0x9E3779B97F4A7C15), which silently merged
  // them into one transfer; the exact (producer, dst, bytes) key keeps
  // both.
  constexpr std::int64_t kSmall = 1000;
  constexpr std::int64_t kLarge = 2971216073;  // kSmall + 2971215073
  OpGraph g;
  OpDef producer;
  producer.name = "producer";
  producer.type = OpType::kMatMul;
  producer.flops = 1e6;
  producer.output_shape = TensorShape{16};
  g.AddOp(producer);
  for (int i = 0; i < 2; ++i) {
    OpDef use;
    use.name = "use" + std::to_string(i);
    use.type = OpType::kMatMul;
    use.flops = 1e6;
    use.output_shape = TensorShape{16};
    g.AddOp(use);
  }
  g.AddEdge(0, 1, kSmall);
  g.AddEdge(0, 2, kLarge);
  const auto cluster = TwoGpuCluster();
  SimulatorOptions options;
  options.track_memory = false;  // the 2.8 GB tensor is not the point
  ExecutionSimulator simulator(g, cluster, options);
  std::vector<DeviceId> devices{1, 2, 2};
  Placement placement(g, devices);
  placement.Normalize(g, cluster);

  const auto result = simulator.Run(placement);
  EXPECT_EQ(result.num_transfers, 2);
  EXPECT_EQ(result.transfer_bytes_total, kSmall + kLarge);

  // The frozen reference still has the collision: it merges the pair.
  const auto stale = naive::RunReference(g, cluster, options, placement);
  EXPECT_EQ(stale.num_transfers, 1);

  // Identical sizes still dedup to a single send.
  OpGraph g2;
  g2.AddOp(producer);
  for (int i = 0; i < 2; ++i) {
    OpDef use;
    use.name = "dup" + std::to_string(i);
    use.type = OpType::kMatMul;
    use.flops = 1e6;
    use.output_shape = TensorShape{16};
    g2.AddOp(use);
  }
  g2.AddEdge(0, 1, kSmall);
  g2.AddEdge(0, 2, kSmall);
  ExecutionSimulator simulator2(g2, cluster, options);
  Placement placement2(g2, devices);
  placement2.Normalize(g2, cluster);
  const auto deduped = simulator2.Run(placement2);
  EXPECT_EQ(deduped.num_transfers, 1);
  EXPECT_EQ(deduped.transfer_bytes_total, kSmall);
}

TEST(MemoryModel, InPlaceOverloadMatchesAndReusesScratch) {
  const std::vector<LiveInterval> intervals{
      {0.0, 2.0, 100}, {1.0, 3.0, 50}, {2.5, 4.0, 75}, {0.5, 0.5, 999}};
  std::vector<MemEvent> scratch;
  EXPECT_EQ(PeakLiveBytes(intervals, scratch), PeakLiveBytes(intervals));
  const auto* data = scratch.data();
  const auto capacity = scratch.capacity();
  EXPECT_EQ(PeakLiveBytes(intervals, scratch), 150);
  EXPECT_EQ(scratch.data(), data);  // no reallocation on reuse
  EXPECT_EQ(scratch.capacity(), capacity);
}

TEST(Measurement, ProtocolCostAccounting) {
  OpGraph g = models::BuildChain(4, 1 << 10, 1e9);
  const auto cluster = TwoGpuCluster();
  MeasurementOptions options;
  options.noise_stddev = 0.0;
  MeasurementSession session(g, cluster, options);
  const auto result =
      session.Evaluate(Placement::AllOnDevice(g, cluster, 1));
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.per_step_seconds, result.true_per_step_seconds);
  // Cost = session overhead + param transfer + 15 steps.
  EXPECT_NEAR(result.measurement_cost_seconds,
              options.session_overhead_seconds +
                  15 * result.true_per_step_seconds,
              1e-6);
}

TEST(Measurement, NoiseAveragesOverMeasuredSteps) {
  OpGraph g = models::BuildChain(4, 1 << 10, 1e9);
  const auto cluster = TwoGpuCluster();
  MeasurementOptions options;
  options.noise_stddev = 0.05;
  MeasurementSession session(g, cluster, options);
  support::Rng rng(3);
  const auto placement = Placement::AllOnDevice(g, cluster, 1);
  const auto noisy = session.Evaluate(placement, &rng);
  const auto clean = session.Evaluate(placement, nullptr);
  EXPECT_NE(noisy.per_step_seconds, clean.per_step_seconds);
  // 10 averaged steps with 5% noise: within ~5 sigma of truth.
  EXPECT_NEAR(noisy.per_step_seconds, clean.per_step_seconds,
              clean.per_step_seconds * 0.1);
}

TEST(Measurement, InvalidStillCostsSessionSetup) {
  OpGraph g;
  OpDef big;
  big.name = "big";
  big.type = OpType::kVariable;
  big.output_shape = TensorShape{1};
  big.param_bytes = 64LL << 30;
  g.AddOp(big);
  const auto cluster = TwoGpuCluster();
  MeasurementSession session(g, cluster);
  const auto result =
      session.Evaluate(Placement::AllOnDevice(g, cluster, 1));
  EXPECT_FALSE(result.valid);
  EXPECT_GT(result.measurement_cost_seconds, 0.0);
}

}  // namespace
}  // namespace eagle::sim
