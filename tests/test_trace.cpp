#include <gtest/gtest.h>

#include "models/synthetic.h"
#include "sim/trace.h"

namespace eagle::sim {
namespace {

StepResult RunRecorded(const graph::OpGraph& graph,
                       const ClusterSpec& cluster,
                       const Placement& placement) {
  SimulatorOptions options;
  options.record_schedule = true;
  ExecutionSimulator simulator(graph, cluster, options);
  return simulator.Run(placement);
}

TEST(Trace, ScheduleCoversEveryOp) {
  auto graph = models::BuildParallelChains(3, 5);
  const auto cluster = MakeDefaultCluster();
  const auto result = RunRecorded(
      graph, cluster, Placement::AllOnDevice(graph, cluster, 1));
  EXPECT_EQ(static_cast<int>(result.schedule.size()), graph.num_ops());
  for (const auto& op : result.schedule) {
    EXPECT_GE(op.start_seconds, 0.0);
    EXPECT_GE(op.end_seconds, op.start_seconds);
    EXPECT_LE(op.end_seconds, result.step_seconds + 1e-12);
  }
}

TEST(Trace, ScheduleRespectsDependencies) {
  auto graph = models::BuildChain(8);
  const auto cluster = MakeDefaultCluster();
  const auto result = RunRecorded(
      graph, cluster, Placement::AllOnDevice(graph, cluster, 1));
  std::vector<double> end(static_cast<std::size_t>(graph.num_ops()));
  for (const auto& op : result.schedule) {
    end[static_cast<std::size_t>(op.op)] = op.end_seconds;
  }
  for (const auto& op : result.schedule) {
    for (auto ei : graph.in_edges(op.op)) {
      const auto src = graph.edges()[static_cast<std::size_t>(ei)].src;
      EXPECT_GE(op.start_seconds + 1e-12,
                end[static_cast<std::size_t>(src)]);
    }
  }
}

TEST(Trace, NotRecordedByDefault) {
  auto graph = models::BuildChain(4);
  const auto cluster = MakeDefaultCluster();
  ExecutionSimulator simulator(graph, cluster);
  const auto result =
      simulator.Run(Placement::AllOnDevice(graph, cluster, 1));
  EXPECT_TRUE(result.schedule.empty());
}

TEST(Trace, ChromeJsonWellFormedish) {
  auto graph = models::BuildParallelChains(2, 4);
  const auto cluster = MakeDefaultCluster();
  // Split chains across two GPUs to get transfers into the trace.
  std::vector<DeviceId> devices(static_cast<std::size_t>(graph.num_ops()), 1);
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    if (graph.op(i).layer == "chain1") devices[static_cast<std::size_t>(i)] = 2;
  }
  Placement placement(graph, devices);
  placement.Normalize(graph, cluster);
  const auto result = RunRecorded(graph, cluster, placement);
  ASSERT_GT(result.transfers.size(), 0u);

  const std::string json = ToChromeTrace(result, graph, cluster);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compute\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, ChromeJsonRequiresRecording) {
  auto graph = models::BuildChain(3);
  const auto cluster = MakeDefaultCluster();
  ExecutionSimulator simulator(graph, cluster);
  const auto result =
      simulator.Run(Placement::AllOnDevice(graph, cluster, 1));
  EXPECT_THROW(ToChromeTrace(result, graph, cluster), std::logic_error);
}

TEST(CriticalPath, ChainAttributesAllCompute) {
  auto graph = models::BuildChain(6, 1 << 10, 1e9);
  const auto cluster = MakeDefaultCluster();
  const auto result = RunRecorded(
      graph, cluster, Placement::AllOnDevice(graph, cluster, 1));
  const auto report = AnalyzeCriticalPath(result, graph);
  // A single-device chain IS the critical path: all compute, no waiting.
  EXPECT_EQ(static_cast<int>(report.path.size()), graph.num_ops());
  EXPECT_NEAR(report.compute_seconds, result.step_seconds, 1e-9);
  EXPECT_NEAR(report.queue_seconds, 0.0, 1e-9);
  EXPECT_NEAR(report.transfer_seconds, 0.0, 1e-12);
}

TEST(CriticalPath, CrossDeviceChainSeesTransfers) {
  auto graph = models::BuildChain(6, 1 << 20, 1e8);
  const auto cluster = MakeDefaultCluster();
  std::vector<DeviceId> devices(static_cast<std::size_t>(graph.num_ops()));
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    devices[static_cast<std::size_t>(i)] = 1 + (i % 2);
  }
  Placement placement(graph, devices);
  placement.Normalize(graph, cluster);
  const auto result = RunRecorded(graph, cluster, placement);
  const auto report = AnalyzeCriticalPath(result, graph);
  EXPECT_GT(report.transfer_seconds, 0.0);
  // compute + transfer + queue accounts for (at least most of) the step.
  EXPECT_GE(report.compute_seconds + report.transfer_seconds +
                report.queue_seconds,
            result.step_seconds * 0.9);
}

// Hand-built two-device schedule with known numbers, so each of the three
// attribution components is pinned exactly rather than bounded:
//
//   device 0: A computes [0, 1]        A --(transfer [1.0, 1.5])--> C
//   device 1: D computes [0, 2], then C computes [2, 3]
//
// C is the sink (finishes last). Its input from A arrives at 1.5 but the
// device is busy with D until 2.0, so the walk attributes 0.5 s of
// queueing and 0.5 s of transfer; compute is A + C = 2.0 s. All three
// components sum to the 3.0 s step.
TEST(CriticalPath, HandBuiltScheduleAttributesExactComponents) {
  graph::OpGraph graph;
  auto add_op = [&graph](const std::string& name) {
    graph::OpDef op;
    op.name = name;
    return graph.AddOp(op);
  };
  const graph::OpId a = add_op("A");
  const graph::OpId d = add_op("D");
  const graph::OpId c = add_op("C");
  graph.AddEdge(a, c, /*bytes=*/1 << 10);

  StepResult result;
  result.step_seconds = 3.0;
  result.schedule.push_back(ScheduledOp{a, /*device=*/0, 0.0, 1.0});
  result.schedule.push_back(ScheduledOp{d, /*device=*/1, 0.0, 2.0});
  result.schedule.push_back(ScheduledOp{c, /*device=*/1, 2.0, 3.0});
  result.transfers.push_back(
      ScheduledTransfer{a, /*src=*/0, /*dst=*/1, 1 << 10, 1.0, 1.5});

  const auto report = AnalyzeCriticalPath(result, graph);
  // Path is reported sink-first; the busy-but-off-path D is not on it.
  EXPECT_EQ(report.path, (std::vector<graph::OpId>{c, a}));
  EXPECT_EQ(report.compute_seconds, 2.0);
  EXPECT_EQ(report.transfer_seconds, 0.5);
  EXPECT_EQ(report.queue_seconds, 0.5);
  EXPECT_EQ(report.compute_seconds + report.transfer_seconds +
                report.queue_seconds,
            result.step_seconds);

  const std::string text = report.ToString(graph);
  EXPECT_NE(text.find("2 ops"), std::string::npos);
  EXPECT_NE(text.find("sink op C"), std::string::npos);
}

TEST(CriticalPath, EmptyScheduleHandled) {
  graph::OpGraph empty;
  StepResult result;
  const auto report = AnalyzeCriticalPath(result, empty);
  EXPECT_TRUE(report.path.empty());
}

}  // namespace
}  // namespace eagle::sim
