// Fault injection, retry/backoff and graceful degradation: the
// robustness layer of the measurement environment.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/env.h"
#include "core/eval_cache.h"
#include "models/synthetic.h"
#include "sim/fault.h"
#include "sim/measurement.h"
#include "support/retry.h"

namespace eagle {
namespace {

sim::Placement AllOn(const graph::OpGraph& graph,
                     const sim::ClusterSpec& cluster, sim::DeviceId device) {
  return sim::Placement::AllOnDevice(graph, cluster, device);
}

// A fully sized healthy draw (FaultInjector always emits sized vectors;
// hand-built draws must too — the simulator indexes them directly).
sim::FaultDraw HealthyDraw(const sim::ClusterSpec& cluster) {
  sim::FaultDraw draw;
  draw.device_down.assign(
      static_cast<std::size_t>(cluster.num_devices()), false);
  draw.device_compute_scale.assign(
      static_cast<std::size_t>(cluster.num_devices()), 1.0);
  draw.link_scale.assign(
      static_cast<std::size_t>(cluster.num_link_channels()), 1.0);
  return draw;
}

TEST(FaultProfile, EmptyStringDisabled) {
  const auto profile = sim::FaultProfileFromString("");
  EXPECT_FALSE(profile.enabled());
}

TEST(FaultProfile, BareNumberShorthand) {
  const auto profile = sim::FaultProfileFromString("0.2");
  EXPECT_DOUBLE_EQ(profile.transient_failure_rate, 0.2);
  EXPECT_DOUBLE_EQ(profile.device_down_rate, 0.05);
  EXPECT_DOUBLE_EQ(profile.straggler_rate, 0.2);
  EXPECT_DOUBLE_EQ(profile.degraded_link_rate, 0.2);
  EXPECT_TRUE(profile.enabled());
}

TEST(FaultProfile, KeyValueParsing) {
  const auto profile = sim::FaultProfileFromString(
      "crash=0.1,down=0.02,straggler=0.3,slowdown=3,link=0.15,"
      "linkfactor=4,seed=9");
  EXPECT_DOUBLE_EQ(profile.transient_failure_rate, 0.1);
  EXPECT_DOUBLE_EQ(profile.device_down_rate, 0.02);
  EXPECT_DOUBLE_EQ(profile.straggler_rate, 0.3);
  EXPECT_DOUBLE_EQ(profile.straggler_slowdown, 3.0);
  EXPECT_DOUBLE_EQ(profile.degraded_link_rate, 0.15);
  EXPECT_DOUBLE_EQ(profile.degraded_link_factor, 4.0);
  EXPECT_EQ(profile.seed, 9u);
}

TEST(FaultProfile, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(sim::FaultProfileFromString("bogus=1"), std::logic_error);
  EXPECT_THROW(sim::FaultProfileFromString("crash=abc"), std::logic_error);
  EXPECT_THROW(sim::FaultProfileFromString("crash=-0.1"), std::logic_error);
}

TEST(FaultInjector, DeterministicPerSeed) {
  const auto cluster = sim::MakeDefaultCluster();
  const auto profile = sim::FaultProfileFromString("0.3");
  sim::FaultInjector injector(profile, cluster);
  support::Rng rng_a(42), rng_b(42);
  for (int i = 0; i < 20; ++i) {
    const auto a = injector.Draw(rng_a);
    const auto b = injector.Draw(rng_b);
    EXPECT_EQ(a.session_crash, b.session_crash);
    EXPECT_EQ(a.device_down, b.device_down);
    EXPECT_EQ(a.device_compute_scale, b.device_compute_scale);
    EXPECT_EQ(a.link_scale, b.link_scale);
  }
}

TEST(FaultInjector, CpuExemptFromDeviceFaults) {
  const auto cluster = sim::MakeDefaultCluster();
  auto profile = sim::FaultProfileFromString("down=0.9,straggler=0.9");
  sim::FaultInjector injector(profile, cluster);
  support::Rng rng(7);
  int gpu_faults = 0;
  for (int i = 0; i < 50; ++i) {
    const auto draw = injector.Draw(rng);
    // Device 0 is the CPU host: it launches the session, so it can
    // neither go down nor straggle.
    EXPECT_FALSE(draw.device_down[0]);
    EXPECT_DOUBLE_EQ(draw.device_compute_scale[0], 1.0);
    for (std::size_t d = 1; d < draw.device_down.size(); ++d) {
      gpu_faults += draw.device_down[d] ? 1 : 0;
    }
  }
  EXPECT_GT(gpu_faults, 0);
}

TEST(FaultInjector, DisabledProfileDrawsHealthy) {
  const auto cluster = sim::MakeDefaultCluster();
  sim::FaultInjector injector(sim::FaultProfile{}, cluster);
  support::Rng rng(1);
  const auto draw = injector.Draw(rng);
  EXPECT_FALSE(draw.session_crash);
  EXPECT_FALSE(draw.HasPerfFaults());
  EXPECT_EQ(draw.ToString(cluster), "healthy");
}

TEST(FaultInjector, RejectsAlwaysFailingProfile) {
  const auto cluster = sim::MakeDefaultCluster();
  sim::FaultProfile profile;
  profile.transient_failure_rate = 1.0;
  profile.device_down_rate = 1.0;
  EXPECT_THROW(sim::FaultInjector(profile, cluster), std::logic_error);
}

TEST(SimulatorFaults, StragglerScalesCompute) {
  const auto graph = models::BuildChain(12);
  const auto cluster = sim::MakeDefaultCluster();
  sim::ExecutionSimulator simulator(graph, cluster);
  const auto placement = AllOn(graph, cluster, 0);  // chain on one device
  const auto healthy = simulator.Run(placement);
  sim::FaultDraw draw = HealthyDraw(cluster);
  draw.device_compute_scale[0] = 2.0;
  const auto faulty = simulator.Run(placement, &draw);
  EXPECT_NEAR(faulty.step_seconds, 2.0 * healthy.step_seconds,
              healthy.step_seconds * 1e-9);
}

TEST(SimulatorFaults, DegradedLinksSlowCrossDeviceSteps) {
  const auto graph = models::BuildParallelChains(2, 4);
  const auto cluster = sim::MakeDefaultCluster();
  sim::ExecutionSimulator simulator(graph, cluster);
  // Split across two GPUs so transfers exist.
  std::vector<sim::DeviceId> devices(
      static_cast<std::size_t>(graph.num_ops()));
  for (std::size_t i = 0; i < devices.size(); ++i) {
    devices[i] = (i % 2 == 0) ? 1 : 2;
  }
  sim::Placement placement(graph, std::move(devices));
  placement.Normalize(graph, cluster);
  const auto healthy = simulator.Run(placement);
  ASSERT_GT(healthy.num_transfers, 0);
  sim::FaultDraw draw = HealthyDraw(cluster);
  draw.link_scale.assign(draw.link_scale.size(), 3.0);
  const auto faulty = simulator.Run(placement, &draw);
  EXPECT_GT(faulty.step_seconds, healthy.step_seconds);
}

TEST(MeasurementFaults, SessionCrashFailsAfterSetupCost) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  sim::MeasurementSession session(graph, cluster);
  sim::FaultDraw draw = HealthyDraw(cluster);
  draw.session_crash = true;
  const auto eval =
      session.EvaluateWithFaults(AllOn(graph, cluster, 1), draw);
  EXPECT_TRUE(eval.failed);
  EXPECT_FALSE(eval.valid);
  EXPECT_DOUBLE_EQ(eval.measurement_cost_seconds,
                   session.options().session_overhead_seconds);
}

TEST(MeasurementFaults, DownDeviceFailsOnlyPlacementsTouchingIt) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  sim::MeasurementSession session(graph, cluster);
  sim::FaultDraw draw = HealthyDraw(cluster);
  draw.device_down[1] = true;
  const auto hit =
      session.EvaluateWithFaults(AllOn(graph, cluster, 1), draw);
  EXPECT_TRUE(hit.failed);
  const auto miss =
      session.EvaluateWithFaults(AllOn(graph, cluster, 2), draw);
  EXPECT_FALSE(miss.failed);
  EXPECT_TRUE(miss.valid);
}

TEST(MeasurementNoise, FactorClampedPositive) {
  // Even an absurd stddev can never produce a non-positive (or wildly
  // inflated) per-step time.
  support::Rng rng(3);
  bool hit_low = false, hit_high = false;
  for (int i = 0; i < 1000; ++i) {
    const double f = sim::NoiseFactor(1000.0, rng);
    EXPECT_GE(f, 0.5);
    EXPECT_LE(f, 2.0);
    hit_low = hit_low || f == 0.5;
    hit_high = hit_high || f == 2.0;
  }
  EXPECT_TRUE(hit_low);
  EXPECT_TRUE(hit_high);
}

TEST(MeasurementNoise, NullRngIsExactlyNoiseless) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  sim::MeasurementOptions options;
  options.noise_stddev = 0.05;
  sim::MeasurementSession session(graph, cluster, options);
  const auto placement = AllOn(graph, cluster, 1);
  const auto a = session.Evaluate(placement, nullptr);
  const auto b = session.Evaluate(placement, nullptr);
  ASSERT_TRUE(a.valid);
  EXPECT_DOUBLE_EQ(a.per_step_seconds, a.true_per_step_seconds);
  EXPECT_DOUBLE_EQ(a.per_step_seconds, b.per_step_seconds);
}

TEST(MeasurementNoise, NegativeStddevRejected) {
  const auto graph = models::BuildChain(2);
  const auto cluster = sim::MakeDefaultCluster();
  sim::MeasurementOptions options;
  options.noise_stddev = -0.01;
  EXPECT_THROW(sim::MeasurementSession(graph, cluster, options),
               std::logic_error);
}

TEST(EvalCache, HashCollisionNeverAliases) {
  // Regression: the old unordered_map<hash, result> cache returned
  // another placement's result on a 64-bit hash collision. Force one via
  // the hash-explicit API.
  core::EvalCache cache;
  const std::vector<sim::DeviceId> a{1, 1, 2}, b{2, 1, 1};
  sim::EvalResult result_a;
  result_a.valid = true;
  result_a.per_step_seconds = 1.0;
  cache.InsertByHash(42, a, result_a);
  EXPECT_NE(cache.FindByHash(42, a), nullptr);
  EXPECT_EQ(cache.FindByHash(42, b), nullptr);  // collision: not aliased

  sim::EvalResult result_b;
  result_b.valid = true;
  result_b.per_step_seconds = 2.0;
  cache.InsertByHash(42, b, result_b);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.collisions(), 1);
  EXPECT_DOUBLE_EQ(cache.FindByHash(42, a)->per_step_seconds, 1.0);
  EXPECT_DOUBLE_EQ(cache.FindByHash(42, b)->per_step_seconds, 2.0);
}

TEST(RetryPolicy, ExponentialGrowthWithCap) {
  support::RetryPolicy retry;
  retry.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(1), 5.0);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(2), 10.0);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(3), 20.0);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(6), 120.0);  // capped (5·2^5=160)
}

TEST(RetryPolicy, JitterStaysBounded) {
  support::RetryPolicy retry;
  retry.jitter_fraction = 0.25;
  support::Rng rng(5);
  bool varied = false;
  double first = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double backoff = retry.BackoffSeconds(1, &rng);
    EXPECT_GE(backoff, 5.0 * 0.75);
    EXPECT_LE(backoff, 5.0 * 1.25);
    if (i == 0) first = backoff;
    varied = varied || backoff != first;
  }
  EXPECT_TRUE(varied);
}

TEST(RetryPolicy, ValidateRejectsBadConfigs) {
  support::RetryPolicy retry;
  retry.max_attempts = 0;
  EXPECT_THROW(retry.Validate(), std::logic_error);
  retry = {};
  retry.backoff_multiplier = 0.5;
  EXPECT_THROW(retry.Validate(), std::logic_error);
  retry = {};
  retry.jitter_fraction = 1.5;
  EXPECT_THROW(retry.Validate(), std::logic_error);
}

core::EnvironmentOptions CrashOnlyOptions() {
  core::EnvironmentOptions options;
  options.faults.transient_failure_rate = 1.0;  // every attempt crashes
  options.retry.max_attempts = 3;
  options.retry.jitter_fraction = 0.0;
  return options;
}

TEST(EnvironmentFaults, ExhaustedRetriesDegradeToPenalty) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster, CrashOnlyOptions());
  const auto eval = env.Evaluate(AllOn(graph, cluster, 1), nullptr);
  EXPECT_FALSE(eval.valid);
  EXPECT_TRUE(eval.failed);
  EXPECT_EQ(eval.attempts, 3);
  // Clock: 3 attempts × session overhead + backoffs 5 s and 10 s —
  // every retried attempt charges the virtual clock exactly once.
  const double overhead =
      env.session().options().session_overhead_seconds;
  EXPECT_DOUBLE_EQ(eval.measurement_cost_seconds, 3 * overhead + 15.0);
  EXPECT_EQ(env.attempts(), 3);
  EXPECT_EQ(env.transient_failures(), 3);
  EXPECT_EQ(env.retries(), 2);
  EXPECT_EQ(env.exhausted_evaluations(), 1);
  EXPECT_DOUBLE_EQ(env.backoff_seconds_total(), 15.0);
}

TEST(EnvironmentFaults, StragglerObservedSlowerThanTruth) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  core::EnvironmentOptions options;
  options.faults.straggler_rate = 1.0;  // every GPU straggles, ×2
  options.measurement.noise_stddev = 0.0;
  core::PlacementEnvironment env(graph, cluster, options);
  const auto placement = AllOn(graph, cluster, 1);
  const auto eval = env.Evaluate(placement, nullptr);
  ASSERT_TRUE(eval.valid);
  EXPECT_FALSE(eval.failed);
  EXPECT_EQ(eval.attempts, 1);
  // The agent observes the degraded machine; ground truth is healthy.
  EXPECT_NEAR(eval.per_step_seconds, 2.0 * eval.true_per_step_seconds,
              eval.true_per_step_seconds * 1e-9);
  // Ground truth matches a fault-free environment's verdict.
  core::PlacementEnvironment clean_env(graph, cluster);
  const auto clean = clean_env.Evaluate(placement, nullptr);
  EXPECT_DOUBLE_EQ(eval.true_per_step_seconds,
                   clean.true_per_step_seconds);
}

TEST(EnvironmentFaults, TimeoutKillsStragglerAttempt) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  core::EnvironmentOptions options;
  options.faults.straggler_rate = 1.0;
  options.faults.straggler_slowdown = 100.0;  // pathological straggler
  options.retry.jitter_fraction = 0.0;
  options.retry.max_attempts = 2;
  // Tiny session overhead so the straggler's compute dominates the cost.
  options.measurement.session_overhead_seconds = 0.001;
  core::EnvironmentOptions clean_options;
  clean_options.measurement = options.measurement;
  core::PlacementEnvironment clean_env(graph, cluster, clean_options);
  const auto placement = AllOn(graph, cluster, 1);
  const auto clean = clean_env.Evaluate(placement, nullptr);
  // Timeout between the healthy cost and the ×100 cost: every attempt
  // overruns, is charged exactly the timeout, and counts as a failure.
  options.retry.attempt_timeout_seconds =
      2.0 * clean.measurement_cost_seconds;
  core::PlacementEnvironment env(graph, cluster, options);
  const auto eval = env.Evaluate(placement, nullptr);
  EXPECT_FALSE(eval.valid);
  EXPECT_TRUE(eval.failed);
  EXPECT_EQ(env.timeouts(), 2);
  EXPECT_DOUBLE_EQ(
      eval.measurement_cost_seconds,
      2 * options.retry.attempt_timeout_seconds + 5.0 /* backoff */);
}

TEST(EnvironmentFaults, StateRoundTripContinuesFaultStream) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  core::EnvironmentOptions options;
  options.faults = sim::FaultProfileFromString("0.3");
  options.retry.jitter_fraction = 0.0;
  const auto placement = AllOn(graph, cluster, 1);

  // Reference: one environment evaluates five times in a row.
  core::PlacementEnvironment reference(graph, cluster, options);
  for (int i = 0; i < 2; ++i) reference.Evaluate(placement, nullptr);
  std::vector<sim::EvalResult> expected;
  for (int i = 0; i < 3; ++i) {
    expected.push_back(reference.Evaluate(placement, nullptr));
  }

  // Checkpointed: two evaluations, state snapshot, restore into a fresh
  // environment, three more — the fault stream must continue exactly.
  core::PlacementEnvironment first(graph, cluster, options);
  for (int i = 0; i < 2; ++i) first.Evaluate(placement, nullptr);
  std::stringstream blob;
  first.SerializeState(blob);
  core::PlacementEnvironment resumed(graph, cluster, options);
  resumed.DeserializeState(blob);
  EXPECT_EQ(resumed.attempts(), first.attempts());
  EXPECT_EQ(resumed.transient_failures(), first.transient_failures());
  for (int i = 0; i < 3; ++i) {
    const auto eval = resumed.Evaluate(placement, nullptr);
    EXPECT_EQ(eval.valid, expected[static_cast<std::size_t>(i)].valid);
    EXPECT_EQ(eval.failed, expected[static_cast<std::size_t>(i)].failed);
    EXPECT_EQ(eval.attempts, expected[static_cast<std::size_t>(i)].attempts);
    EXPECT_DOUBLE_EQ(
        eval.measurement_cost_seconds,
        expected[static_cast<std::size_t>(i)].measurement_cost_seconds);
    EXPECT_DOUBLE_EQ(
        eval.per_step_seconds,
        expected[static_cast<std::size_t>(i)].per_step_seconds);
  }
}

TEST(EnvironmentFaults, DisabledFaultsKeepLegacyBehavior) {
  const auto graph = models::BuildChain(6);
  const auto cluster = sim::MakeDefaultCluster();
  core::PlacementEnvironment env(graph, cluster);
  const auto placement = AllOn(graph, cluster, 1);
  const auto a = env.Evaluate(placement, nullptr);
  const auto b = env.Evaluate(placement, nullptr);
  ASSERT_TRUE(a.valid);
  EXPECT_EQ(env.cache_hits(), 1);
  EXPECT_DOUBLE_EQ(a.per_step_seconds, b.per_step_seconds);
  EXPECT_EQ(env.transient_failures(), 0);
  EXPECT_EQ(env.retries(), 0);
  EXPECT_EQ(env.attempts(), 2);
}

}  // namespace
}  // namespace eagle
