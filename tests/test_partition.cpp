#include <gtest/gtest.h>

#include <numeric>

#include "models/synthetic.h"
#include "partition/coarsen.h"
#include "partition/fluid.h"
#include "partition/fm_refine.h"
#include "partition/metis_like.h"
#include "partition/partition.h"

namespace eagle::partition {
namespace {

TEST(WeightedGraph, MergesParallelEdges) {
  graph::OpGraph g;
  for (int i = 0; i < 2; ++i) {
    graph::OpDef op;
    op.name = "n" + std::to_string(i);
    op.output_shape = graph::TensorShape{4};
    g.AddOp(op);
  }
  g.AddEdge(0, 1, 100);
  g.AddEdge(0, 1, 50);
  const auto wg = BuildWeightedGraph(g);
  EXPECT_EQ(wg.num_vertices(), 2);
  // One undirected neighbor each, weight 150.
  EXPECT_EQ(wg.xadj[1] - wg.xadj[0], 1);
  EXPECT_EQ(wg.adjwgt[0], 150);
  EXPECT_EQ(wg.total_vertex_weight(), 2);
}

TEST(Metrics, CutAndBalance) {
  graph::OpGraph g = models::BuildChain(3);  // 4 ops in a path
  const auto wg = BuildWeightedGraph(g);
  Partitioning part{0, 0, 1, 1};
  const auto m = ComputeMetrics(wg, part, 2);
  EXPECT_EQ(m.num_nonempty, 2);
  EXPECT_DOUBLE_EQ(m.balance, 1.0);
  EXPECT_EQ(m.cut_weight, CutWeight(wg, part));
  EXPECT_GT(m.cut_weight, 0);
}

TEST(Metrics, InvalidPartitionRejected) {
  graph::OpGraph g = models::BuildChain(3);
  const auto wg = BuildWeightedGraph(g);
  EXPECT_THROW(ComputeMetrics(wg, {0, 0, 1}, 2), std::logic_error);
  EXPECT_THROW(ComputeMetrics(wg, {0, 0, 1, 9}, 2), std::logic_error);
}

TEST(Coarsen, ConservesVertexWeight) {
  support::Rng rng(1);
  models::RandomDagConfig config;
  config.layers = 10;
  config.width = 10;
  graph::OpGraph g = models::BuildRandomDag(config, rng);
  const auto wg = BuildWeightedGraph(g);
  const auto level = CoarsenOnce(wg, rng);
  EXPECT_LT(level.graph.num_vertices(), wg.num_vertices());
  EXPECT_EQ(level.graph.total_vertex_weight(), wg.total_vertex_weight());
  // Mapping covers all fine vertices.
  for (auto c : level.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, level.graph.num_vertices());
  }
}

TEST(Coarsen, HierarchyReachesTarget) {
  support::Rng rng(2);
  models::RandomDagConfig config;
  config.layers = 20;
  config.width = 10;
  graph::OpGraph g = models::BuildRandomDag(config, rng);
  const auto wg = BuildWeightedGraph(g);
  const auto levels = BuildHierarchy(wg, 30, rng);
  ASSERT_FALSE(levels.empty());
  EXPECT_LE(levels.back().graph.num_vertices(), wg.num_vertices() / 2);
}

TEST(FmRefine, NeverIncreasesCut) {
  support::Rng rng(3);
  models::RandomDagConfig config;
  config.layers = 12;
  config.width = 8;
  graph::OpGraph g = models::BuildRandomDag(config, rng);
  const auto wg = BuildWeightedGraph(g);
  Partitioning part(static_cast<std::size_t>(wg.num_vertices()));
  for (auto& p : part) p = static_cast<std::int32_t>(rng.NextBelow(4));
  const auto before = CutWeight(wg, part);
  RefineOptions options;
  options.num_parts = 4;
  const auto gain = RefineKWay(wg, part, options, rng);
  const auto after = CutWeight(wg, part);
  EXPECT_EQ(before - after, gain);
  EXPECT_LE(after, before);
}

TEST(FmRefine, RespectsBalanceTolerance) {
  support::Rng rng(4);
  models::RandomDagConfig config;
  config.layers = 12;
  config.width = 8;
  graph::OpGraph g = models::BuildRandomDag(config, rng);
  const auto wg = BuildWeightedGraph(g);
  Partitioning part(static_cast<std::size_t>(wg.num_vertices()));
  for (std::size_t i = 0; i < part.size(); ++i) {
    part[i] = static_cast<std::int32_t>(i % 4);
  }
  RefineOptions options;
  options.num_parts = 4;
  options.balance_tolerance = 1.1;
  RefineKWay(wg, part, options, rng);
  const auto m = ComputeMetrics(wg, part, 4);
  EXPECT_LE(m.balance, 1.1 + 0.1);  // +1 vertex granularity slack
}

TEST(MetisLike, ChainsGroupedByLocality) {
  // Parallel chains have an obvious min-cut: one part per chain. The
  // partitioner should get close: cut far below a random assignment.
  graph::OpGraph g = models::BuildParallelChains(4, 16);
  const auto wg = BuildWeightedGraph(g);
  MetisOptions options;
  options.num_parts = 4;
  const auto part = MetisPartitionWeighted(wg, options);
  const auto metis_cut = CutWeight(wg, part);
  support::Rng rng(5);
  std::int64_t random_cut = 0;
  Partitioning random_part(part.size());
  for (auto& p : random_part) p = static_cast<std::int32_t>(rng.NextBelow(4));
  random_cut = CutWeight(wg, random_part);
  EXPECT_LT(metis_cut, random_cut / 3);
}

TEST(MetisLike, ValidAndDeterministic) {
  support::Rng dag_rng(42);
  models::RandomDagConfig dag;
  dag.layers = 15;
  dag.width = 8;
  graph::OpGraph g = models::BuildRandomDag(dag, dag_rng);
  const auto wg = BuildWeightedGraph(g);
  MetisOptions options;
  options.num_parts = 16;
  options.seed = 9;
  const auto a = MetisPartitionWeighted(wg, options);
  const auto b = MetisPartitionWeighted(wg, options);
  EXPECT_EQ(a, b);
  ValidatePartitioning(wg, a, 16);
}

TEST(MetisLike, MorePartsThanVertices) {
  graph::OpGraph g = models::BuildChain(3);
  MetisOptions options;
  options.num_parts = 64;
  const auto part = MetisPartition(g, options);
  ValidatePartitioning(BuildWeightedGraph(g), part, 64);
}

TEST(Fluid, ValidPartitioning) {
  graph::OpGraph g = models::BuildParallelChains(4, 16);
  FluidOptions options;
  options.num_communities = 4;
  const auto part = FluidCommunities(g, options);
  ValidatePartitioning(BuildWeightedGraph(g), part, 4);
}

TEST(Fluid, DeterministicBySeed) {
  graph::OpGraph g = models::BuildParallelChains(3, 10);
  FluidOptions options;
  options.num_communities = 3;
  options.seed = 17;
  EXPECT_EQ(FluidCommunities(g, options), FluidCommunities(g, options));
}

TEST(Fluid, FindsCommunitiesOnChains) {
  graph::OpGraph g = models::BuildParallelChains(4, 16);
  const auto wg = BuildWeightedGraph(g);
  FluidOptions options;
  options.num_communities = 4;
  const auto part = FluidCommunitiesWeighted(wg, options);
  // Much better than random, though typically behind METIS.
  support::Rng rng(6);
  Partitioning random_part(part.size());
  for (auto& p : random_part) p = static_cast<std::int32_t>(rng.NextBelow(4));
  EXPECT_LT(CutWeight(wg, part), CutWeight(wg, random_part));
}

// Property sweep: both partitioners produce valid, better-than-random cuts
// across random DAG shapes and seeds.
struct PartitionPropertyCase {
  int layers;
  int width;
  int parts;
  std::uint64_t seed;
};

class PartitionProperty
    : public ::testing::TestWithParam<PartitionPropertyCase> {};

TEST_P(PartitionProperty, BetterThanRandomAndValid) {
  const auto param = GetParam();
  support::Rng rng(param.seed);
  models::RandomDagConfig config;
  config.layers = param.layers;
  config.width = param.width;
  graph::OpGraph g = models::BuildRandomDag(config, rng);
  const auto wg = BuildWeightedGraph(g);

  MetisOptions metis;
  metis.num_parts = param.parts;
  metis.seed = param.seed;
  const auto metis_part = MetisPartitionWeighted(wg, metis);
  ValidatePartitioning(wg, metis_part, param.parts);

  FluidOptions fluid;
  fluid.num_communities = param.parts;
  fluid.seed = param.seed;
  const auto fluid_part = FluidCommunitiesWeighted(wg, fluid);
  ValidatePartitioning(wg, fluid_part, param.parts);

  Partitioning random_part(static_cast<std::size_t>(wg.num_vertices()));
  for (auto& p : random_part) {
    p = static_cast<std::int32_t>(
        rng.NextBelow(static_cast<std::uint64_t>(param.parts)));
  }
  const auto random_cut = CutWeight(wg, random_part);
  EXPECT_LE(CutWeight(wg, metis_part), random_cut);
  EXPECT_LE(CutWeight(wg, fluid_part), random_cut);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Values(PartitionPropertyCase{8, 6, 4, 1},
                      PartitionPropertyCase{16, 4, 4, 2},
                      PartitionPropertyCase{12, 10, 8, 3},
                      PartitionPropertyCase{20, 8, 16, 4},
                      PartitionPropertyCase{6, 20, 8, 5},
                      PartitionPropertyCase{30, 5, 4, 6}));

}  // namespace
}  // namespace eagle::partition
