#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "models/fuzz_corpus.h"
#include "models/zoo.h"
#include "sim/delta.h"
#include "sim/naive_ref.h"
#include "sim/placement.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace eagle::sim {
namespace {

using graph::OpDef;
using graph::OpGraph;
using graph::OpType;
using graph::TensorShape;

ClusterSpec TwoGpuCluster() {
  ClusterOptions options;
  options.num_gpus = 2;
  return MakeDefaultCluster(options);
}

// The delta contract is exact equality, doubles included — reuse the same
// comparison the EAGLE_AUDIT cross-check and graph_fuzz --mode=delta use.
void ExpectIdentical(const StepResult& got, const StepResult& want) {
  EXPECT_EQ(DiffStepResults(got, want), std::string());
}

std::vector<DeviceId> RandomDevices(const OpGraph& g,
                                    const ClusterSpec& cluster,
                                    support::Rng& rng) {
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()));
  for (auto& d : devices) {
    d = static_cast<DeviceId>(
        rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }
  return devices;
}

// Drives a move sequence through one persistent DeltaContext and checks
// every result — including the recorded timeline — against a fresh full
// run from a delta-free simulator. Returns the context stats.
DeltaStats DriveMoves(const OpGraph& g, const ClusterSpec& cluster,
                      SimulatorOptions options, int num_moves,
                      int ops_per_move, std::uint64_t seed) {
  options.record_schedule = true;
  // Correctness harness: disable the fallback backoff so every move
  // exercises the delta machinery instead of the plain-run escape hatch
  // (which has its own test below).
  options.delta.fallback_backoff_threshold = 0;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  support::Rng rng(seed);
  std::vector<DeviceId> devices = RandomDevices(g, cluster, rng);
  for (int move = 0; move <= num_moves; ++move) {
    Placement placement(g, devices);
    placement.Normalize(g, cluster);
    ExpectIdentical(delta_sim.RunWithContext(placement, ctx),
                    full_sim.Run(placement));
    for (int i = 0; i < ops_per_move; ++i) {
      const auto op = rng.NextBelow(static_cast<std::uint64_t>(g.num_ops()));
      devices[op] = static_cast<DeviceId>(
          rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
    }
  }
  return ctx.stats;
}

TEST(Delta, SingleOpMovesBitIdenticalOnZoo) {
  const auto cluster = MakeDefaultCluster();
  models::ZooOptions zoo;
  zoo.reduced = true;
  for (const auto benchmark : models::AllBenchmarks()) {
    SCOPED_TRACE(models::BenchmarkName(benchmark));
    const OpGraph g = models::BuildBenchmark(benchmark, zoo);
    const DeltaStats stats = DriveMoves(g, cluster, SimulatorOptions{},
                                        /*num_moves=*/12, /*ops_per_move=*/1,
                                        /*seed=*/17);
    // The first evaluation is necessarily a fallback (cold context); the
    // sequence as a whole must be served mostly incrementally.
    EXPECT_GE(stats.fallbacks, 1);
    EXPECT_GT(stats.hits, 0);
  }
}

TEST(Delta, MultiOpMovesBitIdenticalOnFuzzGraph) {
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(5);
  models::FuzzGraphConfig config;
  config.num_ops = 220;
  config.width = 12;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  // Multi-op moves on a training graph invalidate most of the backward
  // pass; disable the cutover so the merge machinery itself is exercised
  // even when nearly everything replays.
  SimulatorOptions options;
  options.delta.cutover_fraction = 1.0;
  const DeltaStats stats = DriveMoves(g, cluster, options,
                                      /*num_moves=*/10, /*ops_per_move=*/4,
                                      /*seed=*/29);
  EXPECT_GT(stats.hits, 0);
}

TEST(Delta, MemoryTrackingDisabledStillIdentical) {
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(7);
  models::FuzzGraphConfig config;
  config.num_ops = 160;
  config.width = 10;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions options;
  options.track_memory = false;
  const DeltaStats stats =
      DriveMoves(g, cluster, options, /*num_moves=*/8, /*ops_per_move=*/1,
                 /*seed=*/41);
  EXPECT_GT(stats.hits, 0);
}

TEST(Delta, IdenticalPlacementServedFromCache) {
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(11);
  models::FuzzGraphConfig config;
  config.num_ops = 120;
  config.width = 8;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions options;
  options.record_schedule = true;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  support::Rng rng(3);
  Placement placement(g, RandomDevices(g, cluster, rng));
  placement.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(placement, ctx),
                  full_sim.Run(placement));
  EXPECT_EQ(ctx.stats.fallbacks, 1);
  ExpectIdentical(delta_sim.RunWithContext(placement, ctx),
                  full_sim.Run(placement));
  EXPECT_EQ(ctx.stats.hits, 1);
  EXPECT_EQ(ctx.stats.fallbacks, 1);
}

TEST(Delta, RunLeasesContextWhenEnabled) {
  // ExecutionSimulator::Run() itself goes incremental when
  // options.delta.enabled — the environment-facing path.
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(13);
  models::FuzzGraphConfig config;
  config.num_ops = 120;
  config.width = 8;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions with_delta;
  with_delta.delta.enabled = true;
  const ExecutionSimulator delta_sim(g, cluster, with_delta);
  const ExecutionSimulator full_sim(g, cluster, SimulatorOptions{});
  support::Rng rng(19);
  std::vector<DeviceId> devices = RandomDevices(g, cluster, rng);
  for (int move = 0; move < 6; ++move) {
    Placement placement(g, devices);
    placement.Normalize(g, cluster);
    ExpectIdentical(delta_sim.Run(placement), full_sim.Run(placement));
    devices[static_cast<std::size_t>(
        rng.NextBelow(static_cast<std::uint64_t>(g.num_ops())))] =
        static_cast<DeviceId>(
            rng.NextBelow(static_cast<std::uint64_t>(cluster.num_devices())));
  }
}

TEST(Delta, FallsBackWhenTooManyOpsMove) {
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(23);
  models::FuzzGraphConfig config;
  config.num_ops = 120;
  config.width = 8;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions options;
  options.delta.max_moved_ops = 2;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  support::Rng rng(31);
  std::vector<DeviceId> devices = RandomDevices(g, cluster, rng);
  Placement base(g, devices);
  base.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(base, ctx), full_sim.Run(base));
  // Shift every op: far past max_moved_ops.
  for (auto& d : devices) {
    d = static_cast<DeviceId>((d + 1) % cluster.num_devices());
  }
  Placement shifted(g, devices);
  shifted.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(shifted, ctx),
                  full_sim.Run(shifted));
  EXPECT_EQ(ctx.stats.fallbacks, 2);
  EXPECT_EQ(ctx.stats.hits, 0);
}

TEST(Delta, FallsBackWhenConeExceedsCutover) {
  // A 40-op chain: moving op 1 invalidates its entire downstream cone, so
  // a zero cutover fraction forces the full path even for a legal move.
  OpGraph g;
  for (int i = 0; i < 40; ++i) {
    OpDef op;
    op.name = "op" + std::to_string(i);
    op.type = OpType::kMatMul;
    op.flops = 1e7;
    op.output_shape = TensorShape{64};
    g.AddOp(op);
    if (i > 0) g.AddEdge(i - 1, i, 64 * 4);
  }
  const auto cluster = TwoGpuCluster();
  SimulatorOptions options;
  options.delta.cutover_fraction = 0.0;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  std::vector<DeviceId> devices(40, 1);
  Placement base(g, devices);
  base.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(base, ctx), full_sim.Run(base));
  devices[1] = 2;
  Placement moved(g, devices);
  moved.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(moved, ctx), full_sim.Run(moved));
  EXPECT_EQ(ctx.stats.fallbacks, 2);
  EXPECT_EQ(ctx.stats.hits, 0);
}

TEST(Delta, FaultVectorChangeFallsBack) {
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(37);
  models::FuzzGraphConfig config;
  config.num_ops = 100;
  config.width = 8;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  const ExecutionSimulator delta_sim(g, cluster, {});
  const ExecutionSimulator full_sim(g, cluster, {});
  FaultDraw faults;
  faults.device_down.assign(
      static_cast<std::size_t>(cluster.num_devices()), false);
  faults.device_compute_scale.assign(
      static_cast<std::size_t>(cluster.num_devices()), 1.0);
  faults.device_compute_scale[1] = 1.7;
  faults.link_scale.assign(
      static_cast<std::size_t>(cluster.num_link_channels()), 1.0);

  DeltaContext ctx;
  support::Rng rng(43);
  std::vector<DeviceId> devices = RandomDevices(g, cluster, rng);
  Placement placement(g, devices);
  placement.Normalize(g, cluster);
  // Same fault vector twice: second run is a hit.
  ExpectIdentical(delta_sim.RunWithContext(placement, ctx, &faults),
                  full_sim.Run(placement, &faults));
  ExpectIdentical(delta_sim.RunWithContext(placement, ctx, &faults),
                  full_sim.Run(placement, &faults));
  EXPECT_EQ(ctx.stats.hits, 1);
  // Different straggler factor: fallback, then warm again.
  faults.device_compute_scale[1] = 2.9;
  ExpectIdentical(delta_sim.RunWithContext(placement, ctx, &faults),
                  full_sim.Run(placement, &faults));
  EXPECT_EQ(ctx.stats.fallbacks, 2);
  // Dropping faults entirely is also a cache mismatch.
  ExpectIdentical(delta_sim.RunWithContext(placement, ctx),
                  full_sim.Run(placement));
  EXPECT_EQ(ctx.stats.fallbacks, 3);
  // And a single-op move under the (new) cached no-fault run hits again.
  devices[0] = static_cast<DeviceId>((devices[0] + 1) %
                                     cluster.num_devices());
  Placement moved(g, devices);
  moved.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(moved, ctx),
                  full_sim.Run(moved));
  EXPECT_EQ(ctx.stats.hits + ctx.stats.fallbacks, 5);
}

TEST(Delta, OomTransitionsTrackedAcrossMoves) {
  // Two heavyweight param ops: together they OOM a small GPU, apart they
  // fit. The delta path must flip `oom` in both directions.
  const std::int64_t gpu_bytes = 1LL << 26;  // 64 MB
  ClusterOptions copts;
  copts.num_gpus = 2;
  copts.gpu_memory_bytes = gpu_bytes;
  const auto cluster = MakeDefaultCluster(copts);
  OpGraph g;
  for (int i = 0; i < 2; ++i) {
    OpDef op;
    op.name = "w" + std::to_string(i);
    op.type = OpType::kMatMul;
    op.flops = 1e8;
    op.output_shape = TensorShape{64};
    op.param_bytes = (gpu_bytes * 3) / 4;
    g.AddOp(op);
  }
  OpDef sink;
  sink.name = "sink";
  sink.type = OpType::kMatMul;
  sink.flops = 1e8;
  sink.output_shape = TensorShape{64};
  g.AddOp(sink);
  g.AddEdge(0, 2, 256);
  g.AddEdge(1, 2, 256);

  SimulatorOptions options;
  options.record_schedule = true;
  // On a 3-op graph any move's cone is the whole graph; the cutover would
  // turn every run into a fallback and leave the memory patcher untested.
  options.delta.cutover_fraction = 1.0;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  std::vector<DeviceId> devices{1, 1, 1};  // both weights on gpu:0 — OOM
  Placement together(g, devices);
  together.Normalize(g, cluster);
  const auto oom_result = delta_sim.RunWithContext(together, ctx);
  EXPECT_TRUE(oom_result.oom);
  ExpectIdentical(oom_result, full_sim.Run(together));

  devices[1] = 2;  // split: fits
  Placement split(g, devices);
  split.Normalize(g, cluster);
  const auto fit_result = delta_sim.RunWithContext(split, ctx);
  EXPECT_FALSE(fit_result.oom);
  ExpectIdentical(fit_result, full_sim.Run(split));

  devices[1] = 1;  // back together — OOM again, via the delta path
  Placement again(g, devices);
  again.Normalize(g, cluster);
  const auto oom_again = delta_sim.RunWithContext(again, ctx);
  EXPECT_TRUE(oom_again.oom);
  ExpectIdentical(oom_again, full_sim.Run(again));
  EXPECT_GT(ctx.stats.hits, 0);
}

TEST(Delta, FallbackBackoffSkipsRefreshUnderThrash) {
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(51);
  models::FuzzGraphConfig config;
  config.num_ops = 80;
  config.width = 6;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions options;
  options.delta.max_moved_ops = 2;
  options.delta.fallback_backoff_threshold = 3;
  options.delta.fallback_backoff_runs = 4;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  support::Rng rng(53);
  // Thrash: every placement far (>max_moved_ops) from the previous one.
  // Three consecutive fallbacks trip the backoff.
  std::vector<DeviceId> third;
  for (int i = 0; i < 3; ++i) {
    const std::vector<DeviceId> devices = RandomDevices(g, cluster, rng);
    if (i == 2) third = devices;
    Placement p(g, devices);
    p.Normalize(g, cluster);
    ExpectIdentical(delta_sim.RunWithContext(p, ctx), full_sim.Run(p));
  }
  EXPECT_EQ(ctx.stats.fallbacks, 3);
  EXPECT_EQ(ctx.backoff_remaining, 4);
  // While backed off the fallback skips the refresh: even re-running the
  // placement just evaluated misses, because the cache still holds run
  // #3's schedule.
  const std::vector<DeviceId> devices = RandomDevices(g, cluster, rng);
  Placement p4(g, devices);
  p4.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(p4, ctx), full_sim.Run(p4));
  ExpectIdentical(delta_sim.RunWithContext(p4, ctx), full_sim.Run(p4));
  EXPECT_EQ(ctx.stats.hits, 0);
  EXPECT_EQ(ctx.stats.fallbacks, 5);
  EXPECT_EQ(ctx.backoff_remaining, 2);
  // The still-cached run-#3 placement hits and clears the backoff.
  Placement back(g, third);
  back.Normalize(g, cluster);
  ExpectIdentical(delta_sim.RunWithContext(back, ctx), full_sim.Run(back));
  EXPECT_EQ(ctx.stats.hits, 1);
  EXPECT_EQ(ctx.backoff_remaining, 0);
}

// ---- satellite: workspace epoch wrap + shape changes ----

TEST(SimWorkspace, EpochWrapRestampsCleanly) {
  // Prime the pooled workspace's epoch next to the 2^32 boundary and run
  // straight through the wrap; each run must match a fresh simulator.
  const auto cluster = TwoGpuCluster();
  support::Rng graph_rng(47);
  models::FuzzGraphConfig config;
  config.num_ops = 120;
  config.width = 8;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions options;
  options.record_schedule = true;
  const ExecutionSimulator wrapped(g, cluster, options);
  wrapped.PrimeWorkspaceEpochForTest(
      std::numeric_limits<std::uint32_t>::max() - 2);
  support::Rng rng(53);
  for (int round = 0; round < 6; ++round) {
    Placement placement(g, RandomDevices(g, cluster, rng));
    placement.Normalize(g, cluster);
    const ExecutionSimulator fresh(g, cluster, options);
    ExpectIdentical(wrapped.Run(placement), fresh.Run(placement));
  }
}

TEST(SimWorkspace, PrepareHandlesShapeChanges) {
  SimWorkspace ws;
  ws.Prepare(4, 2, 8);
  EXPECT_EQ(ws.epoch, 1u);
  ws.Prepare(4, 2, 8);
  EXPECT_EQ(ws.epoch, 2u);
  // More devices: the flat op×device arrays regrow and epochs restart, so
  // no stale stamp from the old shape can alias a live slot.
  ws.Prepare(4, 3, 18);
  EXPECT_EQ(ws.epoch, 1u);
  EXPECT_EQ(ws.live_epoch.size(), 12u);
  EXPECT_EQ(ws.transfer_overflow_head.size(), 12u);
  EXPECT_EQ(ws.heaps.size(), 3u);
  // Back to the smaller shape: same reset.
  ws.Prepare(4, 2, 8);
  EXPECT_EQ(ws.epoch, 1u);
  EXPECT_EQ(ws.live_epoch.size(), 8u);
  // Op-count change alone also reshapes.
  ws.Prepare(6, 2, 8);
  EXPECT_EQ(ws.epoch, 1u);
  EXPECT_EQ(ws.ready_epoch.size(), 6u);
}

// ---- satellite: per-slot transfer-dedup overflow chaining ----

TEST(Simulator, TransferDedupManyDistinctSizesPerSlot) {
  // Adversarial shape for the old flat overflow list: one producer ships
  // many distinct tensor widths to one device, so every lookup used to
  // scan every previous overflow entry. Correctness check: each distinct
  // size is one physical transfer, duplicates still dedup, and the
  // result matches the frozen reference bit-for-bit.
  constexpr int kConsumers = 48;
  OpGraph g;
  OpDef producer;
  producer.name = "producer";
  producer.type = OpType::kMatMul;
  producer.flops = 1e6;
  producer.output_shape = TensorShape{16};
  g.AddOp(producer);
  std::int64_t distinct_bytes = 0;
  for (int i = 0; i < kConsumers; ++i) {
    OpDef use;
    use.name = "use" + std::to_string(i);
    use.type = OpType::kMatMul;
    use.flops = 1e6;
    use.output_shape = TensorShape{16};
    g.AddOp(use);
    // Every third consumer repeats the previous size — the dedup must
    // find it mid-chain, not just at the primary slot.
    const std::int64_t bytes =
        (i % 3 == 2) ? 1000 + (i - 1) * 8 : 1000 + i * 8;
    if (i % 3 != 2) distinct_bytes += bytes;
    g.AddEdge(0, i + 1, bytes);
  }
  const auto cluster = TwoGpuCluster();
  SimulatorOptions options;
  options.record_schedule = true;
  ExecutionSimulator simulator(g, cluster, options);
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()), 2);
  devices[0] = 1;
  Placement placement(g, devices);
  placement.Normalize(g, cluster);
  const auto result = simulator.Run(placement);
  EXPECT_EQ(result.num_transfers, kConsumers - kConsumers / 3);
  EXPECT_EQ(result.transfer_bytes_total, distinct_bytes);
  ExpectIdentical(result,
                  naive::RunReference(g, cluster, options, placement, nullptr,
                                      /*record_schedule=*/true));
}

// ---- hierarchical-cluster bit-identity property tests ----

TEST(Delta, TierCrossingMovesBitIdenticalOnTwoNodeCluster) {
  // Property test on the hierarchical 2-node topology: random multi-op
  // move sequences constantly push ops across the NVLink/IB tier
  // boundary, so the delta channel-cut logic has to rebuild contention
  // state for the shared NIC egress channels — not just per-pair PCIe
  // channels — and still match a fresh full run bit for bit.
  const ClusterSpec cluster = MakeTwoNodeNvlinkIbCluster();
  models::ZooOptions zoo;
  zoo.reduced = true;
  for (const auto benchmark : models::AllBenchmarks()) {
    SCOPED_TRACE(models::BenchmarkName(benchmark));
    const OpGraph g = models::BuildBenchmark(benchmark, zoo);
    SimulatorOptions options;
    options.delta.cutover_fraction = 1.0;
    const DeltaStats stats = DriveMoves(g, cluster, options,
                                        /*num_moves=*/8, /*ops_per_move=*/3,
                                        /*seed=*/61);
    EXPECT_GT(stats.hits, 0);
  }
}

TEST(Delta, SharedNicDedupCutsBitIdentical) {
  // Dedup-aware channel cuts on a shared channel: one producer on node 0
  // feeds many consumers spread over node 1, so the deduped IB transfers
  // all queue on node 0's single NIC egress channel. Moving a consumer
  // back and forth across the boundary changes which transfers exist at
  // all (dedup collapses same-destination copies); the incremental cut
  // must agree exactly with the full run every time.
  constexpr int kConsumers = 24;
  OpGraph g;
  OpDef producer;
  producer.name = "producer";
  producer.type = OpType::kMatMul;
  producer.flops = 5e7;
  producer.output_shape = TensorShape{256};
  g.AddOp(producer);
  for (int i = 0; i < kConsumers; ++i) {
    OpDef use;
    use.name = "use" + std::to_string(i);
    use.type = OpType::kMatMul;
    use.flops = 5e6;
    use.output_shape = TensorShape{64};
    g.AddOp(use);
    // Half the consumers share a tensor size (dedup per destination
    // device), half are distinct.
    g.AddEdge(0, i + 1, (i % 2 == 0) ? 4096 : 4096 + i * 64);
  }
  const ClusterSpec cluster = MakeTwoNodeNvlinkIbCluster();
  SimulatorOptions options;
  options.record_schedule = true;
  options.delta.cutover_fraction = 1.0;
  options.delta.fallback_backoff_threshold = 0;
  const ExecutionSimulator delta_sim(g, cluster, options);
  const ExecutionSimulator full_sim(g, cluster, options);
  DeltaContext ctx;
  support::Rng rng(67);
  const auto gpus = cluster.Gpus();
  // Producer on node 0's first GPU; consumers sprinkled over both nodes.
  std::vector<DeviceId> devices(static_cast<std::size_t>(g.num_ops()));
  devices[0] = gpus[0];
  for (int i = 1; i <= kConsumers; ++i) {
    devices[static_cast<std::size_t>(i)] =
        gpus[rng.NextBelow(gpus.size())];
  }
  for (int move = 0; move < 20; ++move) {
    Placement placement(g, devices);
    placement.Normalize(g, cluster);
    ExpectIdentical(delta_sim.RunWithContext(placement, ctx),
                    full_sim.Run(placement));
    // Bounce one consumer to a random GPU (usually across the IB tier).
    const auto victim =
        1 + rng.NextBelow(static_cast<std::uint64_t>(kConsumers));
    devices[victim] = gpus[rng.NextBelow(gpus.size())];
  }
  EXPECT_GT(ctx.stats.hits, 0);
}

TEST(Delta, MixedSpeedClusterMovesBitIdentical) {
  // Heterogeneous per-device gflops/memory: compute times now differ per
  // device, so replayed cones pick up different op durations after every
  // move. Exactness must survive that.
  const ClusterSpec cluster = MakeMixedSpeedCluster();
  support::Rng graph_rng(71);
  models::FuzzGraphConfig config;
  config.num_ops = 200;
  config.width = 10;
  const OpGraph g = models::BuildFuzzGraph(config, graph_rng);
  SimulatorOptions options;
  options.delta.cutover_fraction = 1.0;
  const DeltaStats stats = DriveMoves(g, cluster, options,
                                      /*num_moves=*/12, /*ops_per_move=*/2,
                                      /*seed=*/73);
  EXPECT_GT(stats.hits, 0);
}

// ---- satellite: cluster spec validation ----

TEST(ClusterSpec, ValidateRejectsDegenerateSpecs) {
  EXPECT_EQ(ClusterSpec().Validate().code(), support::ErrorCode::kSyntax);

  auto zero_gflops = TwoGpuCluster();
  {
    ClusterOptions opts;
    opts.num_gpus = 2;
    opts.gpu_gflops = 0.0;
    zero_gflops = MakeDefaultCluster(opts);
  }
  const auto status = zero_gflops.Validate();
  EXPECT_EQ(status.code(), support::ErrorCode::kNumericOverflow);
  EXPECT_NE(status.ToString().find("gflops"), std::string::npos);

  ClusterOptions nan_pcie;
  nan_pcie.num_gpus = 1;
  nan_pcie.pcie_gbps = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(MakeDefaultCluster(nan_pcie).Validate().code(),
            support::ErrorCode::kNumericOverflow);

  ClusterOptions neg_latency;
  neg_latency.num_gpus = 1;
  neg_latency.pcie_latency_us = -1.0;
  EXPECT_EQ(MakeDefaultCluster(neg_latency).Validate().code(),
            support::ErrorCode::kNumericOverflow);

  EXPECT_TRUE(TwoGpuCluster().Validate().ok());
}

TEST(ClusterSpec, SimulatorRefusesInvalidCluster) {
  ClusterOptions opts;
  opts.num_gpus = 1;
  opts.gpu_gflops = -5.0;
  const auto bad = MakeDefaultCluster(opts);
  OpGraph g;
  OpDef op;
  op.name = "op";
  op.type = OpType::kMatMul;
  op.flops = 1e6;
  op.output_shape = TensorShape{16};
  g.AddOp(op);
  EXPECT_THROW(ExecutionSimulator(g, bad), std::logic_error);
}

}  // namespace
}  // namespace eagle::sim
