// support::metrics / support::telemetry / support::json — the telemetry
// stack — and the determinism contract behind it: metrics are observers,
// so a training run with the JSONL sink open and profiling enabled is
// bit-identical (history, best placement, parameters, checkpoint bytes)
// to a run with both off, at any thread count.
//
// Ordering note: hot-path code (env.cpp, eval_service.cpp, trainer.cpp)
// caches registry pointers in function-local statics, and ResetForTest()
// dangles every handle taken before it. The unit tests below call
// ResetForTest and therefore run BEFORE the training-based integration
// tests; nothing resets the registry after training has started.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/eagle_agent.h"
#include "core/env.h"
#include "core/eval_service.h"
#include "models/synthetic.h"
#include "nn/serialize.h"
#include "rl/checkpoint.h"
#include "rl/trainer.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace eagle::support::metrics {
namespace {

TEST(Metrics, CounterAndGaugeRegistryBasics) {
  ResetForTest();
  Counter* a = GetCounter("test.a");
  EXPECT_EQ(a->value(), 0);
  a->Increment();
  a->Increment(41);
  EXPECT_EQ(a->value(), 42);
  // Register-on-first-use: same name, same handle; new name, fresh zero.
  EXPECT_EQ(GetCounter("test.a"), a);
  EXPECT_EQ(GetCounter("test.b")->value(), 0);

  Gauge* g = GetGauge("test.g");
  g->Set(1.5);
  EXPECT_EQ(g->value(), 1.5);
  g->Set(-3.0);
  EXPECT_EQ(g->value(), -3.0);
  EXPECT_EQ(GetGauge("test.g"), g);
}

TEST(Metrics, HistogramBucketsAndStats) {
  ResetForTest();
  Histogram* h = GetHistogram("test.h", {1.0, 2.0, 4.0});
  HistogramSnapshot empty = h->Snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_TRUE(std::isnan(empty.Quantile(0.5)));
  EXPECT_EQ(empty.Mean(), 0.0);

  for (double v : {0.5, 1.5, 3.0, 8.0}) h->Observe(v);
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.sum, 13.0);
  EXPECT_EQ(s.min, 0.5);
  EXPECT_EQ(s.max, 8.0);
  ASSERT_EQ(s.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(s.counts, (std::vector<std::int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(s.Mean(), 13.0 / 4.0);
  // Quantiles are interpolated from buckets but always clamped to the
  // observed range.
  EXPECT_EQ(s.Quantile(0.0), s.min);
  EXPECT_EQ(s.Quantile(1.0), s.max);
  const double median = s.Quantile(0.5);
  EXPECT_GE(median, s.min);
  EXPECT_LE(median, s.max);

  // Bucket bounds are fixed by the first registration.
  Histogram* again = GetHistogram("test.h", {100.0});
  EXPECT_EQ(again, h);
  EXPECT_EQ(again->Snapshot().bounds, (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(Metrics, DefaultLatencyBucketsAreAscending125) {
  const auto& b = DefaultLatencyBuckets();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.front(), 1e-6);
  EXPECT_EQ(b.back(), 500.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Metrics, SnapshotDeltaSemantics) {
  ResetForTest();
  Counter* stable = GetCounter("test.stable");
  Counter* moving = GetCounter("test.moving");
  Gauge* gauge = GetGauge("test.gauge");
  Histogram* hist = GetHistogram("test.hist");
  stable->Increment(5);
  moving->Increment(2);
  gauge->Set(1.0);
  hist->Observe(0.25);
  const Snapshot before = TakeSnapshot();

  moving->Increment(3);
  gauge->Set(9.0);
  hist->Observe(0.5);
  Counter* fresh = GetCounter("test.fresh");  // absent in `before`
  fresh->Increment(7);
  const Snapshot after = TakeSnapshot();

  const Snapshot delta = after.DeltaSince(before);
  // Zero-delta counters are dropped; new counters count from zero.
  EXPECT_EQ(delta.counters.count("test.stable"), 0u);
  EXPECT_EQ(delta.counters.at("test.moving"), 3);
  EXPECT_EQ(delta.counters.at("test.fresh"), 7);
  // Gauges carry the later absolute value.
  EXPECT_EQ(delta.gauges.at("test.gauge"), 9.0);
  // Histogram counts/sums are differenced; min/max stay absolute.
  const HistogramSnapshot& dh = delta.histograms.at("test.hist");
  EXPECT_EQ(dh.count, 1);
  EXPECT_EQ(dh.sum, 0.5);
  EXPECT_EQ(dh.min, 0.25);
  EXPECT_EQ(dh.max, 0.5);
}

// The TSan target: hammer one counter/gauge/histogram (plus spans) from a
// pool and demand exact totals — lost updates or data races surface here
// under EAGLE_SANITIZE=thread.
TEST(Metrics, ConcurrentUpdatesAreExactAndRaceFree) {
  ResetForTest();
  EnableProfiling(true);
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 500;
  ThreadPool pool(8);
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([t] {
      ScopedSpan span("test.task");
      Counter* counter = GetCounter("test.concurrent");
      Histogram* hist = GetHistogram("test.concurrent_latency");
      Gauge* gauge = GetGauge("test.concurrent_gauge");
      for (int i = 0; i < kIncrementsPerTask; ++i) {
        counter->Increment();
        hist->Observe(1e-6 * static_cast<double>(i));
        gauge->Set(static_cast<double>(t));
      }
    });
  }
  pool.Wait();
  EnableProfiling(false);
  EXPECT_EQ(GetCounter("test.concurrent")->value(), kTasks * kIncrementsPerTask);
  const HistogramSnapshot hist =
      GetHistogram("test.concurrent_latency")->Snapshot();
  EXPECT_EQ(hist.count, kTasks * kIncrementsPerTask);
  EXPECT_EQ(GetHistogram("span.test.task")->Snapshot().count, kTasks);
  EXPECT_EQ(SnapshotSpans().size(), static_cast<std::size_t>(kTasks));
}

TEST(Metrics, ScopedSpanObservesHistogramAlwaysRecordsOnlyWhenProfiling) {
  ResetForTest();
  ASSERT_FALSE(ProfilingEnabled());
  { EAGLE_SPAN("test.phase"); }
  EXPECT_EQ(GetHistogram("span.test.phase")->Snapshot().count, 1);
  EXPECT_TRUE(SnapshotSpans().empty());

  EnableProfiling(true);
  { EAGLE_SPAN("test.phase"); }
  EnableProfiling(false);
  EXPECT_EQ(GetHistogram("span.test.phase")->Snapshot().count, 2);
  const auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.phase");
  EXPECT_GE(spans[0].duration_seconds, 0.0);
}

TEST(Metrics, SpansToChromeTraceIsParseableJson) {
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{"train.update", 3, 1.5, 0.25});
  spans.push_back(SpanRecord{"checkpoint", 0, 2.0, 0.125});
  const std::string trace = SpansToChromeTrace(spans);

  std::string error;
  const json::Value root = json::Value::Parse(trace, &error);
  ASSERT_TRUE(root.is_object()) << error;
  const json::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata event + the two slices.
  ASSERT_EQ(events->items().size(), 3u);
  const json::Value& slice = events->items()[1];
  EXPECT_EQ(slice.StringOr("ph", ""), "X");
  EXPECT_EQ(slice.StringOr("name", ""), "train.update");
  // Category is the span-name prefix; a dotless name is its own category.
  EXPECT_EQ(slice.StringOr("cat", ""), "train");
  EXPECT_EQ(events->items()[2].StringOr("cat", ""), "checkpoint");
  EXPECT_EQ(slice.NumberOr("tid", -1), 3.0);
  // Chrome-trace timestamps are microseconds.
  EXPECT_EQ(slice.NumberOr("ts", 0), 1.5e6);
  EXPECT_EQ(slice.NumberOr("dur", 0), 0.25e6);
}

TEST(Metrics, ThreadTagsAreSmallAndStable) {
  const int tag = CurrentThreadTag();
  EXPECT_GE(tag, 0);
  EXPECT_EQ(CurrentThreadTag(), tag);
  // The shared clock is monotone.
  const double t0 = NowSeconds();
  EXPECT_GE(NowSeconds(), t0);
}

}  // namespace
}  // namespace eagle::support::metrics

namespace eagle::support::json {
namespace {

TEST(Json, ParsesScalarsArraysAndObjects) {
  std::string error;
  const Value v = Value::Parse(
      R"({"a":[1,-2.5,true,null,"x\"y"],"nested":{"c":-3e2},"s":""})",
      &error);
  ASSERT_TRUE(v.is_object()) << error;
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 5u);
  EXPECT_EQ(a->items()[0].number(), 1.0);
  EXPECT_EQ(a->items()[1].number(), -2.5);
  EXPECT_TRUE(a->items()[2].bool_value());
  EXPECT_TRUE(a->items()[3].is_null());
  EXPECT_EQ(a->items()[4].string_value(), "x\"y");
  EXPECT_EQ(v.Find("nested")->NumberOr("c", 0.0), -300.0);
  EXPECT_EQ(v.StringOr("s", "fallback"), "");
  EXPECT_EQ(v.StringOr("missing", "fallback"), "fallback");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(Json, ReportsParseErrorsWithPosition) {
  std::string error;
  const Value v = Value::Parse("{\"a\": tru", &error);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(error.empty());
}

TEST(Json, NumRoundTripsAndMapsNonFiniteToNull) {
  EXPECT_EQ(Num(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(Num(std::nan("")), "null");
  for (double v : {0.0, 1.5, -3.25, 1e-9, 12345678.5}) {
    std::string error;
    const Value parsed = Value::Parse(Num(v), &error);
    ASSERT_TRUE(parsed.is_number()) << Num(v) << ": " << error;
    EXPECT_EQ(parsed.number(), v);
  }
  const std::string escaped = Escape("a\"b\\c\n");
  std::string err;
  const Value round = Value::Parse("\"" + escaped + "\"", &err);
  ASSERT_TRUE(round.is_string()) << err;
  EXPECT_EQ(round.string_value(), "a\"b\\c\n");
}

}  // namespace
}  // namespace eagle::support::json

namespace eagle::support::telemetry {
namespace {

TEST(Telemetry, WritesFlushedParseableJsonl) {
  const std::string path = ::testing::TempDir() + "/eagle_telemetry_test.jsonl";
  std::filesystem::remove(path);
  ASSERT_TRUE(OpenRunLog(path));
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(Path(), path);
  WriteLine("{\"event\":\"run_start\",\"seed\":5}");
  WriteLine("{\"event\":\"run_end\",\"ok\":true}");
  EXPECT_TRUE(Close());
  EXPECT_FALSE(Enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    std::string error;
    EXPECT_FALSE(json::Value::Parse(line, &error).is_null())
        << line << ": " << error;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::filesystem::remove(path);
}

TEST(Telemetry, OpenFailureIsReportedAndLeavesSinkDisabled) {
  EXPECT_FALSE(OpenRunLog("/nonexistent_dir_for_eagle_tests/run.jsonl"));
  EXPECT_FALSE(Enabled());
  WriteLine("{\"dropped\":true}");  // no-op, must not crash
  // The failed open is latched so the bench exit code reflects the lost
  // telemetry, not just the log line.
  EXPECT_FALSE(Close());
  // A successful reopen clears the latch.
  const std::string path = ::testing::TempDir() + "/eagle_telemetry_relatch.jsonl";
  ASSERT_TRUE(OpenRunLog(path));
  EXPECT_TRUE(Close());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace eagle::support::telemetry

// ---------------------------------------------------------------------------
// Integration: telemetry/profiling on vs off is bit-identical training.
// Mirrors the test_eval_service fixture (faults + noise on so every RNG
// stream is live). No ResetForTest below this line — see header comment.

namespace eagle::core {
namespace {

namespace metrics = support::metrics;
namespace telemetry = support::telemetry;

core::AgentDims TinyDims() {
  core::AgentDims dims;
  dims.num_groups = 6;
  dims.grouper_hidden = 8;
  dims.placer_hidden = 16;
  dims.attn_dim = 8;
  dims.bridge_hidden = 8;
  dims.device_embed_dim = 4;
  return dims;
}

struct Fixture {
  graph::OpGraph graph = models::BuildParallelChains(2, 4, 1 << 14, 1e9);
  sim::ClusterSpec cluster = sim::MakeDefaultCluster();

  EnvironmentOptions EnvOptions() const {
    EnvironmentOptions options;
    options.faults = sim::FaultProfileFromString("0.15");
    return options;
  }

  std::unique_ptr<HierarchicalAgent> Agent(std::uint64_t seed) const {
    return MakeEagleAgent(graph, cluster, TinyDims(), seed);
  }

  rl::TrainerOptions Options(int total_samples) const {
    rl::TrainerOptions options;
    options.algorithm = rl::Algorithm::kPpoCe;
    options.total_samples = total_samples;
    options.minibatch_size = 10;
    options.ce_interval = 15;
    options.seed = 5;
    return options;
  }
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  std::ostringstream blob;
  blob << in.rdbuf();
  return blob.str();
}

struct RunOutput {
  rl::TrainResult result;
  std::string params;
  std::string checkpoint;  // final .ckpt bytes
  int cache_hits = 0;
  int attempts = 0;
  int retries = 0;
  int exhausted = 0;
  double backoff_seconds = 0.0;
};

// One full training run. With `observers` set, the run carries every
// telemetry hook the bench layer uses: JSONL sink open, profiling spans
// recorded, and an on_round callback writing a line per round.
RunOutput RunTraining(const Fixture& fix, int threads, int total_samples,
                      bool observers, const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/eagle_metrics_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto agent = fix.Agent(21);
  PlacementEnvironment env(fix.graph, fix.cluster, fix.EnvOptions());
  EvalService service(env, threads);
  auto options = fix.Options(total_samples);
  options.evaluator = &service;
  options.checkpoint_dir = dir;
  options.checkpoint_name = "run";
  options.checkpoint_interval = 10;

  std::vector<rl::RoundStats> rounds;
  if (observers) {
    EXPECT_TRUE(telemetry::OpenRunLog(dir + "/run.jsonl"));
    metrics::EnableProfiling(true);
    options.on_round = [&rounds](const rl::RoundStats& stats) {
      rounds.push_back(stats);
      telemetry::WriteLine(
          "{\"event\":\"round\",\"round\":" + std::to_string(stats.round_index) +
          ",\"total_samples\":" + std::to_string(stats.total_samples) +
          ",\"sim_hours\":" + support::json::Num(stats.virtual_hours) + "}");
    };
  }

  RunOutput out;
  out.result = rl::TrainAgent(*agent, env, options);

  if (observers) {
    metrics::EnableProfiling(false);
    EXPECT_TRUE(telemetry::Close());

    // The observer side-channel itself must be coherent: one callback per
    // round, rounds numbered densely, samples adding up, and a parseable
    // JSONL line per round.
    EXPECT_FALSE(rounds.empty());
    int samples = 0;
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      EXPECT_EQ(rounds[i].round_index, static_cast<int>(i));
      samples += rounds[i].samples_in_round;
    }
    EXPECT_EQ(samples, total_samples);
    if (!rounds.empty()) {
      EXPECT_EQ(rounds.back().total_samples, total_samples);
      EXPECT_EQ(rounds.back().best_per_step_seconds,
                out.result.best_per_step_seconds);
    }

    std::ifstream in(dir + "/run.jsonl");
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      std::string error;
      EXPECT_TRUE(support::json::Value::Parse(line, &error).is_object())
          << line << ": " << error;
      ++lines;
    }
    EXPECT_EQ(lines, rounds.size());
  }

  std::ostringstream params;
  nn::SaveParams(agent->params(), params);
  out.params = params.str();
  out.checkpoint = ReadFileBytes(rl::CheckpointFilePath(dir, "run"));
  out.cache_hits = env.cache_hits();
  out.attempts = env.attempts();
  out.retries = env.retries();
  out.exhausted = env.exhausted_evaluations();
  out.backoff_seconds = env.backoff_seconds_total();
  std::filesystem::remove_all(dir);
  return out;
}

void ExpectBitIdentical(const RunOutput& a, const RunOutput& b,
                        const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.total_samples, b.result.total_samples);
  EXPECT_EQ(a.result.invalid_samples, b.result.invalid_samples);
  EXPECT_EQ(a.result.found_valid, b.result.found_valid);
  // Exact double equality throughout: "close enough" would mean the
  // telemetry observers leaked wall-clock into training state.
  EXPECT_EQ(a.result.best_per_step_seconds, b.result.best_per_step_seconds);
  EXPECT_EQ(a.result.best_found_at_hours, b.result.best_found_at_hours);
  EXPECT_EQ(a.result.total_virtual_hours, b.result.total_virtual_hours);
  EXPECT_EQ(a.result.best_placement.devices(),
            b.result.best_placement.devices());
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t i = 0; i < a.result.history.size(); ++i) {
    EXPECT_EQ(a.result.history[i].sample_index,
              b.result.history[i].sample_index);
    EXPECT_EQ(a.result.history[i].virtual_hours,
              b.result.history[i].virtual_hours);
    EXPECT_EQ(a.result.history[i].per_step_seconds,
              b.result.history[i].per_step_seconds);
    EXPECT_EQ(a.result.history[i].best_so_far_seconds,
              b.result.history[i].best_so_far_seconds);
  }
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.checkpoint, b.checkpoint);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
}

TEST(MetricsIntegration, TelemetryAndProfilingPreserveBitIdentity) {
  Fixture fix;
  const auto off1 = RunTraining(fix, 1, 40, /*observers=*/false, "off1");
  const auto on1 = RunTraining(fix, 1, 40, /*observers=*/true, "on1");
  const auto off8 = RunTraining(fix, 8, 40, /*observers=*/false, "off8");
  const auto on8 = RunTraining(fix, 8, 40, /*observers=*/true, "on8");
  ExpectBitIdentical(off1, on1, "telemetry on vs off, 1 thread");
  ExpectBitIdentical(off8, on8, "telemetry on vs off, 8 threads");
  ExpectBitIdentical(off1, off8, "1 vs 8 threads");

  // The runs above drove the whole wired surface; the registry must have
  // seen it.
  EXPECT_GT(metrics::GetCounter("env.evaluations")->value(), 0);
  EXPECT_GT(metrics::GetCounter("env.attempts")->value(), 0);
  EXPECT_GT(metrics::GetCounter("train.rounds")->value(), 0);
  EXPECT_GT(metrics::GetCounter("sim.runs")->value(), 0);
  for (const char* span :
       {"span.train.sample", "span.train.eval", "span.train.reduce",
        "span.train.update", "span.train.checkpoint", "span.eval.batch",
        "span.eval.ticket", "span.adam.step"}) {
    EXPECT_GT(metrics::GetHistogram(span)->Snapshot().count, 0) << span;
  }
}

}  // namespace
}  // namespace eagle::core
