#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/serialize.h"

namespace eagle::nn {
namespace {

TEST(ParamStore, CreateAndFind) {
  ParamStore store;
  Parameter* p = store.Create("w", 2, 3);
  EXPECT_EQ(store.Find("w"), p);
  EXPECT_EQ(store.Find("x"), nullptr);
  EXPECT_EQ(store.NumScalars(), 6);
  EXPECT_THROW(store.Create("w", 1, 1), std::logic_error);
}

TEST(ParamStore, GradNormAndClip) {
  ParamStore store;
  Parameter* p = store.Create("w", 1, 2);
  p->grad.at(0, 0) = 3.0f;
  p->grad.at(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(store.GradNorm(), 5.0);
  const double pre = store.ClipGradNorm(1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(store.GradNorm(), 1.0, 1e-5);
  store.ZeroGrads();
  EXPECT_DOUBLE_EQ(store.GradNorm(), 0.0);
}

TEST(Init, XavierWithinBound) {
  support::Rng rng(1);
  Tensor t(64, 64);
  XavierInit(t, rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  float max_abs = 0.0f, sum = 0.0f;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(t.data()[i]));
    sum += t.data()[i];
  }
  EXPECT_LE(max_abs, bound + 1e-6f);
  EXPECT_GT(max_abs, bound * 0.5f);
  EXPECT_NEAR(sum / t.size(), 0.0f, 0.01f);
}

TEST(Linear, ShapeAndBias) {
  ParamStore store;
  support::Rng rng(2);
  Linear lin(store, "lin", 4, 3, rng);
  store.Find("lin/b")->value.at(0, 1) = 5.0f;
  Tape tape;
  Var x = tape.Input(Tensor(2, 4));  // zeros
  Var y = lin.Apply(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 2);
  EXPECT_EQ(tape.value(y).cols(), 3);
  // Zero input -> bias only.
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(tape.value(y).at(1, 1), 5.0f);
}

TEST(LstmCell, StateShapesAndForgetBias) {
  ParamStore store;
  support::Rng rng(3);
  LstmCell cell(store, "lstm", 6, 8, rng);
  // Forget-gate bias initialized to 1.
  EXPECT_FLOAT_EQ(store.Find("lstm/b")->value.at(0, 8), 1.0f);
  EXPECT_FLOAT_EQ(store.Find("lstm/b")->value.at(0, 0), 0.0f);
  Tape tape;
  auto state = cell.ZeroState(tape, 2);
  support::Rng data_rng(4);
  Tensor x(2, 6);
  UniformInit(x, -1, 1, data_rng);
  auto next = cell.Step(tape, tape.Input(x), state);
  EXPECT_EQ(tape.value(next.h).rows(), 2);
  EXPECT_EQ(tape.value(next.h).cols(), 8);
  EXPECT_EQ(tape.value(next.c).cols(), 8);
  // h = o * tanh(c) is bounded.
  for (int c = 0; c < 8; ++c) {
    EXPECT_LE(std::abs(tape.value(next.h).at(0, c)), 1.0f);
  }
}

TEST(LstmCell, StatePropagatesAcrossSteps) {
  ParamStore store;
  support::Rng rng(5);
  LstmCell cell(store, "lstm", 4, 4, rng);
  Tape tape;
  auto state = cell.ZeroState(tape, 1);
  Tensor x(1, 4, 0.5f);
  auto s1 = cell.Step(tape, tape.Input(x), state);
  auto s2 = cell.Step(tape, tape.Input(x), s1);
  // Same input, different hidden state -> different outputs.
  bool differs = false;
  for (int c = 0; c < 4; ++c) {
    differs |= std::abs(tape.value(s1.h).at(0, c) -
                        tape.value(s2.h).at(0, c)) > 1e-6f;
  }
  EXPECT_TRUE(differs);
}

TEST(BiLstmEncoder, OutputShape) {
  ParamStore store;
  support::Rng rng(6);
  BiLstmEncoder encoder(store, "enc", 5, 7, rng);
  Tape tape;
  Tensor seq(9, 5);
  UniformInit(seq, -1, 1, rng);
  auto out = encoder.Apply(tape, tape.Input(seq));
  EXPECT_EQ(tape.value(out.states).rows(), 9);
  EXPECT_EQ(tape.value(out.states).cols(), 14);  // 2H
  EXPECT_EQ(tape.value(out.final_fwd.h).cols(), 7);
}

TEST(BiLstmEncoder, BackwardDirectionSeesFuture) {
  // The backward half of the first row depends on the last row's input.
  ParamStore store;
  support::Rng rng(7);
  BiLstmEncoder encoder(store, "enc", 3, 4, rng);
  Tensor seq(5, 3, 0.1f);
  Tape tape1;
  auto out1 = encoder.Apply(tape1, tape1.Input(seq));
  const float before = tape1.value(out1.states).at(0, 6);  // bwd part
  seq.at(4, 0) = 5.0f;  // perturb the LAST timestep
  Tape tape2;
  auto out2 = encoder.Apply(tape2, tape2.Input(seq));
  const float after = tape2.value(out2.states).at(0, 6);
  EXPECT_NE(before, after);
}

TEST(Attention, WeightsFormDistribution) {
  ParamStore store;
  support::Rng rng(8);
  BahdanauAttention attention(store, "attn", 6, 4, 5, rng);
  Tape tape;
  Tensor enc(7, 6);
  UniformInit(enc, -1, 1, rng);
  Tensor dec(1, 4);
  UniformInit(dec, -1, 1, rng);
  Var enc_var = tape.Input(enc);
  Var proj = attention.ProjectEncoder(tape, enc_var);
  auto result = attention.Apply(tape, enc_var, proj, tape.Input(dec));
  const Tensor& w = tape.value(result.weights);
  ASSERT_EQ(w.rows(), 1);
  ASSERT_EQ(w.cols(), 7);
  float sum = 0.0f;
  for (int c = 0; c < 7; ++c) {
    EXPECT_GE(w.at(0, c), 0.0f);
    sum += w.at(0, c);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_EQ(tape.value(result.context).cols(), 6);
}

TEST(GraphConv, MixesNeighbors) {
  ParamStore store;
  support::Rng rng(9);
  GraphConv conv(store, "gcn", 3, 2, rng);
  Tape tape;
  // Two nodes, fully connected (normalized): each output row mixes both.
  Tensor adj = Tensor::FromData(2, 2, {0.5f, 0.5f, 0.5f, 0.5f});
  Tensor x = Tensor::FromData(2, 3, {1, 0, 0, 0, 1, 0});
  Var y = conv.Apply(tape, tape.Input(adj), tape.Input(x), /*relu=*/false);
  // Identical mixing weights -> identical rows.
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 0), tape.value(y).at(1, 0));
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 1), tape.value(y).at(1, 1));
}

TEST(Adam, MinimizesQuadratic) {
  // min ||p - target||² converges with Adam.
  ParamStore store;
  Parameter* p = store.Create("p", 1, 3);
  const Tensor target = Tensor::FromData(1, 3, {1.0f, -2.0f, 0.5f});
  AdamOptions options;
  options.lr = 0.05;
  options.clip_norm = 0.0;
  Adam adam(store, options);
  for (int step = 0; step < 500; ++step) {
    Tape tape;
    Var diff = tape.Sub(tape.Param(p), tape.Input(target));
    tape.Backward(tape.Sum(tape.Mul(diff, diff)));
    adam.Step();
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(p->value.at(0, c), target.at(0, c), 0.02f);
  }
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(Adam, ClipBoundsUpdates) {
  ParamStore store;
  Parameter* p = store.Create("p", 1, 1);
  p->grad.at(0, 0) = 1e6f;
  AdamOptions options;
  options.clip_norm = 1.0;
  Adam adam(store, options);
  const double pre_norm = adam.Step();
  EXPECT_DOUBLE_EQ(pre_norm, 1e6);
  // Post-clip Adam step magnitude is bounded by ~lr.
  EXPECT_LE(std::abs(p->value.at(0, 0)), options.lr * 2);
}

TEST(Serialize, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/eagle_params.bin";
  ParamStore store;
  support::Rng rng(10);
  Parameter* w = store.Create("w", 3, 4);
  Parameter* b = store.Create("b", 1, 4);
  XavierInit(w->value, rng);
  XavierInit(b->value, rng);
  ASSERT_TRUE(SaveParams(store, path));

  ParamStore restored;
  restored.Create("w", 3, 4);
  restored.Create("b", 1, 4);
  EXPECT_EQ(LoadParams(restored, path), 2);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_FLOAT_EQ(restored.Find("w")->value.at(r, c),
                      w->value.at(r, c));
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  const std::string path = ::testing::TempDir() + "/eagle_params2.bin";
  ParamStore store;
  store.Create("w", 2, 2);
  ASSERT_TRUE(SaveParams(store, path));
  ParamStore other;
  other.Create("w", 3, 3);
  EXPECT_THROW(LoadParams(other, path), std::logic_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  ParamStore store;
  EXPECT_THROW(LoadParams(store, "/nonexistent/params.bin"),
               std::logic_error);
}

}  // namespace
}  // namespace eagle::nn
