// Numerical gradient checks for every tape op: the analytic gradient from
// Tape::Backward must match central finite differences on random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.h"
#include "nn/tape.h"
#include "support/rng.h"

namespace eagle::nn {
namespace {

// Builds a scalar loss from parameter `p` via `body`, then compares
// d(loss)/dp against central differences.
void GradCheck(int rows, int cols,
               const std::function<Var(Tape&, Var)>& body,
               double tolerance = 2e-2, std::uint64_t seed = 1) {
  support::Rng rng(seed);
  Parameter p;
  p.name = "p";
  p.value = Tensor(rows, cols);
  p.grad = Tensor(rows, cols);
  UniformInit(p.value, -1.0f, 1.0f, rng);

  auto eval = [&]() {
    Tape tape;
    Var loss = body(tape, tape.Param(&p));
    return static_cast<double>(tape.value(loss).at(0, 0));
  };

  // Analytic gradients.
  p.grad.Fill(0.0f);
  {
    Tape tape;
    Var loss = body(tape, tape.Param(&p));
    tape.Backward(loss);
  }

  const float eps = 1e-3f;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const float saved = p.value.at(r, c);
      p.value.at(r, c) = saved + eps;
      const double up = eval();
      p.value.at(r, c) = saved - eps;
      const double down = eval();
      p.value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p.grad.at(r, c);
      const double scale = std::max({1.0, std::abs(numeric),
                                     std::abs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tolerance)
          << "at (" << r << "," << c << ")";
    }
  }
}

Tensor RandomTensor(int rows, int cols, std::uint64_t seed) {
  support::Rng rng(seed);
  Tensor t(rows, cols);
  UniformInit(t, -1.0f, 1.0f, rng);
  return t;
}

TEST(Autograd, MatMulLeft) {
  const Tensor other = RandomTensor(4, 3, 2);
  GradCheck(3, 4, [&](Tape& t, Var p) {
    return t.Sum(t.MatMul(p, t.Input(other)));
  });
}

TEST(Autograd, MatMulRight) {
  const Tensor other = RandomTensor(3, 4, 3);
  GradCheck(4, 2, [&](Tape& t, Var p) {
    return t.Sum(t.MatMul(t.Input(other), p));
  });
}

TEST(Autograd, MatMulBothSides) {
  GradCheck(3, 3, [&](Tape& t, Var p) {
    return t.Sum(t.MatMul(p, t.Tanh(p)));
  });
}

TEST(Autograd, AddSameShape) {
  const Tensor other = RandomTensor(2, 3, 4);
  GradCheck(2, 3, [&](Tape& t, Var p) {
    return t.Sum(t.Add(p, t.Input(other)));
  });
}

TEST(Autograd, AddRowBroadcast) {
  const Tensor big = RandomTensor(5, 3, 5);
  GradCheck(1, 3, [&](Tape& t, Var p) {
    return t.Sum(t.Tanh(t.Add(t.Input(big), p)));
  });
}

TEST(Autograd, SubAndMul) {
  const Tensor other = RandomTensor(3, 3, 6);
  GradCheck(3, 3, [&](Tape& t, Var p) {
    return t.Sum(t.Mul(t.Sub(p, t.Input(other)), p));
  });
}

TEST(Autograd, ScaleAddScalar) {
  GradCheck(2, 2, [&](Tape& t, Var p) {
    return t.Sum(t.AddScalar(t.Scale(p, -2.5f), 0.7f));
  });
}

TEST(Autograd, Tanh) {
  GradCheck(3, 2, [&](Tape& t, Var p) { return t.Sum(t.Tanh(p)); });
}

TEST(Autograd, Sigmoid) {
  GradCheck(3, 2, [&](Tape& t, Var p) { return t.Sum(t.Sigmoid(p)); });
}

TEST(Autograd, Relu) {
  GradCheck(3, 3, [&](Tape& t, Var p) {
    // Multiply by a random matrix so the loss isn't piecewise constant.
    return t.Sum(t.Mul(t.Relu(p), t.Input(RandomTensor(3, 3, 7))));
  });
}

TEST(Autograd, Exp) {
  GradCheck(2, 3, [&](Tape& t, Var p) { return t.Sum(t.Exp(p)); });
}

TEST(Autograd, MinElem) {
  const Tensor other = RandomTensor(3, 3, 8);
  GradCheck(3, 3, [&](Tape& t, Var p) {
    return t.Sum(t.MinElem(p, t.Input(other)));
  });
}

TEST(Autograd, Clamp) {
  GradCheck(3, 3, [&](Tape& t, Var p) {
    return t.Sum(t.Mul(t.Clamp(p, -0.5f, 0.5f),
                       t.Input(RandomTensor(3, 3, 9))));
  });
}

TEST(Autograd, Softmax) {
  const Tensor weights = RandomTensor(2, 4, 10);
  GradCheck(2, 4, [&](Tape& t, Var p) {
    return t.Sum(t.Mul(t.Softmax(p), t.Input(weights)));
  });
}

TEST(Autograd, LogSoftmax) {
  const Tensor weights = RandomTensor(2, 4, 11);
  GradCheck(2, 4, [&](Tape& t, Var p) {
    return t.Sum(t.Mul(t.LogSoftmax(p), t.Input(weights)));
  });
}

TEST(Autograd, Transpose) {
  const Tensor other = RandomTensor(2, 3, 12);
  GradCheck(3, 2, [&](Tape& t, Var p) {
    return t.Sum(t.Mul(t.Transpose(p), t.Input(other)));
  });
}

TEST(Autograd, ConcatColsAndSlice) {
  const Tensor other = RandomTensor(2, 2, 13);
  GradCheck(2, 3, [&](Tape& t, Var p) {
    Var cat = t.ConcatCols(p, t.Input(other));  // 2×5
    return t.Sum(t.Tanh(t.SliceCols(cat, 1, 4)));
  });
}

TEST(Autograd, ConcatRowsAndRow) {
  GradCheck(2, 3, [&](Tape& t, Var p) {
    Var stacked = t.ConcatRows({t.Row(p, 1), t.Row(p, 0), t.Row(p, 1)});
    return t.Sum(t.Sigmoid(stacked));
  });
}

TEST(Autograd, SumMeanSumRows) {
  GradCheck(3, 4, [&](Tape& t, Var p) {
    Var a = t.Mean(p);
    Var b = t.Sum(t.Tanh(t.SumRows(p)));
    return t.Add(a, b);
  });
}

TEST(Autograd, PickPerRow) {
  const Tensor weights = RandomTensor(3, 1, 14);
  GradCheck(3, 4, [&](Tape& t, Var p) {
    Var picked = t.PickPerRow(t.LogSoftmax(p), {2, 0, 3});
    return t.Sum(t.Mul(picked, t.Input(weights)));
  });
}

TEST(Autograd, DeepComposition) {
  // A little network: two layers + softmax pick, closer to real use.
  const Tensor x = RandomTensor(4, 5, 15);
  GradCheck(5, 5, [&](Tape& t, Var p) {
    Var h = t.Tanh(t.MatMul(t.Input(x), p));
    Var logits = t.MatMul(h, t.Transpose(p));
    return t.Sum(t.PickPerRow(t.LogSoftmax(logits), {0, 1, 2, 3}));
  });
}

TEST(Autograd, ParamGradAccumulatesAcrossUses) {
  support::Rng rng(16);
  Parameter p;
  p.name = "p";
  p.value = Tensor(2, 2);
  p.grad = Tensor(2, 2);
  UniformInit(p.value, -1.0f, 1.0f, rng);
  Tape tape;
  Var a = tape.Param(&p);
  Var b = tape.Param(&p);  // used twice
  tape.Backward(tape.Sum(tape.Add(a, b)));
  // d/dp (sum(p) + sum(p)) = 2 everywhere.
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(p.grad.at(r, c), 2.0f);
}

TEST(Autograd, BackwardRequiresScalarLoss) {
  Parameter p;
  p.name = "p";
  p.value = Tensor(2, 2, 1.0f);
  p.grad = Tensor(2, 2);
  Tape tape;
  Var v = tape.Param(&p);
  EXPECT_THROW(tape.Backward(v), std::logic_error);
}

TEST(Autograd, ConstantsGetNoGradient) {
  Tape tape;
  Var c = tape.Input(Tensor(1, 1, 2.0f));
  // A loss built only from constants cannot be differentiated.
  EXPECT_THROW(tape.Backward(tape.Sum(c)), std::logic_error);
}

TEST(Autograd, ResetInvalidatesNodes) {
  Tape tape;
  Var v = tape.Input(Tensor(1, 1, 1.0f));
  tape.Reset();
  EXPECT_EQ(tape.num_nodes(), 0);
  EXPECT_THROW(tape.value(v), std::logic_error);
}

}  // namespace
}  // namespace eagle::nn
