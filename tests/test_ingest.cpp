// Hardened-ingestion tests: the Status taxonomy, the checked numeric
// conversions, the malformed-fixture corpus (tests/graph_fixtures/, one
// line-exact assertion per taxonomy code), byte-identical round-trips
// through both serialization formats, a deterministic mutation-fuzz
// smoke, a stress-scale end-to-end run, ValidateGraph semantics, and the
// imported-graph zoo registry.
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_io.h"
#include "graph/grouped_graph.h"
#include "graph/ingest.h"
#include "graph/parse_num.h"
#include "graph/validate.h"
#include "gtest/gtest.h"
#include "models/fuzz_corpus.h"
#include "models/zoo.h"
#include "partition/metis_like.h"
#include "sim/device.h"
#include "sim/placement.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "support/status.h"

namespace eagle {
namespace {

using graph::IngestLimits;
using graph::IngestOptions;
using graph::OpDef;
using graph::OpGraph;
using graph::OpType;
using graph::TensorShape;
using support::ErrorCode;
using support::Status;
using support::StatusOr;

std::string FixturePath(const std::string& name) {
  return std::string(EAGLE_SOURCE_DIR) + "/tests/graph_fixtures/" + name;
}

OpGraph MakeTinyGraph() {
  OpGraph g;
  OpDef a;
  a.name = "a";
  a.type = OpType::kMatMul;
  a.output_shape = TensorShape{4, 4};
  g.AddOp(std::move(a));
  OpDef b;
  b.name = "b";
  b.type = OpType::kRelu;
  b.output_shape = TensorShape{4, 4};
  g.AddOp(std::move(b));
  g.AddEdge(0, 1);
  return g;
}

// ---------------------------------------------------------------------------
// Status / taxonomy basics.

TEST(Status, DefaultIsOkAndErrorsCarryPosition) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(Status().code(), ErrorCode::kOk);

  Status s = Status::Error(ErrorCode::kSyntax, "unknown directive 'frob'")
                 .At("graph.eg", 12, 7);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kSyntax);
  EXPECT_EQ(s.file(), "graph.eg");
  EXPECT_EQ(s.line(), 12);
  EXPECT_EQ(s.column(), 7);
  EXPECT_EQ(s.ToString(), "graph.eg:12:7: [syntax] unknown directive 'frob'");
}

TEST(Status, CodeNamesRoundTrip) {
  const ErrorCode codes[] = {
      ErrorCode::kOk,          ErrorCode::kIo,
      ErrorCode::kSyntax,      ErrorCode::kUnknownOp,
      ErrorCode::kDuplicateOp, ErrorCode::kDuplicateEdge,
      ErrorCode::kDanglingRef, ErrorCode::kCycle,
      ErrorCode::kNumericOverflow, ErrorCode::kResourceLimit,
  };
  for (ErrorCode code : codes) {
    ErrorCode parsed = ErrorCode::kOk;
    ASSERT_TRUE(support::ErrorCodeFromName(support::ErrorCodeName(code),
                                           &parsed))
        << support::ErrorCodeName(code);
    EXPECT_EQ(parsed, code);
  }
  ErrorCode ignored;
  EXPECT_FALSE(support::ErrorCodeFromName("frobnicate", &ignored));
}

TEST(Status, StatusOrMovesTheValueOut) {
  StatusOr<std::string> ok(std::string("payload"));
  ASSERT_TRUE(ok.ok());
  const std::string moved = std::move(ok).value();
  EXPECT_EQ(moved, "payload");

  StatusOr<std::string> err(Status::Error(ErrorCode::kIo, "nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kIo);
}

// ---------------------------------------------------------------------------
// Checked numeric conversions.

TEST(ParseNum, Int64AcceptsOnlyCompleteInRangeTokens) {
  std::int64_t v = 0;
  EXPECT_TRUE(graph::ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(graph::ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(graph::ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);

  EXPECT_FALSE(graph::ParseInt64("", &v));
  EXPECT_FALSE(graph::ParseInt64("12abc", &v));   // trailing garbage
  EXPECT_FALSE(graph::ParseInt64(" 12", &v));     // leading whitespace
  EXPECT_FALSE(graph::ParseInt64("1.5", &v));
  EXPECT_FALSE(graph::ParseInt64("9223372036854775808", &v));  // overflow
  EXPECT_FALSE(graph::ParseInt64("99999999999999999999", &v));
}

TEST(ParseNum, DoubleRejectsGarbageAndNonFinite) {
  double v = 0.0;
  EXPECT_TRUE(graph::ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(graph::ParseDouble("1e9", &v));
  EXPECT_DOUBLE_EQ(v, 1e9);
  EXPECT_TRUE(graph::ParseDouble("-3", &v));

  EXPECT_FALSE(graph::ParseDouble("", &v));
  EXPECT_FALSE(graph::ParseDouble("1.5x", &v));
  EXPECT_FALSE(graph::ParseDouble("1e999", &v));  // overflows to inf
  EXPECT_FALSE(graph::ParseDouble("inf", &v));
  EXPECT_FALSE(graph::ParseDouble("nan", &v));
}

TEST(ParseNum, LooksNumericClassifiesFailedConversions) {
  EXPECT_TRUE(graph::LooksNumeric("99999999999999999999"));
  EXPECT_TRUE(graph::LooksNumeric("-5"));
  EXPECT_TRUE(graph::LooksNumeric("1e999"));
  EXPECT_FALSE(graph::LooksNumeric("abc"));
  EXPECT_FALSE(graph::LooksNumeric(""));
}

// ---------------------------------------------------------------------------
// The malformed-fixture corpus: every file must come back as the
// manifest's taxonomy code, at the manifest's line, never as a throw.

struct FixtureCase {
  std::string file;
  ErrorCode code = ErrorCode::kOk;
  int line = -1;  // -1: no line attribution expected
  bool tiny = false;
};

std::vector<FixtureCase> ReadManifest() {
  std::ifstream in(FixturePath("MANIFEST"));
  EXPECT_TRUE(in.good()) << "missing " << FixturePath("MANIFEST");
  std::vector<FixtureCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    FixtureCase c;
    std::string code, line_spec, flag;
    fields >> c.file >> code >> line_spec >> flag;
    EXPECT_TRUE(support::ErrorCodeFromName(code, &c.code))
        << "bad code in MANIFEST: " << line;
    if (line_spec != "-") c.line = std::stoi(line_spec);
    c.tiny = flag == "tiny";
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(FixtureCorpus, EveryFixtureFailsWithItsDocumentedCodeAndLine) {
  const std::vector<FixtureCase> cases = ReadManifest();
  ASSERT_GE(cases.size(), 40u) << "fixture corpus shrank";
  for (const FixtureCase& c : cases) {
    IngestOptions opts;
    if (c.tiny) {
      opts.limits.max_ops = 4;
      opts.limits.max_edges = 3;
      opts.limits.max_total_bytes = 4096;
    }
    const std::string path = FixturePath(c.file);
    const StatusOr<OpGraph> parsed = graph::ImportGraphFile(path, opts);
    ASSERT_FALSE(parsed.ok()) << c.file << " unexpectedly parsed";
    const Status& status = parsed.status();
    EXPECT_EQ(support::ErrorCodeName(status.code()),
              std::string(support::ErrorCodeName(c.code)))
        << c.file << ": " << status.ToString();
    EXPECT_EQ(status.file(), path) << status.ToString();
    if (c.line >= 0) {
      EXPECT_EQ(status.line(), c.line)
          << c.file << ": " << status.ToString();
    }
    EXPECT_FALSE(status.message().empty());
  }
}

TEST(FixtureCorpus, CoversTheWholeTaxonomy) {
  // Every code except kOk and kIo (kIo needs an unopenable file, covered
  // by ImportGraphFile.MissingFileIsIo below) must appear in the corpus.
  std::map<ErrorCode, int> seen;
  for (const FixtureCase& c : ReadManifest()) seen[c.code]++;
  for (ErrorCode code :
       {ErrorCode::kSyntax, ErrorCode::kUnknownOp, ErrorCode::kDuplicateOp,
        ErrorCode::kDuplicateEdge, ErrorCode::kDanglingRef, ErrorCode::kCycle,
        ErrorCode::kNumericOverflow, ErrorCode::kResourceLimit}) {
    EXPECT_GT(seen[code], 0) << "no fixture for "
                             << support::ErrorCodeName(code);
  }
}

// ---------------------------------------------------------------------------
// Round-trips: parse(print(g)) must reprint to the same bytes, for both
// formats, over the zoo benchmarks and a seeded fuzz-corpus sample.

std::string SaveTextString(const OpGraph& g) {
  std::ostringstream os;
  graph::SaveText(g, os);
  return os.str();
}

void ExpectByteIdenticalRoundTrips(const OpGraph& g, const std::string& tag) {
  const std::string text = SaveTextString(g);
  StatusOr<OpGraph> from_text = graph::ParseTextGraph(text);
  ASSERT_TRUE(from_text.ok()) << tag << ": " << from_text.status().ToString();
  EXPECT_EQ(from_text.value().num_ops(), g.num_ops()) << tag;
  EXPECT_EQ(from_text.value().num_edges(), g.num_edges()) << tag;
  EXPECT_EQ(SaveTextString(from_text.value()), text)
      << tag << ": .eg round-trip is not byte-identical";

  const std::string json = graph::ToJson(g);
  StatusOr<OpGraph> from_json = graph::FromJson(json);
  ASSERT_TRUE(from_json.ok()) << tag << ": " << from_json.status().ToString();
  EXPECT_EQ(graph::ToJson(from_json.value()), json)
      << tag << ": JSON round-trip is not byte-identical";
}

TEST(RoundTrip, ZooBenchmarksSurviveBothFormats) {
  for (models::Benchmark benchmark : models::AllBenchmarks()) {
    models::ZooOptions options;
    options.reduced = true;
    ExpectByteIdenticalRoundTrips(models::BuildBenchmark(benchmark, options),
                                  models::BenchmarkName(benchmark));
  }
}

TEST(RoundTrip, FiftySeededFuzzGraphsSurviveBothFormats) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    models::FuzzGraphConfig config;
    config.num_ops = 40;
    config.width = 8;
    support::Rng rng(seed);
    const OpGraph g = models::BuildFuzzGraph(config, rng);
    ExpectByteIdenticalRoundTrips(g, "fuzz seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Mutation-fuzz smoke: a deterministic slice of what scripts/run_ci.sh
// runs at 10k iterations under ASan/UBSan. Every mutant must come back
// as either a parsed graph or a structured status — the ASSERT_NO_THROW
// is the no-crash/no-throw contract.

TEST(MutationFuzz, TextMutantsAlwaysYieldStructuredResults) {
  models::FuzzGraphConfig config;
  config.num_ops = 120;
  config.width = 16;
  support::Rng build_rng(7);
  const std::string base = SaveTextString(
      models::BuildFuzzGraph(config, build_rng));

  support::Rng rng(1234);
  std::map<std::string, int> histogram;
  for (int i = 0; i < 2500; ++i) {
    std::string mutant = base;
    const int depth = 1 + static_cast<int>(rng.NextBelow(3));
    for (int d = 0; d < depth; ++d) {
      mutant = models::MutateSerializedGraph(mutant, rng);
    }
    StatusOr<OpGraph> parsed = graph::ParseTextGraph("");
    ASSERT_NO_THROW(parsed = graph::ParseTextGraph(mutant)) << "iter " << i;
    if (parsed.ok()) {
      ++histogram["ok"];
    } else {
      EXPECT_EQ(parsed.status().file(), "<input>");
      ++histogram[support::ErrorCodeName(parsed.status().code())];
    }
  }
  int total = 0;
  for (const auto& [code, count] : histogram) total += count;
  EXPECT_EQ(total, 2500);
  // The corpus is seeded and deterministic: the mutation strategies must
  // keep driving a broad slice of the taxonomy, not collapse into one
  // failure mode.
  EXPECT_GT(histogram["syntax"], 0);
  EXPECT_GT(histogram["duplicate-op"], 0);
  EXPECT_GT(histogram["dangling-ref"], 0);
  EXPECT_GT(histogram["numeric-overflow"], 0);
}

TEST(MutationFuzz, JsonMutantsAlwaysYieldStructuredResults) {
  models::FuzzGraphConfig config;
  config.num_ops = 60;
  config.width = 8;
  support::Rng build_rng(11);
  const std::string base =
      graph::ToJson(models::BuildFuzzGraph(config, build_rng));

  support::Rng rng(5678);
  int ok = 0, failed = 0;
  for (int i = 0; i < 1500; ++i) {
    std::string mutant = base;
    const int depth = 1 + static_cast<int>(rng.NextBelow(3));
    for (int d = 0; d < depth; ++d) {
      mutant = models::MutateSerializedGraph(mutant, rng);
    }
    StatusOr<OpGraph> parsed = graph::FromJson("{}");
    ASSERT_NO_THROW(parsed = graph::FromJson(mutant)) << "iter " << i;
    parsed.ok() ? ++ok : ++failed;
  }
  EXPECT_EQ(ok + failed, 1500);
  EXPECT_GT(failed, 0);  // mutations do corrupt
}

// ---------------------------------------------------------------------------
// Stress end-to-end: generate ~10k ops, serialize, re-ingest through the
// hardened path, then drive the result through grouping and simulation —
// proving an ingested graph is a first-class citizen downstream.

TEST(EndToEnd, TenThousandOpIngestedGraphGroupsAndSimulates) {
  models::FuzzGraphConfig config;
  config.num_ops = 5000;  // training augmentation roughly doubles this
  support::Rng rng(42);
  const OpGraph generated = models::BuildFuzzGraph(config, rng);
  ASSERT_GT(generated.num_ops(), 9000);

  IngestOptions opts;
  opts.source_name = "<e2e>";
  StatusOr<OpGraph> parsed =
      graph::ParseTextGraph(SaveTextString(generated), opts);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const OpGraph& graph = parsed.value();
  EXPECT_EQ(graph.num_ops(), generated.num_ops());
  EXPECT_EQ(graph.num_edges(), generated.num_edges());

  const auto cluster = sim::MakeDefaultCluster();
  partition::MetisOptions metis;
  metis.num_parts = 4 * cluster.num_devices();
  metis.seed = 42;
  const auto grouping = partition::MetisPartition(graph, metis);
  graph::GroupedGraph grouped(graph, grouping, metis.num_parts);
  const auto gpus = cluster.Gpus();
  std::vector<std::int32_t> group_devices(
      static_cast<std::size_t>(metis.num_parts));
  for (int g = 0; g < metis.num_parts; ++g) {
    group_devices[static_cast<std::size_t>(g)] =
        gpus[static_cast<std::size_t>(g) % gpus.size()];
  }
  sim::Placement placement(graph, grouped.ExpandToOps(group_devices));
  placement.Normalize(graph, cluster);
  sim::ExecutionSimulator simulator(graph, cluster);
  const auto result = simulator.Run(placement);
  EXPECT_GT(result.step_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// ValidateGraph semantics on hand-built graphs.

TEST(ValidateGraph, AcceptsAWellFormedGraph) {
  EXPECT_TRUE(graph::ValidateGraph(MakeTinyGraph()).ok());
}

TEST(ValidateGraph, RejectsCyclesDuplicatesAndBadNames) {
  OpGraph cyclic = MakeTinyGraph();
  cyclic.AddEdge(1, 0);
  EXPECT_EQ(graph::ValidateGraph(cyclic).code(), ErrorCode::kCycle);

  OpGraph dup = MakeTinyGraph();
  dup.AddEdge(0, 1);  // OpGraph itself permits the duplicate
  EXPECT_EQ(graph::ValidateGraph(dup).code(), ErrorCode::kDuplicateEdge);

  OpGraph bad_name;
  OpDef op;
  op.name = "with space";
  op.type = OpType::kMatMul;
  bad_name.AddOp(std::move(op));
  EXPECT_EQ(graph::ValidateGraph(bad_name).code(), ErrorCode::kSyntax);
}

TEST(ValidateGraph, EnforcesResourceLimits) {
  const OpGraph g = MakeTinyGraph();
  IngestLimits one_op;
  one_op.max_ops = 1;
  EXPECT_EQ(graph::ValidateGraph(g, one_op).code(),
            ErrorCode::kResourceLimit);

  IngestLimits no_edges;
  no_edges.max_edges = 0;
  EXPECT_EQ(graph::ValidateGraph(g, no_edges).code(),
            ErrorCode::kResourceLimit);

  IngestLimits tiny_bytes;
  tiny_bytes.max_total_bytes = 16;  // 4x4 floats alone exceed this
  EXPECT_EQ(graph::ValidateGraph(g, tiny_bytes).code(),
            ErrorCode::kResourceLimit);

  EXPECT_TRUE(graph::ValidateGraph(g, IngestLimits::Unlimited()).ok());
}

TEST(ValidateGraph, CheckedOpBytesRejectsOverflowingShapes) {
  OpDef sane;
  sane.name = "a";
  sane.output_shape = TensorShape{8, 8};
  sane.param_bytes = 100;
  sane.temp_bytes = 10;
  std::int64_t bytes = 0;
  ASSERT_TRUE(graph::CheckedOpBytes(sane, &bytes).ok());
  EXPECT_EQ(bytes, 8 * 8 * 4 + 100 + 10);

  OpDef huge;
  huge.name = "b";
  huge.output_shape = TensorShape{3'000'000'000, 3'000'000'000};
  EXPECT_EQ(graph::CheckedOpBytes(huge, &bytes).code(),
            ErrorCode::kNumericOverflow);
}

// ---------------------------------------------------------------------------
// File-level dispatch and the io code.

TEST(ImportGraphFile, MissingFileIsIo) {
  const StatusOr<OpGraph> parsed =
      graph::ImportGraphFile("/nonexistent/no_such_graph.eg");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kIo);
  EXPECT_EQ(parsed.status().file(), "/nonexistent/no_such_graph.eg");
}

TEST(ImportGraphFile, DispatchesOnSuffix) {
  const OpGraph g = MakeTinyGraph();
  const std::string eg_path = testing::TempDir() + "ingest_dispatch.eg";
  const std::string json_path = testing::TempDir() + "ingest_dispatch.json";
  ASSERT_TRUE(graph::SaveTextFile(g, eg_path));
  {
    std::ofstream out(json_path, std::ios::binary);
    out << graph::ToJson(g);
    ASSERT_TRUE(out.good());
  }
  const StatusOr<OpGraph> from_eg = graph::ImportGraphFile(eg_path);
  ASSERT_TRUE(from_eg.ok()) << from_eg.status().ToString();
  EXPECT_EQ(from_eg.value().num_ops(), 2);
  const StatusOr<OpGraph> from_json = graph::ImportGraphFile(json_path);
  ASSERT_TRUE(from_json.ok()) << from_json.status().ToString();
  EXPECT_EQ(from_json.value().num_ops(), 2);
}

// ---------------------------------------------------------------------------
// The imported-graph registry (bench --load's backing store).

TEST(ImportedGraphRegistry, RegistersFindsAndRejectsCollisions) {
  models::ClearImportedGraphs();
  ASSERT_TRUE(models::RegisterImportedGraph("mygraph", MakeTinyGraph()).ok());
  ASSERT_NE(models::FindImportedGraph("mygraph"), nullptr);
  EXPECT_EQ(models::FindImportedGraph("mygraph")->num_ops(), 2);
  EXPECT_EQ(models::ImportedGraphNames(),
            std::vector<std::string>{"mygraph"});
  EXPECT_EQ(models::FindImportedGraph("absent"), nullptr);

  // Duplicate and benchmark-colliding names are rejected.
  EXPECT_EQ(models::RegisterImportedGraph("mygraph", MakeTinyGraph()).code(),
            ErrorCode::kDuplicateOp);
  EXPECT_EQ(models::RegisterImportedGraph("bert", MakeTinyGraph()).code(),
            ErrorCode::kDuplicateOp);
  EXPECT_EQ(models::RegisterImportedGraph("", MakeTinyGraph()).code(),
            ErrorCode::kSyntax);

  models::ClearImportedGraphs();
  EXPECT_EQ(models::FindImportedGraph("mygraph"), nullptr);
  EXPECT_TRUE(models::ImportedGraphNames().empty());
}

TEST(ImportedGraphRegistry, RevalidatesAtRegistration) {
  models::ClearImportedGraphs();
  OpGraph cyclic = MakeTinyGraph();
  cyclic.AddEdge(1, 0);
  const Status status =
      models::RegisterImportedGraph("broken", std::move(cyclic));
  EXPECT_EQ(status.code(), ErrorCode::kCycle);
  EXPECT_EQ(models::FindImportedGraph("broken"), nullptr);
  models::ClearImportedGraphs();
}

}  // namespace
}  // namespace eagle
