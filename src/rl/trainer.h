// The RL training loop shared by all agents: sample placements in
// minibatches, evaluate them in the environment, shape rewards/advantages
// with the EMA baseline, and update the agent with the configured
// algorithm (REINFORCE / PPO / PPO joint with cross-entropy, §III-D).
//
// The loop is round-structured for parallel evaluation: each round
// samples a full minibatch up front (serial, so the policy RNG stream is
// fixed), evaluates it — inline or through a BatchEvaluator such as
// core::EvalService — and reduces rewards, baseline updates, history and
// best-so-far tracking in submission order. The reduction replays
// exactly what a one-sample-at-a-time loop would have done, so results
// are bit-identical at any thread count.
//
// The loop also maintains the *virtual clock*: each evaluated placement
// charges its measurement cost (session setup + warm-up + 15 measured
// steps, §IV-C) so training curves can be plotted against simulated hours
// exactly as Figs. 2 and 5–7 plot real hours.
#pragma once

#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "nn/adam.h"
#include "rl/baseline.h"
#include "rl/cross_entropy.h"
#include "rl/episode.h"
#include "rl/ppo.h"
#include "rl/reinforce.h"
#include "rl/reward.h"
#include "rl/value_baseline.h"

namespace eagle::rl {

// The Environment and BatchEvaluator abstractions live in core/policy.h
// (implemented by core::PlacementEnvironment / core::EvalService); the
// trainer consumes them through these re-exported names.
using Environment = core::Environment;
using BatchEvaluator = core::BatchEvaluator;

enum class Algorithm { kReinforce, kPpo, kPpoCe };

const char* AlgorithmName(Algorithm algorithm);

// Advantage baseline: the paper's EMA (§III-D, Eq. 4) or the A2C-style
// learned critic the paper evaluated and found under-trained at device-
// placement sample rates (kept for the baseline-comparison bench).
enum class BaselineKind { kEma, kValueNetwork };

// Per-round digest handed to TrainerOptions::on_round.
struct RoundStats {
  int round_index = 0;         // 0-based round counter for this run
  int samples_in_round = 0;    // counted samples (post budget cut)
  int total_samples = 0;       // cumulative, after this round
  double virtual_hours = 0.0;  // cumulative virtual clock
  double best_per_step_seconds = std::numeric_limits<double>::infinity();
  bool updated_policy = false;  // did this round trigger an agent update?
};

using RoundCallback = std::function<void(const RoundStats&)>;

struct TrainerOptions {
  Algorithm algorithm = Algorithm::kPpo;
  int total_samples = 300;
  int minibatch_size = 10;      // placements per update (paper: 10)
  PpoOptions ppo;               // ε=0.3, 4 epochs, entropy 0.01
  ReinforceOptions reinforce;
  CrossEntropyOptions ce;       // top-5 elites
  int ce_interval = 50;         // samples between CE updates (paper: 50)
  double ema_decay = 0.9;
  BaselineKind baseline = BaselineKind::kEma;
  ValueBaselineOptions value_baseline;
  int num_devices = 5;          // critic input width (cluster size)
  nn::AdamOptions adam;         // lr=0.01, clip=1.0 (paper)
  std::uint64_t seed = 7;
  // Optional parallel evaluation service (not owned; null: evaluate
  // inline). The trainer dispatches each round of samples through it; a
  // conforming evaluator (core::EvalService) keeps the run bit-identical
  // to the inline path at any thread count.
  BatchEvaluator* evaluator = nullptr;
  // Stop early once the virtual clock passes this budget (<=0: unlimited).
  // The sample that crosses the budget is the last one counted; samples
  // dispatched after it in the same round are evaluated but discarded.
  double max_virtual_hours = 0.0;
  // When set, the agent's parameters are checkpointed here every time a
  // new best placement is found (resumable with nn::LoadParams).
  std::string checkpoint_path;
  // Crash-safe training checkpoints (rl/checkpoint.h): when
  // checkpoint_dir is set, the full trainer state (agent parameters,
  // optimizer slots, EMA baseline, RNG, virtual clock, history, CE pool,
  // environment fault stream) is snapshotted to
  // <checkpoint_dir>/<checkpoint_name>.ckpt — atomically renamed — every
  // checkpoint_interval samples (aligned to minibatch boundaries) and
  // once more when the run ends. With resume=true, TrainAgent first
  // restores the latest checkpoint and continues the run bit-compatibly:
  // a killed-and-resumed run reproduces the uninterrupted one exactly.
  std::string checkpoint_dir;
  std::string checkpoint_name = "trainer";
  int checkpoint_interval = 50;
  bool resume = false;
  // Telemetry hook invoked once per round, after the round's reduction
  // (and agent update, if the minibatch filled). Pure observer: the
  // callback sees a finished RoundStats digest and cannot alter the run,
  // so enabling it keeps training bit-identical. Benches use it to emit
  // one JSONL line per round (--telemetry-out).
  RoundCallback on_round;
};

struct HistoryPoint {
  int sample_index = 0;
  double virtual_hours = 0.0;
  double per_step_seconds = 0.0;      // this sample (inf if invalid)
  double best_so_far_seconds = 0.0;   // running best true per-step time
};

struct TrainResult {
  bool found_valid = false;
  sim::Placement best_placement;
  double best_per_step_seconds = std::numeric_limits<double>::infinity();
  double best_found_at_hours = 0.0;
  double total_virtual_hours = 0.0;
  int invalid_samples = 0;
  int total_samples = 0;
  std::vector<HistoryPoint> history;
};

using ProgressCallback = std::function<void(const HistoryPoint&)>;

TrainResult TrainAgent(PolicyAgent& agent, Environment& environment,
                       const TrainerOptions& options,
                       const ProgressCallback& on_progress = nullptr);

}  // namespace eagle::rl
