// Crash-safe checkpointing for the RL training loop.
//
// A checkpoint captures everything TrainAgent needs to resume a run
// bit-compatibly after a crash or kill: agent parameters (nn/serialize
// format), Adam moment slots, the EMA baseline, the trainer's RNG state,
// the virtual clock and full progress history, the CE elite pool, and an
// opaque environment-state blob (Environment::SerializeState — the fault
// stream and robustness counters for PlacementEnvironment).
//
// Files are written atomically (support::WriteFileAtomic): the
// checkpoint is serialized to `<path>.tmp` and renamed over `<path>`
// only once complete, so a crash mid-write can never corrupt the
// previous good checkpoint.
//
// Format v2 ("EAGLCKP2") records each sample's evaluation RNG stream
// number so runs resumed through the parallel evaluation path stay
// bit-compatible; v1 checkpoints still load (streams default to 0).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/adam.h"
#include "rl/episode.h"
#include "rl/trainer.h"

namespace eagle::rl {

// Current on-disk checkpoint format. The final byte of the file magic is
// derived from this constant ('0' + version), so bumping it is the single
// change that retags newly written checkpoints; the loader keeps accepting
// the previous version. Bump when the serialized layout changes.
inline constexpr int kCheckpointFormatVersion = 2;

// Trainer-loop state stored alongside the parameter/optimizer sections.
struct CheckpointData {
  TrainResult result;                          // progress so far
  std::array<std::uint64_t, 4> rng_state{};    // trainer's sampling stream
  double baseline_value = 0.0;                 // EMA baseline
  bool baseline_initialized = false;
  std::vector<Sample> pool;                    // CE elite pool (PPO+CE)
  std::vector<Sample> batch;                   // in-flight minibatch
  int since_ce = 0;
  std::string env_state;                       // Environment::SerializeState
  std::string critic_state;                    // ValueBaseline (optional)
};

// Serializes params + optimizer + data to `path` via atomic rename.
// Returns false (after logging) on I/O failure.
bool SaveCheckpoint(const std::string& path, const nn::ParamStore& params,
                    const nn::Adam& optimizer, const CheckpointData& data);

// Restores a checkpoint written by SaveCheckpoint. Returns false if the
// file does not exist; throws on corrupt or mismatched contents.
bool LoadCheckpoint(const std::string& path, nn::ParamStore& params,
                    nn::Adam& optimizer, CheckpointData* data);

// The checkpoint file TrainAgent uses for `options.checkpoint_dir`.
std::string CheckpointFilePath(const std::string& dir,
                               const std::string& name);

}  // namespace eagle::rl
