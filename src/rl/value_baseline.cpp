#include "rl/value_baseline.h"

#include "nn/serialize.h"
#include "support/check.h"

namespace eagle::rl {

ValueBaseline::ValueBaseline(int num_devices, ValueBaselineOptions options)
    : num_devices_(num_devices),
      options_(options),
      optimizer_(store_, nn::AdamOptions{.lr = options.lr,
                                         .beta1 = 0.9,
                                         .beta2 = 0.999,
                                         .eps = 1e-8,
                                         .clip_norm = 1.0}) {
  EAGLE_CHECK(num_devices >= 1);
  support::Rng rng(options_.seed);
  l1_ = nn::Linear(store_, "value/l1", num_devices, options_.hidden, rng);
  l2_ = nn::Linear(store_, "value/l2", options_.hidden, 1, rng);
}

nn::Tensor ValueBaseline::Featurize(const Sample& sample) const {
  nn::Tensor features(1, num_devices_);
  if (!sample.group_devices.empty()) {
    const float share =
        1.0f / static_cast<float>(sample.group_devices.size());
    for (auto device : sample.group_devices) {
      EAGLE_CHECK(device >= 0 && device < num_devices_);
      features.at(0, device) += share;
    }
  }
  return features;
}

double ValueBaseline::Predict(const Sample& sample) const {
  nn::Tape tape;
  nn::Var x = tape.Input(Featurize(sample));
  // Const-cast free: layers only read parameters on the forward path.
  nn::Var v = l2_.Apply(tape, tape.Tanh(l1_.Apply(tape, x)));
  return static_cast<double>(tape.value(v).at(0, 0));
}

double ValueBaseline::Update(const std::vector<Sample>& batch) {
  if (batch.empty()) return 0.0;
  double first_mse = 0.0;
  for (int epoch = 0; epoch < options_.epochs_per_batch; ++epoch) {
    nn::Tape tape;
    nn::Var loss;
    bool first = true;
    for (const Sample& sample : batch) {
      nn::Var x = tape.Input(Featurize(sample));
      nn::Var v = l2_.Apply(tape, tape.Tanh(l1_.Apply(tape, x)));
      nn::Var err = tape.AddScalar(v, -static_cast<float>(sample.reward));
      nn::Var sq = tape.Mul(err, err);
      loss = first ? sq : tape.Add(loss, sq);
      first = false;
    }
    loss = tape.Scale(loss, 1.0f / static_cast<float>(batch.size()));
    if (epoch == 0) {
      first_mse = static_cast<double>(tape.value(loss).at(0, 0));
    }
    tape.Backward(loss);
    optimizer_.Step();
  }
  return first_mse;
}

void ValueBaseline::SaveState(std::ostream& out) const {
  nn::SaveParams(store_, out);
  optimizer_.SaveState(out);
}

void ValueBaseline::LoadState(std::istream& in) {
  nn::LoadParams(store_, in);
  optimizer_.LoadState(in);
}

}  // namespace eagle::rl
