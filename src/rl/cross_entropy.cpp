#include "rl/cross_entropy.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"

namespace eagle::rl {

std::vector<std::size_t> SelectElites(const std::vector<Sample>& pool,
                                      int k) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i].valid) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&pool](std::size_t a, std::size_t b) {
    return pool[a].reward > pool[b].reward;
  });
  if (static_cast<int>(idx.size()) > k) {
    idx.resize(static_cast<std::size_t>(k));
  }
  return idx;
}

int CrossEntropyUpdate(PolicyAgent& agent, nn::Adam& optimizer,
                       const std::vector<Sample>& pool,
                       const CrossEntropyOptions& options) {
  EAGLE_CHECK(options.num_elites >= 1 && options.epochs >= 1);
  const auto elites = SelectElites(pool, options.num_elites);
  if (elites.empty()) return 0;
  const float scale = -1.0f / static_cast<float>(elites.size());
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    nn::Tape tape;
    nn::Var loss;
    bool first = true;
    for (std::size_t i : elites) {
      const auto score = agent.ScoreDecision(tape, pool[i]);
      nn::Var term = tape.Scale(score.logp, scale);
      loss = first ? term : tape.Add(loss, term);
      first = false;
    }
    tape.Backward(loss);
    optimizer.Step();
  }
  return static_cast<int>(elites.size());
}

}  // namespace eagle::rl
