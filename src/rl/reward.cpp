#include "rl/reward.h"

#include <cmath>

#include "support/check.h"

namespace eagle::rl {

double ComputeReward(const sim::EvalResult& eval,
                     const RewardOptions& options) {
  EAGLE_CHECK(options.invalid_penalty_seconds > 0.0);
  const double t =
      eval.valid ? eval.per_step_seconds : options.invalid_penalty_seconds;
  return -std::sqrt(t);
}

}  // namespace eagle::rl
