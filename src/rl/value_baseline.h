// A2C-style learned value baseline — the design the paper evaluated and
// rejected (§III-D): "the value network does not have enough samples to
// be trained and may yield inaccurate estimations. The inaccuracy will
// lead to the policy network updating towards a wrong direction."
//
// We implement it so benches can reproduce that finding. The critic is a
// small MLP over a decision summary (the fraction of groups assigned to
// each device plus the invalid bit's precursor: nothing — the critic only
// sees the action mix), trained online by MSE against observed rewards.
// At device-placement sample rates (hundreds of rewards per run) it lags
// the EMA baseline, which is exactly the paper's observation.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/adam.h"
#include "nn/layers.h"
#include "rl/episode.h"

namespace eagle::rl {

struct ValueBaselineOptions {
  int hidden = 16;
  double lr = 0.01;
  int epochs_per_batch = 2;
  std::uint64_t seed = 11;
};

class ValueBaseline {
 public:
  ValueBaseline(int num_devices, ValueBaselineOptions options = {});

  // Predicted value for a decision (before seeing its reward).
  double Predict(const Sample& sample) const;

  // One MSE training pass over a finished minibatch.
  // Returns the mean squared error before the update (for logging).
  double Update(const std::vector<Sample>& batch);

  int num_devices() const { return num_devices_; }

  // Critic parameters + optimizer slots, embedded in training
  // checkpoints so resumed runs continue bit-compatibly.
  void SaveState(std::ostream& out) const;
  void LoadState(std::istream& in);

 private:
  nn::Tensor Featurize(const Sample& sample) const;

  int num_devices_;
  ValueBaselineOptions options_;
  nn::ParamStore store_;
  nn::Linear l1_;
  nn::Linear l2_;
  nn::Adam optimizer_;
};

}  // namespace eagle::rl
