#include "rl/reinforce.h"

#include "support/check.h"

namespace eagle::rl {

double ReinforceUpdate(PolicyAgent& agent, nn::Adam& optimizer,
                       const std::vector<Sample>& batch,
                       const ReinforceOptions& options) {
  EAGLE_CHECK(!batch.empty());
  nn::Tape tape;
  nn::Var loss;
  const float scale = -1.0f / static_cast<float>(batch.size());
  bool first = true;
  for (const Sample& sample : batch) {
    const auto score = agent.ScoreDecision(tape, sample);
    nn::Var term = tape.Scale(
        score.logp, scale * static_cast<float>(sample.advantage));
    nn::Var ent = tape.Scale(
        score.entropy, scale * static_cast<float>(options.entropy_coef));
    nn::Var combined = tape.Add(term, ent);
    loss = first ? combined : tape.Add(loss, combined);
    first = false;
  }
  tape.Backward(loss);
  return optimizer.Step();
}

}  // namespace eagle::rl
