// Episode data shared between agents and training algorithms.
//
// Device placement is a one-shot (contextual-bandit-like) RL problem: one
// decision (grouping + per-group devices), one reward (negative square
// root of the measured per-step time, Eq. 4). A Sample records the actions
// and the log-probability under the policy that generated them, so PPO can
// form importance ratios when re-scoring under updated parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/grouped_graph.h"
#include "nn/layers.h"
#include "nn/tape.h"
#include "sim/placement.h"
#include "support/rng.h"

namespace eagle::rl {

struct Sample {
  // Actions: grouping over ops (empty when the grouper is fixed/heuristic)
  // and a device per group.
  graph::Grouping grouping;
  std::vector<std::int32_t> group_devices;

  double logp = 0.0;       // log π_old(a|s) at sampling time
  // Number of elementary decisions behind `logp` (groups placed, plus the
  // grouper's weighted contribution). PPO normalizes its importance
  // log-ratio by this so the clip region stays meaningful for joint
  // policies over hundreds of categoricals.
  int num_decisions = 1;
  // Global sample index, doubling as the child-RNG stream number: the
  // trainer evaluates sample i with rng.Split(eval_stream) so measurement
  // noise is identical whether the minibatch runs serially or on a
  // thread pool (core::EvalService).
  std::uint64_t eval_stream = 0;
  bool valid = false;      // environment verdict (false == OOM)
  double per_step_seconds = 0.0;  // measured (noisy) per-step time
  double reward = 0.0;
  double advantage = 0.0;
};

// Agents expose this interface to the training algorithms: sampling builds
// a decision under current parameters; scoring rebuilds the log-prob (and
// entropy) of a *stored* decision under current parameters on a fresh tape
// so that REINFORCE/PPO/CE losses can be backpropagated.
class PolicyAgent {
 public:
  virtual ~PolicyAgent() = default;

  virtual Sample SampleDecision(support::Rng& rng) = 0;

  struct Score {
    nn::Var logp;     // 1×1
    nn::Var entropy;  // 1×1 (mean policy entropy, for the bonus term)
  };
  virtual Score ScoreDecision(nn::Tape& tape, const Sample& sample) = 0;

  // Expands a sample's actions into a normalized op-level placement.
  virtual sim::Placement ToPlacement(const Sample& sample) const = 0;

  virtual nn::ParamStore& params() = 0;
  virtual const char* name() const = 0;
};

}  // namespace eagle::rl
