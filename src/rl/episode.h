// Episode data shared between agents and training algorithms.
//
// The definitions live in core/policy.h so the dependency arrow matches
// the layer DAG (core implements the interfaces, rl consumes them; LY01
// forbids core including rl). This header re-exports them under the rl
// vocabulary the training code and tests use.
#pragma once

#include "core/policy.h"

namespace eagle::rl {

using Sample = core::Sample;
using PolicyAgent = core::PolicyAgent;

}  // namespace eagle::rl
