// Cross-entropy minimization over elite samples — the aggressive global
// policy-improvement half of Post's joint algorithm (§II-C, §III-D).
//
// After a window of samples, the top-K by reward are selected and the
// policy is refit to maximize their likelihood:
//   L_CE = -mean_{elite} log π_θ(a|s).
#pragma once

#include <vector>

#include "nn/adam.h"
#include "rl/episode.h"

namespace eagle::rl {

struct CrossEntropyOptions {
  int num_elites = 5;
  int epochs = 4;
};

// Picks the elite subset of `pool` (highest reward; invalid samples are
// excluded) and fits the policy to them. No-op if nothing is valid.
// Returns the number of elites used.
int CrossEntropyUpdate(PolicyAgent& agent, nn::Adam& optimizer,
                       const std::vector<Sample>& pool,
                       const CrossEntropyOptions& options);

// Exposed for testing: indices of the top-k valid samples by reward.
std::vector<std::size_t> SelectElites(const std::vector<Sample>& pool, int k);

}  // namespace eagle::rl
