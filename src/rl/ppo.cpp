#include "rl/ppo.h"

#include <cmath>

#include "support/check.h"

namespace eagle::rl {

PpoStats PpoUpdate(PolicyAgent& agent, nn::Adam& optimizer,
                   const std::vector<Sample>& batch,
                   const PpoOptions& options) {
  EAGLE_CHECK(!batch.empty());
  EAGLE_CHECK(options.epochs >= 1);
  PpoStats stats;
  const auto n = static_cast<int>(batch.size());
  const float inv_n = 1.0f / static_cast<float>(n);
  const auto lo = static_cast<float>(1.0 - options.clip_epsilon);
  const auto hi = static_cast<float>(1.0 + options.clip_epsilon);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    nn::Tape tape;
    nn::Var loss;
    bool first = true;
    double ratio_sum = 0.0;
    for (const Sample& sample : batch) {
      const auto score = agent.ScoreDecision(tape, sample);
      // log r = logp_new - logp_old (optionally per-decision), clamped
      // before exponentiation.
      nn::Var delta =
          tape.AddScalar(score.logp, -static_cast<float>(sample.logp));
      if (options.normalize_by_decisions && sample.num_decisions > 1) {
        delta = tape.Scale(
            delta, 1.0f / static_cast<float>(sample.num_decisions));
      }
      nn::Var log_ratio = tape.Clamp(
          delta, -static_cast<float>(options.max_abs_log_ratio),
          static_cast<float>(options.max_abs_log_ratio));
      nn::Var ratio = tape.Exp(log_ratio);
      ratio_sum += tape.value(ratio).at(0, 0);
      const auto adv = static_cast<float>(sample.advantage);
      nn::Var surr1 = tape.Scale(ratio, adv);
      nn::Var surr2 = tape.Scale(tape.Clamp(ratio, lo, hi), adv);
      // max of the objective == min of the negated terms; with a shared
      // positive factor we can min() then negate once.
      nn::Var objective = tape.MinElem(surr1, surr2);
      nn::Var term = tape.Scale(objective, -inv_n);
      nn::Var ent = tape.Scale(
          score.entropy,
          -inv_n * static_cast<float>(options.entropy_coef));
      nn::Var combined = tape.Add(term, ent);
      loss = first ? combined : tape.Add(loss, combined);
      first = false;
    }
    tape.Backward(loss);
    stats.grad_norm_last = optimizer.Step();
    stats.mean_ratio_last = ratio_sum / n;
  }
  return stats;
}

}  // namespace eagle::rl
