#include "rl/checkpoint.h"

#include <cstring>
#include <fstream>

#include "nn/serialize.h"
#include "support/atomic_file.h"
#include "support/check.h"
#include "support/log.h"

namespace eagle::rl {

namespace {

// Version 2 added Sample::eval_stream (the per-sample evaluation RNG
// stream number used by the parallel evaluation path). Writers emit v2;
// the reader still accepts v1 checkpoints, defaulting eval_stream to 0.
// The version digit in the magic comes from kCheckpointFormatVersion
// (checkpoint.h) so the tag can never drift from the format constant.
constexpr char kMagicV1[8] = {
    'E', 'A', 'G', 'L', 'C', 'K', 'P',
    static_cast<char>('0' + kCheckpointFormatVersion - 1)};
constexpr char kMagicV2[8] = {
    'E', 'A', 'G', 'L', 'C', 'K', 'P',
    static_cast<char>('0' + kCheckpointFormatVersion)};
constexpr char kEndMarker[8] = {'E', 'A', 'G', 'L', 'C', 'K', 'P', 'E'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
void ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  EAGLE_CHECK_MSG(in, "truncated checkpoint");
}

void WriteI32Vector(std::ostream& out, const std::vector<std::int32_t>& v) {
  WritePod(out, static_cast<std::uint32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(std::int32_t)));
}

std::vector<std::int32_t> ReadI32Vector(std::istream& in) {
  std::uint32_t count = 0;
  ReadPod(in, count);
  EAGLE_CHECK_MSG(count < (1u << 28), "corrupt checkpoint vector size");
  std::vector<std::int32_t> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(std::int32_t)));
  EAGLE_CHECK_MSG(in, "truncated checkpoint");
  return v;
}

void WriteSample(std::ostream& out, const Sample& sample) {
  WriteI32Vector(out, sample.grouping);
  WriteI32Vector(out, sample.group_devices);
  WritePod(out, sample.logp);
  WritePod(out, static_cast<std::int32_t>(sample.num_decisions));
  WritePod(out, sample.eval_stream);
  WritePod(out, static_cast<std::uint8_t>(sample.valid ? 1 : 0));
  WritePod(out, sample.per_step_seconds);
  WritePod(out, sample.reward);
  WritePod(out, sample.advantage);
}

Sample ReadSample(std::istream& in, int version) {
  Sample sample;
  sample.grouping = ReadI32Vector(in);
  sample.group_devices = ReadI32Vector(in);
  ReadPod(in, sample.logp);
  std::int32_t num_decisions = 0;
  ReadPod(in, num_decisions);
  sample.num_decisions = num_decisions;
  if (version >= 2) ReadPod(in, sample.eval_stream);
  std::uint8_t valid = 0;
  ReadPod(in, valid);
  sample.valid = valid != 0;
  ReadPod(in, sample.per_step_seconds);
  ReadPod(in, sample.reward);
  ReadPod(in, sample.advantage);
  return sample;
}

void WriteResult(std::ostream& out, const TrainResult& result) {
  WritePod(out, static_cast<std::uint8_t>(result.found_valid ? 1 : 0));
  WritePod(out, result.best_per_step_seconds);
  WritePod(out, result.best_found_at_hours);
  WritePod(out, result.total_virtual_hours);
  WritePod(out, static_cast<std::int32_t>(result.invalid_samples));
  WritePod(out, static_cast<std::int32_t>(result.total_samples));
  WriteI32Vector(out, result.best_placement.devices());
  WritePod(out, static_cast<std::uint32_t>(result.history.size()));
  for (const HistoryPoint& point : result.history) {
    WritePod(out, static_cast<std::int32_t>(point.sample_index));
    WritePod(out, point.virtual_hours);
    WritePod(out, point.per_step_seconds);
    WritePod(out, point.best_so_far_seconds);
  }
}

TrainResult ReadResult(std::istream& in) {
  TrainResult result;
  std::uint8_t found_valid = 0;
  ReadPod(in, found_valid);
  result.found_valid = found_valid != 0;
  ReadPod(in, result.best_per_step_seconds);
  ReadPod(in, result.best_found_at_hours);
  ReadPod(in, result.total_virtual_hours);
  std::int32_t invalid_samples = 0, total_samples = 0;
  ReadPod(in, invalid_samples);
  ReadPod(in, total_samples);
  result.invalid_samples = invalid_samples;
  result.total_samples = total_samples;
  result.best_placement = sim::Placement::FromRaw(ReadI32Vector(in));
  std::uint32_t history_size = 0;
  ReadPod(in, history_size);
  EAGLE_CHECK_MSG(history_size < (1u << 28), "corrupt checkpoint history");
  result.history.reserve(history_size);
  for (std::uint32_t i = 0; i < history_size; ++i) {
    HistoryPoint point;
    std::int32_t sample_index = 0;
    ReadPod(in, sample_index);
    point.sample_index = sample_index;
    ReadPod(in, point.virtual_hours);
    ReadPod(in, point.per_step_seconds);
    ReadPod(in, point.best_so_far_seconds);
    result.history.push_back(point);
  }
  return result;
}

}  // namespace

std::string CheckpointFilePath(const std::string& dir,
                               const std::string& name) {
  return dir + "/" + name + ".ckpt";
}

bool SaveCheckpoint(const std::string& path, const nn::ParamStore& params,
                    const nn::Adam& optimizer, const CheckpointData& data) {
  // The temp-file-then-rename dance lives in WriteFileAtomic: a crash at
  // any instant leaves the previous good checkpoint loadable.
  return support::WriteFileAtomic(path, [&](std::ostream& out) {
    out.write(kMagicV2, sizeof(kMagicV2));
    nn::SaveParams(params, out);
    optimizer.SaveState(out);
    for (std::uint64_t s : data.rng_state) WritePod(out, s);
    WritePod(out, data.baseline_value);
    WritePod(out, static_cast<std::uint8_t>(data.baseline_initialized));
    WriteResult(out, data.result);
    WritePod(out, static_cast<std::uint32_t>(data.pool.size()));
    for (const Sample& sample : data.pool) WriteSample(out, sample);
    WritePod(out, static_cast<std::uint32_t>(data.batch.size()));
    for (const Sample& sample : data.batch) WriteSample(out, sample);
    WritePod(out, static_cast<std::int32_t>(data.since_ce));
    WritePod(out, static_cast<std::uint64_t>(data.env_state.size()));
    out.write(data.env_state.data(),
              static_cast<std::streamsize>(data.env_state.size()));
    WritePod(out, static_cast<std::uint64_t>(data.critic_state.size()));
    out.write(data.critic_state.data(),
              static_cast<std::streamsize>(data.critic_state.size()));
    out.write(kEndMarker, sizeof(kEndMarker));
    return static_cast<bool>(out);
  });
}

bool LoadCheckpoint(const std::string& path, nn::ParamStore& params,
                    nn::Adam& optimizer, CheckpointData* data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, sizeof(magic));
  EAGLE_CHECK_MSG(in, "bad checkpoint magic in " << path);
  int version = 0;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    version = kCheckpointFormatVersion;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    version = kCheckpointFormatVersion - 1;
  }
  EAGLE_CHECK_MSG(version != 0, "bad checkpoint magic in " << path);
  nn::LoadParams(params, in);
  optimizer.LoadState(in);
  for (auto& s : data->rng_state) ReadPod(in, s);
  ReadPod(in, data->baseline_value);
  std::uint8_t baseline_initialized = 0;
  ReadPod(in, baseline_initialized);
  data->baseline_initialized = baseline_initialized != 0;
  data->result = ReadResult(in);
  std::uint32_t pool_size = 0;
  ReadPod(in, pool_size);
  EAGLE_CHECK_MSG(pool_size < (1u << 28), "corrupt checkpoint pool");
  data->pool.clear();
  data->pool.reserve(pool_size);
  for (std::uint32_t i = 0; i < pool_size; ++i) {
    data->pool.push_back(ReadSample(in, version));
  }
  std::uint32_t batch_size = 0;
  ReadPod(in, batch_size);
  EAGLE_CHECK_MSG(batch_size < (1u << 28), "corrupt checkpoint batch");
  data->batch.clear();
  data->batch.reserve(batch_size);
  for (std::uint32_t i = 0; i < batch_size; ++i) {
    data->batch.push_back(ReadSample(in, version));
  }
  std::int32_t since_ce = 0;
  ReadPod(in, since_ce);
  data->since_ce = since_ce;
  std::uint64_t env_state_size = 0;
  ReadPod(in, env_state_size);
  EAGLE_CHECK_MSG(env_state_size < (1ull << 32), "corrupt checkpoint");
  data->env_state.resize(env_state_size);
  in.read(data->env_state.data(),
          static_cast<std::streamsize>(env_state_size));
  std::uint64_t critic_state_size = 0;
  ReadPod(in, critic_state_size);
  EAGLE_CHECK_MSG(critic_state_size < (1ull << 32), "corrupt checkpoint");
  data->critic_state.resize(critic_state_size);
  in.read(data->critic_state.data(),
          static_cast<std::streamsize>(critic_state_size));
  char end_marker[8];
  in.read(end_marker, sizeof(end_marker));
  EAGLE_CHECK_MSG(
      in && std::memcmp(end_marker, kEndMarker, sizeof(kEndMarker)) == 0,
      "incomplete checkpoint " << path);
  return true;
}

}  // namespace eagle::rl
