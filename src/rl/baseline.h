// Exponential-moving-average reward baseline (§III-D).
//
// The paper found an A2C-style value network under-trained at device-
// placement sample rates and replaced it with an EMA baseline:
//   B_t = ExpMovAvg(R_t),  Â_t = R_t - B_t.
#pragma once

namespace eagle::rl {

class EmaBaseline {
 public:
  explicit EmaBaseline(double decay = 0.9) : decay_(decay) {}

  // Returns the advantage R - B using the baseline *before* folding R in,
  // then updates the average. The first observation seeds the baseline
  // (advantage 0), matching common implementations.
  double AdvantageAndUpdate(double reward);

  double value() const { return value_; }
  bool initialized() const { return initialized_; }

  // Restores a checkpointed baseline (crash-safe training resume).
  void set_state(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace eagle::rl
