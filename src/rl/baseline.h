// Exponential-moving-average reward baseline (§III-D).
//
// The implementation lives in core/policy.h (next to the interfaces the
// checkpointed trainer state serializes); this header re-exports it under
// the rl vocabulary.
#pragma once

#include "core/policy.h"

namespace eagle::rl {

using EmaBaseline = core::EmaBaseline;

}  // namespace eagle::rl
