// REINFORCE (policy-gradient) update, the baseline algorithm of §III-D.
#pragma once

#include <vector>

#include "nn/adam.h"
#include "rl/episode.h"

namespace eagle::rl {

struct ReinforceOptions {
  double entropy_coef = 0.01;
};

// One gradient step on a minibatch:  L = -mean_i(logp_i * Â_i) - c*H.
// Returns the pre-clip gradient norm.
double ReinforceUpdate(PolicyAgent& agent, nn::Adam& optimizer,
                       const std::vector<Sample>& batch,
                       const ReinforceOptions& options);

}  // namespace eagle::rl
