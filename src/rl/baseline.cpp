#include "rl/baseline.h"

namespace eagle::rl {

double EmaBaseline::AdvantageAndUpdate(double reward) {
  if (!initialized_) {
    value_ = reward;
    initialized_ = true;
    return 0.0;
  }
  const double advantage = reward - value_;
  value_ = decay_ * value_ + (1.0 - decay_) * reward;
  return advantage;
}

}  // namespace eagle::rl
