// Reward shaping (Eq. 4): R = -sqrt(per-step time); invalid placements are
// charged a penalty time so the agent learns to avoid OOM regions.
#pragma once

#include "sim/measurement.h"

namespace eagle::rl {

struct RewardOptions {
  // Per-step time charged to invalid (OOM) placements. Benches set this to
  // ~10x a feasible placement's time; must be positive.
  double invalid_penalty_seconds = 100.0;
};

double ComputeReward(const sim::EvalResult& eval,
                     const RewardOptions& options);

}  // namespace eagle::rl
