// Clipped-surrogate Proximal Policy Optimization (Eq. 1–3), the paper's
// chosen training algorithm.
//
//   r(θ) = π_θ(a|s) / π_θold(a|s)
//   L = E[min(r·Â, clip(r, 1-ε, 1+ε)·Â)]  maximized, plus entropy bonus.
//
// Multiple epochs re-score the same minibatch under the updated policy;
// per the paper: 10 placements per minibatch, 4 epochs, ε = 0.3,
// entropy coefficient 0.01.
#pragma once

#include <vector>

#include "nn/adam.h"
#include "rl/episode.h"

namespace eagle::rl {

struct PpoOptions {
  double clip_epsilon = 0.3;
  int epochs = 4;
  double entropy_coef = 0.01;
  // Importance ratios explode when a re-scored logp drifts far from the
  // sampling logp (common with joint grouper+placer log-probs over
  // thousands of actions); the log-ratio is clamped to keep exp() finite.
  double max_abs_log_ratio = 20.0;
  // Divide the log-ratio by Sample::num_decisions (per-decision geometric
  // mean ratio). Without this, a joint policy over hundreds of
  // categoricals saturates the clip region after the first epoch and PPO
  // degenerates into a single noisy update.
  bool normalize_by_decisions = true;
};

struct PpoStats {
  double grad_norm_last = 0.0;
  double mean_ratio_last = 0.0;
};

PpoStats PpoUpdate(PolicyAgent& agent, nn::Adam& optimizer,
                   const std::vector<Sample>& batch,
                   const PpoOptions& options);

}  // namespace eagle::rl
