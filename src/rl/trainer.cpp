#include "rl/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "nn/serialize.h"
#include "rl/checkpoint.h"
#include "support/check.h"
#include "support/log.h"
#include "support/metrics.h"

namespace eagle::rl {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kReinforce: return "REINFORCE";
    case Algorithm::kPpo: return "PPO";
    case Algorithm::kPpoCe: return "PPO+CE";
  }
  return "?";
}

TrainResult TrainAgent(PolicyAgent& agent, Environment& environment,
                       const TrainerOptions& options,
                       const ProgressCallback& on_progress) {
  EAGLE_CHECK(options.total_samples >= 1 && options.minibatch_size >= 1);
  support::Rng rng(options.seed);
  nn::Adam optimizer(agent.params(), options.adam);
  EmaBaseline baseline(options.ema_decay);
  std::unique_ptr<ValueBaseline> critic;
  if (options.baseline == BaselineKind::kValueNetwork) {
    critic = std::make_unique<ValueBaseline>(options.num_devices,
                                             options.value_baseline);
  }
  RewardOptions reward_options{environment.InvalidPenaltySeconds()};

  TrainResult result;
  std::vector<Sample> pool;  // all samples (CE elite selection)
  std::vector<Sample> batch;
  batch.reserve(static_cast<std::size_t>(options.minibatch_size));
  int since_ce = 0;

  // Crash-safe checkpointing: full trainer state snapshotted to an
  // atomically-renamed file, restored bit-compatibly with resume=true.
  const std::string snapshot_path =
      options.checkpoint_dir.empty()
          ? std::string()
          : CheckpointFilePath(options.checkpoint_dir,
                               options.checkpoint_name);
  int last_snapshot_sample = -1;
  const auto save_snapshot = [&]() {
    if (snapshot_path.empty()) return;
    EAGLE_SPAN("train.checkpoint");
    CheckpointData data;
    data.result = result;
    data.rng_state = rng.state();
    data.baseline_value = baseline.value();
    data.baseline_initialized = baseline.initialized();
    data.pool = pool;
    data.batch = batch;
    data.since_ce = since_ce;
    std::ostringstream env_blob;
    environment.SerializeState(env_blob);
    data.env_state = env_blob.str();
    if (critic != nullptr) {
      std::ostringstream critic_blob;
      critic->SaveState(critic_blob);
      data.critic_state = critic_blob.str();
    }
    if (SaveCheckpoint(snapshot_path, agent.params(), optimizer, data)) {
      last_snapshot_sample = result.total_samples;
    }
  };
  if (options.resume && !snapshot_path.empty()) {
    CheckpointData data;
    if (LoadCheckpoint(snapshot_path, agent.params(), optimizer, &data)) {
      rng.set_state(data.rng_state);
      baseline.set_state(data.baseline_value, data.baseline_initialized);
      result = std::move(data.result);
      pool = std::move(data.pool);
      batch = std::move(data.batch);
      since_ce = data.since_ce;
      if (!data.env_state.empty()) {
        std::istringstream env_blob(data.env_state);
        environment.DeserializeState(env_blob);
      }
      if (critic != nullptr && !data.critic_state.empty()) {
        std::istringstream critic_blob(data.critic_state);
        critic->LoadState(critic_blob);
      }
      last_snapshot_sample = result.total_samples;
      EAGLE_LOG(Info) << agent.name() << ": resumed from " << snapshot_path
                      << " at sample " << result.total_samples;
    } else {
      EAGLE_LOG(Info) << agent.name() << ": no checkpoint at "
                      << snapshot_path << ", starting fresh";
    }
  }

  // Child-stream counter for evaluation RNGs: sample i (globally) is
  // evaluated with rng.Split(i). Rounds are dispatched only at commit
  // boundaries, so on resume the counter is simply the sample count.
  std::uint64_t next_eval_stream =
      static_cast<std::uint64_t>(result.total_samples);

  int round_index = 0;
  support::metrics::Counter* rounds_counter =
      support::metrics::GetCounter("train.rounds");
  while (result.total_samples < options.total_samples) {
    if (options.max_virtual_hours > 0.0 &&
        result.total_virtual_hours >= options.max_virtual_hours) {
      break;
    }
    // One round fills the minibatch (or what remains of the sample
    // budget). Sampling is serial so the policy RNG stream is identical
    // regardless of how the evaluations are scheduled.
    const int room = options.minibatch_size - static_cast<int>(batch.size());
    const int round_size =
        std::min(room, options.total_samples - result.total_samples);
    EAGLE_CHECK(round_size >= 1);
    std::vector<Sample> round;
    std::vector<sim::Placement> placements;
    std::vector<support::Rng> eval_rngs;
    round.reserve(static_cast<std::size_t>(round_size));
    placements.reserve(static_cast<std::size_t>(round_size));
    eval_rngs.reserve(static_cast<std::size_t>(round_size));
    {
      EAGLE_SPAN("train.sample");
      for (int i = 0; i < round_size; ++i) {
        Sample sample = agent.SampleDecision(rng);
        sample.eval_stream = next_eval_stream++;
        eval_rngs.push_back(rng.Split(sample.eval_stream));
        placements.push_back(agent.ToPlacement(sample));
        round.push_back(std::move(sample));
      }
    }

    std::vector<sim::EvalResult> evals;
    {
      EAGLE_SPAN("train.eval");
      if (options.evaluator != nullptr) {
        evals = options.evaluator->EvaluateBatch(placements, eval_rngs);
        EAGLE_CHECK(evals.size() == round.size());
      } else {
        evals.reserve(round.size());
        for (std::size_t i = 0; i < round.size(); ++i) {
          evals.push_back(environment.Evaluate(placements[i], &eval_rngs[i]));
        }
      }
    }

    // Reduce in submission order: every mutation below replays exactly
    // what the serial one-sample loop did, keeping history, best-so-far
    // and the EMA baseline bit-identical at any thread count.
    bool budget_exhausted = false;
    int samples_this_round = 0;
    {
    EAGLE_SPAN("train.reduce");
    for (std::size_t i = 0; i < round.size(); ++i) {
      Sample& sample = round[i];
      const sim::EvalResult& eval = evals[i];
      sample.valid = eval.valid;
      sample.per_step_seconds = eval.per_step_seconds;
      sample.reward = ComputeReward(eval, reward_options);
      if (critic != nullptr) {
        sample.advantage = sample.reward - critic->Predict(sample);
        baseline.AdvantageAndUpdate(sample.reward);  // tracked for logging
      } else {
        sample.advantage = baseline.AdvantageAndUpdate(sample.reward);
      }

      result.total_samples++;
      result.total_virtual_hours += eval.measurement_cost_seconds / 3600.0;
      if (!eval.valid) {
        result.invalid_samples++;
      } else if (eval.true_per_step_seconds < result.best_per_step_seconds) {
        result.found_valid = true;
        result.best_per_step_seconds = eval.true_per_step_seconds;
        result.best_placement = placements[i];
        result.best_found_at_hours = result.total_virtual_hours;
        if (!options.checkpoint_path.empty()) {
          nn::SaveParams(agent.params(), options.checkpoint_path);
        }
      }

      HistoryPoint point;
      point.sample_index = result.total_samples;
      point.virtual_hours = result.total_virtual_hours;
      point.per_step_seconds = eval.valid
                                   ? eval.per_step_seconds
                                   : std::numeric_limits<double>::infinity();
      point.best_so_far_seconds = result.best_per_step_seconds;
      result.history.push_back(point);
      if (on_progress) on_progress(point);

      batch.push_back(std::move(sample));
      ++since_ce;
      ++samples_this_round;

      if (options.max_virtual_hours > 0.0 &&
          result.total_virtual_hours >= options.max_virtual_hours) {
        // Same stop point as the serial loop: the sample that crossed the
        // budget is counted, anything dispatched after it this round is
        // discarded (its measurement cost is never charged).
        budget_exhausted = true;
        break;
      }
    }
    }  // span train.reduce

    bool updated_policy = false;
    if (static_cast<int>(batch.size()) >= options.minibatch_size) {
      updated_policy = true;
      {
      EAGLE_SPAN("train.update");
      if (critic != nullptr) critic->Update(batch);
      switch (options.algorithm) {
        case Algorithm::kReinforce:
          ReinforceUpdate(agent, optimizer, batch, options.reinforce);
          break;
        case Algorithm::kPpo:
          PpoUpdate(agent, optimizer, batch, options.ppo);
          break;
        case Algorithm::kPpoCe: {
          PpoUpdate(agent, optimizer, batch, options.ppo);
          for (auto& s : batch) pool.push_back(std::move(s));
          if (since_ce >= options.ce_interval) {
            const int used =
                CrossEntropyUpdate(agent, optimizer, pool, options.ce);
            EAGLE_LOG(Debug) << agent.name() << ": CE update over " << used
                             << " elites at sample " << result.total_samples;
            since_ce = 0;
          }
          break;
        }
      }
      batch.clear();
      }  // span train.update
      if (options.checkpoint_interval > 0 &&
          result.total_samples - last_snapshot_sample >=
              options.checkpoint_interval) {
        save_snapshot();
      }
    }

    rounds_counter->Increment();
    if (options.on_round) {
      RoundStats stats;
      stats.round_index = round_index;
      stats.samples_in_round = samples_this_round;
      stats.total_samples = result.total_samples;
      stats.virtual_hours = result.total_virtual_hours;
      stats.best_per_step_seconds = result.best_per_step_seconds;
      stats.updated_policy = updated_policy;
      options.on_round(stats);
    }
    ++round_index;
    if (budget_exhausted) break;
  }
  if (result.total_samples != last_snapshot_sample) save_snapshot();
  return result;
}

}  // namespace eagle::rl
