#include "models/op_cost.h"

namespace eagle::models {

double Conv2DFlops(std::int64_t batch, std::int64_t h_out, std::int64_t w_out,
                   std::int64_t c_in, std::int64_t c_out,
                   std::int64_t kernel) {
  return 2.0 * static_cast<double>(batch) * static_cast<double>(h_out) *
         static_cast<double>(w_out) * static_cast<double>(c_in) *
         static_cast<double>(c_out) * static_cast<double>(kernel * kernel);
}

double MatMulFlops(std::int64_t m, std::int64_t k, std::int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

std::int64_t Conv2DParamBytes(std::int64_t c_in, std::int64_t c_out,
                              std::int64_t kernel) {
  return (c_in * c_out * kernel * kernel + c_out) * 4;
}

std::int64_t DenseParamBytes(std::int64_t in_dim, std::int64_t out_dim) {
  return (in_dim * out_dim + out_dim) * 4;
}

double LstmCellFlops(std::int64_t batch, std::int64_t in_dim,
                     std::int64_t hidden) {
  // Gate matmul (4H outputs from concat(x, h)) plus elementwise gate math.
  return MatMulFlops(batch, in_dim + hidden, 4 * hidden) +
         ElementwiseFlops(batch * hidden * 8);
}

std::int64_t LstmCellParamBytes(std::int64_t in_dim, std::int64_t hidden) {
  return DenseParamBytes(in_dim + hidden, 4 * hidden);
}

double ElementwiseFlops(std::int64_t n) { return static_cast<double>(n); }

}  // namespace eagle::models
