#include "models/builder.h"

#include "support/check.h"

namespace eagle::models {

std::string GraphBuilder::UniqueName(const std::string& base) {
  if (graph_.FindOp(base) == graph::kInvalidOp) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (graph_.FindOp(candidate) == graph::kInvalidOp) return candidate;
  }
}

graph::OpId GraphBuilder::Add(graph::OpType type, const std::string& name,
                              graph::TensorShape shape,
                              const std::vector<graph::OpId>& inputs,
                              Opts opts) {
  graph::OpDef op;
  op.name = UniqueName(name);
  op.type = type;
  op.output_shape = std::move(shape);
  op.flops = opts.flops;
  op.param_bytes = opts.param_bytes;
  op.cpu_only = opts.cpu_only;
  op.layer = opts.layer.empty() ? layer_scope_ : opts.layer;
  const graph::OpId id = graph_.AddOp(std::move(op));
  for (graph::OpId input : inputs) {
    EAGLE_CHECK_MSG(input != graph::kInvalidOp, "invalid input to " << name);
    graph_.AddEdge(input, id);
  }
  return id;
}

}  // namespace eagle::models
