// Structure-aware fuzz corpus for the graph ingestion pipeline.
//
// Two deterministic generators (everything draws from an explicitly
// seeded support::Rng, so a corpus regenerates bit-identically from a
// seed):
//   - BuildFuzzGraph: valid layered training graphs from ~10k to ~100k
//     ops that exercise every .eg / JSON feature the serializers emit —
//     mixed op types, ranks 0–4, cpu_only / gradient flags, layer tags,
//     temp and colocation attributes, explicit edge byte overrides.
//     Unlike BuildRandomDag (whose repeated fan-in picks produce
//     duplicate edges, fine for partitioner tests but rejected by
//     ValidateGraph), fan-in here is deduplicated: the output always
//     passes validation and round-trips byte-identically.
//   - MutateSerializedGraph: corrupts one serialized graph (either
//     format) with a randomly chosen structural mutation — byte flips,
//     token swaps, line duplication/deletion, numeric inflation,
//     truncation. Driving these through the parsers is how tools/
//     graph_fuzz and the CI smoke prove "no input crashes ingestion"
//     while reaching every code in the error taxonomy.
#pragma once

#include <string>

#include "graph/op_graph.h"
#include "support/rng.h"

namespace eagle::models {

struct FuzzGraphConfig {
  // Forward (pre-training-augmentation) compute ops to generate; with
  // training=true the final graph lands at roughly 2x this plus
  // optimizer updates.
  int num_ops = 5000;
  int width = 64;     // ops per layer (rank)
  int max_fanin = 3;  // distinct producers consumed per op
  bool training = true;
};

graph::OpGraph BuildFuzzGraph(const FuzzGraphConfig& config,
                              support::Rng& rng);

// Returns `text` with one random mutation applied. Never returns the
// input unchanged unless the input is empty.
std::string MutateSerializedGraph(const std::string& text,
                                  support::Rng& rng);

}  // namespace eagle::models
