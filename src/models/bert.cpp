#include "models/bert.h"

#include <string>
#include <vector>

#include "models/builder.h"
#include "models/op_cost.h"
#include "models/training_graph.h"
#include "support/check.h"

namespace eagle::models {

using graph::OpId;
using graph::OpType;
using graph::TensorShape;

namespace {

class BertBuilder {
 public:
  explicit BertBuilder(const BertConfig& config) : c_(config) {}

  graph::OpGraph Build() {
    const std::int64_t tokens =
        static_cast<std::int64_t>(c_.batch) * c_.seq_len;
    const std::int64_t h = c_.hidden;

    // --- embeddings: wordpiece + position + segment, CPU-pinned lookups ---
    b_.SetLayerScope("embeddings");
    OpId word_table =
        Dense("word_embeddings", static_cast<std::int64_t>(c_.vocab) * h * 4);
    OpId word = b_.Add(OpType::kEmbeddingLookup, "word_lookup",
                       TensorShape{tokens, h}, {},
                       {.flops = ElementwiseFlops(tokens * h), .cpu_only = true});
    b_.Wire(word_table, word, tokens * h * 4);
    OpId pos = b_.Add(OpType::kEmbeddingLookup, "position_lookup",
                      TensorShape{tokens, h}, {},
                      {.flops = ElementwiseFlops(tokens * h),
                       .param_bytes = 512 * h * 4,
                       .cpu_only = true});
    OpId seg = b_.Add(OpType::kEmbeddingLookup, "segment_lookup",
                      TensorShape{tokens, h}, {},
                      {.flops = ElementwiseFlops(tokens * h),
                       .param_bytes = 2 * h * 4,
                       .cpu_only = true});
    OpId emb_sum = b_.Add(OpType::kAdd, "embedding_sum",
                          TensorShape{tokens, h}, {word, pos, seg},
                          {.flops = ElementwiseFlops(tokens * h * 2)});
    OpId x = LayerNorm("embedding_ln", emb_sum);

    // --- transformer stack ---
    for (int layer = 0; layer < c_.layers; ++layer) {
      x = TransformerLayer(layer, x);
    }

    // --- masked-LM head ---
    b_.SetLayerScope("mlm_head");
    OpId transform = b_.Add(
        OpType::kMatMul, "mlm_transform", TensorShape{tokens, h}, {x},
        {.flops = MatMulFlops(tokens, h, h), .param_bytes = DenseParamBytes(h, h)});
    OpId gelu = b_.Add(OpType::kGelu, "mlm_gelu", TensorShape{tokens, h},
                       {transform}, {.flops = ElementwiseFlops(tokens * h * 8)});
    OpId norm = LayerNorm("mlm_ln", gelu);
    OpId logits = b_.Add(
        OpType::kMatMul, "mlm_logits", TensorShape{tokens, c_.vocab}, {norm},
        {.flops = MatMulFlops(tokens, h, c_.vocab)});
    b_.Wire(word_table, logits,
            static_cast<std::int64_t>(c_.vocab) * h * 4);  // tied weights
    OpId labels = b_.Add(OpType::kPlaceholder, "mlm_labels",
                         TensorShape{tokens}, {}, {.cpu_only = true});
    OpId loss = b_.Add(OpType::kCrossEntropy, "loss", TensorShape{1},
                       {logits, labels},
                       {.flops = ElementwiseFlops(tokens * c_.vocab * 4)});

    graph::OpGraph graph = b_.TakeGraph();
    if (c_.training) AddTrainingOps(graph, loss);
    return graph;
  }

 private:
  // A parameter-holding Variable op (weights read by compute ops).
  OpId Dense(const std::string& name, std::int64_t param_bytes) {
    return b_.Add(OpType::kVariable, name, TensorShape{1}, {},
                  {.param_bytes = param_bytes});
  }

  OpId LayerNorm(const std::string& name, OpId input) {
    const auto shape = b_.graph().op(input).output_shape;
    const std::int64_t n = shape.NumElements();
    return b_.Add(OpType::kLayerNorm, name, shape, {input},
                  {.flops = ElementwiseFlops(n * 6),
                   .param_bytes = shape.dim(shape.rank() - 1) * 2 * 4});
  }

  OpId TransformerLayer(int layer, OpId x) {
    const std::string scope = "layer" + std::to_string(layer);
    const std::int64_t tokens =
        static_cast<std::int64_t>(c_.batch) * c_.seq_len;
    const std::int64_t h = c_.hidden;
    const std::int64_t dh = h / c_.heads;  // per-head dim
    const std::int64_t bs = c_.batch;      // batch of attention matrices
    const std::int64_t s = c_.seq_len;

    // --- multi-head self-attention ---
    b_.SetLayerScope(scope + "/attention");
    auto proj = [&](const std::string& name) {
      return b_.Add(OpType::kMatMul, scope + "/" + name,
                    TensorShape{tokens, h}, {x},
                    {.flops = MatMulFlops(tokens, h, h),
                     .param_bytes = DenseParamBytes(h, h)});
    };
    OpId q = proj("q_proj");
    OpId k = proj("k_proj");
    OpId v = proj("v_proj");

    std::vector<OpId> heads;
    heads.reserve(static_cast<std::size_t>(c_.heads));
    for (int head = 0; head < c_.heads; ++head) {
      const std::string hs = scope + "/head" + std::to_string(head);
      // Per-head Q/K slices flow as (tokens × dh) tensors.
      OpId scores =
          b_.Add(OpType::kBatchMatMul, hs + "/scores",
                 TensorShape{bs, s, s}, {},
                 {.flops = MatMulFlops(bs * s, dh, s)});
      b_.Wire(q, scores, tokens * dh * 4);
      b_.Wire(k, scores, tokens * dh * 4);
      OpId probs = b_.Add(OpType::kSoftmax, hs + "/probs",
                          TensorShape{bs, s, s}, {scores},
                          {.flops = ElementwiseFlops(bs * s * s * 3)});
      OpId context = b_.Add(OpType::kBatchMatMul, hs + "/context",
                            TensorShape{tokens, dh}, {probs},
                            {.flops = MatMulFlops(bs * s, s, dh)});
      b_.Wire(v, context, tokens * dh * 4);
      heads.push_back(context);
    }
    OpId concat = b_.Add(OpType::kConcat, scope + "/head_concat",
                         TensorShape{tokens, h}, heads,
                         {.flops = ElementwiseFlops(tokens * h)});
    OpId attn_out = b_.Add(OpType::kMatMul, scope + "/attn_out",
                           TensorShape{tokens, h}, {concat},
                           {.flops = MatMulFlops(tokens, h, h),
                            .param_bytes = DenseParamBytes(h, h)});
    OpId drop1 = b_.Add(OpType::kDropout, scope + "/attn_dropout",
                        TensorShape{tokens, h}, {attn_out},
                        {.flops = ElementwiseFlops(tokens * h)});
    OpId res1 = b_.Add(OpType::kAdd, scope + "/attn_residual",
                       TensorShape{tokens, h}, {drop1, x},
                       {.flops = ElementwiseFlops(tokens * h)});
    OpId ln1 = LayerNorm(scope + "/attn_ln", res1);

    // --- feed-forward ---
    b_.SetLayerScope(scope + "/ffn");
    OpId ffn1 = b_.Add(OpType::kMatMul, scope + "/ffn_in",
                       TensorShape{tokens, c_.ffn_dim}, {ln1},
                       {.flops = MatMulFlops(tokens, h, c_.ffn_dim),
                        .param_bytes = DenseParamBytes(h, c_.ffn_dim)});
    OpId gelu = b_.Add(OpType::kGelu, scope + "/ffn_gelu",
                       TensorShape{tokens, c_.ffn_dim}, {ffn1},
                       {.flops = ElementwiseFlops(tokens * c_.ffn_dim * 8)});
    OpId ffn2 = b_.Add(OpType::kMatMul, scope + "/ffn_out",
                       TensorShape{tokens, h}, {gelu},
                       {.flops = MatMulFlops(tokens, c_.ffn_dim, h),
                        .param_bytes = DenseParamBytes(c_.ffn_dim, h)});
    OpId drop2 = b_.Add(OpType::kDropout, scope + "/ffn_dropout",
                        TensorShape{tokens, h}, {ffn2},
                        {.flops = ElementwiseFlops(tokens * h)});
    OpId res2 = b_.Add(OpType::kAdd, scope + "/ffn_residual",
                       TensorShape{tokens, h}, {drop2, ln1},
                       {.flops = ElementwiseFlops(tokens * h)});
    return LayerNorm(scope + "/ffn_ln", res2);
  }

  BertConfig c_;
  GraphBuilder b_;
};

}  // namespace

graph::OpGraph BuildBertBase(const BertConfig& config) {
  EAGLE_CHECK(config.hidden % config.heads == 0);
  return BertBuilder(config).Build();
}

}  // namespace eagle::models
