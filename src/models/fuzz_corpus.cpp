#include "models/fuzz_corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <set>
#include <utility>
#include <vector>

#include "models/builder.h"
#include "models/training_graph.h"
#include "support/check.h"

namespace eagle::models {

using graph::OpId;
using graph::OpType;
using graph::TensorShape;

namespace {

// Compute op palette; cpu_only ops draw kEmbeddingLookup separately.
constexpr OpType kPalette[] = {
    OpType::kMatMul,  OpType::kConv2D,  OpType::kRelu,
    OpType::kLayerNorm, OpType::kAdd,   OpType::kSoftmax,
    OpType::kTanh,    OpType::kMul,     OpType::kReshape,
    OpType::kConcat,
};

// Ranks 0–4, dims ≤ 32 (≤ 4 MiB per tensor): large enough to exercise
// every shape-printing path, small enough that a 100k-op corpus stays
// far inside IngestLimits::max_total_bytes.
TensorShape RandomShape(support::Rng& rng) {
  const int rank = static_cast<int>(rng.NextBelow(5));  // 0..4
  std::vector<std::int64_t> dims;
  for (int i = 0; i < rank; ++i) {
    dims.push_back(rng.NextInt(1, 32));
  }
  return TensorShape(std::move(dims));
}

}  // namespace

graph::OpGraph BuildFuzzGraph(const FuzzGraphConfig& config,
                              support::Rng& rng) {
  EAGLE_CHECK(config.num_ops >= 1 && config.width >= 1 &&
              config.max_fanin >= 1);
  GraphBuilder b;
  std::vector<OpId> all;
  all.push_back(
      b.Add(OpType::kPlaceholder, "input", TensorShape{1024}, {}));

  const int layers =
      std::max(1, (config.num_ops + config.width - 1) / config.width);
  std::vector<OpId> previous = all;
  int generated = 0;
  for (int layer = 0; layer < layers && generated < config.num_ops;
       ++layer) {
    std::vector<OpId> current;
    for (int w = 0; w < config.width && generated < config.num_ops; ++w) {
      ++generated;
      const bool cpu_only = rng.NextDouble() < 0.02;
      const OpType type =
          cpu_only ? OpType::kEmbeddingLookup
                   : kPalette[rng.NextBelow(std::size(kPalette))];
      TensorShape shape = RandomShape(rng);
      const double flops =
          std::exp(rng.NextUniform(std::log(1e5), std::log(1e9)));
      GraphBuilder::Opts opts{
          .flops = flops,
          .param_bytes = rng.NextDouble() < 0.25
                             ? shape.NumElements() * 4
                             : 0,
          .cpu_only = cpu_only,
          .layer = "fz" + std::to_string(layer)};
      const OpId op = b.Add(
          type, "l" + std::to_string(layer) + "_op" + std::to_string(w),
          std::move(shape), {}, opts);
      // Distinct fan-in picks from a recent window: the dedup is what
      // keeps the corpus inside ValidateGraph's duplicate-edge rule.
      const std::size_t window_lo =
          all.size() > static_cast<std::size_t>(4 * config.width)
              ? all.size() - static_cast<std::size_t>(4 * config.width)
              : 0;
      const int fanin = 1 + static_cast<int>(rng.NextBelow(
                                static_cast<std::uint64_t>(config.max_fanin)));
      std::set<OpId> producers;
      for (int f = 0; f < fanin; ++f) {
        const std::size_t pick =
            window_lo + rng.NextBelow(static_cast<std::uint64_t>(
                            all.size() - window_lo));
        producers.insert(all[pick]);
      }
      for (OpId producer : producers) {
        if (rng.NextDouble() < 0.1) {
          // Explicit byte override (sliced-tensor idiom): a fixed small
          // payload instead of the producer's full output.
          b.Wire(producer, op, rng.NextInt(4, 4096) * 4);
        } else {
          b.Wire(producer, op);
        }
      }
      current.push_back(op);
    }
    for (OpId id : current) all.push_back(id);
    previous = std::move(current);
  }
  const OpId loss =
      b.Add(OpType::kCrossEntropy, "loss", TensorShape{1}, previous);

  graph::OpGraph graph = b.TakeGraph();
  // Sprinkle the attributes the .eg/JSON writers only emit when
  // non-default, so round-trip tests cover them: scratch memory on some
  // ops, small colocation islands (pairs of same-layer neighbors).
  std::int32_t next_group = 0;
  for (OpId i = 1; i + 1 < graph.num_ops(); ++i) {
    if (rng.NextDouble() < 0.05) {
      graph.mutable_op(i).temp_bytes = rng.NextInt(1, 1 << 16) * 4;
    }
    if (rng.NextDouble() < 0.02 && i + 1 < loss) {
      const std::int32_t group = next_group++;
      graph.mutable_op(i).colocation_group = group;
      graph.mutable_op(i + 1).colocation_group = group;
    }
  }
  if (config.training) AddTrainingOps(graph, loss);
  return graph;
}

std::string MutateSerializedGraph(const std::string& text,
                                  support::Rng& rng) {
  if (text.empty()) return text;
  std::string out = text;
  const std::uint64_t strategy = rng.NextBelow(8);
  const std::size_t pos = rng.NextBelow(out.size());
  switch (strategy) {
    case 0: {  // flip one byte to a random printable (or NUL) character
      const char replacement =
          static_cast<char>(rng.NextBelow(96));  // 0..95 → NUL + punct/alnum
      out[pos] = replacement == 0 ? '\0' : static_cast<char>(31 + replacement);
      break;
    }
    case 1: {  // delete a short span
      const std::size_t len =
          std::min<std::size_t>(1 + rng.NextBelow(16), out.size() - pos);
      out.erase(pos, len);
      break;
    }
    case 2: {  // duplicate the line containing pos
      const std::size_t begin = out.rfind('\n', pos);
      const std::size_t start = begin == std::string::npos ? 0 : begin + 1;
      std::size_t end = out.find('\n', pos);
      if (end == std::string::npos) end = out.size();
      const std::string line = out.substr(start, end - start);
      out.insert(start, line + "\n");
      break;
    }
    case 3: {  // delete the line containing pos
      const std::size_t begin = out.rfind('\n', pos);
      const std::size_t start = begin == std::string::npos ? 0 : begin + 1;
      std::size_t end = out.find('\n', pos);
      end = end == std::string::npos ? out.size() : end + 1;
      out.erase(start, end - start);
      break;
    }
    case 4: {  // inflate the digit run at/after pos (overflow probing)
      std::size_t digit = pos;
      while (digit < out.size() &&
             (out[digit] < '0' || out[digit] > '9')) {
        ++digit;
      }
      if (digit < out.size()) {
        out.insert(digit, "99999999999999999999");
      } else {
        out += " 99999999999999999999";
      }
      break;
    }
    case 5: {  // swap two whitespace-separated tokens on pos's line
      const std::size_t begin = out.rfind('\n', pos);
      const std::size_t start = begin == std::string::npos ? 0 : begin + 1;
      std::size_t end = out.find('\n', pos);
      if (end == std::string::npos) end = out.size();
      std::string line = out.substr(start, end - start);
      std::vector<std::pair<std::size_t, std::size_t>> tokens;
      std::size_t i = 0;
      while (i < line.size()) {
        if (line[i] == ' ') {
          ++i;
          continue;
        }
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ') ++j;
        tokens.emplace_back(i, j - i);
        i = j;
      }
      if (tokens.size() >= 2) {
        const std::size_t a = rng.NextBelow(tokens.size());
        const std::size_t c = rng.NextBelow(tokens.size());
        if (a != c) {
          const std::string ta = line.substr(tokens[a].first,
                                             tokens[a].second);
          const std::string tc = line.substr(tokens[c].first,
                                             tokens[c].second);
          // Replace the later token first so earlier offsets stay valid.
          const auto& first = tokens[std::min(a, c)];
          const auto& second = tokens[std::max(a, c)];
          line.replace(second.first, second.second, a < c ? ta : tc);
          line.replace(first.first, first.second, a < c ? tc : ta);
          out.replace(start, end - start, line);
          break;
        }
      }
      out.insert(pos, "\x7f");  // fallback so the mutation is never a no-op
      break;
    }
    case 6:  // insert a garbage token
      out.insert(pos, " frobnicate=1e999 ");
      break;
    default:  // truncate
      out.resize(pos);
      break;
  }
  return out;
}

}  // namespace eagle::models
