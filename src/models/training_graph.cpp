#include "models/training_graph.h"

#include <algorithm>
#include <vector>

#include "support/check.h"

namespace eagle::models {

using graph::OpDef;
using graph::OpGraph;
using graph::OpId;
using graph::OpType;

int AddTrainingOps(OpGraph& graph, OpId loss_op,
                   const TrainingGraphOptions& options) {
  EAGLE_CHECK(loss_op >= 0 && loss_op < graph.num_ops());
  const int num_forward = graph.num_ops();
  const auto topo = graph.TopologicalOrder();

  // Ops that can reach the loss participate in the backward pass.
  std::vector<bool> reaches_loss(static_cast<std::size_t>(num_forward), false);
  reaches_loss[static_cast<std::size_t>(loss_op)] = true;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const OpId u = *it;
    if (reaches_loss[static_cast<std::size_t>(u)]) continue;
    for (auto ei : graph.out_edges(u)) {
      if (reaches_loss[static_cast<std::size_t>(
              graph.edges()[static_cast<std::size_t>(ei)].dst)]) {
        reaches_loss[static_cast<std::size_t>(u)] = true;
        break;
      }
    }
  }

  std::vector<OpId> grad_of(static_cast<std::size_t>(num_forward),
                            graph::kInvalidOp);
  int added = 0;
  std::int32_t next_colocation = 0;
  for (OpId fwd = 0; fwd < num_forward; ++fwd) {
    if (graph.op(fwd).colocation_group >= 0) {
      next_colocation =
          std::max(next_colocation, graph.op(fwd).colocation_group + 1);
    }
  }

  // Reverse topological order so each grad op's upstream grads exist.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const OpId fwd = *it;
    if (!reaches_loss[static_cast<std::size_t>(fwd)]) continue;
    const OpDef fwd_op = graph.op(fwd);  // copy: AddOp may reallocate
    const bool has_params = fwd_op.param_bytes > 0;
    if (!has_params && fwd_op.flops < options.min_flops_to_mirror &&
        fwd != loss_op) {
      continue;
    }

    OpDef grad;
    grad.name = "grad/" + fwd_op.name;
    grad.type = fwd_op.type;
    grad.output_shape = fwd_op.output_shape;
    grad.flops = fwd_op.flops * options.backward_flops_factor;
    grad.param_bytes = 0;
    grad.cpu_only = fwd_op.cpu_only;
    grad.is_gradient = true;
    grad.layer = fwd_op.layer;
    const OpId gid = graph.AddOp(std::move(grad));
    grad_of[static_cast<std::size_t>(fwd)] = gid;
    ++added;

    // Gradient flow: dConsumer -> dF for every forward edge F -> Consumer.
    // Consumers appear later in topo order, so their grads already exist.
    bool got_upstream = false;
    for (auto ei : graph.out_edges(fwd)) {
      const auto& e = graph.edges()[static_cast<std::size_t>(ei)];
      if (e.dst >= num_forward) continue;  // skip already-added training ops
      const OpId consumer_grad = grad_of[static_cast<std::size_t>(e.dst)];
      if (consumer_grad != graph::kInvalidOp) {
        graph.AddEdge(consumer_grad, gid, fwd_op.output_bytes());
        got_upstream = true;
      }
    }
    (void)got_upstream;  // the loss op itself legitimately has none

    // Saved activation: the backward op re-reads the forward output.
    graph.AddEdge(fwd, gid, fwd_op.output_bytes());

    if (has_params && options.add_optimizer_ops) {
      OpDef update;
      update.name = "adam/" + fwd_op.name;
      update.type = OpType::kApplyAdam;
      // Output is a control-ish signal; negligible bytes.
      update.output_shape = graph::TensorShape{1};
      update.flops = static_cast<double>(fwd_op.param_bytes / 4) * 8.0;
      // Adam keeps m and v slots resident next to the parameters.
      update.param_bytes = 2 * fwd_op.param_bytes;
      update.cpu_only = fwd_op.cpu_only;
      update.is_gradient = true;
      update.layer = fwd_op.layer;
      const std::int32_t coloc = next_colocation++;
      update.colocation_group = coloc;
      const OpId uid = graph.AddOp(std::move(update));
      graph.mutable_op(fwd).colocation_group = coloc;
      // Parameter gradient flows from the grad op, param-sized.
      graph.AddEdge(gid, uid, fwd_op.param_bytes);
      ++added;
    }
  }
  return added;
}

}  // namespace eagle::models
