#include "models/inception_v3.h"

#include <string>
#include <vector>

#include "models/builder.h"
#include "models/op_cost.h"
#include "models/training_graph.h"
#include "support/check.h"

namespace eagle::models {

using graph::OpId;
using graph::OpType;
using graph::TensorShape;

namespace {

// Builder state threaded through the block helpers: tracks the current
// spatial extent and channel count of a feature map.
struct FeatureMap {
  OpId op = graph::kInvalidOp;
  std::int64_t size = 0;      // spatial H == W
  std::int64_t channels = 0;
};

class InceptionBuilder {
 public:
  explicit InceptionBuilder(const InceptionConfig& config)
      : config_(config) {}

  graph::OpGraph Build() {
    // --- stem ---
    b_.SetLayerScope("stem");
    OpId input = b_.Add(OpType::kPlaceholder, "input",
                        Shape(config_.image_size, 3), {});
    FeatureMap x{input, config_.image_size, 3};
    x = ConvBnRelu(x, 32, 3, 2);   // 149x149x32
    x = ConvBnRelu(x, 32, 3, 1);   // 147x147x32
    x = ConvBnRelu(x, 64, 3, 1, /*same=*/true);
    x = Pool(x, OpType::kMaxPool, 3, 2);  // 73x73x64
    x = ConvBnRelu(x, 80, 1, 1);
    x = ConvBnRelu(x, 192, 3, 1);  // 71x71x192
    x = Pool(x, OpType::kMaxPool, 3, 2);  // 35x35x192

    // --- 3x Inception-A (35x35) ---
    for (int i = 0; i < 3; ++i) {
      b_.SetLayerScope("mixed_a" + std::to_string(i));
      x = InceptionA(x, i == 0 ? 32 : 64);
    }
    // --- Reduction-A -> 17x17 ---
    b_.SetLayerScope("reduction_a");
    x = ReductionA(x);
    // --- 4x Inception-B (17x17) ---
    for (int i = 0; i < 4; ++i) {
      b_.SetLayerScope("mixed_b" + std::to_string(i));
      x = InceptionB(x, /*c7=*/i < 2 ? 128 : (i == 2 ? 160 : 192));
    }
    // --- Reduction-B -> 8x8 ---
    b_.SetLayerScope("reduction_b");
    x = ReductionB(x);
    // --- 2x Inception-C (8x8) ---
    for (int i = 0; i < 2; ++i) {
      b_.SetLayerScope("mixed_c" + std::to_string(i));
      x = InceptionC(x);
    }

    // --- head ---
    b_.SetLayerScope("head");
    OpId pooled = b_.Add(
        OpType::kAvgPool, "global_pool", TensorShape{config_.batch, x.channels},
        {x.op},
        {.flops = ElementwiseFlops(config_.batch * x.size * x.size * x.channels)});
    OpId logits = b_.Add(
        OpType::kMatMul, "logits",
        TensorShape{config_.batch, config_.num_classes}, {pooled},
        {.flops = MatMulFlops(config_.batch, x.channels, config_.num_classes),
         .param_bytes = DenseParamBytes(x.channels, config_.num_classes)});
    OpId labels =
        b_.Add(OpType::kPlaceholder, "labels", TensorShape{config_.batch},
               {}, {.cpu_only = true});
    OpId loss = b_.Add(OpType::kCrossEntropy, "loss", TensorShape{1},
                       {logits, labels},
                       {.flops = ElementwiseFlops(
                            config_.batch * config_.num_classes * 4)});

    graph::OpGraph graph = b_.TakeGraph();
    if (config_.training) {
      AddTrainingOps(graph, loss);
    }
    return graph;
  }

 private:
  TensorShape Shape(std::int64_t size, std::int64_t channels) const {
    return TensorShape{config_.batch, size, size, channels};
  }

  // Conv2D + BatchNorm + ReLU — the unit every Inception branch is made of.
  FeatureMap ConvBnRelu(FeatureMap in, std::int64_t c_out, std::int64_t kernel,
                        std::int64_t stride, bool same = false) {
    std::int64_t out_size =
        stride == 1 ? (same ? in.size : in.size - kernel + 1)
                    : (in.size - kernel) / stride + 1;
    if (kernel == 1) out_size = in.size / stride;
    OpId conv = b_.Add(
        OpType::kConv2D, "conv", Shape(out_size, c_out), {in.op},
        {.flops = Conv2DFlops(config_.batch, out_size, out_size, in.channels,
                              c_out, kernel),
         .param_bytes = Conv2DParamBytes(in.channels, c_out, kernel)});
    const auto n = config_.batch * out_size * out_size * c_out;
    OpId bn = b_.Add(OpType::kBatchNorm, "bn", Shape(out_size, c_out), {conv},
                     {.flops = ElementwiseFlops(n * 4),
                      .param_bytes = c_out * 2 * 4});
    OpId relu = b_.Add(OpType::kRelu, "relu", Shape(out_size, c_out), {bn},
                       {.flops = ElementwiseFlops(n)});
    return {relu, out_size, c_out};
  }

  FeatureMap Pool(FeatureMap in, OpType type, std::int64_t kernel,
                  std::int64_t stride, bool same = false) {
    const std::int64_t out_size =
        same ? in.size : (in.size - kernel) / stride + 1;
    OpId pool = b_.Add(
        type, type == OpType::kMaxPool ? "maxpool" : "avgpool",
        Shape(out_size, in.channels), {in.op},
        {.flops = ElementwiseFlops(config_.batch * out_size * out_size *
                                   in.channels * kernel * kernel)});
    return {pool, out_size, in.channels};
  }

  FeatureMap ConcatBranches(const std::vector<FeatureMap>& branches) {
    std::int64_t channels = 0;
    std::vector<OpId> inputs;
    for (const auto& br : branches) {
      channels += br.channels;
      inputs.push_back(br.op);
    }
    const std::int64_t size = branches.front().size;
    OpId cat = b_.Add(
        OpType::kConcat, "concat", Shape(size, channels), inputs,
        {.flops = ElementwiseFlops(config_.batch * size * size * channels)});
    return {cat, size, channels};
  }

  FeatureMap InceptionA(FeatureMap in, std::int64_t pool_proj) {
    FeatureMap b1 = ConvBnRelu(in, 64, 1, 1);
    FeatureMap b2 = ConvBnRelu(ConvBnRelu(in, 48, 1, 1), 64, 5, 1, true);
    FeatureMap b3 = ConvBnRelu(
        ConvBnRelu(ConvBnRelu(in, 64, 1, 1), 96, 3, 1, true), 96, 3, 1, true);
    FeatureMap b4 =
        ConvBnRelu(Pool(in, OpType::kAvgPool, 3, 1, true), pool_proj, 1, 1);
    return ConcatBranches({b1, b2, b3, b4});
  }

  FeatureMap ReductionA(FeatureMap in) {
    FeatureMap b1 = ConvBnRelu(in, 384, 3, 2);
    FeatureMap b2 = ConvBnRelu(
        ConvBnRelu(ConvBnRelu(in, 64, 1, 1), 96, 3, 1, true), 96, 3, 2);
    FeatureMap b3 = Pool(in, OpType::kMaxPool, 3, 2);
    return ConcatBranches({b1, b2, b3});
  }

  // 7x1/1x7 factorized convs modelled as kernel-7 convs at half cost.
  FeatureMap Conv7Factorized(FeatureMap in, std::int64_t c_out) {
    const std::int64_t out_size = in.size;
    OpId conv = b_.Add(
        OpType::kConv2D, "conv7", Shape(out_size, c_out), {in.op},
        {.flops = Conv2DFlops(config_.batch, out_size, out_size, in.channels,
                              c_out, 7) / 7.0,  // 1x7 slice of a 7x7
         .param_bytes = Conv2DParamBytes(in.channels, c_out, 7) / 7});
    const auto n = config_.batch * out_size * out_size * c_out;
    OpId bn = b_.Add(OpType::kBatchNorm, "bn", Shape(out_size, c_out), {conv},
                     {.flops = ElementwiseFlops(n * 4),
                      .param_bytes = c_out * 2 * 4});
    OpId relu = b_.Add(OpType::kRelu, "relu", Shape(out_size, c_out), {bn},
                       {.flops = ElementwiseFlops(n)});
    return {relu, out_size, c_out};
  }

  FeatureMap InceptionB(FeatureMap in, std::int64_t c7) {
    FeatureMap b1 = ConvBnRelu(in, 192, 1, 1);
    FeatureMap b2 = Conv7Factorized(Conv7Factorized(ConvBnRelu(in, c7, 1, 1),
                                                    c7),
                                    192);
    FeatureMap b3 = Conv7Factorized(
        Conv7Factorized(
            Conv7Factorized(Conv7Factorized(ConvBnRelu(in, c7, 1, 1), c7), c7),
            c7),
        192);
    FeatureMap b4 =
        ConvBnRelu(Pool(in, OpType::kAvgPool, 3, 1, true), 192, 1, 1);
    return ConcatBranches({b1, b2, b3, b4});
  }

  FeatureMap ReductionB(FeatureMap in) {
    FeatureMap b1 = ConvBnRelu(ConvBnRelu(in, 192, 1, 1), 320, 3, 2);
    FeatureMap b2 = ConvBnRelu(
        Conv7Factorized(Conv7Factorized(ConvBnRelu(in, 192, 1, 1), 192), 192),
        192, 3, 2);
    FeatureMap b3 = Pool(in, OpType::kMaxPool, 3, 2);
    return ConcatBranches({b1, b2, b3});
  }

  FeatureMap InceptionC(FeatureMap in) {
    FeatureMap b1 = ConvBnRelu(in, 320, 1, 1);
    // Split branches 3x1 + 1x3 concatenated.
    FeatureMap b2a = ConvBnRelu(in, 384, 1, 1);
    FeatureMap b2b = ConvBnRelu(b2a, 384, 3, 1, true);
    FeatureMap b2c = ConvBnRelu(b2a, 384, 3, 1, true);
    FeatureMap b2 = ConcatBranches({b2b, b2c});
    FeatureMap b3a = ConvBnRelu(ConvBnRelu(in, 448, 1, 1), 384, 3, 1, true);
    FeatureMap b3b = ConvBnRelu(b3a, 384, 3, 1, true);
    FeatureMap b3c = ConvBnRelu(b3a, 384, 3, 1, true);
    FeatureMap b3 = ConcatBranches({b3b, b3c});
    FeatureMap b4 =
        ConvBnRelu(Pool(in, OpType::kAvgPool, 3, 1, true), 192, 1, 1);
    return ConcatBranches({b1, b2, b3, b4});
  }

  InceptionConfig config_;
  GraphBuilder b_;
};

}  // namespace

graph::OpGraph BuildInceptionV3(const InceptionConfig& config) {
  EAGLE_CHECK(config.batch >= 1);
  return InceptionBuilder(config).Build();
}

}  // namespace eagle::models
