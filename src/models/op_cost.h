// FLOP and parameter-count formulas for common layer types.
//
// These populate OpDef::flops / param_bytes so the execution simulator's
// cost model reflects real layer asymmetries (a 1x1 conv vs a 5x5 conv, a
// vocab-sized projection vs an LSTM gate matmul, ...).
#pragma once

#include <cstdint>

namespace eagle::models {

// 2 * N * C_in * K * K * H_out * W_out * C_out (multiply-add counted as 2).
double Conv2DFlops(std::int64_t batch, std::int64_t h_out, std::int64_t w_out,
                   std::int64_t c_in, std::int64_t c_out, std::int64_t kernel);

// 2 * M * K * N.
double MatMulFlops(std::int64_t m, std::int64_t k, std::int64_t n);

// Conv kernel parameters in bytes (fp32), including bias.
std::int64_t Conv2DParamBytes(std::int64_t c_in, std::int64_t c_out,
                              std::int64_t kernel);

// Dense layer parameters in bytes (fp32), including bias.
std::int64_t DenseParamBytes(std::int64_t in_dim, std::int64_t out_dim);

// Fused LSTM cell: one step for `batch` rows, input `in_dim`, hidden
// `hidden` (computes all four gates).
double LstmCellFlops(std::int64_t batch, std::int64_t in_dim,
                     std::int64_t hidden);
std::int64_t LstmCellParamBytes(std::int64_t in_dim, std::int64_t hidden);

// Cheap elementwise op over n elements (1 flop each).
double ElementwiseFlops(std::int64_t n);

}  // namespace eagle::models
