#include "models/zoo.h"

#include <utility>

#include "graph/validate.h"
#include "models/bert.h"
#include "models/gnmt.h"
#include "models/inception_v3.h"
#include "support/check.h"

namespace eagle::models {

Benchmark BenchmarkFromName(const std::string& name) {
  if (name == "inception_v3" || name == "inception") {
    return Benchmark::kInceptionV3;
  }
  if (name == "gnmt" || name == "nmt") return Benchmark::kGNMT;
  if (name == "bert" || name == "bert_base") return Benchmark::kBertBase;
  EAGLE_CHECK_MSG(false, "unknown benchmark '" << name
                                               << "' (expected inception_v3 |"
                                                  " gnmt | bert)");
}

const char* BenchmarkName(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kInceptionV3: return "Inception-V3";
    case Benchmark::kGNMT: return "GNMT";
    case Benchmark::kBertBase: return "BERT";
  }
  return "?";
}

std::vector<Benchmark> AllBenchmarks() {
  return {Benchmark::kInceptionV3, Benchmark::kGNMT, Benchmark::kBertBase};
}

graph::OpGraph BuildBenchmark(Benchmark benchmark, const ZooOptions& options) {
  switch (benchmark) {
    case Benchmark::kInceptionV3: {
      InceptionConfig config;
      config.training = options.training;
      return BuildInceptionV3(config);
    }
    case Benchmark::kGNMT: {
      GnmtConfig config;
      config.training = options.training;
      if (options.reduced) {
        config.seq_len = 8;
        config.hidden = 256;
        config.vocab = 4000;
        config.batch = 32;
      }
      return BuildGNMT(config);
    }
    case Benchmark::kBertBase: {
      BertConfig config;
      config.training = options.training;
      if (options.reduced) {
        config.layers = 4;
        config.seq_len = 128;
        config.batch = 8;
        config.heads = 4;
      }
      return BuildBertBase(config);
    }
  }
  EAGLE_CHECK(false);
}

namespace {

struct ImportedGraph {
  std::string name;
  graph::OpGraph graph;
};

// Plain static storage, no lock: registration happens during
// single-threaded flag handling (see the header contract), and lookups
// after that are read-only.
std::vector<ImportedGraph>& ImportedRegistry() {
  static std::vector<ImportedGraph> registry;
  return registry;
}

bool IsBenchmarkName(const std::string& name) {
  return name == "inception_v3" || name == "inception" || name == "gnmt" ||
         name == "nmt" || name == "bert" || name == "bert_base";
}

}  // namespace

support::Status RegisterImportedGraph(const std::string& name,
                                      graph::OpGraph graph) {
  if (name.empty()) {
    return support::Status::Error(support::ErrorCode::kSyntax,
                                  "imported graph needs a non-empty name");
  }
  if (IsBenchmarkName(name) || FindImportedGraph(name) != nullptr) {
    return support::Status::Error(
        support::ErrorCode::kDuplicateOp,
        "graph name '" + name + "' is already taken");
  }
  support::Status status = graph::ValidateGraph(graph);
  if (!status.ok()) return status.At(name);
  ImportedRegistry().push_back(ImportedGraph{name, std::move(graph)});
  return support::Status::Ok();
}

const graph::OpGraph* FindImportedGraph(const std::string& name) {
  for (const ImportedGraph& entry : ImportedRegistry()) {
    if (entry.name == name) return &entry.graph;
  }
  return nullptr;
}

std::vector<std::string> ImportedGraphNames() {
  std::vector<std::string> names;
  names.reserve(ImportedRegistry().size());
  for (const ImportedGraph& entry : ImportedRegistry()) {
    names.push_back(entry.name);
  }
  return names;
}

void ClearImportedGraphs() { ImportedRegistry().clear(); }

}  // namespace eagle::models
