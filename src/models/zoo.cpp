#include "models/zoo.h"

#include "models/bert.h"
#include "models/gnmt.h"
#include "models/inception_v3.h"
#include "support/check.h"

namespace eagle::models {

Benchmark BenchmarkFromName(const std::string& name) {
  if (name == "inception_v3" || name == "inception") {
    return Benchmark::kInceptionV3;
  }
  if (name == "gnmt" || name == "nmt") return Benchmark::kGNMT;
  if (name == "bert" || name == "bert_base") return Benchmark::kBertBase;
  EAGLE_CHECK_MSG(false, "unknown benchmark '" << name
                                               << "' (expected inception_v3 |"
                                                  " gnmt | bert)");
}

const char* BenchmarkName(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kInceptionV3: return "Inception-V3";
    case Benchmark::kGNMT: return "GNMT";
    case Benchmark::kBertBase: return "BERT";
  }
  return "?";
}

std::vector<Benchmark> AllBenchmarks() {
  return {Benchmark::kInceptionV3, Benchmark::kGNMT, Benchmark::kBertBase};
}

graph::OpGraph BuildBenchmark(Benchmark benchmark, const ZooOptions& options) {
  switch (benchmark) {
    case Benchmark::kInceptionV3: {
      InceptionConfig config;
      config.training = options.training;
      return BuildInceptionV3(config);
    }
    case Benchmark::kGNMT: {
      GnmtConfig config;
      config.training = options.training;
      if (options.reduced) {
        config.seq_len = 8;
        config.hidden = 256;
        config.vocab = 4000;
        config.batch = 32;
      }
      return BuildGNMT(config);
    }
    case Benchmark::kBertBase: {
      BertConfig config;
      config.training = options.training;
      if (options.reduced) {
        config.layers = 4;
        config.seq_len = 128;
        config.batch = 8;
        config.heads = 4;
      }
      return BuildBertBase(config);
    }
  }
  EAGLE_CHECK(false);
}

}  // namespace eagle::models
