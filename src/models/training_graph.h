// Training-graph augmentation: mirrors the forward graph with backward
// (gradient) operations and appends optimizer-update ops.
//
// The paper's agents place *training* graphs — the per-step time measured
// as reward includes forward, backward and parameter updates, and device
// memory must hold forward activations until their gradients consume them.
// This pass reproduces both effects structurally:
//   - for each forward op F a gradient op dF is added, with
//       * an edge dC -> dF for every forward edge F -> C (gradient flow,
//         carrying grad-of-output bytes = F's output bytes), and
//       * an edge F -> dF (the saved activation the backward op re-reads),
//     so activations stay live across the whole backward pass;
//   - for each parameterized forward op an ApplyAdam op is added, fed by
//     dF, holding the optimizer slot memory (m, v = 2x params) and
//     colocated with F (TensorFlow colocates variables with their update).
#pragma once

#include "graph/op_graph.h"

namespace eagle::models {

struct TrainingGraphOptions {
  // Backward ops cost roughly 2x forward (dL/dx and dL/dw products).
  double backward_flops_factor = 2.0;
  // Skip mirroring trivially cheap ops below this FLOP threshold and with
  // no parameters (their gradients are fused into neighbors in real
  // frameworks); keeps graph size realistic instead of exactly 2x.
  double min_flops_to_mirror = 0.0;
  bool add_optimizer_ops = true;
};

// Appends backward + optimizer ops to `graph`, starting the gradient chain
// at `loss_op`. Returns the number of ops added.
int AddTrainingOps(graph::OpGraph& graph, graph::OpId loss_op,
                   const TrainingGraphOptions& options = {});

}  // namespace eagle::models
