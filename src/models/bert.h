// BERT-Base training-graph builder (Devlin et al., 2019).
//
// The paper's "very large" benchmark: BERT-Base, max sequence length 384,
// batch size 24 (§IV-A) — a configuration that cannot fit on a single
// 12 GB GPU but trains when spread across four. Attention is decomposed
// per head (as the TF graph does), which is what pushes the op count and
// gives the placer fine-grained parallelism to exploit.
#pragma once

#include "graph/op_graph.h"

namespace eagle::models {

struct BertConfig {
  int batch = 24;
  int seq_len = 384;
  int hidden = 768;
  int layers = 12;
  int heads = 12;
  int ffn_dim = 3072;
  int vocab = 30522;
  bool training = true;
};

graph::OpGraph BuildBertBase(const BertConfig& config = {});

}  // namespace eagle::models
