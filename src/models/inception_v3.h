// Inception-V3 training-graph builder (Szegedy et al., CVPR 2016).
//
// The paper uses Inception-V3 at batch size 1 as the "small model" base
// case (§IV-A): it fits on a single GPU and the optimal placement keeps
// nearly everything on one device because per-op launch overhead and PCIe
// latency outweigh any parallelism gain.
#pragma once

#include "graph/op_graph.h"

namespace eagle::models {

struct InceptionConfig {
  int batch = 1;
  int image_size = 299;
  int num_classes = 1000;
  bool training = true;  // append backward + optimizer ops
};

graph::OpGraph BuildInceptionV3(const InceptionConfig& config = {});

}  // namespace eagle::models
