#include "models/synthetic.h"

#include <cmath>
#include <string>
#include <vector>

#include "models/builder.h"
#include "models/training_graph.h"
#include "support/check.h"

namespace eagle::models {

using graph::OpId;
using graph::OpType;
using graph::TensorShape;

graph::OpGraph BuildChain(int n, std::int64_t tensor_elems,
                          double flops_per_op) {
  EAGLE_CHECK(n >= 1);
  GraphBuilder b;
  OpId prev = b.Add(OpType::kPlaceholder, "input", TensorShape{tensor_elems},
                    {});
  for (int i = 0; i < n; ++i) {
    prev = b.Add(OpType::kMatMul, "op" + std::to_string(i),
                 TensorShape{tensor_elems}, {prev}, {.flops = flops_per_op});
  }
  return b.TakeGraph();
}

graph::OpGraph BuildParallelChains(int width, int depth,
                                   std::int64_t tensor_elems,
                                   double flops_per_op) {
  EAGLE_CHECK(width >= 1 && depth >= 1);
  GraphBuilder b;
  OpId source = b.Add(OpType::kPlaceholder, "input",
                      TensorShape{tensor_elems}, {});
  std::vector<OpId> tails;
  for (int w = 0; w < width; ++w) {
    OpId prev = source;
    for (int d = 0; d < depth; ++d) {
      prev = b.Add(OpType::kMatMul,
                   "chain" + std::to_string(w) + "_op" + std::to_string(d),
                   TensorShape{tensor_elems}, {prev},
                   {.flops = flops_per_op,
                    .layer = "chain" + std::to_string(w)});
    }
    tails.push_back(prev);
  }
  b.Add(OpType::kConcat, "join",
        TensorShape{static_cast<std::int64_t>(width) * tensor_elems}, tails);
  return b.TakeGraph();
}

graph::OpGraph BuildRandomDag(const RandomDagConfig& config,
                              support::Rng& rng) {
  EAGLE_CHECK(config.layers >= 1 && config.width >= 1);
  GraphBuilder b;
  std::vector<OpId> previous;
  previous.push_back(
      b.Add(OpType::kPlaceholder, "input", TensorShape{1024}, {}));
  // Log-uniform draw in [lo, hi].
  auto log_uniform = [&rng](double lo, double hi) {
    return std::exp(rng.NextUniform(std::log(lo), std::log(hi)));
  };

  std::vector<OpId> all = previous;
  for (int layer = 0; layer < config.layers; ++layer) {
    std::vector<OpId> current;
    for (int w = 0; w < config.width; ++w) {
      const auto elems = static_cast<std::int64_t>(
          log_uniform(static_cast<double>(config.min_elems),
                      static_cast<double>(config.max_elems)));
      const double flops = log_uniform(config.min_flops, config.max_flops);
      const bool cpu_only = rng.NextDouble() < config.cpu_only_fraction;
      GraphBuilder::Opts opts{.flops = flops,
                              .param_bytes = rng.NextDouble() < 0.3
                                                 ? elems * 4
                                                 : 0,
                              .cpu_only = cpu_only,
                              .layer = "rank" + std::to_string(layer)};
      OpId op = b.Add(cpu_only ? OpType::kEmbeddingLookup : OpType::kMatMul,
                      "l" + std::to_string(layer) + "_op" + std::to_string(w),
                      TensorShape{elems}, {}, opts);
      const int fanin =
          1 + static_cast<int>(rng.NextBelow(
                  static_cast<std::uint64_t>(config.max_fanin)));
      for (int f = 0; f < fanin; ++f) {
        // Prefer recent producers so depth actually grows.
        const std::size_t lo =
            all.size() > static_cast<std::size_t>(2 * config.width)
                ? all.size() - static_cast<std::size_t>(2 * config.width)
                : 0;
        const auto pick =
            lo + rng.NextBelow(static_cast<std::uint64_t>(all.size() - lo));
        b.Wire(all[static_cast<std::size_t>(pick)], op);
      }
      current.push_back(op);
    }
    for (OpId id : current) all.push_back(id);
    previous = std::move(current);
  }
  // Join everything into one sink so the DAG has a single loss-like output.
  OpId loss = b.Add(OpType::kCrossEntropy, "loss", TensorShape{1}, previous);
  graph::OpGraph graph = b.TakeGraph();
  if (config.training) AddTrainingOps(graph, loss);
  return graph;
}

}  // namespace eagle::models
