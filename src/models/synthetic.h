// Synthetic graph generators for unit tests, property tests and examples.
#pragma once

#include <cstdint>

#include "graph/op_graph.h"
#include "support/rng.h"

namespace eagle::models {

// A straight chain of n compute ops (no parallelism to exploit).
graph::OpGraph BuildChain(int n, std::int64_t tensor_elems = 1 << 16,
                          double flops_per_op = 1e8);

// `width` parallel chains of length `depth` sharing a source and a sink —
// the canonical case where spreading across devices wins.
graph::OpGraph BuildParallelChains(int width, int depth,
                                   std::int64_t tensor_elems = 1 << 16,
                                   double flops_per_op = 1e9);

// Random layered DAG: `layers` ranks of `width` ops, each op consuming
// 1..max_fanin ops from earlier ranks. Op costs and tensor sizes are drawn
// log-uniformly so features span realistic magnitudes.
struct RandomDagConfig {
  int layers = 10;
  int width = 8;
  int max_fanin = 3;
  double min_flops = 1e6;
  double max_flops = 1e10;
  std::int64_t min_elems = 1 << 10;
  std::int64_t max_elems = 1 << 22;
  double cpu_only_fraction = 0.02;
  bool training = false;
};
graph::OpGraph BuildRandomDag(const RandomDagConfig& config,
                              support::Rng& rng);

}  // namespace eagle::models
