// GNMT training-graph builder (Wu et al., 2016).
//
// The paper uses the 4-layer variant with attention, batch size raised
// from 128 to 256 so the model no longer fits on a single GPU (§IV-A).
// The graph is unrolled over time: layer weights are explicit Variable
// ops read by every timestep's gate matmul, so placing a layer's cells
// away from its weights shows up as PCIe traffic — the pressure that
// makes the human-expert layer-per-device placement sensible.
#pragma once

#include "graph/op_graph.h"

namespace eagle::models {

struct GnmtConfig {
  int batch = 256;
  int seq_len = 50;        // the top of the paper's 20-50 window
  int hidden = 1024;
  int layers = 4;          // encoder and decoder depth (first enc layer is
                           // bidirectional, as in GNMT)
  int vocab = 36000;
  bool training = true;
};

graph::OpGraph BuildGNMT(const GnmtConfig& config = {});

}  // namespace eagle::models
