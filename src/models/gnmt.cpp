#include "models/gnmt.h"

#include <string>
#include <vector>

#include "models/builder.h"
#include "models/op_cost.h"
#include "models/training_graph.h"
#include "support/check.h"

namespace eagle::models {

using graph::OpId;
using graph::OpType;
using graph::TensorShape;

namespace {

class GnmtBuilder {
 public:
  explicit GnmtBuilder(const GnmtConfig& config) : c_(config) {}

  graph::OpGraph Build() {
    const std::int64_t b = c_.batch;
    const std::int64_t h = c_.hidden;
    const std::int64_t s = c_.seq_len;

    // --- embeddings (CPU-pinned lookups, as in the paper's baselines) ---
    b_.SetLayerScope("embedding");
    OpId src_table = Variable("src_embedding", c_.vocab * h * 4, true);
    OpId tgt_table = Variable("tgt_embedding", c_.vocab * h * 4, true);

    std::vector<OpId> src_emb(static_cast<std::size_t>(s));
    std::vector<OpId> tgt_emb(static_cast<std::size_t>(s));
    for (int t = 0; t < s; ++t) {
      src_emb[static_cast<std::size_t>(t)] =
          Lookup("src_lookup_t" + std::to_string(t), src_table);
      tgt_emb[static_cast<std::size_t>(t)] =
          Lookup("tgt_lookup_t" + std::to_string(t), tgt_table);
    }

    // --- encoder: layer 0 bidirectional, layers 1..L-1 unidirectional,
    //     residual connections from layer 2 on (GNMT §3) ---
    std::vector<OpId> enc = src_emb;
    {
      b_.SetLayerScope("encoder/lstm0");
      auto fwd = RunLstmLayer("enc0f", enc, h, /*reverse=*/false);
      auto bwd = RunLstmLayer("enc0b", enc, h, /*reverse=*/true);
      std::vector<OpId> merged(static_cast<std::size_t>(s));
      for (int t = 0; t < s; ++t) {
        merged[static_cast<std::size_t>(t)] = b_.Add(
            OpType::kConcat, "enc0_concat_t" + std::to_string(t),
            TensorShape{b, 2 * h},
            {fwd[static_cast<std::size_t>(t)], bwd[static_cast<std::size_t>(t)]},
            {.flops = ElementwiseFlops(b * 2 * h)});
      }
      enc = merged;
    }
    for (int layer = 1; layer < c_.layers; ++layer) {
      b_.SetLayerScope("encoder/lstm" + std::to_string(layer));
      auto out = RunLstmLayer("enc" + std::to_string(layer), enc, h, false);
      if (layer >= 2) {
        for (int t = 0; t < s; ++t) {
          out[static_cast<std::size_t>(t)] = b_.Add(
              OpType::kAdd, "enc" + std::to_string(layer) + "_res_t" + std::to_string(t),
              TensorShape{b, h},
              {out[static_cast<std::size_t>(t)], enc[static_cast<std::size_t>(t)]},
              {.flops = ElementwiseFlops(b * h)});
        }
      }
      enc = out;
    }

    // Encoder memory: all top-layer states stacked for attention reads.
    b_.SetLayerScope("attention");
    OpId enc_states =
        b_.Add(OpType::kConcat, "enc_states", TensorShape{b, s, h}, enc,
               {.flops = ElementwiseFlops(b * s * h)});
    OpId attn_w = Variable("attention_w", 2 * h * h * 4, false);

    // --- decoder ---
    // Layer 0 consumes [embedding ; previous attention context]; attention
    // is computed from layer 0's output, GNMT-style.
    std::vector<std::vector<OpId>> dec_h(
        static_cast<std::size_t>(c_.layers),
        std::vector<OpId>(static_cast<std::size_t>(s)));
    std::vector<OpId> contexts(static_cast<std::size_t>(s));

    std::vector<OpId> weights(static_cast<std::size_t>(c_.layers));
    for (int layer = 0; layer < c_.layers; ++layer) {
      b_.SetLayerScope("decoder/lstm" + std::to_string(layer));
      const std::int64_t in_dim = layer == 0 ? 2 * h : h;
      weights[static_cast<std::size_t>(layer)] =
          Variable("dec" + std::to_string(layer) + "_w",
                   LstmCellParamBytes(in_dim, h), false);
    }

    OpId prev_context = graph::kInvalidOp;
    std::vector<OpId> prev_h(static_cast<std::size_t>(c_.layers),
                             graph::kInvalidOp);
    std::vector<OpId> prev_c(static_cast<std::size_t>(c_.layers),
                             graph::kInvalidOp);
    for (int t = 0; t < s; ++t) {
      // Layer 0 input: [y_emb_t ; context_{t-1}].
      b_.SetLayerScope("decoder/lstm0");
      std::vector<OpId> l0_inputs{tgt_emb[static_cast<std::size_t>(t)]};
      if (prev_context != graph::kInvalidOp) l0_inputs.push_back(prev_context);
      OpId x = b_.Add(OpType::kConcat, "dec0_in_t" + std::to_string(t),
                      TensorShape{b, 2 * h}, l0_inputs,
                      {.flops = ElementwiseFlops(b * 2 * h)});
      OpId carry = x;
      for (int layer = 0; layer < c_.layers; ++layer) {
        b_.SetLayerScope("decoder/lstm" + std::to_string(layer));
        const std::int64_t in_dim = layer == 0 ? 2 * h : h;
        auto [h_out, c_out] = LstmCell(
            "dec" + std::to_string(layer) + "_t" + std::to_string(t), carry,
            prev_h[static_cast<std::size_t>(layer)],
            prev_c[static_cast<std::size_t>(layer)],
            weights[static_cast<std::size_t>(layer)], in_dim, h);
        if (layer >= 2) {
          h_out = b_.Add(OpType::kAdd,
                         "dec" + std::to_string(layer) + "_res_t" + std::to_string(t),
                         TensorShape{b, h}, {h_out, carry},
                         {.flops = ElementwiseFlops(b * h)});
        }
        prev_h[static_cast<std::size_t>(layer)] = h_out;
        prev_c[static_cast<std::size_t>(layer)] = c_out;
        dec_h[static_cast<std::size_t>(layer)][static_cast<std::size_t>(t)] =
            h_out;
        carry = h_out;

        // Attention from layer 0's output, context fed forward in time.
        if (layer == 0) {
          b_.SetLayerScope("attention");
          OpId scores = b_.Add(
              OpType::kMatMul, "attn_scores_t" + std::to_string(t),
              TensorShape{b, s}, {h_out, enc_states, attn_w},
              {.flops = MatMulFlops(b, h, h) + MatMulFlops(b, h, s)});
          OpId probs = b_.Add(OpType::kSoftmax,
                              "attn_probs_t" + std::to_string(t),
                              TensorShape{b, s}, {scores},
                              {.flops = ElementwiseFlops(b * s * 3)});
          contexts[static_cast<std::size_t>(t)] = b_.Add(
              OpType::kMatMul, "attn_context_t" + std::to_string(t),
              TensorShape{b, h}, {probs, enc_states},
              {.flops = MatMulFlops(b, s, h)});
          prev_context = contexts[static_cast<std::size_t>(t)];
        }
      }
    }

    // --- vocabulary projection + loss ---
    b_.SetLayerScope("softmax");
    OpId proj_w = Variable("projection_w", h * c_.vocab * 4, false);
    std::vector<OpId> xents(static_cast<std::size_t>(s));
    OpId labels = b_.Add(OpType::kPlaceholder, "labels", TensorShape{b, s}, {},
                         {.cpu_only = true});
    for (int t = 0; t < s; ++t) {
      OpId logits = b_.Add(
          OpType::kMatMul, "logits_t" + std::to_string(t),
          TensorShape{b, c_.vocab},
          {dec_h[static_cast<std::size_t>(c_.layers - 1)][static_cast<std::size_t>(t)],
           proj_w},
          {.flops = MatMulFlops(b, h, c_.vocab)});
      // The softmax output is materialized and saved for the backward pass
      // (as tf's softmax_cross_entropy does) — at batch 256 these B×V
      // tensors are what pushes the model past a single 12 GB card.
      OpId probs = b_.Add(OpType::kSoftmax, "probs_t" + std::to_string(t),
                          TensorShape{b, c_.vocab}, {logits},
                          {.flops = ElementwiseFlops(b * c_.vocab * 3)});
      xents[static_cast<std::size_t>(t)] =
          b_.Add(OpType::kCrossEntropy, "xent_t" + std::to_string(t),
                 TensorShape{b}, {probs, labels},
                 {.flops = ElementwiseFlops(b * c_.vocab)});
    }
    OpId loss = b_.Add(OpType::kReduceSum, "loss", TensorShape{1}, xents,
                       {.flops = ElementwiseFlops(b * s)});

    graph::OpGraph graph = b_.TakeGraph();
    if (c_.training) AddTrainingOps(graph, loss);
    return graph;
  }

 private:
  OpId Variable(const std::string& name, std::int64_t param_bytes,
                bool cpu_only) {
    return b_.Add(OpType::kVariable, name, TensorShape{1},  // handle only
                  {}, {.param_bytes = param_bytes, .cpu_only = cpu_only});
  }

  OpId Lookup(const std::string& name, OpId table) {
    const std::int64_t b = c_.batch;
    const std::int64_t h = c_.hidden;
    OpId lookup =
        b_.Add(OpType::kEmbeddingLookup, name, TensorShape{b, h}, {},
               {.flops = ElementwiseFlops(b * h), .cpu_only = true});
    // The lookup reads `batch` rows of the table, not the whole tensor.
    b_.Wire(table, lookup, b * h * 4);
    return lookup;
  }

  // One LSTM step as 4 ops: concat(x,h) -> gate matmul (reads the shared
  // layer weights) -> fused gate nonlinearity -> fused state update.
  // Returns (h_out, c_out): c_out feeds the next timestep's state update
  // directly, h_out feeds the next timestep's concat and the layer above.
  std::pair<OpId, OpId> LstmCell(const std::string& prefix, OpId x,
                                 OpId h_prev, OpId c_prev, OpId weights,
                                 std::int64_t in_dim, std::int64_t hidden) {
    const std::int64_t b = c_.batch;
    std::vector<OpId> cat_in{x};
    if (h_prev != graph::kInvalidOp) cat_in.push_back(h_prev);
    OpId cat = b_.Add(OpType::kConcat, prefix + "_xh",
                      TensorShape{b, in_dim + hidden}, cat_in,
                      {.flops = ElementwiseFlops(b * (in_dim + hidden))});
    OpId gates = b_.Add(OpType::kMatMul, prefix + "_gates",
                        TensorShape{b, 4 * hidden}, {cat},
                        {.flops = MatMulFlops(b, in_dim + hidden, 4 * hidden)});
    b_.Wire(weights, gates, LstmCellParamBytes(in_dim, hidden));
    OpId act = b_.Add(OpType::kSigmoid, prefix + "_act",
                      TensorShape{b, 4 * hidden}, {gates},
                      {.flops = ElementwiseFlops(b * 4 * hidden)});
    std::vector<OpId> state_in{act};
    if (c_prev != graph::kInvalidOp) state_in.push_back(c_prev);
    OpId h_out = b_.Add(OpType::kMul, prefix + "_state",
                        TensorShape{b, hidden}, state_in,
                        {.flops = ElementwiseFlops(b * hidden * 4)});
    // c flows through the same fused op; modelled as the op's own output
    // feeding the next timestep (h_out doubles as the carrier).
    return {h_out, h_out};
  }

  std::vector<OpId> RunLstmLayer(const std::string& prefix,
                                 const std::vector<OpId>& inputs,
                                 std::int64_t hidden, bool reverse) {
    const int s = static_cast<int>(inputs.size());
    const std::int64_t in_dim =
        b_.graph().op(inputs[0]).output_shape.dim(1);
    OpId weights =
        Variable(prefix + "_w", LstmCellParamBytes(in_dim, hidden), false);
    std::vector<OpId> outputs(static_cast<std::size_t>(s));
    OpId h_prev = graph::kInvalidOp;
    OpId c_prev = graph::kInvalidOp;
    for (int i = 0; i < s; ++i) {
      const int t = reverse ? s - 1 - i : i;
      auto [h_out, c_out] =
          LstmCell(prefix + "_t" + std::to_string(t),
                   inputs[static_cast<std::size_t>(t)], h_prev, c_prev,
                   weights, in_dim, hidden);
      outputs[static_cast<std::size_t>(t)] = h_out;
      h_prev = h_out;
      c_prev = c_out;
    }
    return outputs;
  }

  GnmtConfig c_;
  GraphBuilder b_;
};

}  // namespace

graph::OpGraph BuildGNMT(const GnmtConfig& config) {
  EAGLE_CHECK(config.batch >= 1 && config.seq_len >= 2 && config.layers >= 2);
  return GnmtBuilder(config).Build();
}

}  // namespace eagle::models
