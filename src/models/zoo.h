// Model zoo: the three paper benchmarks behind one string-keyed factory,
// with per-model scale presets so benches can run reduced configurations
// on small machines (--full restores paper-scale graphs).
#pragma once

#include <string>
#include <vector>

#include "graph/op_graph.h"

namespace eagle::models {

enum class Benchmark { kInceptionV3, kGNMT, kBertBase };

// Parses "inception_v3" / "gnmt" / "bert"; throws on unknown names.
Benchmark BenchmarkFromName(const std::string& name);
const char* BenchmarkName(Benchmark benchmark);

// All paper benchmarks in evaluation order (Tables I–IV rows).
std::vector<Benchmark> AllBenchmarks();

struct ZooOptions {
  // Scales the sequence length / layer count of the big models down so a
  // full RL sweep runs on one CPU core; the placement landscape (branches,
  // recurrences, memory pressure relative to device memory) is preserved
  // by also scaling the simulated device memory in MakeScaledCluster().
  bool reduced = false;
  bool training = true;
};

graph::OpGraph BuildBenchmark(Benchmark benchmark,
                              const ZooOptions& options = {});

}  // namespace eagle::models
