// Model zoo: the three paper benchmarks behind one string-keyed factory,
// with per-model scale presets so benches can run reduced configurations
// on small machines (--full restores paper-scale graphs).
#pragma once

#include <string>
#include <vector>

#include "graph/op_graph.h"
#include "support/status.h"

namespace eagle::models {

enum class Benchmark { kInceptionV3, kGNMT, kBertBase };

// Parses "inception_v3" / "gnmt" / "bert"; throws on unknown names.
Benchmark BenchmarkFromName(const std::string& name);
const char* BenchmarkName(Benchmark benchmark);

// All paper benchmarks in evaluation order (Tables I–IV rows).
std::vector<Benchmark> AllBenchmarks();

struct ZooOptions {
  // Scales the sequence length / layer count of the big models down so a
  // full RL sweep runs on one CPU core; the placement landscape (branches,
  // recurrences, memory pressure relative to device memory) is preserved
  // by also scaling the simulated device memory in MakeScaledCluster().
  bool reduced = false;
  bool training = true;
};

graph::OpGraph BuildBenchmark(Benchmark benchmark,
                              const ZooOptions& options = {});

// Imported-graph registry: user-supplied graphs (bench --load files)
// living alongside the built-in benchmarks so sim rows can report on
// them by name. Registration re-validates the graph (graph/validate.h)
// even if the importer already did — the registry is an ingestion entry
// point in its own right — and rejects duplicate or benchmark-colliding
// names with kDuplicateOp. Not thread-safe: register during startup
// flag handling, before any evaluation threads exist.
support::Status RegisterImportedGraph(const std::string& name,
                                      graph::OpGraph graph);
// Null when no graph was registered under `name`.
const graph::OpGraph* FindImportedGraph(const std::string& name);
// Registration order.
std::vector<std::string> ImportedGraphNames();
// Empties the registry (tests).
void ClearImportedGraphs();

}  // namespace eagle::models
