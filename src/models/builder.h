// GraphBuilder: a fluent helper for constructing OpGraphs.
//
// Model builders (Inception-V3 / GNMT / BERT) use this to keep op naming
// unique, wire data edges from producer ops, and tag layers for human-
// expert placements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op_graph.h"

namespace eagle::models {

// Optional attributes for GraphBuilder::Add (designated-initializer
// friendly).
struct OpOpts {
  double flops = 0.0;
  std::int64_t param_bytes = 0;
  bool cpu_only = false;
  std::string layer;
};

class GraphBuilder {
 public:
  GraphBuilder() = default;

  using Opts = OpOpts;

  // Adds an op named "<name>" (made unique with a numeric suffix if taken)
  // whose inputs are the given producer ops. Each input contributes an
  // edge carrying the producer's full output size.
  graph::OpId Add(graph::OpType type, const std::string& name,
                  graph::TensorShape shape,
                  const std::vector<graph::OpId>& inputs, OpOpts opts = {});

  // Adds an edge with explicit byte count (e.g. sliced tensors).
  void Wire(graph::OpId src, graph::OpId dst, std::int64_t bytes = -1) {
    graph_.AddEdge(src, dst, bytes);
  }

  // Sets the default layer tag applied when Opts::layer is empty.
  void SetLayerScope(std::string scope) { layer_scope_ = std::move(scope); }

  const graph::OpGraph& graph() const { return graph_; }
  graph::OpGraph TakeGraph() { return std::move(graph_); }

 private:
  std::string UniqueName(const std::string& base);

  graph::OpGraph graph_;
  std::string layer_scope_;
};

}  // namespace eagle::models
