#include "graph/grouped_graph.h"

#include "support/check.h"

namespace eagle::graph {

void ValidateGrouping(const OpGraph& graph, const Grouping& grouping,
                      int num_groups) {
  EAGLE_CHECK_MSG(static_cast<int>(grouping.size()) == graph.num_ops(),
                  "grouping size " << grouping.size() << " != num ops "
                                   << graph.num_ops());
  EAGLE_CHECK(num_groups > 0);
  for (std::size_t i = 0; i < grouping.size(); ++i) {
    EAGLE_CHECK_MSG(grouping[i] >= 0 && grouping[i] < num_groups,
                    "op " << i << " assigned to invalid group "
                          << grouping[i]);
  }
}

GroupedGraph::GroupedGraph(const OpGraph& graph, Grouping grouping,
                           int num_groups)
    : graph_(&graph),
      grouping_(std::move(grouping)),
      num_groups_(num_groups),
      groups_(static_cast<std::size_t>(num_groups)),
      members_(static_cast<std::size_t>(num_groups)),
      traffic_(static_cast<std::size_t>(num_groups) *
                   static_cast<std::size_t>(num_groups),
               0) {
  ValidateGrouping(graph, grouping_, num_groups_);
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    const int g = grouping_[static_cast<std::size_t>(i)];
    GroupInfo& info = groups_[static_cast<std::size_t>(g)];
    info.num_ops++;
    info.flops += op.flops;
    info.param_bytes += op.param_bytes;
    info.output_bytes += op.output_bytes();
    info.has_cpu_only |= op.cpu_only;
    info.type_counts[static_cast<std::size_t>(op.type)]++;
    members_[static_cast<std::size_t>(g)].push_back(i);
  }
  for (const Edge& e : graph.edges()) {
    const int g = grouping_[static_cast<std::size_t>(e.src)];
    const int h = grouping_[static_cast<std::size_t>(e.dst)];
    if (g != h) {
      traffic_[static_cast<std::size_t>(g) *
                   static_cast<std::size_t>(num_groups_) +
               static_cast<std::size_t>(h)] += e.bytes;
    }
  }
}

const GroupedGraph::GroupInfo& GroupedGraph::group(int g) const {
  EAGLE_CHECK(g >= 0 && g < num_groups_);
  return groups_[static_cast<std::size_t>(g)];
}

std::int64_t GroupedGraph::TrafficBetween(int g, int h) const {
  EAGLE_CHECK(g >= 0 && g < num_groups_ && h >= 0 && h < num_groups_);
  return traffic_[static_cast<std::size_t>(g) *
                      static_cast<std::size_t>(num_groups_) +
                  static_cast<std::size_t>(h)];
}

std::int64_t GroupedGraph::CutBytes() const {
  std::int64_t total = 0;
  for (auto b : traffic_) total += b;
  return total;
}

std::vector<std::int32_t> GroupedGraph::ExpandToOps(
    const std::vector<std::int32_t>& group_devices) const {
  EAGLE_CHECK_MSG(static_cast<int>(group_devices.size()) == num_groups_,
                  "device decision covers " << group_devices.size()
                                            << " groups, expected "
                                            << num_groups_);
  std::vector<std::int32_t> per_op(grouping_.size());
  for (std::size_t i = 0; i < grouping_.size(); ++i) {
    per_op[i] = group_devices[static_cast<std::size_t>(grouping_[i])];
  }
  return per_op;
}

}  // namespace eagle::graph
