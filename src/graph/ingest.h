// Hardened graph ingestion: StatusOr parsers for untrusted input.
//
// graph_io.h's LoadText/LoadTextFile keep their original throwing
// contract for internal callers that own their inputs (tests, zoo
// builders). Everything that accepts a *user-supplied* graph file —
// inspect_model --load, trace_placement --load, bench --load, zoo
// registration of imported graphs — goes through this module instead:
// no input, however malformed, makes these functions throw or abort.
// Failures come back as a support::Status carrying an error-taxonomy
// code and the file:line:column the problem was detected at.
//
// Two formats are accepted:
//   *.eg   — the line-based text format written by SaveText
//   *.json — the object written by ToJson (FromJson closes the loop on
//            the previously write-only JSON export)
// Both round-trip byte-identically: parse(print(g)) reprints to the
// same bytes. docs/GRAPH_FORMATS.md specifies the grammars, the error
// taxonomy, and the IngestLimits defaults.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/op_graph.h"
#include "graph/validate.h"
#include "support/status.h"

namespace eagle::graph {

struct IngestOptions {
  // Resource caps applied both during parsing (so a hostile file cannot
  // balloon memory before validation runs) and by ValidateGraph after.
  IngestLimits limits;
  // Run ValidateGraph (cycle check, duplicate edges, byte arithmetic)
  // on the parsed graph. Off only for tools that want to inspect a
  // broken graph anyway.
  bool validate = true;
  // Name used in diagnostics ("<input>" for in-memory strings;
  // ImportGraphFile overrides it with the path).
  std::string source_name = "<input>";
};

// Parses the .eg text format. Never throws on malformed input.
support::StatusOr<OpGraph> ParseTextGraph(std::istream& in,
                                          const IngestOptions& opts = {});
support::StatusOr<OpGraph> ParseTextGraph(const std::string& text,
                                          const IngestOptions& opts = {});

// Parses the JSON graph format emitted by ToJson. Never throws on
// malformed input. Syntax errors carry line:column derived from the
// JSON parser's byte offset; semantic errors name the offending
// ops[i]/edges[i] entry in the message.
support::StatusOr<OpGraph> FromJson(const std::string& text,
                                    const IngestOptions& opts = {});

// Opens `path`, dispatches on its suffix (".json" → FromJson, anything
// else → ParseTextGraph), and uses the path as the diagnostic source
// name. kIo when the file cannot be opened or read.
support::StatusOr<OpGraph> ImportGraphFile(const std::string& path,
                                           const IngestOptions& opts = {});

}  // namespace eagle::graph
