#include "graph/tensor_shape.h"

#include <sstream>

#include "support/check.h"

namespace eagle::graph {

TensorShape::TensorShape(std::initializer_list<std::int64_t> dims)
    : dims_(dims) {
  for (auto d : dims_) EAGLE_CHECK_MSG(d >= 0, "negative dim " << d);
}

TensorShape::TensorShape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)) {
  for (auto d : dims_) EAGLE_CHECK_MSG(d >= 0, "negative dim " << d);
}

std::int64_t TensorShape::dim(int i) const {
  EAGLE_CHECK(i >= 0 && i < rank());
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t TensorShape::NumElements() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace eagle::graph
