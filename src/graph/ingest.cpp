#include "graph/ingest.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/parse_num.h"
#include "support/json.h"

namespace eagle::graph {

using support::ErrorCode;
using support::Status;
using support::StatusOr;

namespace {

// A whitespace-delimited token and the 1-based column it starts at.
struct Tok {
  std::string_view text;
  int col = 0;
};

void TokenizeLine(const std::string& line, std::vector<Tok>* out) {
  out->clear();
  const std::string_view sv(line);
  std::size_t i = 0;
  while (i < sv.size()) {
    if (sv[i] == ' ' || sv[i] == '\t') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < sv.size() && sv[j] != ' ' && sv[j] != '\t') ++j;
    out->push_back(Tok{sv.substr(i, j - i), static_cast<int>(i) + 1});
    i = j;
  }
}

// Classifies a failed numeric conversion: a token that *tried* to be a
// number is an overflow, anything else is a syntax error.
ErrorCode NumericFailCode(std::string_view token) {
  return LooksNumeric(token) ? ErrorCode::kNumericOverflow
                             : ErrorCode::kSyntax;
}

// Exact double→int64 conversion for JSON quantities; false on
// non-finite, fractional, or out-of-range values (a bare static_cast
// would be undefined behaviour on those).
bool JsonToInt64(double v, std::int64_t* out) {
  if (!std::isfinite(v) || std::floor(v) != v) return false;
  if (v < -9223372036854775808.0 || v >= 9223372036854775808.0) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

std::string Quote(std::string_view s) {
  return "'" + std::string(s) + "'";
}

// Kahn's algorithm with edge attribution: when a cycle exists, reports
// the first declared edge whose both endpoints failed to topologically
// drain — an edge on (or feeding) the cycle — with its source position
// when the caller tracked one.
Status CycleCheck(const OpGraph& graph,
                  const std::vector<std::pair<int, int>>& edge_sites,
                  const std::string& source_name) {
  const int n = graph.num_ops();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const Edge& e : graph.edges()) {
    ++indeg[static_cast<std::size_t>(e.dst)];
  }
  std::vector<OpId> stack;
  for (OpId i = 0; i < n; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) stack.push_back(i);
  }
  int processed = 0;
  while (!stack.empty()) {
    const OpId u = stack.back();
    stack.pop_back();
    ++processed;
    for (std::int32_t ei : graph.out_edges(u)) {
      const OpId v = graph.edges()[static_cast<std::size_t>(ei)].dst;
      if (--indeg[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
    }
  }
  if (processed == n) return Status::Ok();
  for (std::size_t i = 0; i < graph.edges().size(); ++i) {
    const Edge& e = graph.edges()[i];
    if (indeg[static_cast<std::size_t>(e.src)] > 0 &&
        indeg[static_cast<std::size_t>(e.dst)] > 0) {
      Status status = Status::Error(
          ErrorCode::kCycle, "edge " + Quote(graph.op(e.src).name) + " -> " +
                                 Quote(graph.op(e.dst).name) +
                                 " lies on a dependency cycle");
      if (i < edge_sites.size()) {
        status.At(source_name, edge_sites[i].first, edge_sites[i].second);
      } else {
        status.At(source_name);
      }
      return status;
    }
  }
  return Status::Error(ErrorCode::kCycle, "graph contains a cycle")
      .At(source_name);
}

// Caps + byte arithmetic + duplicate-name guard applied before an op is
// admitted; the pre-AddOp CheckedOpBytes call is load-bearing, since
// AddEdge's producer-size default multiplies the shape out unchecked.
Status CheckAddOp(OpGraph* graph, OpDef op, const IngestLimits& limits) {
  if (graph->FindOp(op.name) != kInvalidOp) {
    return Status::Error(ErrorCode::kDuplicateOp,
                         "op " + Quote(op.name) + " already declared");
  }
  if (graph->num_ops() >= limits.max_ops) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "graph exceeds the " +
                             std::to_string(limits.max_ops) + "-op limit");
  }
  if (op.output_shape.rank() > limits.max_rank) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "op " + Quote(op.name) + " has rank " +
                             std::to_string(op.output_shape.rank()) +
                             ", limit is " +
                             std::to_string(limits.max_rank));
  }
  std::int64_t bytes = 0;
  Status status = CheckedOpBytes(op, &bytes);
  if (!status.ok()) return status;
  graph->AddOp(std::move(op));
  return Status::Ok();
}

// Shared by both parsers once endpoints resolve to valid ids. `bytes`
// is either >= 0 or the -1 producer-size sentinel (negative values from
// the input must be rejected by the caller first).
Status CheckAddEdge(OpGraph* graph, std::set<std::pair<OpId, OpId>>* pairs,
                    OpId src, OpId dst, std::int64_t bytes,
                    const IngestLimits& limits) {
  if (src == dst) {
    return Status::Error(ErrorCode::kCycle,
                         "self edge on op " + Quote(graph->op(src).name));
  }
  if (!pairs->insert({src, dst}).second) {
    return Status::Error(ErrorCode::kDuplicateEdge,
                         "duplicate edge " + Quote(graph->op(src).name) +
                             " -> " + Quote(graph->op(dst).name));
  }
  if (graph->num_edges() >= limits.max_edges) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "graph exceeds the " +
                             std::to_string(limits.max_edges) +
                             "-edge limit");
  }
  graph->AddEdge(src, dst, bytes);
  return Status::Ok();
}

StatusOr<OpGraph> ParseTextImpl(std::istream& in, const IngestOptions& opts) {
  OpGraph graph;
  std::set<std::pair<OpId, OpId>> pairs;
  std::vector<std::pair<int, int>> edge_sites;
  const std::string& src_name = opts.source_name;

  std::string line;
  std::vector<Tok> toks;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    TokenizeLine(line, &toks);
    if (toks.empty() || toks[0].text[0] == '#') continue;

    if (toks[0].text == "op") {
      if (toks.size() < 4) {
        return Status::Error(ErrorCode::kSyntax,
                             "op line needs: op <name> <type> <shape>")
            .At(src_name, lineno, toks[0].col);
      }
      OpDef op;
      op.name = std::string(toks[1].text);
      op.type = OpTypeFromName(std::string(toks[2].text));
      if (op.type == OpType::kNumOpTypes) {
        return Status::Error(ErrorCode::kUnknownOp,
                             "unknown op type " + Quote(toks[2].text))
            .At(src_name, lineno, toks[2].col);
      }
      if (toks[3].text != "scalar") {
        std::vector<std::int64_t> dims;
        const std::string_view shape = toks[3].text;
        std::size_t start = 0;
        while (true) {
          const std::size_t x = shape.find('x', start);
          const std::string_view dim_tok =
              shape.substr(start, x == std::string_view::npos
                                      ? std::string_view::npos
                                      : x - start);
          const int col = toks[3].col + static_cast<int>(start);
          std::int64_t d = 0;
          if (!ParseInt64(dim_tok, &d)) {
            return Status::Error(NumericFailCode(dim_tok),
                                 "bad shape dimension " + Quote(dim_tok))
                .At(src_name, lineno, col);
          }
          if (d < 0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative shape dimension " + Quote(dim_tok))
                .At(src_name, lineno, col);
          }
          dims.push_back(d);
          if (x == std::string_view::npos) break;
          start = x + 1;
        }
        op.output_shape = TensorShape(std::move(dims));
      }
      // The name token's position doubles as the op's: every later
      // failure about this op (caps, byte overflow) points there.
      const int name_col = toks[1].col;
      for (std::size_t t = 4; t < toks.size(); ++t) {
        const std::string_view attr = toks[t].text;
        const int col = toks[t].col;
        if (attr.rfind("flops=", 0) == 0) {
          const std::string_view val = attr.substr(6);
          double f = 0.0;
          if (!ParseDouble(val, &f)) {
            return Status::Error(NumericFailCode(val),
                                 "bad flops value " + Quote(val))
                .At(src_name, lineno, col + 6);
          }
          if (f < 0.0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative flops value " + Quote(val))
                .At(src_name, lineno, col + 6);
          }
          op.flops = f;
        } else if (attr.rfind("params=", 0) == 0) {
          const std::string_view val = attr.substr(7);
          std::int64_t b = 0;
          if (!ParseInt64(val, &b)) {
            return Status::Error(NumericFailCode(val),
                                 "bad params value " + Quote(val))
                .At(src_name, lineno, col + 7);
          }
          if (b < 0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative params value " + Quote(val))
                .At(src_name, lineno, col + 7);
          }
          op.param_bytes = b;
        } else if (attr.rfind("temp=", 0) == 0) {
          const std::string_view val = attr.substr(5);
          std::int64_t b = 0;
          if (!ParseInt64(val, &b)) {
            return Status::Error(NumericFailCode(val),
                                 "bad temp value " + Quote(val))
                .At(src_name, lineno, col + 5);
          }
          if (b < 0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative temp value " + Quote(val))
                .At(src_name, lineno, col + 5);
          }
          op.temp_bytes = b;
        } else if (attr.rfind("colo=", 0) == 0) {
          const std::string_view val = attr.substr(5);
          std::int64_t g = 0;
          if (!ParseInt64(val, &g) || g < -1 ||
              g > std::int64_t{0x7fffffff}) {
            return Status::Error(NumericFailCode(val),
                                 "bad colocation group " + Quote(val))
                .At(src_name, lineno, col + 5);
          }
          op.colocation_group = static_cast<std::int32_t>(g);
        } else if (attr == "cpu_only") {
          op.cpu_only = true;
        } else if (attr == "grad") {
          op.is_gradient = true;
        } else if (attr.rfind("layer=", 0) == 0) {
          op.layer = std::string(attr.substr(6));
        } else {
          return Status::Error(ErrorCode::kSyntax,
                               "unknown attribute " + Quote(attr))
              .At(src_name, lineno, col);
        }
      }
      Status status = CheckAddOp(&graph, std::move(op), opts.limits);
      if (!status.ok()) return status.At(src_name, lineno, name_col);
    } else if (toks[0].text == "edge") {
      if (toks.size() < 3 || toks.size() > 4) {
        return Status::Error(ErrorCode::kSyntax,
                             "edge line needs: edge <src> <dst> [bytes]")
            .At(src_name, lineno, toks[0].col);
      }
      const OpId s = graph.FindOp(std::string(toks[1].text));
      if (s == kInvalidOp) {
        return Status::Error(ErrorCode::kDanglingRef,
                             "unknown op " + Quote(toks[1].text))
            .At(src_name, lineno, toks[1].col);
      }
      const OpId d = graph.FindOp(std::string(toks[2].text));
      if (d == kInvalidOp) {
        return Status::Error(ErrorCode::kDanglingRef,
                             "unknown op " + Quote(toks[2].text))
            .At(src_name, lineno, toks[2].col);
      }
      std::int64_t bytes = -1;  // producer output size
      if (toks.size() == 4) {
        if (!ParseInt64(toks[3].text, &bytes)) {
          return Status::Error(NumericFailCode(toks[3].text),
                               "bad edge bytes " + Quote(toks[3].text))
              .At(src_name, lineno, toks[3].col);
        }
        if (bytes < 0) {
          return Status::Error(ErrorCode::kNumericOverflow,
                               "negative edge bytes " + Quote(toks[3].text))
              .At(src_name, lineno, toks[3].col);
        }
      }
      Status status = CheckAddEdge(&graph, &pairs, s, d, bytes, opts.limits);
      if (!status.ok()) return status.At(src_name, lineno, toks[1].col);
      edge_sites.emplace_back(lineno, toks[1].col);
    } else {
      return Status::Error(ErrorCode::kSyntax,
                           "unknown directive " + Quote(toks[0].text))
          .At(src_name, lineno, toks[0].col);
    }
  }
  if (in.bad()) {
    return Status::Error(ErrorCode::kIo, "read error").At(src_name, lineno);
  }

  if (opts.validate) {
    Status status = CycleCheck(graph, edge_sites, src_name);
    if (!status.ok()) return status;
    status = ValidateGraph(graph, opts.limits);
    if (!status.ok()) return status.At(src_name);
  }
  return graph;
}

// 1-based line:column of a byte offset, for JSON syntax diagnostics.
void LineColAt(const std::string& text, std::size_t offset, int* line,
               int* col) {
  *line = 1;
  *col = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++*line;
      *col = 1;
    } else {
      ++*col;
    }
  }
}

StatusOr<OpGraph> FromJsonImpl(const std::string& text,
                               const IngestOptions& opts) {
  namespace json = support::json;
  const std::string& src_name = opts.source_name;

  std::string parse_error;
  std::size_t error_offset = 0;
  const json::Value root =
      json::Value::Parse(text, &parse_error, &error_offset);
  if (!parse_error.empty()) {
    int line = 0, col = 0;
    LineColAt(text, error_offset, &line, &col);
    return Status::Error(ErrorCode::kSyntax, "JSON " + parse_error)
        .At(src_name, line, col);
  }
  if (!root.is_object()) {
    return Status::Error(ErrorCode::kSyntax,
                         "top-level JSON value must be an object")
        .At(src_name, 1, 1);
  }
  const json::Value* jops = root.Find("ops");
  if (jops == nullptr || !jops->is_array()) {
    return Status::Error(ErrorCode::kSyntax,
                         "missing or non-array \"ops\" field")
        .At(src_name);
  }
  const json::Value* jedges = root.Find("edges");
  if (jedges == nullptr || !jedges->is_array()) {
    return Status::Error(ErrorCode::kSyntax,
                         "missing or non-array \"edges\" field")
        .At(src_name);
  }

  OpGraph graph;
  std::set<std::pair<OpId, OpId>> pairs;

  for (std::size_t i = 0; i < jops->items().size(); ++i) {
    const json::Value& jop = jops->items()[i];
    const std::string ctx = "ops[" + std::to_string(i) + "]";
    if (!jop.is_object()) {
      return Status::Error(ErrorCode::kSyntax, ctx + " is not an object")
          .At(src_name);
    }
    OpDef op;

    const json::Value* name = jop.Find("name");
    if (name == nullptr || !name->is_string() ||
        name->string_value().empty()) {
      return Status::Error(ErrorCode::kSyntax,
                           ctx + " has a missing or empty \"name\"")
          .At(src_name);
    }
    op.name = name->string_value();

    const json::Value* type = jop.Find("type");
    if (type == nullptr || !type->is_string()) {
      return Status::Error(ErrorCode::kSyntax,
                           ctx + " has a missing \"type\"")
          .At(src_name);
    }
    op.type = OpTypeFromName(type->string_value());
    if (op.type == OpType::kNumOpTypes) {
      return Status::Error(ErrorCode::kUnknownOp,
                           ctx + ": unknown op type " +
                               Quote(type->string_value()))
          .At(src_name);
    }

    const json::Value* shape = jop.Find("shape");
    if (shape == nullptr || !shape->is_array()) {
      return Status::Error(ErrorCode::kSyntax,
                           ctx + " has a missing or non-array \"shape\"")
          .At(src_name);
    }
    std::vector<std::int64_t> dims;
    for (const json::Value& dim : shape->items()) {
      std::int64_t d = 0;
      if (!dim.is_number()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a non-numeric shape dimension")
            .At(src_name);
      }
      if (!JsonToInt64(dim.number(), &d) || d < 0) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a negative, fractional or "
                                   "overflowing shape dimension")
            .At(src_name);
      }
      dims.push_back(d);
    }
    op.output_shape = TensorShape(std::move(dims));

    const json::Value* flops = jop.Find("flops");
    if (flops != nullptr) {
      if (!flops->is_number() || !std::isfinite(flops->number()) ||
          flops->number() < 0.0) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a bad \"flops\" value")
            .At(src_name);
      }
      op.flops = flops->number();
    }
    struct ByteField {
      const char* key;
      std::int64_t* dest;
    };
    const ByteField byte_fields[] = {
        {"param_bytes", &op.param_bytes},
        {"temp_bytes", &op.temp_bytes},
    };
    for (const ByteField& field : byte_fields) {
      const json::Value* v = jop.Find(field.key);
      if (v == nullptr) continue;
      std::int64_t b = 0;
      if (!v->is_number() || !JsonToInt64(v->number(), &b) || b < 0) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a bad \"" +
                                 std::string(field.key) + "\" value")
            .At(src_name);
      }
      *field.dest = b;
    }
    struct BoolField {
      const char* key;
      bool* dest;
    };
    const BoolField bool_fields[] = {
        {"cpu_only", &op.cpu_only},
        {"is_gradient", &op.is_gradient},
    };
    for (const BoolField& field : bool_fields) {
      const json::Value* v = jop.Find(field.key);
      if (v == nullptr) continue;
      if (!v->is_bool()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a non-boolean \"" +
                                 std::string(field.key) + "\"")
            .At(src_name);
      }
      *field.dest = v->bool_value();
    }
    const json::Value* layer = jop.Find("layer");
    if (layer != nullptr) {
      if (!layer->is_string()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a non-string \"layer\"")
            .At(src_name);
      }
      op.layer = layer->string_value();
    }
    const json::Value* colo = jop.Find("colocation");
    if (colo != nullptr) {
      std::int64_t g = 0;
      if (!colo->is_number() || !JsonToInt64(colo->number(), &g) || g < -1 ||
          g > std::int64_t{0x7fffffff}) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a bad \"colocation\" value")
            .At(src_name);
      }
      op.colocation_group = static_cast<std::int32_t>(g);
    }

    Status status = CheckAddOp(&graph, std::move(op), opts.limits);
    if (!status.ok()) {
      Status wrapped =
          Status::Error(status.code(), ctx + ": " + status.message());
      return wrapped.At(src_name);
    }
  }

  for (std::size_t i = 0; i < jedges->items().size(); ++i) {
    const json::Value& jedge = jedges->items()[i];
    const std::string ctx = "edges[" + std::to_string(i) + "]";
    if (!jedge.is_object()) {
      return Status::Error(ErrorCode::kSyntax, ctx + " is not an object")
          .At(src_name);
    }
    OpId endpoints[2] = {kInvalidOp, kInvalidOp};
    const char* endpoint_keys[2] = {"src", "dst"};
    for (int k = 0; k < 2; ++k) {
      const json::Value* v = jedge.Find(endpoint_keys[k]);
      if (v == nullptr || !v->is_number()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a missing or non-numeric \"" +
                                 std::string(endpoint_keys[k]) + "\"")
            .At(src_name);
      }
      std::int64_t id = 0;
      if (!JsonToInt64(v->number(), &id)) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a non-integer \"" +
                                 std::string(endpoint_keys[k]) + "\"")
            .At(src_name);
      }
      if (id < 0 || id >= graph.num_ops()) {
        return Status::Error(ErrorCode::kDanglingRef,
                             ctx + ": \"" + std::string(endpoint_keys[k]) +
                                 "\" " + std::to_string(id) +
                                 " names no declared op")
            .At(src_name);
      }
      endpoints[k] = static_cast<OpId>(id);
    }
    std::int64_t bytes = -1;  // producer output size
    const json::Value* jbytes = jedge.Find("bytes");
    if (jbytes != nullptr) {
      if (!jbytes->is_number() || !JsonToInt64(jbytes->number(), &bytes) ||
          bytes < 0) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a bad \"bytes\" value")
            .At(src_name);
      }
    }
    Status status = CheckAddEdge(&graph, &pairs, endpoints[0], endpoints[1],
                                 bytes, opts.limits);
    if (!status.ok()) {
      Status wrapped =
          Status::Error(status.code(), ctx + ": " + status.message());
      return wrapped.At(src_name);
    }
  }

  if (opts.validate) {
    Status status = CycleCheck(graph, {}, src_name);
    if (!status.ok()) return status;
    status = ValidateGraph(graph, opts.limits);
    if (!status.ok()) return status.At(src_name);
  }
  return graph;
}

// Belt and braces for the no-throw contract: nothing in the impls
// should throw (every AddOp/AddEdge precondition is pre-checked), but a
// latent bug must surface as a Status, not a terminate().
template <typename Fn>
StatusOr<OpGraph> NoThrow(const IngestOptions& opts, Fn&& fn) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "out of memory while parsing")
        .At(opts.source_name);
  } catch (const std::exception& e) {
    return Status::Error(ErrorCode::kSyntax,
                         std::string("internal parser error: ") + e.what())
        .At(opts.source_name);
  }
}

}  // namespace

StatusOr<OpGraph> ParseTextGraph(std::istream& in, const IngestOptions& opts) {
  return NoThrow(opts, [&] { return ParseTextImpl(in, opts); });
}

StatusOr<OpGraph> ParseTextGraph(const std::string& text,
                                 const IngestOptions& opts) {
  std::istringstream in(text);
  return ParseTextGraph(in, opts);
}

StatusOr<OpGraph> FromJson(const std::string& text,
                           const IngestOptions& opts) {
  return NoThrow(opts, [&] { return FromJsonImpl(text, opts); });
}

StatusOr<OpGraph> ImportGraphFile(const std::string& path,
                                  const IngestOptions& opts) {
  IngestOptions file_opts = opts;
  file_opts.source_name = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kIo, "cannot open graph file").At(path);
  }
  const bool is_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (is_json) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      return Status::Error(ErrorCode::kIo, "read error").At(path);
    }
    return FromJson(buffer.str(), file_opts);
  }
  return ParseTextGraph(in, file_opts);
}

}  // namespace eagle::graph
