#include "graph/validate.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <utility>
#include <vector>

namespace eagle::graph {

using support::ErrorCode;
using support::Status;

namespace {

constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

// a * b with overflow detection; both non-negative.
bool CheckedMul(std::int64_t a, std::int64_t b, std::int64_t* out) {
  if (a != 0 && b > kInt64Max / a) return false;
  *out = a * b;
  return true;
}

bool CheckedAdd(std::int64_t a, std::int64_t b, std::int64_t* out) {
  if (b > kInt64Max - a) return false;
  *out = a + b;
  return true;
}

bool NameIsSerializable(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
    if (c == '"' || c == '\\') return false;  // JSON-escape hazards
  }
  if (name[0] == '#') return false;  // would parse back as a comment
  return true;
}

}  // namespace

IngestLimits IngestLimits::Unlimited() {
  IngestLimits limits;
  limits.max_ops = kInt64Max;
  limits.max_edges = kInt64Max;
  limits.max_rank = std::numeric_limits<int>::max();
  limits.max_total_bytes = kInt64Max;
  return limits;
}

Status CheckedOpBytes(const OpDef& op, std::int64_t* out) {
  std::int64_t elems = 1;
  for (std::int64_t d : op.output_shape.dims()) {
    if (d < 0) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           "op '" + op.name + "' has a negative dimension");
    }
    if (!CheckedMul(elems, d, &elems)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           "shape element count of op '" + op.name +
                               "' overflows int64");
    }
  }
  std::int64_t bytes = 0;
  if (!CheckedMul(elems, 4, &bytes)) {
    return Status::Error(ErrorCode::kNumericOverflow,
                         "output bytes of op '" + op.name +
                             "' overflow int64");
  }
  if (op.param_bytes < 0 || op.temp_bytes < 0) {
    return Status::Error(ErrorCode::kNumericOverflow,
                         "op '" + op.name +
                             "' has negative param/temp bytes");
  }
  if (!CheckedAdd(bytes, op.param_bytes, &bytes) ||
      !CheckedAdd(bytes, op.temp_bytes, &bytes)) {
    return Status::Error(ErrorCode::kNumericOverflow,
                         "total bytes of op '" + op.name +
                             "' overflow int64");
  }
  *out = bytes;
  return Status::Ok();
}

Status ValidateGraph(const OpGraph& graph, const IngestLimits& limits) {
  if (graph.num_ops() > limits.max_ops) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "graph has " + std::to_string(graph.num_ops()) +
                             " ops, limit is " +
                             std::to_string(limits.max_ops));
  }
  if (graph.num_edges() > limits.max_edges) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "graph has " + std::to_string(graph.num_edges()) +
                             " edges, limit is " +
                             std::to_string(limits.max_edges));
  }

  std::int64_t total_bytes = 0;
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    if (!NameIsSerializable(op.name)) {
      return Status::Error(ErrorCode::kSyntax,
                           "op #" + std::to_string(i) +
                               " has a name that cannot be serialized "
                               "(empty, whitespace, quote or leading '#')");
    }
    if (op.output_shape.rank() > limits.max_rank) {
      return Status::Error(ErrorCode::kResourceLimit,
                           "op '" + op.name + "' has rank " +
                               std::to_string(op.output_shape.rank()) +
                               ", limit is " +
                               std::to_string(limits.max_rank));
    }
    std::int64_t op_bytes = 0;
    Status status = CheckedOpBytes(op, &op_bytes);
    if (!status.ok()) return status;
    if (total_bytes > kInt64Max - op_bytes ||
        total_bytes + op_bytes > limits.max_total_bytes) {
      return Status::Error(ErrorCode::kResourceLimit,
                           "total graph bytes exceed the " +
                               std::to_string(limits.max_total_bytes) +
                               "-byte limit at op '" + op.name + "'");
    }
    total_bytes += op_bytes;
  }

  std::vector<std::pair<OpId, OpId>> pairs;
  pairs.reserve(static_cast<std::size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    if (e.src < 0 || e.src >= graph.num_ops() || e.dst < 0 ||
        e.dst >= graph.num_ops()) {
      return Status::Error(ErrorCode::kDanglingRef,
                           "edge references op id " +
                               std::to_string(e.src < 0 || e.src >=
                                                      graph.num_ops()
                                                  ? e.src
                                                  : e.dst) +
                               " outside [0, " +
                               std::to_string(graph.num_ops()) + ")");
    }
    if (e.src == e.dst) {
      return Status::Error(ErrorCode::kCycle,
                           "self edge on op '" + graph.op(e.src).name + "'");
    }
    if (e.bytes < 0) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           "edge " + graph.op(e.src).name + " -> " +
                               graph.op(e.dst).name +
                               " carries negative bytes");
    }
    pairs.emplace_back(e.src, e.dst);
  }
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i] == pairs[i - 1]) {
      return Status::Error(ErrorCode::kDuplicateEdge,
                           "duplicate edge " + graph.op(pairs[i].first).name +
                               " -> " + graph.op(pairs[i].second).name);
    }
  }

  if (!graph.IsDag()) {
    return Status::Error(ErrorCode::kCycle, "graph contains a cycle");
  }
  return Status::Ok();
}

}  // namespace eagle::graph
