// OpGraph: the computational-graph IR consumed by every other subsystem.
//
// A directed acyclic graph of operations. Edges carry the number of bytes
// transferred from producer to consumer (normally the producer's output
// size, but builders may override, e.g. for sliced tensors).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/op_def.h"

namespace eagle::graph {

struct Edge {
  OpId src = kInvalidOp;
  OpId dst = kInvalidOp;
  std::int64_t bytes = 0;
};

class OpGraph {
 public:
  OpGraph() = default;

  // Adds an operation; name must be unique. Returns its id.
  OpId AddOp(OpDef op);

  // Adds an edge carrying `bytes` (default: producer output size).
  void AddEdge(OpId src, OpId dst, std::int64_t bytes = -1);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const OpDef& op(OpId id) const;
  OpDef& mutable_op(OpId id);
  const std::vector<OpDef>& ops() const { return ops_; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Out-/in-edge indices (into edges()) per op.
  const std::vector<std::int32_t>& out_edges(OpId id) const;
  const std::vector<std::int32_t>& in_edges(OpId id) const;

  // Looks up an op id by name; kInvalidOp if absent.
  OpId FindOp(const std::string& name) const;

  // Kahn topological order. Throws if the graph has a cycle.
  std::vector<OpId> TopologicalOrder() const;

  // True iff acyclic (non-throwing variant of the above).
  bool IsDag() const;

  // Ops with no in-edges / no out-edges.
  std::vector<OpId> SourceOps() const;
  std::vector<OpId> SinkOps() const;

  // Aggregates used by benches and the cost model.
  double TotalFlops() const;
  std::int64_t TotalParamBytes() const;
  std::int64_t TotalEdgeBytes() const;

  // Longest path length in ops (critical path by count), for stats.
  int CriticalPathLength() const;

  struct Stats {
    int num_ops = 0;
    int num_edges = 0;
    double total_gflops = 0.0;
    double param_gbytes = 0.0;
    double edge_gbytes = 0.0;
    int critical_path = 0;
    int cpu_only_ops = 0;
  };
  Stats Summarize() const;
  std::string StatsString() const;

 private:
  void CheckId(OpId id) const;

  std::vector<OpDef> ops_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::int32_t>> out_edges_;
  std::vector<std::vector<std::int32_t>> in_edges_;
  std::unordered_map<std::string, OpId> by_name_;
};

}  // namespace eagle::graph
