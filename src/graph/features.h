// State-vector construction for the RL agent.
//
// The paper highlights "reconstructing the state vectors fed into the RL
// agent" (§I) as one of EAGLE's optimizations. Two encodings are provided:
//   - kRaw:            HP-style raw counts and byte sums;
//   - kReconstructed:  EAGLE-style log-scaled volumes and degree-normalized
//                      adjacency, which keep features in a small dynamic
//                      range across models whose tensors span 6 orders of
//                      magnitude.
// Per-op features feed the grouper; per-group embeddings feed the placer.
#pragma once

#include <vector>

#include "graph/grouped_graph.h"
#include "graph/op_graph.h"

namespace eagle::graph {

enum class FeatureMode {
  kRaw,            // Hierarchical-Planner style
  kReconstructed,  // EAGLE style (log scaling + normalization)
};

// Per-op feature dimensionality: one-hot type + [log out bytes, log flops,
// log param bytes, in degree, out degree, cpu_only, topo position, depth].
// The last two are the adjacency/position part of the paper's grouper
// input: without them two ops of the same type and shape are
// indistinguishable and a learned grouper cannot form topologically
// contiguous (communication-cheap) groups.
inline constexpr int kOpFeatureExtra = 8;
inline constexpr int OpFeatureDim() { return kNumOpTypes + kOpFeatureExtra; }

// Row-major [num_ops × OpFeatureDim()].
std::vector<float> BuildOpFeatures(const OpGraph& graph, FeatureMode mode);

// Per-group embedding (§III-C): type histogram ⊕ output-shape aggregate ⊕
// optional adjacency row over groups (the GCN placer takes adjacency as a
// separate matrix instead — pass include_adjacency=false there).
int GroupEmbeddingDim(int num_groups, bool include_adjacency);
std::vector<float> BuildGroupEmbeddings(const GroupedGraph& grouped,
                                        FeatureMode mode,
                                        bool include_adjacency);

// Symmetric, row-normalized group adjacency with self-loops (Â of Kipf &
// Welling) used by the GCN placer. Row-major [num_groups × num_groups].
std::vector<float> BuildNormalizedGroupAdjacency(const GroupedGraph& grouped);

}  // namespace eagle::graph
