// GroupedGraph: the quotient graph induced by an op → group assignment.
//
// The hierarchical model (§III-A) never places individual operations; the
// grouper maps every op to one of k groups and the placer sees only the
// group-level graph. This type aggregates per-group resource demands and
// inter-group traffic, and converts a per-group device decision back into
// a per-op placement.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/op_graph.h"

namespace eagle::graph {

// grouping[op] ∈ [0, num_groups). Groups may be empty.
using Grouping = std::vector<std::int32_t>;

class GroupedGraph {
 public:
  GroupedGraph(const OpGraph& graph, Grouping grouping, int num_groups);

  int num_groups() const { return num_groups_; }
  const Grouping& grouping() const { return grouping_; }
  const OpGraph& graph() const { return *graph_; }

  struct GroupInfo {
    int num_ops = 0;
    double flops = 0.0;
    std::int64_t param_bytes = 0;
    std::int64_t output_bytes = 0;       // sum of member output sizes
    bool has_cpu_only = false;           // member pinned to CPU
    std::array<std::int32_t, kNumOpTypes> type_counts{};
  };

  const GroupInfo& group(int g) const;
  const std::vector<GroupInfo>& groups() const { return groups_; }

  // Bytes flowing group g → group h (0 when g == h or no edge).
  std::int64_t TrafficBetween(int g, int h) const;

  // Dense num_groups × num_groups traffic matrix, row-major.
  const std::vector<std::int64_t>& traffic_matrix() const { return traffic_; }

  // Total bytes crossing group boundaries (the grouping's edge cut).
  std::int64_t CutBytes() const;

  // Member op ids per group.
  const std::vector<std::vector<OpId>>& members() const { return members_; }

  // Expands a per-group device decision into a per-op device vector.
  std::vector<std::int32_t> ExpandToOps(
      const std::vector<std::int32_t>& group_devices) const;

 private:
  const OpGraph* graph_;
  Grouping grouping_;
  int num_groups_;
  std::vector<GroupInfo> groups_;
  std::vector<std::vector<OpId>> members_;
  std::vector<std::int64_t> traffic_;  // row-major [g * num_groups + h]
};

// Validates grouping size/range against the graph; throws on violation.
void ValidateGrouping(const OpGraph& graph, const Grouping& grouping,
                      int num_groups);

}  // namespace eagle::graph
