// Semantic validation for ingested graphs.
//
// Parsing proves a file is well-formed; validation proves the resulting
// OpGraph is a graph the rest of the system can safely consume: acyclic,
// free of duplicate edges, with shape/byte arithmetic that cannot
// overflow int64, and within configurable resource caps. Every external
// entry point (inspect_model --load, trace_placement --load, bench
// --load, zoo registration of imported graphs) runs this before the
// graph reaches grouping or simulation.
#pragma once

#include <cstdint>

#include "graph/op_def.h"
#include "graph/op_graph.h"
#include "support/status.h"

namespace eagle::graph {

// Resource caps for untrusted graphs. The defaults are an order of
// magnitude above the 100k-op fuzzer stress corpus (docs/GRAPH_FORMATS.md)
// while still bounding what a hostile input can make the process
// allocate; entry points that trust their input can pass Unlimited().
struct IngestLimits {
  std::int64_t max_ops = 1'000'000;
  std::int64_t max_edges = 8'000'000;
  // Maximum tensor rank. Nothing in the op catalogue is deeper than 4-D;
  // 8 leaves headroom without letting dim lists grow unbounded.
  int max_rank = 8;
  // Cap on the summed memory footprint (output + param + temp bytes over
  // all ops): 4 TiB, far above any placeable graph on the simulated
  // clusters but well inside int64.
  std::int64_t max_total_bytes = std::int64_t{1} << 42;

  static IngestLimits Unlimited();
};

// Output + param + temp bytes of one op with overflow-checked arithmetic
// (the shape element product can overflow int64 long before Bytes()
// would notice). kNumericOverflow when it does not fit.
support::Status CheckedOpBytes(const OpDef& op, std::int64_t* out);

// Full semantic check: names (non-empty, no whitespace — they must
// survive the .eg text format), per-op byte arithmetic, non-negative
// edge bytes, endpoint validity, duplicate (src,dst) pairs, acyclicity,
// and the IngestLimits caps. Returns the first violation found, with
// the op/edge spelled out in the message.
support::Status ValidateGraph(const OpGraph& graph,
                              const IngestLimits& limits = {});

}  // namespace eagle::graph
