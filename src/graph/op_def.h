// Operation definitions for computational graphs.
//
// An OpDef mirrors what a TensorFlow GraphDef node exposes to a placement
// agent: a type, an output shape, resource demands (FLOPs, parameter and
// activation bytes), and device-compatibility constraints (e.g. embedding
// lookups pinned to CPU, as in the paper's Single-GPU baseline §IV-B).
#pragma once

#include <cstdint>
#include <string>

#include "graph/tensor_shape.h"

namespace eagle::graph {

// Operation kinds observed across the three benchmark graphs. The set is
// deliberately the union of what Inception-V3 (conv stack), GNMT
// (recurrent seq2seq) and BERT (transformer) emit, plus training-graph
// node kinds (gradients, optimizer updates).
enum class OpType : std::uint8_t {
  kConst = 0,
  kVariable,
  kPlaceholder,
  kIdentity,
  kConv2D,
  kDepthwiseConv,
  kMatMul,
  kBatchMatMul,
  kBiasAdd,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRelu,
  kGelu,
  kTanh,
  kSigmoid,
  kSoftmax,
  kLogSoftmax,
  kMaxPool,
  kAvgPool,
  kBatchNorm,
  kLayerNorm,
  kConcat,
  kSplit,
  kReshape,
  kTranspose,
  kEmbeddingLookup,
  kGather,
  kDropout,
  kReduceSum,
  kReduceMean,
  kCrossEntropy,
  kApplyAdam,
  kAllReduceLocal,  // intra-machine gradient aggregation
  kNumOpTypes  // sentinel — keep last
};

inline constexpr int kNumOpTypes = static_cast<int>(OpType::kNumOpTypes);

const char* OpTypeName(OpType type);

// Parses the name produced by OpTypeName; returns kNumOpTypes on failure.
OpType OpTypeFromName(const std::string& name);

using OpId = std::int32_t;
inline constexpr OpId kInvalidOp = -1;

struct OpDef {
  std::string name;                 // unique within a graph
  OpType type = OpType::kIdentity;
  TensorShape output_shape;         // shape of the (single) output tensor
  double flops = 0.0;               // forward cost of the op
  std::int64_t param_bytes = 0;     // resident parameter memory
  std::int64_t temp_bytes = 0;      // scratch memory while executing
  bool cpu_only = false;            // incompatible with GPU (e.g. lookups)
  bool is_gradient = false;         // belongs to the backward pass
  std::string layer;                // human-readable layer tag, e.g.
                                    // "encoder/lstm2" — drives expert
                                    // placements and debugging
  std::int32_t colocation_group = -1;  // ops sharing a group must share a
                                       // device (TF colocation constraint)

  std::int64_t output_bytes() const { return output_shape.Bytes(); }
};

}  // namespace eagle::graph
