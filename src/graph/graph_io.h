// Graph serialization: DOT (for visualization), JSON (for external
// tooling), and a line-based ".eg" text format that round-trips through
// SaveText/LoadText so users can define custom graphs in a file.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/grouped_graph.h"
#include "graph/op_graph.h"

namespace eagle::graph {

// Graphviz DOT; groups color nodes when a grouping is supplied.
std::string ToDot(const OpGraph& graph, const Grouping* grouping = nullptr);

// Compact JSON; re-readable via graph/ingest.h's FromJson, and the two
// round-trip byte-identically (FromJson(ToJson(g)) reprints to the same
// string). Schema in docs/GRAPH_FORMATS.md.
std::string ToJson(const OpGraph& graph);

// .eg text format (full grammar in docs/GRAPH_FORMATS.md):
//   op <name> <type> <shape d0xd1x...> flops=<f> params=<b> [temp=<b>]
//       [cpu_only] [grad] [layer=<tag>] [colo=<group>]
//   edge <src_name> <dst_name> [bytes]
// Lines starting with '#' are comments.
//
// LoadText throws std::logic_error on malformed input — it is for
// internal callers that own their inputs. User-supplied files should go
// through graph/ingest.h (ParseTextGraph / ImportGraphFile), which
// returns structured errors instead.
void SaveText(const OpGraph& graph, std::ostream& out);
OpGraph LoadText(std::istream& in);

bool SaveTextFile(const OpGraph& graph, const std::string& path);
OpGraph LoadTextFile(const std::string& path);

}  // namespace eagle::graph
