// Graph serialization: DOT (for visualization), JSON (for external
// tooling), and a line-based ".eg" text format that round-trips through
// SaveText/LoadText so users can define custom graphs in a file.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/grouped_graph.h"
#include "graph/op_graph.h"

namespace eagle::graph {

// Graphviz DOT; groups color nodes when a grouping is supplied.
std::string ToDot(const OpGraph& graph, const Grouping* grouping = nullptr);

// Compact JSON (write-only; consumed by plotting scripts, not re-read).
std::string ToJson(const OpGraph& graph);

// .eg text format:
//   op <name> <type> <shape d0xd1x...> flops=<f> params=<b> [cpu_only]
//       [grad] [layer=<tag>]
//   edge <src_name> <dst_name> [bytes]
// Lines starting with '#' are comments.
void SaveText(const OpGraph& graph, std::ostream& out);
OpGraph LoadText(std::istream& in);

bool SaveTextFile(const OpGraph& graph, const std::string& path);
OpGraph LoadTextFile(const std::string& path);

}  // namespace eagle::graph
