#include "graph/op_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "support/check.h"

namespace eagle::graph {

namespace {
constexpr const char* kOpTypeNames[] = {
    "Const",        "Variable",    "Placeholder",  "Identity",
    "Conv2D",       "DepthwiseConv", "MatMul",     "BatchMatMul",
    "BiasAdd",      "Add",         "Sub",          "Mul",
    "Div",          "Relu",        "Gelu",         "Tanh",
    "Sigmoid",      "Softmax",     "LogSoftmax",   "MaxPool",
    "AvgPool",      "BatchNorm",   "LayerNorm",    "Concat",
    "Split",        "Reshape",     "Transpose",    "EmbeddingLookup",
    "Gather",       "Dropout",     "ReduceSum",    "ReduceMean",
    "CrossEntropy", "ApplyAdam",   "AllReduceLocal"};
static_assert(sizeof(kOpTypeNames) / sizeof(kOpTypeNames[0]) == kNumOpTypes,
              "op type name table out of sync with OpType");
}  // namespace

const char* OpTypeName(OpType type) {
  const int i = static_cast<int>(type);
  EAGLE_CHECK(i >= 0 && i < kNumOpTypes);
  return kOpTypeNames[i];
}

OpType OpTypeFromName(const std::string& name) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    if (name == kOpTypeNames[i]) return static_cast<OpType>(i);
  }
  return OpType::kNumOpTypes;
}

void OpGraph::CheckId(OpId id) const {
  EAGLE_CHECK_MSG(id >= 0 && id < num_ops(), "op id " << id << " out of range");
}

OpId OpGraph::AddOp(OpDef op) {
  EAGLE_CHECK_MSG(!op.name.empty(), "op must be named");
  EAGLE_CHECK_MSG(by_name_.find(op.name) == by_name_.end(),
                  "duplicate op name " << op.name);
  const OpId id = static_cast<OpId>(ops_.size());
  by_name_.emplace(op.name, id);
  ops_.push_back(std::move(op));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

void OpGraph::AddEdge(OpId src, OpId dst, std::int64_t bytes) {
  CheckId(src);
  CheckId(dst);
  EAGLE_CHECK_MSG(src != dst, "self edge on " << ops_[static_cast<std::size_t>(src)].name);
  if (bytes < 0) bytes = ops_[static_cast<std::size_t>(src)].output_bytes();
  const auto edge_idx = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(Edge{src, dst, bytes});
  out_edges_[static_cast<std::size_t>(src)].push_back(edge_idx);
  in_edges_[static_cast<std::size_t>(dst)].push_back(edge_idx);
}

const OpDef& OpGraph::op(OpId id) const {
  CheckId(id);
  return ops_[static_cast<std::size_t>(id)];
}

OpDef& OpGraph::mutable_op(OpId id) {
  CheckId(id);
  return ops_[static_cast<std::size_t>(id)];
}

const std::vector<std::int32_t>& OpGraph::out_edges(OpId id) const {
  CheckId(id);
  return out_edges_[static_cast<std::size_t>(id)];
}

const std::vector<std::int32_t>& OpGraph::in_edges(OpId id) const {
  CheckId(id);
  return in_edges_[static_cast<std::size_t>(id)];
}

OpId OpGraph::FindOp(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidOp : it->second;
}

std::vector<OpId> OpGraph::TopologicalOrder() const {
  std::vector<int> in_degree(static_cast<std::size_t>(num_ops()), 0);
  for (const auto& e : edges_) in_degree[static_cast<std::size_t>(e.dst)]++;
  std::deque<OpId> ready;
  for (OpId i = 0; i < num_ops(); ++i)
    if (in_degree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  std::vector<OpId> order;
  order.reserve(static_cast<std::size_t>(num_ops()));
  while (!ready.empty()) {
    const OpId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (auto ei : out_edges_[static_cast<std::size_t>(u)]) {
      const OpId v = edges_[static_cast<std::size_t>(ei)].dst;
      if (--in_degree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  EAGLE_CHECK_MSG(static_cast<int>(order.size()) == num_ops(),
                  "graph has a cycle");
  return order;
}

bool OpGraph::IsDag() const {
  try {
    TopologicalOrder();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

std::vector<OpId> OpGraph::SourceOps() const {
  std::vector<OpId> out;
  for (OpId i = 0; i < num_ops(); ++i)
    if (in_edges_[static_cast<std::size_t>(i)].empty()) out.push_back(i);
  return out;
}

std::vector<OpId> OpGraph::SinkOps() const {
  std::vector<OpId> out;
  for (OpId i = 0; i < num_ops(); ++i)
    if (out_edges_[static_cast<std::size_t>(i)].empty()) out.push_back(i);
  return out;
}

double OpGraph::TotalFlops() const {
  double total = 0.0;
  for (const auto& op : ops_) total += op.flops;
  return total;
}

std::int64_t OpGraph::TotalParamBytes() const {
  std::int64_t total = 0;
  for (const auto& op : ops_) total += op.param_bytes;
  return total;
}

std::int64_t OpGraph::TotalEdgeBytes() const {
  std::int64_t total = 0;
  for (const auto& e : edges_) total += e.bytes;
  return total;
}

int OpGraph::CriticalPathLength() const {
  const auto order = TopologicalOrder();
  std::vector<int> depth(static_cast<std::size_t>(num_ops()), 1);
  int best = num_ops() > 0 ? 1 : 0;
  for (OpId u : order) {
    for (auto ei : out_edges_[static_cast<std::size_t>(u)]) {
      const OpId v = edges_[static_cast<std::size_t>(ei)].dst;
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)],
                   depth[static_cast<std::size_t>(u)] + 1);
      best = std::max(best, depth[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

OpGraph::Stats OpGraph::Summarize() const {
  Stats s;
  s.num_ops = num_ops();
  s.num_edges = num_edges();
  s.total_gflops = TotalFlops() / 1e9;
  s.param_gbytes = static_cast<double>(TotalParamBytes()) / (1 << 30);
  s.edge_gbytes = static_cast<double>(TotalEdgeBytes()) / (1 << 30);
  s.critical_path = CriticalPathLength();
  for (const auto& op : ops_)
    if (op.cpu_only) s.cpu_only_ops++;
  return s;
}

std::string OpGraph::StatsString() const {
  const Stats s = Summarize();
  std::ostringstream os;
  os << s.num_ops << " ops, " << s.num_edges << " edges, " << s.total_gflops
     << " GFLOP, " << s.param_gbytes << " GB params, " << s.edge_gbytes
     << " GB edge traffic, critical path " << s.critical_path << ", "
     << s.cpu_only_ops << " cpu-only ops";
  return os.str();
}

}  // namespace eagle::graph
