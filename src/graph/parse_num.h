// Checked string→number conversion for the graph parsers.
//
// std::stoll / std::stod are the wrong tool for untrusted input: they
// throw (std::invalid_argument / std::out_of_range) and silently accept
// trailing garbage ("12abc" → 12). These helpers never throw, require
// the whole token to be consumed, and reject overflow and non-finite
// values — eagle-lint rule IN01 bans the raw conversions everywhere in
// src/graph except this file.
#pragma once

#include <cstdint>
#include <string_view>

namespace eagle::graph {

// Base-10 signed integer. False on empty token, non-digit characters,
// trailing garbage, or a value outside int64 range.
bool ParseInt64(std::string_view token, std::int64_t* out);

// Decimal / scientific floating point. False on empty token, trailing
// garbage, or a non-finite result (overflow to inf, "nan", "inf").
bool ParseDouble(std::string_view token, double* out);

// True when the token is plausibly a number (digits, sign, '.', 'e'):
// used to classify a failed conversion as numeric-overflow (it *tried*
// to be a number) versus plain syntax.
bool LooksNumeric(std::string_view token);

}  // namespace eagle::graph
