// The one sanctioned use of the raw C conversion routines in src/graph
// (eagle-lint IN01): both are wrapped with full end-pointer, errno and
// finiteness checks so callers only ever see bool + value.
#include "graph/parse_num.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace eagle::graph {

namespace {

// strtoll/strtod need a NUL-terminated buffer; tokens are short, so a
// stack-friendly std::string copy is fine on this cold path. Leading
// whitespace is rejected up front — strtol-family skips it, and a graph
// token with embedded whitespace is a tokenizer bug, not a number.
bool PrepareToken(std::string_view token, std::string* buffer) {
  if (token.empty()) return false;
  const unsigned char first = static_cast<unsigned char>(token.front());
  if (std::isspace(first)) return false;
  buffer->assign(token.data(), token.size());
  return true;
}

}  // namespace

bool ParseInt64(std::string_view token, std::int64_t* out) {
  std::string buffer;
  if (!PrepareToken(token, &buffer)) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) return false;
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

bool ParseDouble(std::string_view token, double* out) {
  std::string buffer;
  if (!PrepareToken(token, &buffer)) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  // Overflow parses to ±inf with ERANGE; literal "inf"/"nan" parse
  // cleanly — both are meaningless as op costs, so reject all of them.
  if (errno == ERANGE || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool LooksNumeric(std::string_view token) {
  if (token.empty()) return false;
  bool has_digit = false;
  for (char c : token) {
    if (c >= '0' && c <= '9') {
      has_digit = true;
    } else if (c != '+' && c != '-' && c != '.' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return has_digit;
}

}  // namespace eagle::graph
