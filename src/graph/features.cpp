#include "graph/features.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace eagle::graph {

namespace {
// Compresses byte/FLOP magnitudes into ~[0, 4.5]; raw mode divides by a
// fixed scale instead, which leaves large models with huge feature values
// (one of HP's training pathologies EAGLE fixes).
float Scale(double v, FeatureMode mode) {
  if (mode == FeatureMode::kReconstructed) {
    return static_cast<float>(std::log1p(v) / 10.0);
  }
  return static_cast<float>(v / 1e8);
}
}  // namespace

std::vector<float> BuildOpFeatures(const OpGraph& graph, FeatureMode mode) {
  const int dim = OpFeatureDim();
  std::vector<float> out(static_cast<std::size_t>(graph.num_ops()) *
                             static_cast<std::size_t>(dim),
                         0.0f);
  // Positional features: normalized topological rank and normalized
  // longest-path depth from the sources.
  const auto topo = graph.TopologicalOrder();
  std::vector<float> rank(static_cast<std::size_t>(graph.num_ops()), 0.0f);
  std::vector<int> depth(static_cast<std::size_t>(graph.num_ops()), 0);
  int max_depth = 1;
  for (std::size_t pos = 0; pos < topo.size(); ++pos) {
    const OpId u = topo[pos];
    rank[static_cast<std::size_t>(u)] =
        topo.size() > 1
            ? static_cast<float>(pos) / static_cast<float>(topo.size() - 1)
            : 0.0f;
    for (auto ei : graph.out_edges(u)) {
      const OpId v = graph.edges()[static_cast<std::size_t>(ei)].dst;
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)],
                   depth[static_cast<std::size_t>(u)] + 1);
      max_depth = std::max(max_depth, depth[static_cast<std::size_t>(v)]);
    }
  }
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    float* row = out.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dim);
    row[static_cast<int>(op.type)] = 1.0f;
    float* extra = row + kNumOpTypes;
    extra[0] = Scale(static_cast<double>(op.output_bytes()), mode);
    extra[1] = Scale(op.flops, mode);
    extra[2] = Scale(static_cast<double>(op.param_bytes), mode);
    const double in_deg = static_cast<double>(graph.in_edges(i).size());
    const double out_deg = static_cast<double>(graph.out_edges(i).size());
    if (mode == FeatureMode::kReconstructed) {
      extra[3] = static_cast<float>(std::log1p(in_deg));
      extra[4] = static_cast<float>(std::log1p(out_deg));
    } else {
      extra[3] = static_cast<float>(in_deg);
      extra[4] = static_cast<float>(out_deg);
    }
    extra[5] = op.cpu_only ? 1.0f : 0.0f;
    extra[6] = rank[static_cast<std::size_t>(i)];
    extra[7] = static_cast<float>(depth[static_cast<std::size_t>(i)]) /
               static_cast<float>(max_depth);
  }
  return out;
}

int GroupEmbeddingDim(int num_groups, bool include_adjacency) {
  // type histogram + [log ops, log flops, log out bytes, log param bytes,
  // has_cpu_only] + optional fused in/out adjacency row.
  return kNumOpTypes + 5 + (include_adjacency ? num_groups : 0);
}

std::vector<float> BuildGroupEmbeddings(const GroupedGraph& grouped,
                                        FeatureMode mode,
                                        bool include_adjacency) {
  const int k = grouped.num_groups();
  const int dim = GroupEmbeddingDim(k, include_adjacency);
  std::vector<float> out(static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(dim),
                         0.0f);
  for (int g = 0; g < k; ++g) {
    const auto& info = grouped.group(g);
    float* row = out.data() + static_cast<std::size_t>(g) * static_cast<std::size_t>(dim);
    for (int t = 0; t < kNumOpTypes; ++t) {
      const auto count = static_cast<double>(info.type_counts[static_cast<std::size_t>(t)]);
      row[t] = mode == FeatureMode::kReconstructed
                   ? static_cast<float>(std::log1p(count))
                   : static_cast<float>(count);
    }
    float* extra = row + kNumOpTypes;
    extra[0] = mode == FeatureMode::kReconstructed
                   ? static_cast<float>(std::log1p(info.num_ops))
                   : static_cast<float>(info.num_ops);
    extra[1] = Scale(info.flops, mode);
    extra[2] = Scale(static_cast<double>(info.output_bytes), mode);
    extra[3] = Scale(static_cast<double>(info.param_bytes), mode);
    extra[4] = info.has_cpu_only ? 1.0f : 0.0f;
    if (include_adjacency) {
      float* adj = extra + 5;
      double total = 0.0;
      for (int h = 0; h < k; ++h) {
        total += static_cast<double>(grouped.TrafficBetween(g, h) +
                                     grouped.TrafficBetween(h, g));
      }
      for (int h = 0; h < k; ++h) {
        const double w = static_cast<double>(grouped.TrafficBetween(g, h) +
                                             grouped.TrafficBetween(h, g));
        if (mode == FeatureMode::kReconstructed) {
          adj[h] = total > 0.0 ? static_cast<float>(w / total) : 0.0f;
        } else {
          adj[h] = Scale(w, mode);
        }
      }
    }
  }
  return out;
}

std::vector<float> BuildNormalizedGroupAdjacency(const GroupedGraph& grouped) {
  const int k = grouped.num_groups();
  std::vector<double> a(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0);
  for (int g = 0; g < k; ++g) {
    for (int h = 0; h < k; ++h) {
      const double w = static_cast<double>(grouped.TrafficBetween(g, h) +
                                           grouped.TrafficBetween(h, g));
      if (w > 0.0) {
        // Binarized connectivity keeps the spectrum well-conditioned;
        // traffic magnitudes already live in the node features.
        a[static_cast<std::size_t>(g) * static_cast<std::size_t>(k) +
          static_cast<std::size_t>(h)] = 1.0;
      }
    }
    a[static_cast<std::size_t>(g) * static_cast<std::size_t>(k) +
      static_cast<std::size_t>(g)] = 1.0;  // self loop
  }
  // D^{-1/2} A D^{-1/2}
  std::vector<double> deg(static_cast<std::size_t>(k), 0.0);
  for (int g = 0; g < k; ++g)
    for (int h = 0; h < k; ++h)
      deg[static_cast<std::size_t>(g)] +=
          a[static_cast<std::size_t>(g) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(h)];
  std::vector<float> out(static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0f);
  for (int g = 0; g < k; ++g) {
    for (int h = 0; h < k; ++h) {
      const double w =
          a[static_cast<std::size_t>(g) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(h)];
      if (w > 0.0) {
        out[static_cast<std::size_t>(g) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(h)] = static_cast<float>(
            w / std::sqrt(deg[static_cast<std::size_t>(g)] *
                          deg[static_cast<std::size_t>(h)]));
      }
    }
  }
  return out;
}

}  // namespace eagle::graph
