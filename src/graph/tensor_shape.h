// Tensor shapes attached to operation outputs.
//
// Shapes drive both the communication model (bytes moved across devices)
// and the agent's state vectors (EAGLE feeds log-scaled output volumes to
// the grouper/placer, §III-C).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace eagle::graph {

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<std::int64_t> dims);
  explicit TensorShape(std::vector<std::int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  std::int64_t dim(int i) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

  // Product of dimensions; 1 for scalars (rank 0).
  std::int64_t NumElements() const;

  // Size in bytes assuming 4-byte (fp32) elements, the paper's setting.
  std::int64_t Bytes() const { return NumElements() * 4; }

  std::string ToString() const;

  bool operator==(const TensorShape& other) const {
    return dims_ == other.dims_;
  }

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace eagle::graph
