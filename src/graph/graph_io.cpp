#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "graph/ingest.h"
#include "support/check.h"
#include "support/json.h"

namespace eagle::graph {

std::string ToDot(const OpGraph& graph, const Grouping* grouping) {
  std::ostringstream os;
  os << "digraph G {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    os << "  n" << i << " [label=\"" << op.name << "\\n"
       << OpTypeName(op.type) << " " << op.output_shape.ToString() << "\"";
    if (grouping) {
      // 12-color cycle; groups beyond 12 share hues (visual aid only).
      static const char* kColors[] = {
          "#a6cee3", "#1f78b4", "#b2df8a", "#33a02c", "#fb9a99", "#e31a1c",
          "#fdbf6f", "#ff7f00", "#cab2d6", "#6a3d9a", "#ffff99", "#b15928"};
      os << ", style=filled, fillcolor=\""
         << kColors[(*grouping)[static_cast<std::size_t>(i)] % 12] << "\"";
    }
    os << "];\n";
  }
  for (const Edge& e : graph.edges()) {
    os << "  n" << e.src << " -> n" << e.dst << " [label=\""
       << (e.bytes >> 10) << "KB\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string ToJson(const OpGraph& graph) {
  std::ostringstream os;
  os << "{\"ops\":[";
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    if (i) os << ",";
    os << "{\"name\":\"" << support::json::Escape(op.name) << "\",\"type\":\""
       << OpTypeName(op.type) << "\",\"shape\":" << op.output_shape.ToString()
       << ",\"flops\":" << op.flops << ",\"param_bytes\":" << op.param_bytes
       << ",\"temp_bytes\":" << op.temp_bytes
       << ",\"cpu_only\":" << (op.cpu_only ? "true" : "false")
       << ",\"is_gradient\":" << (op.is_gradient ? "true" : "false")
       << ",\"layer\":\"" << support::json::Escape(op.layer)
       << "\",\"colocation\":" << op.colocation_group << "}";
  }
  os << "],\"edges\":[";
  for (int i = 0; i < graph.num_edges(); ++i) {
    const Edge& e = graph.edges()[static_cast<std::size_t>(i)];
    if (i) os << ",";
    os << "{\"src\":" << e.src << ",\"dst\":" << e.dst
       << ",\"bytes\":" << e.bytes << "}";
  }
  os << "]}";
  return os.str();
}

void SaveText(const OpGraph& graph, std::ostream& out) {
  out << "# eagle graph, " << graph.num_ops() << " ops, " << graph.num_edges()
      << " edges\n";
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    out << "op " << op.name << " " << OpTypeName(op.type) << " ";
    const auto& dims = op.output_shape.dims();
    if (dims.empty()) {
      out << "scalar";
    } else {
      for (std::size_t d = 0; d < dims.size(); ++d) {
        if (d) out << "x";
        out << dims[d];
      }
    }
    out << " flops=" << op.flops << " params=" << op.param_bytes;
    if (op.temp_bytes != 0) out << " temp=" << op.temp_bytes;
    if (op.cpu_only) out << " cpu_only";
    if (op.is_gradient) out << " grad";
    if (!op.layer.empty()) out << " layer=" << op.layer;
    if (op.colocation_group != -1) out << " colo=" << op.colocation_group;
    out << "\n";
  }
  for (const Edge& e : graph.edges()) {
    out << "edge " << graph.op(e.src).name << " " << graph.op(e.dst).name
        << " " << e.bytes << "\n";
  }
}

// The throwing loaders are thin wrappers over the hardened StatusOr
// parsers (graph/ingest.h): one grammar, one validator, two calling
// conventions. Internal callers that own their inputs keep the throwing
// contract; anything loading *user* files should call ImportGraphFile.
OpGraph LoadText(std::istream& in) {
  support::StatusOr<OpGraph> parsed = ParseTextGraph(in);
  EAGLE_CHECK_MSG(parsed.ok(), parsed.status().ToString());
  return std::move(parsed).value();
}

bool SaveTextFile(const OpGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveText(graph, out);
  return static_cast<bool>(out);
}

OpGraph LoadTextFile(const std::string& path) {
  support::StatusOr<OpGraph> parsed = ImportGraphFile(path);
  EAGLE_CHECK_MSG(parsed.ok(), parsed.status().ToString());
  return std::move(parsed).value();
}

}  // namespace eagle::graph
