#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "support/check.h"

namespace eagle::graph {

std::string ToDot(const OpGraph& graph, const Grouping* grouping) {
  std::ostringstream os;
  os << "digraph G {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    os << "  n" << i << " [label=\"" << op.name << "\\n"
       << OpTypeName(op.type) << " " << op.output_shape.ToString() << "\"";
    if (grouping) {
      // 12-color cycle; groups beyond 12 share hues (visual aid only).
      static const char* kColors[] = {
          "#a6cee3", "#1f78b4", "#b2df8a", "#33a02c", "#fb9a99", "#e31a1c",
          "#fdbf6f", "#ff7f00", "#cab2d6", "#6a3d9a", "#ffff99", "#b15928"};
      os << ", style=filled, fillcolor=\""
         << kColors[(*grouping)[static_cast<std::size_t>(i)] % 12] << "\"";
    }
    os << "];\n";
  }
  for (const Edge& e : graph.edges()) {
    os << "  n" << e.src << " -> n" << e.dst << " [label=\""
       << (e.bytes >> 10) << "KB\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string ToJson(const OpGraph& graph) {
  std::ostringstream os;
  os << "{\"ops\":[";
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    if (i) os << ",";
    os << "{\"name\":\"" << op.name << "\",\"type\":\"" << OpTypeName(op.type)
       << "\",\"shape\":" << op.output_shape.ToString()
       << ",\"flops\":" << op.flops << ",\"param_bytes\":" << op.param_bytes
       << ",\"cpu_only\":" << (op.cpu_only ? "true" : "false")
       << ",\"is_gradient\":" << (op.is_gradient ? "true" : "false")
       << ",\"layer\":\"" << op.layer << "\"}";
  }
  os << "],\"edges\":[";
  for (int i = 0; i < graph.num_edges(); ++i) {
    const Edge& e = graph.edges()[static_cast<std::size_t>(i)];
    if (i) os << ",";
    os << "{\"src\":" << e.src << ",\"dst\":" << e.dst
       << ",\"bytes\":" << e.bytes << "}";
  }
  os << "]}";
  return os.str();
}

void SaveText(const OpGraph& graph, std::ostream& out) {
  out << "# eagle graph, " << graph.num_ops() << " ops, " << graph.num_edges()
      << " edges\n";
  for (OpId i = 0; i < graph.num_ops(); ++i) {
    const OpDef& op = graph.op(i);
    out << "op " << op.name << " " << OpTypeName(op.type) << " ";
    const auto& dims = op.output_shape.dims();
    if (dims.empty()) {
      out << "scalar";
    } else {
      for (std::size_t d = 0; d < dims.size(); ++d) {
        if (d) out << "x";
        out << dims[d];
      }
    }
    out << " flops=" << op.flops << " params=" << op.param_bytes;
    if (op.cpu_only) out << " cpu_only";
    if (op.is_gradient) out << " grad";
    if (!op.layer.empty()) out << " layer=" << op.layer;
    out << "\n";
  }
  for (const Edge& e : graph.edges()) {
    out << "edge " << graph.op(e.src).name << " " << graph.op(e.dst).name
        << " " << e.bytes << "\n";
  }
}

OpGraph LoadText(std::istream& in) {
  OpGraph graph;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "op") {
      OpDef op;
      std::string type_name, shape_str;
      ls >> op.name >> type_name >> shape_str;
      EAGLE_CHECK_MSG(ls, "malformed op line " << lineno);
      op.type = OpTypeFromName(type_name);
      EAGLE_CHECK_MSG(op.type != OpType::kNumOpTypes,
                      "unknown op type '" << type_name << "' at line "
                                          << lineno);
      if (shape_str != "scalar") {
        std::vector<std::int64_t> dims;
        std::istringstream ss(shape_str);
        std::string tok;
        while (std::getline(ss, tok, 'x')) dims.push_back(std::stoll(tok));
        op.output_shape = TensorShape(std::move(dims));
      }
      std::string attr;
      while (ls >> attr) {
        if (attr.rfind("flops=", 0) == 0) {
          op.flops = std::stod(attr.substr(6));
        } else if (attr.rfind("params=", 0) == 0) {
          op.param_bytes = std::stoll(attr.substr(7));
        } else if (attr == "cpu_only") {
          op.cpu_only = true;
        } else if (attr == "grad") {
          op.is_gradient = true;
        } else if (attr.rfind("layer=", 0) == 0) {
          op.layer = attr.substr(6);
        } else {
          EAGLE_CHECK_MSG(false,
                          "unknown attribute '" << attr << "' at line "
                                                << lineno);
        }
      }
      graph.AddOp(std::move(op));
    } else if (kind == "edge") {
      std::string src, dst;
      std::int64_t bytes = -1;
      ls >> src >> dst;
      EAGLE_CHECK_MSG(ls, "malformed edge line " << lineno);
      ls >> bytes;  // optional; stays -1 (producer size) if absent
      const OpId s = graph.FindOp(src);
      const OpId d = graph.FindOp(dst);
      EAGLE_CHECK_MSG(s != kInvalidOp, "unknown op '" << src << "' at line "
                                                      << lineno);
      EAGLE_CHECK_MSG(d != kInvalidOp, "unknown op '" << dst << "' at line "
                                                      << lineno);
      graph.AddEdge(s, d, bytes);
    } else {
      EAGLE_CHECK_MSG(false, "unknown directive '" << kind << "' at line "
                                                   << lineno);
    }
  }
  return graph;
}

bool SaveTextFile(const OpGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveText(graph, out);
  return static_cast<bool>(out);
}

OpGraph LoadTextFile(const std::string& path) {
  std::ifstream in(path);
  EAGLE_CHECK_MSG(in, "cannot open graph file " << path);
  return LoadText(in);
}

}  // namespace eagle::graph
