// Tiny CLI flag parser used by benches and examples.
//
// Flags are of the form --name=value or --name value; bare --name sets a
// boolean flag to true. Unrecognized flags raise an error listing the
// registered flags, so typos in bench invocations fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eagle::support {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description = "");

  // Registration. `help` is shown by --help. Returns *this for chaining.
  ArgParser& AddInt(const std::string& name, std::int64_t default_value,
                    const std::string& help);
  ArgParser& AddDouble(const std::string& name, double default_value,
                       const std::string& help);
  ArgParser& AddBool(const std::string& name, bool default_value,
                     const std::string& help);
  ArgParser& AddString(const std::string& name,
                       const std::string& default_value,
                       const std::string& help);

  // Parses argv. On --help prints usage and returns false (caller should
  // exit 0). Throws std::invalid_argument on unknown flags / bad values.
  bool Parse(int argc, char** argv);

  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  const Flag& Find(const std::string& name, Kind kind) const;
  void SetFromString(Flag& flag, const std::string& name,
                     const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace eagle::support
