// Fixed-size worker pool for fan-out/join parallelism.
//
// Built for core::EvalService: a dispatcher submits a batch of
// independent evaluation closures, calls Wait(), and reduces the results
// in submission order. Tasks must synchronize any state they share; the
// pool only guarantees that everything submitted before Wait() has
// finished (and its writes are visible) when Wait() returns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eagle::support {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  // Drains the queue (Wait) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks on task execution.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed. If any task
  // threw, the first captured exception is rethrown here (remaining
  // tasks still run to completion first).
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // The machine's hardware concurrency, always >= 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::exception_ptr first_error_;
  int in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
};

}  // namespace eagle::support
