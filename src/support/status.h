// Structured errors for untrusted-input paths (graph ingestion today,
// the serving daemon's wire protocol tomorrow).
//
// The repo's EAGLE_CHECK macros are API-misuse guards: they throw, and a
// throw escaping main() is an abort. That contract is right for internal
// invariants but wrong for *input* — a malformed graph file must come
// back as data the caller can print, count, or map to an exit code.
// Status carries an error-taxonomy code, a message, and the input
// position (file:line:column) the error was detected at; StatusOr<T>
// is the return type of parsers that either produce a T or explain why
// they could not.
#pragma once

#include <string>
#include <utility>

#include "support/check.h"

namespace eagle::support {

// The ingestion error taxonomy (docs/GRAPH_FORMATS.md). Codes are part
// of the tool-output contract: graph_fuzz histograms them and the
// malformed-fixture corpus asserts them, so renames are format changes.
enum class ErrorCode {
  kOk = 0,
  kIo,               // cannot open / read / write the input
  kSyntax,           // token-level: bad directive, missing field, bad JSON
  kUnknownOp,        // op type name not in the OpType catalogue
  kDuplicateOp,      // op name declared twice
  kDuplicateEdge,    // same (src, dst) pair declared twice
  kDanglingRef,      // edge endpoint naming no declared op
  kCycle,            // self edge or directed cycle
  kNumericOverflow,  // non-numeric, negative or overflowing quantity
  kResourceLimit,    // IngestLimits cap exceeded (ops/edges/bytes/rank)
};

// "ok", "io", "syntax", "unknown-op", ... (stable, kebab-case).
const char* ErrorCodeName(ErrorCode code);

// Parses ErrorCodeName output; returns false on unknown names.
bool ErrorCodeFromName(const std::string& name, ErrorCode* out);

// [[nodiscard]]: a dropped Status is a swallowed error. The compiler
// warns at every discarding call site, and eagle-lint ST01 makes it an
// error; discard deliberately with (void) plus an adjacent
// `eagle-lint: allow(ST01)` justification.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok

  static Status Ok() { return Status(); }
  static Status Error(ErrorCode code, std::string message) {
    Status status;
    status.code_ = code;
    status.message_ = std::move(message);
    return status;
  }

  // Attaches the input position the error was detected at. line/column
  // are 1-based; 0 means "not applicable" (e.g. a whole-graph cycle
  // found after parsing). Returns *this so errors read as one chain:
  //   return Status::Error(kSyntax, "...").At(file, line, col);
  Status& At(std::string file, int line = 0, int column = 0) {
    file_ = std::move(file);
    line_ = line;
    column_ = column;
    return *this;
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }
  int column() const { return column_; }

  // "graph.eg:12:7: [syntax] unknown directive 'frob'" — the same
  // file:line layout as compiler and eagle-lint diagnostics, so editors
  // and CI log scrapers can jump to the offending input line.
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::string file_;
  int line_ = 0;
  int column_ = 0;
};

// Either a T or the Status explaining why there is no T. Deliberately
// minimal: exactly what the ingestion API needs, nothing speculative.
// [[nodiscard]] for the same reason as Status: dropping one silently
// drops both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from an error Status so parsers can `return status;`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    EAGLE_CHECK_MSG(!status_.ok(), "StatusOr constructed from an ok Status");
  }
  // Implicit from a value so parsers can `return graph;`.
  StatusOr(T value) : value_(std::move(value)), has_value_(true) {}  // NOLINT

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    EAGLE_CHECK_MSG(has_value_, "value() on error StatusOr: "
                                    << status_.ToString());
    return value_;
  }
  T& value() & {
    EAGLE_CHECK_MSG(has_value_, "value() on error StatusOr: "
                                    << status_.ToString());
    return value_;
  }
  T&& value() && {
    EAGLE_CHECK_MSG(has_value_, "value() on error StatusOr: "
                                    << status_.ToString());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace eagle::support
