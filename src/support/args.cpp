#include "support/args.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace eagle::support {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser& ArgParser::AddInt(const std::string& name, std::int64_t v,
                             const std::string& help) {
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.int_value = v;
  flags_[name] = std::move(f);
  return *this;
}

ArgParser& ArgParser::AddDouble(const std::string& name, double v,
                                const std::string& help) {
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = v;
  flags_[name] = std::move(f);
  return *this;
}

ArgParser& ArgParser::AddBool(const std::string& name, bool v,
                              const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = v;
  flags_[name] = std::move(f);
  return *this;
}

ArgParser& ArgParser::AddString(const std::string& name, const std::string& v,
                                const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = v;
  flags_[name] = std::move(f);
  return *this;
}

void ArgParser::SetFromString(Flag& flag, const std::string& name,
                              const std::string& value) {
  try {
    switch (flag.kind) {
      case Kind::kInt:
        flag.int_value = std::stoll(value);
        break;
      case Kind::kDouble:
        flag.double_value = std::stod(value);
        break;
      case Kind::kBool:
        if (value == "true" || value == "1") {
          flag.bool_value = true;
        } else if (value == "false" || value == "0") {
          flag.bool_value = false;
        } else {
          throw std::invalid_argument("bad bool");
        }
        break;
      case Kind::kString:
        flag.string_value = value;
        break;
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("invalid value '" + value + "' for --" + name);
  }
}

bool ArgParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + name + "\n" + Usage());
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    SetFromString(flag, name, value);
  }
  return true;
}

const ArgParser::Flag& ArgParser::Find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.kind != kind) {
    throw std::invalid_argument("flag --" + name +
                                " not registered with that type");
  }
  return it->second;
}

std::int64_t ArgParser::GetInt(const std::string& name) const {
  return Find(name, Kind::kInt).int_value;
}
double ArgParser::GetDouble(const std::string& name) const {
  return Find(name, Kind::kDouble).double_value;
}
bool ArgParser::GetBool(const std::string& name) const {
  return Find(name, Kind::kBool).bool_value;
}
const std::string& ArgParser::GetString(const std::string& name) const {
  return Find(name, Kind::kString).string_value;
}

std::string ArgParser::Usage() const {
  std::ostringstream os;
  if (!description_.empty()) os << description_ << "\n";
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kInt: os << "=<int> (default " << flag.int_value << ")"; break;
      case Kind::kDouble:
        os << "=<float> (default " << flag.double_value << ")";
        break;
      case Kind::kBool:
        os << " (default " << (flag.bool_value ? "true" : "false") << ")";
        break;
      case Kind::kString:
        os << "=<str> (default \"" << flag.string_value << "\")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace eagle::support
