#include "support/rng.h"

#include <cmath>

namespace eagle::support {

Rng Rng::Split(std::uint64_t stream) const {
  // Fold the full 256-bit state down to one word, then run it through
  // SplitMix64 together with the stream index. SplitMix64's output mixing
  // decorrelates consecutive stream indices, and Rng's constructor expands
  // the result through SplitMix64 again to seed the child's xoshiro state.
  std::uint64_t folded = s_[0];
  folded = (folded ^ Rotl(s_[1], 17)) * 0x9e3779b97f4a7c15ULL;
  folded = (folded ^ Rotl(s_[2], 31)) * 0xbf58476d1ce4e5b9ULL;
  folded = (folded ^ Rotl(s_[3], 47)) * 0x94d049bb133111ebULL;
  SplitMix64 sm(folded + stream);
  return Rng(sm.Next());
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  EAGLE_CHECK(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  EAGLE_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextGaussian() {
  // Box-Muller; draw until u1 is non-zero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double two_pi = 6.28318530717958647692;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::size_t Rng::NextCategorical(const std::vector<double>& weights) {
  EAGLE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    EAGLE_CHECK_MSG(w >= 0.0, "negative categorical weight " << w);
    total += w;
  }
  if (total <= 0.0) return static_cast<std::size_t>(NextBelow(weights.size()));
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return last bucket
}

std::size_t Rng::NextFromProbs(const float* probs, std::size_t n) {
  EAGLE_CHECK(n > 0);
  double r = NextDouble();
  for (std::size_t i = 0; i < n; ++i) {
    r -= static_cast<double>(probs[i]);
    if (r < 0.0) return i;
  }
  return n - 1;
}

}  // namespace eagle::support
