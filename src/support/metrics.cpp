#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "support/atomic_file.h"
#include "support/stopwatch.h"

namespace eagle::support::metrics {

namespace {

// One flat registry behind one mutex. Handles are unique_ptr-backed so
// the pointers Get* hands out stay stable across rehashes.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  // Span buffer (guarded by the same mutex; span recording is rare
  // relative to counter traffic, which never touches the lock).
  std::vector<SpanRecord> spans;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

std::atomic<bool> g_profiling{false};

// Span-buffer cap: at ~64 bytes a record this bounds the profiler to a
// few hundred MB even on week-long runs; overflow is counted, not grown.
constexpr std::size_t kMaxSpans = 1u << 21;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    for (double decade = 1e-6; decade < 1e3; decade *= 10.0) {
      b->push_back(decade);
      b->push_back(2.0 * decade);
      b->push_back(5.0 * decade);
    }
    return b;
  }();
  return *buckets;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts = counts_;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  return snapshot;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) < rank) continue;
    // Linear interpolation inside the bucket [lo, hi].
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : max;
    double value = hi;
    if (counts[i] > 0) {
      const double into =
          (rank - static_cast<double>(seen - counts[i])) /
          static_cast<double>(counts[i]);
      value = lo + (hi - lo) * into;
    }
    return std::clamp(value, min, max);
  }
  return max;
}

Counter* GetCounter(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* GetGauge(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* GetHistogram(const std::string& name,
                        const std::vector<double>& bounds) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.histograms[name];
  if (slot == nullptr) slot.reset(new Histogram(bounds));
  return slot.get();
}

Snapshot TakeSnapshot() {
  Registry& registry = GetRegistry();
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& [name, counter] : registry.counters) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : registry.gauges) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : registry.histograms) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

Snapshot Snapshot::DeltaSince(const Snapshot& earlier) const {
  Snapshot delta;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::int64_t before = it == earlier.counters.end() ? 0 : it->second;
    if (value != before) delta.counters[name] = value - before;
  }
  delta.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    const auto it = earlier.histograms.find(name);
    HistogramSnapshot d = hist;
    if (it != earlier.histograms.end()) {
      const HistogramSnapshot& before = it->second;
      d.count -= before.count;
      d.sum -= before.sum;
      if (before.counts.size() == d.counts.size()) {
        for (std::size_t i = 0; i < d.counts.size(); ++i) {
          d.counts[i] -= before.counts[i];
        }
      }
    }
    if (d.count != 0) delta.histograms[name] = std::move(d);
  }
  return delta;
}

void ResetForTest() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.counters.clear();
  registry.gauges.clear();
  registry.histograms.clear();
  registry.spans.clear();
}

// ---------------------------------------------------------------------------
// Profiling.

double NowSeconds() {
  static const Stopwatch* epoch = new Stopwatch();
  return epoch->ElapsedSeconds();
}

int CurrentThreadTag() {
  static std::atomic<int> next_tag{0};
  thread_local const int tag = next_tag.fetch_add(1);
  return tag;
}

void EnableProfiling(bool enabled) { g_profiling.store(enabled); }
bool ProfilingEnabled() { return g_profiling.load(); }

std::vector<SpanRecord> SnapshotSpans() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.spans;
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name), start_seconds_(NowSeconds()) {}

ScopedSpan::~ScopedSpan() {
  const double end = NowSeconds();
  const double duration = end - start_seconds_;
  GetHistogram(std::string("span.") + name_)->Observe(duration);
  if (!ProfilingEnabled()) return;
  bool dropped = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (registry.spans.size() >= kMaxSpans) {
      dropped = true;
    } else {
      registry.spans.push_back(
          SpanRecord{name_, CurrentThreadTag(), start_seconds_, duration});
    }
  }
  if (dropped) GetCounter("metrics.spans_dropped")->Increment();
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  // Process metadata so Perfetto labels the rows.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
     << "\"args\":{\"name\":\"eagle trainer\"}}";
  for (const SpanRecord& span : spans) {
    const std::size_t dot = span.name.find('.');
    const std::string category =
        dot == std::string::npos ? span.name : span.name.substr(0, dot);
    os << ",{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
       << JsonEscape(category) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << span.thread_tag << ",\"ts\":" << span.start_seconds * 1e6
       << ",\"dur\":" << span.duration_seconds * 1e6 << "}";
  }
  os << "]}";
  return os.str();
}

bool WriteProfile(const std::string& path) {
  const std::string trace = SpansToChromeTrace(SnapshotSpans());
  return WriteFileAtomic(path, [&](std::ostream& out) -> bool {
    out << trace;
    return static_cast<bool>(out);
  });
}

}  // namespace eagle::support::metrics
