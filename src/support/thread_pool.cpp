#include "support/thread_pool.h"

#include <algorithm>
#include <utility>

namespace eagle::support {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Let queued work finish; workers exit once the queue drains.
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace eagle::support
