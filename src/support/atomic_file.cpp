#include "support/atomic_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/log.h"

namespace eagle::support {

bool WriteFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& writer) {
  const std::filesystem::path file(path);
  std::error_code ec;
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path(), ec);
  }
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      EAGLE_LOG(Warn) << "cannot open " << tmp_path << " for writing";
      return false;
    }
    if (!writer(out)) {
      EAGLE_LOG(Warn) << "failed serializing " << tmp_path;
      std::remove(tmp_path.c_str());
      return false;
    }
    out.flush();
    if (!out) {
      EAGLE_LOG(Warn) << "failed writing " << tmp_path;
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    EAGLE_LOG(Warn) << "cannot rename " << tmp_path << " to " << path;
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace eagle::support
