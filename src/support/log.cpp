#include "support/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/metrics.h"

namespace eagle::support {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

// Initial level: EAGLE_LOG_LEVEL when set and parseable, else Info. The
// getenv read is sanctioned here (eagle-lint ND01 allowlist): logging
// verbosity is observability config, and it can never reach RNG streams
// or results.
int InitialLevel() {
  const char* env = std::getenv("EAGLE_LOG_LEVEL");
  const LogLevel level =
      env == nullptr ? LogLevel::kInfo
                     : LogLevelFromString(env, LogLevel::kInfo);
  return static_cast<int>(level);
}

std::atomic<int> g_level{InitialLevel()};

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

LogLevel LogLevelFromString(const std::string& text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

std::string FormatLogPrefix(LogLevel level, const char* file, int line,
                            double elapsed_seconds, int thread_tag) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[%9.3fs T%d %s %s:%d] ", elapsed_seconds,
                thread_tag, LevelName(level), Basename(file), line);
  return buf;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    os_ << FormatLogPrefix(level, file, line, metrics::NowSeconds(),
                           metrics::CurrentThreadTag());
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    os_ << "\n";
    std::fputs(os_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  (void)level_;
}

}  // namespace eagle::support
