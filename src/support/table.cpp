#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "support/atomic_file.h"
#include "support/check.h"
#include "support/log.h"

namespace eagle::support {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  EAGLE_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                  "row width " << row.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto rule = [&]() {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
  return os.str();
}

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

bool Table::WriteCsv(const std::string& path) const {
  // Atomic write: a full or unwritable disk leaves the previous file (or
  // nothing) rather than a silently truncated CSV.
  return WriteFileAtomic(path, [&](std::ostream& out) -> bool {
    auto line = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i) out << ",";
        out << CsvEscape(row[i]);
      }
      out << "\n";
    };
    if (!header_.empty()) line(header_);
    for (const auto& r : rows_) line(r);
    return static_cast<bool>(out);
  });
}

bool WriteSeriesCsv(const std::string& path, const std::string& x_name,
                    const std::string& y_name,
                    const std::vector<SeriesPoint>& points) {
  return WriteFileAtomic(path, [&](std::ostream& out) -> bool {
    out << "series," << x_name << "," << y_name << "\n";
    for (const auto& p : points) {
      // Non-finite values (e.g. the infinity marking an invalid sample)
      // become an empty field — CSV's null — instead of "inf", which most
      // consumers reject.
      out << CsvEscape(p.series) << ",";
      if (std::isfinite(p.x)) out << p.x;
      out << ",";
      if (std::isfinite(p.y)) out << p.y;
      out << "\n";
    }
    return static_cast<bool>(out);
  });
}

std::string RenderAsciiSeries(const std::vector<SeriesPoint>& points,
                              int width, int height) {
  if (points.empty()) return "(no data)\n";
  double xmin = points[0].x, xmax = points[0].x;
  double ymin = points[0].y, ymax = points[0].y;
  std::vector<std::string> names;
  for (const auto& p : points) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
    if (std::find(names.begin(), names.end(), p.series) == names.end())
      names.push_back(p.series);
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const char* glyphs = "*o+x#@%&";
  for (const auto& p : points) {
    int col = static_cast<int>((p.x - xmin) / (xmax - xmin) * (width - 1));
    int row = static_cast<int>((p.y - ymin) / (ymax - ymin) * (height - 1));
    row = height - 1 - row;  // y grows upward
    std::size_t series_idx =
        std::find(names.begin(), names.end(), p.series) - names.begin();
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        glyphs[series_idx % 8];
  }

  std::ostringstream os;
  char label[64];
  std::snprintf(label, sizeof(label), "%10.3f |", ymax);
  os << label << grid[0] << "\n";
  for (int r = 1; r + 1 < height; ++r)
    os << std::string(11, ' ') << "|" << grid[static_cast<std::size_t>(r)]
       << "\n";
  std::snprintf(label, sizeof(label), "%10.3f |", ymin);
  os << label << grid[static_cast<std::size_t>(height - 1)] << "\n";
  os << std::string(11, ' ') << "+" << std::string(static_cast<std::size_t>(width), '-')
     << "\n";
  std::snprintf(label, sizeof(label), "%12.2f", xmin);
  os << label << std::string(static_cast<std::size_t>(std::max(0, width - 12)), ' ');
  std::snprintf(label, sizeof(label), "%.2f", xmax);
  os << label << "\n  legend: ";
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << glyphs[i % 8] << "=" << names[i]
       << (i + 1 < names.size() ? "  " : "");
  }
  os << "\n";
  return os.str();
}

}  // namespace eagle::support
