// Retry policy with exponential backoff and jitter.
//
// Used by the measurement environment: a failed placement evaluation
// (session crash, device down, timeout) is retried up to max_attempts
// times, waiting initial_backoff × multiplier^k (± jitter, capped) between
// attempts. In the simulated environment the waits charge the *virtual*
// clock — exactly as a real harness would burn wall-clock time —
// so training curves priced in simulated hours stay honest under faults.
#pragma once

#include "support/rng.h"

namespace eagle::support {

struct RetryPolicy {
  int max_attempts = 3;
  double initial_backoff_seconds = 5.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 120.0;
  // Uniform jitter: the backoff is scaled by 1 ± U(0, jitter_fraction),
  // then re-clamped so the wait never exceeds max_backoff_seconds.
  // Zero keeps backoffs exact (tests rely on this).
  double jitter_fraction = 0.25;
  // An attempt whose measurement would take longer than this is killed
  // and counted as a failure (<= 0 disables the timeout). Catches
  // pathological stragglers that would otherwise stall training.
  double attempt_timeout_seconds = 0.0;

  // Wait before retry number `failures` (1-based count of failures so
  // far). `rng` drives jitter; nullptr disables it.
  double BackoffSeconds(int failures, Rng* rng = nullptr) const;

  void Validate() const;
};

}  // namespace eagle::support
