// Wall-clock stopwatch for benches and progress logging.
#pragma once

#include <chrono>

namespace eagle::support {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eagle::support
