// Lightweight precondition / invariant checking.
//
// EAGLE_CHECK is always on (these are API-misuse guards on cold paths);
// EAGLE_DCHECK compiles out in release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace eagle::support {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace eagle::support

#define EAGLE_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::eagle::support::CheckFailed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define EAGLE_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream eagle_os_;                                    \
      eagle_os_ << msg;                                                \
      ::eagle::support::CheckFailed(#cond, __FILE__, __LINE__,         \
                                    eagle_os_.str());                  \
    }                                                                  \
  } while (0)

// EAGLE_DCHECK arguments must be side-effect free: in optimized builds the
// expression is not evaluated at all (enforced by eagle-lint rule DC01).
// EAGLE_AUDIT builds keep DCHECKs live even under NDEBUG so the audited
// configurations check everything.
#if defined(NDEBUG) && !defined(EAGLE_AUDIT)
#define EAGLE_DCHECK(cond) ((void)0)
#else
#define EAGLE_DCHECK(cond) EAGLE_CHECK(cond)
#endif
