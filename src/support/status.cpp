#include "support/status.h"

#include <sstream>

namespace eagle::support {

namespace {
struct CodeName {
  ErrorCode code;
  const char* name;
};
constexpr CodeName kCodeNames[] = {
    {ErrorCode::kOk, "ok"},
    {ErrorCode::kIo, "io"},
    {ErrorCode::kSyntax, "syntax"},
    {ErrorCode::kUnknownOp, "unknown-op"},
    {ErrorCode::kDuplicateOp, "duplicate-op"},
    {ErrorCode::kDuplicateEdge, "duplicate-edge"},
    {ErrorCode::kDanglingRef, "dangling-ref"},
    {ErrorCode::kCycle, "cycle"},
    {ErrorCode::kNumericOverflow, "numeric-overflow"},
    {ErrorCode::kResourceLimit, "resource-limit"},
};
}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "?";
}

bool ErrorCodeFromName(const std::string& name, ErrorCode* out) {
  for (const CodeName& entry : kCodeNames) {
    if (name == entry.name) {
      *out = entry.code;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  std::ostringstream os;
  if (!file_.empty()) {
    os << file_ << ":";
    if (line_ > 0) {
      os << line_ << ":";
      if (column_ > 0) os << column_ << ":";
    }
    os << " ";
  }
  os << "[" << ErrorCodeName(code_) << "]";
  if (!message_.empty()) os << " " << message_;
  return os.str();
}

}  // namespace eagle::support
