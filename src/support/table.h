// ASCII table rendering and CSV export for bench output.
//
// Benches print paper-style tables to stdout and mirror them to CSV files
// so EXPERIMENTS.md can reference machine-readable results.
#pragma once

#include <string>
#include <vector>

namespace eagle::support {

class Table {
 public:
  explicit Table(std::string title = "");

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  // Formats a double with the given precision ("OOM" handled by callers
  // passing strings directly). Non-finite values — e.g. the infinity
  // sentinel invalid samples carry in training history — render as the
  // "n/a" null sentinel instead of "inf"/"nan".
  static std::string Num(double v, int precision = 3);

  // Renders an aligned ASCII table.
  std::string ToString() const;

  // Writes header+rows as CSV. Returns false (and logs) on I/O failure.
  bool WriteCsv(const std::string& path) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes a series of (x, y, tag) points to CSV — used by figure benches.
struct SeriesPoint {
  double x;
  double y;
  std::string series;
};

bool WriteSeriesCsv(const std::string& path,
                    const std::string& x_name, const std::string& y_name,
                    const std::vector<SeriesPoint>& points);

// Renders series as a coarse ASCII chart (one line per bucket) so figure
// benches show trends directly in the terminal.
std::string RenderAsciiSeries(const std::vector<SeriesPoint>& points,
                              int width = 72, int height = 18);

}  // namespace eagle::support
