// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in this repository (graph partitioners,
// neural-network initializers, RL policy sampling, environment noise)
// draws from an explicitly seeded eagle::support::Rng so that benches and
// tests regenerate identical tables for a given --seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/check.h"

namespace eagle::support {

// SplitMix64: used to expand a single user seed into stream seeds.
// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 256-bit state.
// Suitable for simulation work; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  // Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t NextBelow(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Box-Muller (no cached spare; deterministic order).
  double NextGaussian();

  // Sample an index from an unnormalized non-negative weight vector.
  // All-zero weights sample uniformly.
  std::size_t NextCategorical(const std::vector<double>& weights);

  // Sample an index from a row of probabilities (assumed to sum to ~1).
  std::size_t NextFromProbs(const float* probs, std::size_t n);

  // Fisher-Yates in-place shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream (for per-component seeding),
  // advancing this generator by one draw.
  Rng Split() { return Rng(NextU64()); }

  // Derive child stream number `stream` from the *current* state without
  // advancing it. Distinct streams (and distinct parent states) yield
  // independent children; the same (state, stream) pair always yields the
  // same child. The trainer splits one stream per minibatch sample this
  // way, so evaluations can run on any thread in any order while the
  // parent stream — and therefore the whole run — stays bit-reproducible.
  Rng Split(std::uint64_t stream) const;

  // Raw generator state, for crash-safe checkpoint/resume: restoring the
  // state continues the stream bit-compatibly.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace eagle::support
