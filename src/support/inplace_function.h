// Fixed-capacity, heap-free, move-only callable of signature void().
//
// Built for nn::Tape: every forward op records a backward closure, and a
// std::function would heap-allocate one control block per tape node (the
// captures — a few Vars plus the tape pointer — overflow libstdc++'s
// small-buffer optimization). InplaceFunction stores the closure inline
// in the node itself, so recording a 256-step unrolled LSTM allocates
// nothing. Closures larger than Capacity are rejected at compile time —
// grow the capacity consciously instead of silently falling back to the
// heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace eagle::support {

template <std::size_t Capacity>
class InplaceFunction {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { MoveFrom(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  InplaceFunction& operator=(F&& f) {
    Destroy();
    Emplace(std::forward<F>(f));
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Destroy(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable kVTableFor{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* src, void* dst) {
        Fn* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename F>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "closure exceeds InplaceFunction capacity — grow the "
                  "capacity parameter at the declaration site");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "closure is over-aligned for InplaceFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closure must be nothrow-movable (nodes relocate when "
                  "their container grows)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    vtable_ = &kVTableFor<Fn>;
  }

  void MoveFrom(InplaceFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  void Destroy() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace eagle::support
