// Crash-safe file writes: serialize into `<path>.tmp`, rename over
// `<path>` only once the stream is complete. A process killed mid-write
// can leave a stale temp file behind but never a truncated `<path>` —
// the guarantee the trainer's checkpoints (rl/checkpoint.cpp) and
// best-parameter snapshots (nn::SaveParams) both rely on.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace eagle::support {

// Creates parent directories, streams `writer` into `<path>.tmp` and
// atomically renames it to `path`. Returns false (after logging) if the
// temp file cannot be opened, `writer` returns false, the stream ends in
// a failed state, or the rename fails; `path` is left untouched in every
// failure case.
bool WriteFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& writer);

}  // namespace eagle::support
