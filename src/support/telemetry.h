// Process-wide JSONL run-telemetry sink (the --telemetry-out artifact).
//
// One structured JSON object per line, appended and flushed as training
// progresses so a killed run still leaves a parseable prefix (unlike the
// end-of-run artifacts, which go through support::WriteFileAtomic). The
// bench layer opens the sink once; rl::TrainAgent's round callback and
// the bench drivers write lines; tools/metrics_report consumes the file.
//
// Telemetry is a pure observer: nothing reads it back into the run, so a
// training run with the sink open is bit-identical to one without it.
#pragma once

#include <string>

namespace eagle::support::telemetry {

// Opens (truncates) the process-wide sink. Returns false after logging if
// the file cannot be created. Reopening closes the previous sink first.
bool OpenRunLog(const std::string& path);

bool Enabled();
const std::string& Path();

// Appends one JSONL line (the terminating '\n' is added here) and
// flushes. Thread-safe; a no-op when the sink is closed. Write errors are
// latched and reported by Close().
void WriteLine(const std::string& json_object);

// Closes the sink. Returns false if any write (or the close itself)
// failed since OpenRunLog — callers turn that into a non-zero exit so a
// full disk never yields a silently truncated telemetry file.
bool Close();

}  // namespace eagle::support::telemetry
