// Mutex-guarded LIFO free list of reusable heap objects.
//
// Built for sim::ExecutionSimulator's per-run workspace: Run() is const
// and called concurrently by EvalService workers, so each in-flight run
// leases a private workspace and returns it when done. LIFO reuse keeps
// the hottest (cache-warm, fully grown) workspace circulating; after the
// first few runs the pool stops allocating entirely. The lock is held
// only for the pop/push — never while the object is in use — so the pool
// adds two uncontended mutex operations per lease, not serialization.
//
// This header is part of the sanctioned concurrency layer (eagle-lint
// CC01): client code leases objects without naming a mutex or thread.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace eagle::support {

template <typename T>
class ResourcePool {
 public:
  // RAII lease: returns the object to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ResourcePool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          object_(std::move(other.object_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Return();
        pool_ = std::exchange(other.pool_, nullptr);
        object_ = std::move(other.object_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Return(); }

    T* get() const { return object_.get(); }
    T& operator*() const { return *object_; }
    T* operator->() const { return object_.get(); }

   private:
    void Return() {
      if (pool_ != nullptr && object_ != nullptr) {
        pool_->Release(std::move(object_));
      }
      pool_ = nullptr;
    }

    ResourcePool* pool_ = nullptr;
    std::unique_ptr<T> object_;
  };

  ResourcePool() = default;
  ResourcePool(const ResourcePool&) = delete;
  ResourcePool& operator=(const ResourcePool&) = delete;

  // Leases the most recently returned object, or default-constructs a
  // fresh one when the free list is empty.
  Lease Acquire() {
    std::unique_ptr<T> object;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        object = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (object == nullptr) object = std::make_unique<T>();
    return Lease(this, std::move(object));
  }

  // Objects currently cached (not leased out). For tests and telemetry.
  std::size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  friend class Lease;

  void Release(std::unique_ptr<T> object) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(object));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace eagle::support
