#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace eagle::support::json {

// Named (not anonymous) so the friend declaration in json.h applies.
class Parser {
 public:
  Parser(const std::string& text, std::string* error,
         std::size_t* error_offset = nullptr)
      : text_(text), error_(error), error_offset_(error_offset) {}

  Value Run() {
    Value value = ParseValue();
    SkipSpace();
    if (!failed_ && pos_ != text_.size()) {
      Fail("trailing characters after JSON value");
    }
    return failed_ ? Value() : value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void Fail(const std::string& message) {
    if (!failed_) {
      if (error_ != nullptr) {
        std::ostringstream os;
        os << "at offset " << pos_ << ": " << message;
        *error_ = os.str();
      }
      if (error_offset_ != nullptr) *error_offset_ = pos_;
    }
    failed_ = true;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    std::size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value ParseValue() {
    SkipSpace();
    if (failed_ || pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return Value();
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    Value value;
    if (ConsumeWord("null")) return value;
    if (ConsumeWord("true")) {
      value.kind_ = Value::Kind::kBool;
      value.bool_ = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind_ = Value::Kind::kBool;
      value.bool_ = false;
      return value;
    }
    Fail("unexpected character");
    return Value();
  }

  Value ParseObject() {
    Value value;
    value.kind_ = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return value;
    while (!failed_) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        break;
      }
      Value key = ParseString();
      SkipSpace();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        break;
      }
      value.fields_[key.string_] = ParseValue();
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      Fail("expected ',' or '}' in object");
    }
    return Value();
  }

  Value ParseArray() {
    Value value;
    value.kind_ = Value::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return value;
    while (!failed_) {
      value.items_.push_back(ParseValue());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      Fail("expected ',' or ']' in array");
    }
    return Value();
  }

  Value ParseString() {
    Value value;
    value.kind_ = Value::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value.string_ += '"'; break;
          case '\\': value.string_ += '\\'; break;
          case '/': value.string_ += '/'; break;
          case 'b': value.string_ += '\b'; break;
          case 'f': value.string_ += '\f'; break;
          case 'n': value.string_ += '\n'; break;
          case 'r': value.string_ += '\r'; break;
          case 't': value.string_ += '\t'; break;
          default:
            Fail("unsupported escape sequence");
            return Value();
        }
        continue;
      }
      value.string_ += c;
    }
    Fail("unterminated string");
    return Value();
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      Fail("malformed number '" + token + "'");
      return Value();
    }
    Value value;
    value.kind_ = Value::Kind::kNumber;
    value.number_ = parsed;
    return value;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t* error_offset_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

Value Value::Parse(const std::string& text, std::string* error) {
  return Parser(text, error).Run();
}

Value Value::Parse(const std::string& text, std::string* error,
                   std::size_t* error_offset) {
  return Parser(text, error, error_offset).Run();
}

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace eagle::support::json
