#include "support/retry.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace eagle::support {

void RetryPolicy::Validate() const {
  EAGLE_CHECK(max_attempts >= 1);
  EAGLE_CHECK(initial_backoff_seconds >= 0.0);
  EAGLE_CHECK(backoff_multiplier >= 1.0);
  EAGLE_CHECK(max_backoff_seconds >= initial_backoff_seconds);
  EAGLE_CHECK(jitter_fraction >= 0.0 && jitter_fraction <= 1.0);
}

double RetryPolicy::BackoffSeconds(int failures, Rng* rng) const {
  EAGLE_CHECK(failures >= 1);
  double backoff = initial_backoff_seconds *
                   std::pow(backoff_multiplier, failures - 1);
  backoff = std::min(backoff, max_backoff_seconds);
  if (rng != nullptr && jitter_fraction > 0.0) {
    backoff *= 1.0 + rng->NextUniform(-jitter_fraction, jitter_fraction);
  }
  // Clamp again *after* jitter: upward jitter on an already-capped
  // backoff must not push the wait past the configured maximum.
  return std::min(backoff, max_backoff_seconds);
}

}  // namespace eagle::support
