// Process-wide metrics registry and profiling spans.
//
// EAGLE's headline result is a time-to-solution curve (Figs. 5/6), so the
// trainer has to be able to report its *own* wall-clock honestly: cache
// hit rates, retry churn, eval-latency distribution, thread-pool
// occupancy and where each training round spends its time. This module is
// the single sink for all of that:
//
//   - Counter    monotonically increasing int64 (lock-free increments)
//   - Gauge      last-set double (e.g. worker occupancy of the last batch)
//   - Histogram  fixed-bucket latency distribution (count/sum/min/max plus
//                per-bucket counts; quantiles are interpolated from the
//                buckets, Prometheus-style)
//   - ScopedSpan RAII wall-clock timer. Always observes a histogram named
//                "span.<name>"; when profiling is enabled it additionally
//                records a SpanRecord that WriteProfile() exports in the
//                Chrome-trace event format sim::ToChromeTrace uses, so a
//                trainer profile and a schedule trace open in the same
//                Perfetto UI.
//
// Determinism contract: metrics are *observers*. Nothing in this module
// may ever be read back into RNG streams, eval results, checkpoint bytes
// or any other training state — a run with metrics/profiling enabled is
// bit-identical to one without (test_metrics proves it). Wall-clock reads
// are confined to src/support and the telemetry sinks by eagle-lint rule
// WC01; hot-path code times itself through ScopedSpan, never through a
// raw support::Stopwatch.
//
// Thread safety: every entry point is safe to call concurrently. Counter
// increments are atomic; histogram/gauge updates and name lookups take a
// registry mutex (cheap relative to the evaluations being measured).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace eagle::support::metrics {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Cumulative histogram state at one point in time. `counts[i]` is the
// number of observations <= bounds[i]; counts.back() (one past the last
// bound) is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  // Interpolated quantile (q in [0,1]) from the bucket counts, clamped to
  // [min, max]. NaN when the histogram is empty.
  double Quantile(double q) const;
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

class Histogram {
 public:
  void Observe(double value);
  HistogramSnapshot Snapshot() const;

 private:
  friend Histogram* GetHistogram(const std::string&,
                                 const std::vector<double>&);
  explicit Histogram(std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<double> bounds_;          // ascending upper bounds
  std::vector<std::int64_t> counts_;    // bounds_.size() + 1 (overflow)
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-spaced 1-2-5 latency buckets from 1 µs to 500 s — the default for
// every span/latency histogram.
const std::vector<double>& DefaultLatencyBuckets();

// Registry lookups: register-on-first-use, stable pointers for the
// process lifetime. A histogram's bucket bounds are fixed by its first
// registration; later callers get the existing instance.
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(
    const std::string& name,
    const std::vector<double>& bounds = DefaultLatencyBuckets());

// Deterministically ordered (sorted by name) copy of every registered
// metric. Snapshots are value types: diffing two of them yields the
// per-round deltas the JSONL telemetry emits.
struct Snapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Counter / histogram-count deltas relative to an earlier snapshot
  // (entries absent earlier count from zero; zero-delta entries are
  // dropped). Gauges and histogram min/max carry the later absolute
  // values.
  Snapshot DeltaSince(const Snapshot& earlier) const;
};
Snapshot TakeSnapshot();

// Drops every registered metric and recorded span. Tests only — handles
// returned by Get* before the reset dangle afterwards.
void ResetForTest();

// ---------------------------------------------------------------------------
// Profiling spans.

// Seconds since the process-wide epoch (first call wins). All spans, log
// timestamps and queue-wait measurements share this clock.
double NowSeconds();

// Small dense id for the calling thread ("T0" is whichever thread tagged
// itself first — normally main). Shared with the log prefix so profiler
// rows and interleaved log lines attribute to the same worker.
int CurrentThreadTag();

struct SpanRecord {
  std::string name;        // "train.update", "eval.ticket", ...
  int thread_tag = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

// Span recording is off by default (counters/histograms stay live); the
// bench layer enables it when --profile-out is set. The record buffer is
// capped; overflow increments the "metrics.spans_dropped" counter rather
// than growing without bound.
void EnableProfiling(bool enabled);
bool ProfilingEnabled();
std::vector<SpanRecord> SnapshotSpans();

// RAII phase timer. The histogram "span.<name>" is always observed; a
// SpanRecord is kept only while profiling is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  double start_seconds_;
};

// Chrome-trace JSON ("traceEvents" of ph:"X" slices — the same event
// shape as sim::ToChromeTrace, so both open in Perfetto). tid is the
// thread tag; pid 0 names itself "trainer" via a metadata event.
std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans);

// Writes the current span buffer as Chrome-trace JSON via
// support::WriteFileAtomic. Returns false (after logging) on I/O failure.
bool WriteProfile(const std::string& path);

}  // namespace eagle::support::metrics

// Phase-span convenience: EAGLE_SPAN("train.update") times the enclosing
// scope into the histogram "span.train.update" (and the profile, when
// enabled).
#define EAGLE_SPAN_CONCAT_IMPL(a, b) a##b
#define EAGLE_SPAN_CONCAT(a, b) EAGLE_SPAN_CONCAT_IMPL(a, b)
#define EAGLE_SPAN(name)                  \
  ::eagle::support::metrics::ScopedSpan \
  EAGLE_SPAN_CONCAT(eagle_span_, __LINE__)(name)
