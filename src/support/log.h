// Minimal leveled logger writing to stderr.
//
// Usage: EAGLE_LOG(INFO) << "trained " << n << " steps";
// Level is a process-wide setting; benches set it from --verbose, and the
// EAGLE_LOG_LEVEL environment variable (debug|info|warn|error or 0-3)
// picks the *initial* level so parallel-worker logs can be turned on
// without editing a bench invocation. Explicit SetLogLevel calls still
// win over the environment.
//
// Every line carries an elapsed-time + thread-tag prefix
// ("[  12.345s T3 INFO env.cpp:42]") so interleaved EvalService worker
// logs stay attributable; the tags and the clock are shared with
// support::metrics, so log lines line up with profiler spans.
#pragma once

#include <sstream>
#include <string>

namespace eagle::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name ("debug", "INFO", "2", ...); falls back to
// `fallback` on anything unrecognized. Used for EAGLE_LOG_LEVEL.
LogLevel LogLevelFromString(const std::string& text, LogLevel fallback);

// The prefix LogMessage emits, exposed for tests:
// "[<elapsed>s T<tag> <LEVEL> <file>:<line>] ".
std::string FormatLogPrefix(LogLevel level, const char* file, int line,
                            double elapsed_seconds, int thread_tag);

// RAII message builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace eagle::support

#define EAGLE_LOG(severity)                                             \
  ::eagle::support::LogMessage(::eagle::support::LogLevel::k##severity, \
                               __FILE__, __LINE__)
