// Minimal leveled logger writing to stderr.
//
// Usage: EAGLE_LOG(INFO) << "trained " << n << " steps";
// Level is a process-wide setting; benches set it from --verbose.
#pragma once

#include <sstream>
#include <string>

namespace eagle::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// RAII message builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace eagle::support

#define EAGLE_LOG(severity)                                             \
  ::eagle::support::LogMessage(::eagle::support::LogLevel::k##severity, \
                               __FILE__, __LINE__)
