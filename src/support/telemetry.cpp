#include "support/telemetry.h"

#include <fstream>
#include <memory>
#include <mutex>

#include "support/log.h"

namespace eagle::support::telemetry {

namespace {

struct Sink {
  std::mutex mutex;
  std::unique_ptr<std::ofstream> out;
  std::string path;
  bool write_failed = false;
};

Sink& GetSink() {
  static Sink* sink = new Sink();
  return *sink;
}

}  // namespace

bool OpenRunLog(const std::string& path) {
  Sink& sink = GetSink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.out = std::make_unique<std::ofstream>(path, std::ios::trunc);
  sink.path = path;
  sink.write_failed = false;
  if (!*sink.out) {
    EAGLE_LOG(Error) << "cannot open telemetry sink " << path;
    sink.out.reset();
    sink.write_failed = true;
    return false;
  }
  return true;
}

bool Enabled() {
  Sink& sink = GetSink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  return sink.out != nullptr;
}

const std::string& Path() {
  Sink& sink = GetSink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  return sink.path;
}

void WriteLine(const std::string& json_object) {
  Sink& sink = GetSink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.out == nullptr) return;
  *sink.out << json_object << '\n';
  sink.out->flush();
  if (!*sink.out && !sink.write_failed) {
    sink.write_failed = true;
    EAGLE_LOG(Error) << "telemetry write to " << sink.path
                     << " failed (disk full?)";
  }
}

bool Close() {
  Sink& sink = GetSink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.out != nullptr) {
    sink.out->flush();
    if (!*sink.out) sink.write_failed = true;
    sink.out.reset();
  }
  return !sink.write_failed;
}

}  // namespace eagle::support::telemetry
