// Minimal JSON: a parser for the artifacts this repo emits (run
// telemetry JSONL, bench history exports, Chrome traces) and the escape /
// number helpers the writers share.
//
// Scope is deliberately small — standard JSON minus \uXXXX escapes (the
// repo never emits them): null/true/false, doubles, strings, arrays,
// objects. Object fields are stored in a sorted std::map so consumers
// iterate deterministically.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eagle::support::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  // Parses `text`. On failure returns a null Value and, when `error` is
  // non-null, stores a human-readable position + message.
  static Value Parse(const std::string& text, std::string* error = nullptr);
  // As above, but additionally reports the byte offset the parse failed
  // at, so callers owning the original text can turn it into line:column
  // (the graph JSON importer does this for its diagnostics).
  static Value Parse(const std::string& text, std::string* error,
                     std::size_t* error_offset);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Value>& items() const { return items_; }
  const std::map<std::string, Value>& fields() const { return fields_; }

  // Object field lookup; null pointer when absent or not an object.
  const Value* Find(const std::string& key) const;
  // Convenience accessors with defaults, for tolerant consumers.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::map<std::string, Value> fields_;

  friend class Parser;
};

// Escapes ", \ and control characters for embedding in a JSON string.
std::string Escape(const std::string& s);

// Renders a double as a JSON token: round-trippable precision, and the
// JSON literal `null` for non-finite values (JSON has no Infinity — the
// same sentinel convention as the bench history exports).
std::string Num(double v);

}  // namespace eagle::support::json
