// GCN placer (§III-C, Fig. 3b): two graph-convolution layers over the
// group graph followed by a softmax head; all groups' devices are
// predicted simultaneously and independently — the property that costs it
// against the sequence-to-sequence placer in Table II (no conditioning on
// previous decisions).
#pragma once

#include "core/seq2seq_placer.h"  // PlacerRollout
#include "nn/layers.h"

namespace eagle::core {

class GcnPlacer {
 public:
  GcnPlacer() = default;
  GcnPlacer(nn::ParamStore& store, int input_dim, int hidden,
            int num_devices, support::Rng& rng);

  // `adjacency` is the constant normalized group adjacency Â (k×k).
  PlacerRollout Run(nn::Tape& tape, nn::Var group_embeddings, nn::Var adjacency,
                    support::Rng* rng,
                    const std::vector<std::int32_t>* forced) const;

  int num_devices() const { return num_devices_; }

 private:
  nn::GraphConv conv1_;
  nn::GraphConv conv2_;
  nn::Linear output_;
  int num_devices_ = 0;
};

}  // namespace eagle::core
