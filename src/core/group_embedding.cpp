#include "core/group_embedding.h"

#include "graph/grouped_graph.h"

namespace eagle::core {

nn::Tensor MakeGroupEmbeddings(const graph::OpGraph& graph,
                               const graph::Grouping& grouping,
                               int num_groups, graph::FeatureMode mode,
                               bool include_adjacency) {
  graph::GroupedGraph grouped(graph, grouping, num_groups);
  auto data = graph::BuildGroupEmbeddings(grouped, mode, include_adjacency);
  const int dim = graph::GroupEmbeddingDim(num_groups, include_adjacency);
  return nn::Tensor::FromData(num_groups, dim, std::move(data));
}

nn::Tensor MakeGroupAdjacency(const graph::OpGraph& graph,
                              const graph::Grouping& grouping,
                              int num_groups) {
  graph::GroupedGraph grouped(graph, grouping, num_groups);
  auto data = graph::BuildNormalizedGroupAdjacency(grouped);
  return nn::Tensor::FromData(num_groups, num_groups, std::move(data));
}

nn::Tensor MakeOpFeatures(const graph::OpGraph& graph,
                          graph::FeatureMode mode) {
  auto data = graph::BuildOpFeatures(graph, mode);
  return nn::Tensor::FromData(graph.num_ops(), graph::OpFeatureDim(),
                              std::move(data));
}

}  // namespace eagle::core
