// The agent/environment interface layer.
//
// These are the contracts the concrete agents in src/core implement and
// the training loop in src/rl consumes. They live in core — not rl — so
// the dependency arrow matches the layer DAG (support → … → core → rl,
// enforced by eagle-lint LY01): rl's trainer depends on these interfaces,
// and core's agents implement them, without core ever including an rl
// header. src/rl re-exports the names (rl::Sample, rl::PolicyAgent, …)
// for its own vocabulary, so training code reads naturally either way.
//
// Device placement is a one-shot (contextual-bandit-like) RL problem: one
// decision (grouping + per-group devices), one reward (negative square
// root of the measured per-step time, Eq. 4). A Sample records the actions
// and the log-probability under the policy that generated them, so PPO can
// form importance ratios when re-scoring under updated parameters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/grouped_graph.h"
#include "nn/layers.h"
#include "nn/tape.h"
#include "sim/measurement.h"
#include "sim/placement.h"
#include "support/rng.h"

namespace eagle::core {

struct Sample {
  // Actions: grouping over ops (empty when the grouper is fixed/heuristic)
  // and a device per group.
  graph::Grouping grouping;
  std::vector<std::int32_t> group_devices;

  double logp = 0.0;       // log π_old(a|s) at sampling time
  // Number of elementary decisions behind `logp` (groups placed, plus the
  // grouper's weighted contribution). PPO normalizes its importance
  // log-ratio by this so the clip region stays meaningful for joint
  // policies over hundreds of categoricals.
  int num_decisions = 1;
  // Global sample index, doubling as the child-RNG stream number: the
  // trainer evaluates sample i with rng.Split(eval_stream) so measurement
  // noise is identical whether the minibatch runs serially or on a
  // thread pool (core::EvalService).
  std::uint64_t eval_stream = 0;
  bool valid = false;      // environment verdict (false == OOM)
  double per_step_seconds = 0.0;  // measured (noisy) per-step time
  double reward = 0.0;
  double advantage = 0.0;
};

// Agents expose this interface to the training algorithms: sampling builds
// a decision under current parameters; scoring rebuilds the log-prob (and
// entropy) of a *stored* decision under current parameters on a fresh tape
// so that REINFORCE/PPO/CE losses can be backpropagated.
class PolicyAgent {
 public:
  virtual ~PolicyAgent() = default;

  virtual Sample SampleDecision(support::Rng& rng) = 0;

  struct Score {
    nn::Var logp;     // 1×1
    nn::Var entropy;  // 1×1 (mean policy entropy, for the bonus term)
  };
  virtual Score ScoreDecision(nn::Tape& tape, const Sample& sample) = 0;

  // Expands a sample's actions into a normalized op-level placement.
  virtual sim::Placement ToPlacement(const Sample& sample) const = 0;

  virtual nn::ParamStore& params() = 0;
  virtual const char* name() const = 0;
};

// Environment abstraction implemented by core::PlacementEnvironment.
class Environment {
 public:
  virtual ~Environment() = default;
  // Evaluates a normalized placement; rng drives measurement noise.
  virtual sim::EvalResult Evaluate(const sim::Placement& placement,
                                   support::Rng* rng) = 0;
  // Penalty per-step time charged to invalid placements.
  virtual double InvalidPenaltySeconds() const = 0;
  // Mutable environment state (fault stream, counters) captured into /
  // restored from training checkpoints so a resumed run replays
  // bit-compatibly. Stateless environments can keep the no-op default.
  virtual void SerializeState(std::ostream& out) const { (void)out; }
  virtual void DeserializeState(std::istream& in) { (void)in; }
};

// Batch evaluation abstraction implemented by core::EvalService: the
// trainer hands over a full round of placements plus one private RNG per
// sample and gets results back in submission order. Implementations must
// be bit-identical to evaluating the placements one by one with
// Environment::Evaluate — thread count may change wall-clock time only.
class BatchEvaluator {
 public:
  virtual ~BatchEvaluator() = default;
  // Evaluates placements[i] with rngs[i]; returns one result per
  // placement, in the same order.
  virtual std::vector<sim::EvalResult> EvaluateBatch(
      const std::vector<sim::Placement>& placements,
      std::vector<support::Rng>& rngs) = 0;
};

// Exponential-moving-average reward baseline (§III-D). The paper found an
// A2C-style value network under-trained at device-placement sample rates
// and replaced it with an EMA baseline:
//   B_t = ExpMovAvg(R_t),  Â_t = R_t - B_t.
class EmaBaseline {
 public:
  explicit EmaBaseline(double decay = 0.9) : decay_(decay) {}

  // Returns the advantage R - B using the baseline *before* folding R in,
  // then updates the average. The first observation seeds the baseline
  // (advantage 0), matching common implementations.
  double AdvantageAndUpdate(double reward) {
    if (!initialized_) {
      value_ = reward;
      initialized_ = true;
      return 0.0;
    }
    const double advantage = reward - value_;
    value_ = decay_ * value_ + (1.0 - decay_) * reward;
    return advantage;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }

  // Restores a checkpointed baseline (crash-safe training resume).
  void set_state(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace eagle::core
