#include "core/eagle_agent.h"

#include "support/check.h"

namespace eagle::core {

HierarchicalAgent::HierarchicalAgent(const graph::OpGraph& graph,
                                     const sim::ClusterSpec& cluster,
                                     HierarchicalAgentConfig config)
    : graph_(&graph), cluster_(&cluster), config_(std::move(config)) {
  support::Rng rng(config_.seed);
  const int k = config_.dims.num_groups;
  const bool adjacency_in_embedding = config_.placer == PlacerKind::kSeq2Seq;
  const int embed_dim = graph::GroupEmbeddingDim(k, adjacency_in_embedding);
  const int bridge_dim =
      config_.use_bridge ? config_.dims.bridge_hidden : 0;

  if (config_.grouper == GrouperKind::kLearned) {
    grouper_ = GrouperFFN(store_, graph::OpFeatureDim(),
                          config_.dims.grouper_hidden, k, rng);
    if (config_.use_bridge) {
      bridge_ = BridgeRnn(store_, config_.dims.grouper_hidden,
                          config_.dims.bridge_hidden, rng);
    }
  } else {
    EAGLE_CHECK_MSG(static_cast<int>(config_.fixed_grouping.size()) ==
                        graph.num_ops(),
                    "fixed grouping does not cover the graph");
    EAGLE_CHECK_MSG(!config_.use_bridge,
                    "bridge RNN requires a learned grouper");
    fixed_embeddings_ = MakeGroupEmbeddings(
        graph, config_.fixed_grouping, k, config_.features,
        adjacency_in_embedding);
    if (config_.placer == PlacerKind::kGcn) {
      fixed_adjacency_ = MakeGroupAdjacency(graph, config_.fixed_grouping, k);
    }
  }

  const int placer_input_dim = embed_dim + bridge_dim;
  const int num_devices = cluster.num_devices();
  if (config_.placer == PlacerKind::kSeq2Seq) {
    seq_placer_ = Seq2SeqPlacer(
        store_, placer_input_dim, config_.dims.placer_hidden,
        config_.dims.attn_dim, config_.dims.device_embed_dim, num_devices,
        config_.attention, rng);
  } else {
    gcn_placer_ = GcnPlacer(store_, placer_input_dim,
                            config_.dims.placer_hidden, num_devices, rng);
  }

  op_features_ = MakeOpFeatures(graph, config_.features);
  if (config_.grouper == GrouperKind::kLearned &&
      config_.grouper_locality_prior) {
    locality_prior_ = MakeLocalityPrior(graph, k);
  }
  grouper_weight_ =
      config_.grouper_logp_weight >= 0.0
          ? config_.grouper_logp_weight
          : static_cast<double>(k) / std::max(1, graph.num_ops());
}

HierarchicalAgent::PolicyOutput HierarchicalAgent::RunPolicy(
    nn::Tape& tape, support::Rng* rng, const Sample* forced) {
  EAGLE_CHECK((rng != nullptr) != (forced != nullptr));
  const int k = config_.dims.num_groups;
  PolicyOutput out;

  nn::Var group_embeddings;
  nn::Var grouper_logp;
  nn::Var grouper_entropy;
  bool has_grouper_terms = false;

  if (config_.grouper == GrouperKind::kLearned) {
    nn::Var features = tape.Input(op_features_);
    const graph::Grouping* forced_grouping =
        forced != nullptr ? &forced->grouping : nullptr;
    auto grouped = grouper_.Run(
        tape, features, rng, forced_grouping,
        locality_prior_.empty() ? nullptr : &locality_prior_);
    out.grouping = grouped.grouping;
    grouper_logp = grouped.log_prob;
    grouper_entropy = grouped.entropy;
    has_grouper_terms = true;

    nn::Tensor embeds = MakeGroupEmbeddings(
        *graph_, out.grouping, k, config_.features,
        /*include_adjacency=*/config_.placer == PlacerKind::kSeq2Seq);
    group_embeddings = tape.Input(std::move(embeds));
    if (config_.use_bridge) {
      nn::Var conditioning =
          bridge_.Apply(tape, grouper_, grouped.softmax, out.grouping);
      group_embeddings = tape.ConcatCols(group_embeddings, conditioning);
    }
  } else {
    out.grouping = config_.fixed_grouping;
    group_embeddings = tape.Input(fixed_embeddings_);
  }

  PlacerRollout rollout;
  const std::vector<std::int32_t>* forced_devices =
      forced != nullptr ? &forced->group_devices : nullptr;
  if (config_.placer == PlacerKind::kSeq2Seq) {
    rollout = seq_placer_.Run(tape, group_embeddings, rng, forced_devices);
  } else {
    nn::Var adjacency = tape.Input(
        config_.grouper == GrouperKind::kFixed
            ? fixed_adjacency_
            : MakeGroupAdjacency(*graph_, out.grouping, k));
    rollout = gcn_placer_.Run(tape, group_embeddings, adjacency, rng,
                              forced_devices);
  }
  out.devices = rollout.devices;

  if (has_grouper_terms) {
    out.logp = tape.Add(
        rollout.log_prob,
        tape.Scale(grouper_logp, static_cast<float>(grouper_weight_)));
    out.entropy = tape.Add(rollout.entropy, grouper_entropy);
  } else {
    out.logp = rollout.log_prob;
    out.entropy = rollout.entropy;
  }
  return out;
}

Sample HierarchicalAgent::SampleDecision(support::Rng& rng) {
  nn::Tape tape;
  PolicyOutput out = RunPolicy(tape, &rng, nullptr);
  Sample sample;
  sample.grouping = std::move(out.grouping);
  sample.group_devices = std::move(out.devices);
  sample.logp = static_cast<double>(tape.value(out.logp).at(0, 0));
  sample.num_decisions = static_cast<int>(sample.group_devices.size()) +
                         (config_.grouper == GrouperKind::kLearned
                              ? config_.dims.num_groups  // grouper term is
                                                         // scaled to ~k
                                                         // decisions
                              : 0);
  return sample;
}

HierarchicalAgent::Score HierarchicalAgent::ScoreDecision(
    nn::Tape& tape, const Sample& sample) {
  PolicyOutput out = RunPolicy(tape, nullptr, &sample);
  return Score{out.logp, out.entropy};
}

sim::Placement HierarchicalAgent::ToPlacement(const Sample& sample) const {
  graph::GroupedGraph grouped(*graph_, sample.grouping,
                              config_.dims.num_groups);
  sim::Placement placement(*graph_, grouped.ExpandToOps(sample.group_devices));
  placement.Normalize(*graph_, *cluster_);
  return placement;
}

std::unique_ptr<HierarchicalAgent> MakeEagleAgent(
    const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
    const AgentDims& dims, std::uint64_t seed) {
  HierarchicalAgentConfig config;
  config.display_name = "EAGLE";
  config.dims = dims;
  config.grouper = GrouperKind::kLearned;
  config.placer = PlacerKind::kSeq2Seq;
  config.attention = AttentionVariant::kBefore;
  config.use_bridge = true;
  config.features = graph::FeatureMode::kReconstructed;
  config.seed = seed;
  return std::make_unique<HierarchicalAgent>(graph, cluster,
                                             std::move(config));
}

std::unique_ptr<HierarchicalAgent> MakeHierarchicalPlanner(
    const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
    const AgentDims& dims, std::uint64_t seed) {
  HierarchicalAgentConfig config;
  config.display_name = "Hierarchical Planner";
  config.dims = dims;
  config.grouper = GrouperKind::kLearned;
  config.placer = PlacerKind::kSeq2Seq;
  config.attention = AttentionVariant::kAfter;
  config.use_bridge = false;
  config.features = graph::FeatureMode::kRaw;
  config.seed = seed;
  return std::make_unique<HierarchicalAgent>(graph, cluster,
                                             std::move(config));
}

std::unique_ptr<HierarchicalAgent> MakeFixedGrouperAgent(
    const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
    graph::Grouping grouping, PlacerKind placer, AttentionVariant attention,
    const AgentDims& dims, std::uint64_t seed, const std::string& name) {
  HierarchicalAgentConfig config;
  config.display_name = name;
  config.dims = dims;
  config.grouper = GrouperKind::kFixed;
  config.fixed_grouping = std::move(grouping);
  config.placer = placer;
  config.attention = attention;
  config.use_bridge = false;
  config.features = graph::FeatureMode::kReconstructed;
  config.seed = seed;
  return std::make_unique<HierarchicalAgent>(graph, cluster,
                                             std::move(config));
}

}  // namespace eagle::core
