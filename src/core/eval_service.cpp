#include "core/eval_service.h"

#include "support/check.h"
#include "support/metrics.h"

namespace eagle::core {

namespace {

namespace metrics = support::metrics;

// Telemetry observers only: none of these values feed back into tickets,
// RNG streams or results, so the bit-identity guarantee of EvaluateBatch
// is unaffected (test_metrics locks this in).
struct ServiceMetrics {
  metrics::Histogram* queue_wait =
      metrics::GetHistogram("eval.queue_wait_seconds");
  metrics::Gauge* occupancy = metrics::GetGauge("eval.worker_occupancy");
};

ServiceMetrics& Metrics() {
  static ServiceMetrics m;
  return m;
}

}  // namespace

EvalService::EvalService(PlacementEnvironment& environment, int num_threads)
    : environment_(&environment) {
  if (num_threads > 1) {
    pool_ = std::make_unique<support::ThreadPool>(num_threads);
  }
}

EvalService::~EvalService() = default;

int EvalService::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_threads();
}

std::vector<sim::EvalResult> EvalService::EvaluateBatch(
    const std::vector<sim::Placement>& placements,
    std::vector<support::Rng>& rngs) {
  EAGLE_SPAN("eval.batch");
  EAGLE_CHECK(placements.size() == rngs.size());
  const std::size_t count = placements.size();
  const double batch_start = metrics::NowSeconds();

  // Phase 1 — dispatch order: split the fault stream and settle cache
  // accounting while the environment is still in its pre-batch state.
  std::vector<EvalTicket> tickets;
  tickets.reserve(count);
  for (const sim::Placement& placement : placements) {
    tickets.push_back(environment_->PrepareEvaluation(placement));
  }

  // Phase 2 — concurrent: each evaluation touches only its own ticket
  // and RNG. Exceptions propagate out of Wait() after the batch drains.
  // busy_seconds[i] is written by exactly one worker and read only after
  // Wait(), so no synchronization beyond the pool barrier is needed.
  std::vector<EvalOutcome> outcomes(count);
  std::vector<double> busy_seconds(count, 0.0);
  auto run_ticket = [this, &placements, &tickets, &rngs, &outcomes,
                     &busy_seconds](std::size_t i, double submitted) {
    Metrics().queue_wait->Observe(metrics::NowSeconds() - submitted);
    const double start = metrics::NowSeconds();
    {
      EAGLE_SPAN("eval.ticket");
      outcomes[i] =
          environment_->EvaluateTicket(placements[i], tickets[i], &rngs[i]);
    }
    busy_seconds[i] = metrics::NowSeconds() - start;
  };
  if (pool_ != nullptr) {
    for (std::size_t i = 0; i < count; ++i) {
      const double submitted = metrics::NowSeconds();
      pool_->Submit([&run_ticket, i, submitted] { run_ticket(i, submitted); });
    }
    pool_->Wait();
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      run_ticket(i, metrics::NowSeconds());
    }
  }

  // Worker occupancy of this batch: busy worker-seconds over available
  // worker-seconds. 1.0 means every thread computed the whole time; low
  // values expose straggler-bound batches.
  const double wall = metrics::NowSeconds() - batch_start;
  if (count > 0 && wall > 0.0) {
    double busy = 0.0;
    for (double s : busy_seconds) busy += s;
    Metrics().occupancy->Set(busy / (wall * num_threads()));
  }

  // Phase 3 — submission order: replay cache fills and counter updates
  // exactly as an interleaved serial run would have.
  std::vector<sim::EvalResult> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    environment_->CommitEvaluation(placements[i], outcomes[i]);
    results.push_back(outcomes[i].result);
  }
  return results;
}

}  // namespace eagle::core
