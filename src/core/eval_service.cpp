#include "core/eval_service.h"

#include "support/check.h"

namespace eagle::core {

EvalService::EvalService(PlacementEnvironment& environment, int num_threads)
    : environment_(&environment) {
  if (num_threads > 1) {
    pool_ = std::make_unique<support::ThreadPool>(num_threads);
  }
}

EvalService::~EvalService() = default;

int EvalService::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_threads();
}

std::vector<sim::EvalResult> EvalService::EvaluateBatch(
    const std::vector<sim::Placement>& placements,
    std::vector<support::Rng>& rngs) {
  EAGLE_CHECK(placements.size() == rngs.size());
  const std::size_t count = placements.size();

  // Phase 1 — dispatch order: split the fault stream and settle cache
  // accounting while the environment is still in its pre-batch state.
  std::vector<EvalTicket> tickets;
  tickets.reserve(count);
  for (const sim::Placement& placement : placements) {
    tickets.push_back(environment_->PrepareEvaluation(placement));
  }

  // Phase 2 — concurrent: each evaluation touches only its own ticket
  // and RNG. Exceptions propagate out of Wait() after the batch drains.
  std::vector<EvalOutcome> outcomes(count);
  if (pool_ != nullptr) {
    for (std::size_t i = 0; i < count; ++i) {
      pool_->Submit([this, &placements, &tickets, &rngs, &outcomes, i] {
        outcomes[i] = environment_->EvaluateTicket(placements[i], tickets[i],
                                                   &rngs[i]);
      });
    }
    pool_->Wait();
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      outcomes[i] =
          environment_->EvaluateTicket(placements[i], tickets[i], &rngs[i]);
    }
  }

  // Phase 3 — submission order: replay cache fills and counter updates
  // exactly as an interleaved serial run would have.
  std::vector<sim::EvalResult> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    environment_->CommitEvaluation(placements[i], outcomes[i]);
    results.push_back(outcomes[i].result);
  }
  return results;
}

}  // namespace eagle::core
