// Pre-defined placements: the Single-GPU and Human-Expert baselines of
// §IV-B.
//
//   Single GPU    — every op on one GPU, CPU-incompatible ops on the CPU;
//                   valid only when the model fits (Inception-V3).
//   Human Expert  — Inception-V3: the TF-Slim placement (everything on one
//                   GPU, input pipeline on CPU);
//                   GNMT: the tf/nmt convention — each LSTM layer,
//                   attention and softmax on a separate device, spread
//                   over the 4 GPUs via the layer tags in the graph;
//                   BERT: none (google-research/bert has no model-parallel
//                   multi-GPU placement — the paper reports OOM).
#pragma once

#include <optional>

#include "models/zoo.h"
#include "sim/placement.h"

namespace eagle::core {

sim::Placement SingleGpuPlacement(const graph::OpGraph& graph,
                                  const sim::ClusterSpec& cluster);

std::optional<sim::Placement> HumanExpertPlacement(
    models::Benchmark benchmark, const graph::OpGraph& graph,
    const sim::ClusterSpec& cluster);

}  // namespace eagle::core
