// HierarchicalAgent: the grouper→placer policy family of §III, covering
//
//   EAGLE                — learned FFN grouper + bridge RNN + seq2seq
//                          placer with attention-before + reconstructed
//                          state vectors (every EAGLE ingredient on);
//   Hierarchical Planner — learned FFN grouper, no bridge, seq2seq placer
//                          with attention-after, raw HP-style features
//                          (our reproduction of Mirhoseini et al. [5]);
//   fixed-grouper agents — METIS / fluid-communities / any precomputed
//                          grouping with a trainable placer (Tables I–II).
//
// The joint decision log-probability is
//   log π = log π_placer + w_g · log π_grouper,
// with w_g defaulting to num_groups/num_ops: the grouper term is a sum of
// thousands of per-op categoricals whose raw magnitude would swamp the
// placer term and blow up PPO importance ratios; scaling it to the same
// order as the placer term (≈ one categorical per group) keeps the joint
// ratio meaningful. The same weight is used at sampling and scoring time,
// so the PPO ratio is exact for the reweighted objective.
#pragma once

#include <memory>
#include <string>

#include "core/bridge_rnn.h"
#include "core/gcn_placer.h"
#include "core/group_embedding.h"
#include "core/grouper_ffn.h"
#include "core/policy.h"
#include "core/run_config.h"
#include "core/seq2seq_placer.h"
#include "sim/device.h"

namespace eagle::core {

enum class GrouperKind { kLearned, kFixed };
enum class PlacerKind { kSeq2Seq, kGcn };

struct HierarchicalAgentConfig {
  std::string display_name = "EAGLE";
  AgentDims dims;
  GrouperKind grouper = GrouperKind::kLearned;
  graph::Grouping fixed_grouping;  // required when grouper == kFixed
  PlacerKind placer = PlacerKind::kSeq2Seq;
  AttentionVariant attention = AttentionVariant::kBefore;
  bool use_bridge = true;
  // Additive topological-banding prior on the grouper logits (see
  // GrouperFFN::Logits). On for both learned-grouper agents: it is a
  // grouper-input design, not an EAGLE-vs-HP differentiator.
  bool grouper_locality_prior = true;
  graph::FeatureMode features = graph::FeatureMode::kReconstructed;
  // <0: auto (num_groups / num_ops).
  double grouper_logp_weight = -1.0;
  std::uint64_t seed = 1;
};

class HierarchicalAgent : public PolicyAgent {
 public:
  HierarchicalAgent(const graph::OpGraph& graph,
                    const sim::ClusterSpec& cluster,
                    HierarchicalAgentConfig config);

  Sample SampleDecision(support::Rng& rng) override;
  Score ScoreDecision(nn::Tape& tape, const Sample& sample) override;
  sim::Placement ToPlacement(const Sample& sample) const override;
  nn::ParamStore& params() override { return store_; }
  const char* name() const override { return config_.display_name.c_str(); }

  const HierarchicalAgentConfig& config() const { return config_; }

 private:
  struct PolicyOutput {
    graph::Grouping grouping;
    std::vector<std::int32_t> devices;
    nn::Var logp;
    nn::Var entropy;
  };
  PolicyOutput RunPolicy(nn::Tape& tape, support::Rng* rng,
                         const Sample* forced);

  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  HierarchicalAgentConfig config_;
  nn::ParamStore store_;
  GrouperFFN grouper_;
  BridgeRnn bridge_;
  Seq2SeqPlacer seq_placer_;
  GcnPlacer gcn_placer_;
  nn::Tensor op_features_;
  nn::Tensor locality_prior_;
  // Cached embeddings for the fixed-grouper case.
  nn::Tensor fixed_embeddings_;
  nn::Tensor fixed_adjacency_;
  double grouper_weight_ = 0.0;
};

// ---- factories for the named approaches ----

std::unique_ptr<HierarchicalAgent> MakeEagleAgent(
    const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
    const AgentDims& dims, std::uint64_t seed);

std::unique_ptr<HierarchicalAgent> MakeHierarchicalPlanner(
    const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
    const AgentDims& dims, std::uint64_t seed);

std::unique_ptr<HierarchicalAgent> MakeFixedGrouperAgent(
    const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
    graph::Grouping grouping, PlacerKind placer, AttentionVariant attention,
    const AgentDims& dims, std::uint64_t seed, const std::string& name);

}  // namespace eagle::core
