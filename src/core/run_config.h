// Shared agent/benchmark configuration for benches and examples.
//
// Paper-scale hyperparameters (§IV-C): 256 groups, 2×64-unit grouper FFN,
// 512-unit LSTM placer. The defaults here are scaled down so full training
// sweeps run on a single CPU core in minutes; pass --full to benches to
// restore paper-scale agent dimensions.
#pragma once

#include <cstdint>

#include "graph/features.h"

namespace eagle::core {

enum class AttentionVariant {
  kBefore,  // context fed INTO the decoder LSTM (EAGLE's choice, Fig. 4a)
  kAfter,   // context combined AFTER the decoder LSTM (HP's choice, Fig. 4b)
};

const char* AttentionVariantName(AttentionVariant variant);

struct AgentDims {
  int num_groups = 24;
  int grouper_hidden = 24;   // paper: 64
  int placer_hidden = 64;    // paper: 512
  int attn_dim = 32;
  int bridge_hidden = 16;
  int device_embed_dim = 8;

  // Paper-scale dimensions (§IV-C).
  static AgentDims PaperScale() {
    AgentDims dims;
    dims.num_groups = 256;
    dims.grouper_hidden = 64;
    dims.placer_hidden = 512;
    dims.attn_dim = 256;
    dims.bridge_hidden = 64;
    dims.device_embed_dim = 32;
    return dims;
  }
};

}  // namespace eagle::core
