#include "core/post_agent.h"

#include "partition/metis_like.h"
#include "support/check.h"

namespace eagle::core {

PostAgent::PostAgent(const graph::OpGraph& graph,
                     const sim::ClusterSpec& cluster,
                     graph::Grouping grouping, PostAgentConfig config)
    : graph_(&graph),
      cluster_(&cluster),
      config_(std::move(config)),
      grouping_(std::move(grouping)) {
  support::Rng rng(config_.seed);
  embeddings_ = MakeGroupEmbeddings(graph, grouping_, config_.num_groups,
                                    config_.features,
                                    /*include_adjacency=*/true);
  l1_ = nn::Linear(store_, "post/l1", embeddings_.cols(), config_.hidden,
                   rng);
  l2_ = nn::Linear(store_, "post/l2", config_.hidden,
                   cluster.num_devices(), rng);
}

PostAgent::Output PostAgent::RunPolicy(
    nn::Tape& tape, support::Rng* rng,
    const std::vector<std::int32_t>* forced) {
  EAGLE_CHECK((rng != nullptr) != (forced != nullptr));
  const int k = config_.num_groups;
  const int num_devices = cluster_->num_devices();
  nn::Var x = tape.Input(embeddings_);
  nn::Var logits = l2_.Apply(tape, tape.Tanh(l1_.Apply(tape, x)));  // k×D
  nn::Var logp = tape.LogSoftmax(logits);
  nn::Var probs = tape.Softmax(logits);

  Output out;
  out.devices.resize(static_cast<std::size_t>(k));
  std::vector<int> picks(static_cast<std::size_t>(k));
  for (int g = 0; g < k; ++g) {
    int device;
    if (forced != nullptr) {
      device = (*forced)[static_cast<std::size_t>(g)];
      EAGLE_CHECK(device >= 0 && device < num_devices);
    } else {
      device = static_cast<int>(rng->NextFromProbs(
          tape.value(probs).row(g), static_cast<std::size_t>(num_devices)));
    }
    out.devices[static_cast<std::size_t>(g)] = device;
    picks[static_cast<std::size_t>(g)] = device;
  }
  out.logp = tape.Sum(tape.PickPerRow(logp, std::move(picks)));
  out.entropy = tape.Scale(tape.Sum(tape.Mul(probs, logp)),
                           -1.0f / static_cast<float>(k));
  return out;
}

Sample PostAgent::SampleDecision(support::Rng& rng) {
  nn::Tape tape;
  Output out = RunPolicy(tape, &rng, nullptr);
  Sample sample;
  sample.grouping = grouping_;
  sample.group_devices = std::move(out.devices);
  sample.logp = static_cast<double>(tape.value(out.logp).at(0, 0));
  sample.num_decisions = static_cast<int>(sample.group_devices.size());
  return sample;
}

PostAgent::Score PostAgent::ScoreDecision(nn::Tape& tape,
                                          const Sample& sample) {
  Output out = RunPolicy(tape, nullptr, &sample.group_devices);
  return Score{out.logp, out.entropy};
}

sim::Placement PostAgent::ToPlacement(const Sample& sample) const {
  graph::GroupedGraph grouped(*graph_, sample.grouping, config_.num_groups);
  sim::Placement placement(*graph_, grouped.ExpandToOps(sample.group_devices));
  placement.Normalize(*graph_, *cluster_);
  return placement;
}

std::unique_ptr<PostAgent> MakePostAgent(const graph::OpGraph& graph,
                                         const sim::ClusterSpec& cluster,
                                         int num_groups, std::uint64_t seed) {
  partition::MetisOptions metis;
  metis.num_parts = num_groups;
  metis.seed = seed;
  graph::Grouping grouping = partition::MetisPartition(graph, metis);
  PostAgentConfig config;
  config.num_groups = num_groups;
  config.seed = seed;
  return std::make_unique<PostAgent>(graph, cluster, std::move(grouping),
                                     std::move(config));
}

}  // namespace eagle::core
