// Group-embedding construction for the placer (§III-C): "a group embedding
// consists of three parts: the number of operations of each operation type
// in the group, the output shapes, and the adjacency information".
#pragma once

#include "core/run_config.h"
#include "graph/features.h"
#include "nn/tensor.h"

namespace eagle::core {

// k × GroupEmbeddingDim tensor from a grouping of `graph`.
// include_adjacency=false for the GCN placer (it gets Â separately).
nn::Tensor MakeGroupEmbeddings(const graph::OpGraph& graph,
                               const graph::Grouping& grouping,
                               int num_groups, graph::FeatureMode mode,
                               bool include_adjacency);

// Normalized group adjacency Â as a tensor (GCN placer input).
nn::Tensor MakeGroupAdjacency(const graph::OpGraph& graph,
                              const graph::Grouping& grouping,
                              int num_groups);

// num_ops × OpFeatureDim tensor (grouper input).
nn::Tensor MakeOpFeatures(const graph::OpGraph& graph,
                          graph::FeatureMode mode);

}  // namespace eagle::core
