// PlacementEnvironment: the environment the RL agents interact with.
//
// Wraps a benchmark graph + cluster + MeasurementSession, caches noiseless
// evaluations by placement hash (the simulator is deterministic, so a
// revisited placement costs virtual-clock time but no compute), and
// supplies the invalid-placement penalty used by reward shaping.
#pragma once

#include <memory>
#include <unordered_map>

#include "rl/trainer.h"
#include "sim/measurement.h"

namespace eagle::core {

struct EnvironmentOptions {
  sim::MeasurementOptions measurement;
  sim::SimulatorOptions simulator;
  // Invalid placements are charged penalty_factor × the serialized
  // single-fastest-device per-step lower bound.
  double penalty_factor = 10.0;
  bool cache_evaluations = true;
};

class PlacementEnvironment : public rl::Environment {
 public:
  PlacementEnvironment(const graph::OpGraph& graph,
                       const sim::ClusterSpec& cluster,
                       EnvironmentOptions options = {});

  sim::EvalResult Evaluate(const sim::Placement& placement,
                           support::Rng* rng) override;
  double InvalidPenaltySeconds() const override { return penalty_seconds_; }

  const graph::OpGraph& graph() const { return *graph_; }
  const sim::ClusterSpec& cluster() const { return *cluster_; }
  const sim::MeasurementSession& session() const { return session_; }

  int cache_hits() const { return cache_hits_; }
  int evaluations() const { return evaluations_; }

 private:
  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  EnvironmentOptions options_;
  sim::MeasurementSession session_;
  double penalty_seconds_ = 0.0;
  std::unordered_map<std::uint64_t, sim::EvalResult> cache_;
  int cache_hits_ = 0;
  int evaluations_ = 0;
};

}  // namespace eagle::core
