// PlacementEnvironment: the environment the RL agents interact with.
//
// Wraps a benchmark graph + cluster + MeasurementSession, caches noiseless
// evaluations (collision-checked by full device vector — see EvalCache),
// and supplies the invalid-placement penalty used by reward shaping.
//
// Robustness layer: when EnvironmentOptions::faults is enabled, every
// evaluation becomes a retry loop over fault-injected measurement
// attempts (sim::FaultInjector) governed by a support::RetryPolicy —
// session crashes, down devices and timed-out stragglers are retried
// with exponential backoff, every attempt and backoff wait charging the
// virtual clock; an evaluation that exhausts its retries degrades into
// the invalid-placement penalty instead of aborting training. Retry /
// failure counters are exposed for reporting, and the mutable fault
// stream serializes into training checkpoints for crash-safe resume.
//
// Concurrency: evaluation is split into a three-phase protocol so that
// core::EvalService can run the expensive middle phase on worker threads
// while the run stays bit-identical to a serial one:
//
//   1. PrepareEvaluation (serial, dispatch order) — splits a per-sample
//      child off the fault stream, resolves the cache and counts the
//      hit/miss verdict.
//   2. EvaluateTicket (any thread) — const: simulator runs, fault-
//      injected retry attempts and measurement noise touch only the
//      ticket's private RNGs; shared counters/cache are never written.
//   3. CommitEvaluation (serial, submission order) — inserts the clean
//      result into the cache and applies the counter deltas, replaying
//      exactly what an interleaved serial run would have done.
//
// Evaluate() is Prepare+Evaluate+Commit back to back, so serial callers,
// a 1-thread service and an N-thread service all advance the same
// streams in the same order.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "core/eval_cache.h"
#include "core/policy.h"
#include "sim/fault.h"
#include "sim/measurement.h"
#include "support/retry.h"

namespace eagle::core {

struct EnvironmentOptions {
  sim::MeasurementOptions measurement;
  sim::SimulatorOptions simulator;
  // Fault injection (all-zero rates: disabled) and the retry policy that
  // governs failed measurement attempts.
  sim::FaultProfile faults;
  support::RetryPolicy retry;
  // Invalid placements are charged penalty_factor × the serialized
  // single-fastest-device per-step lower bound.
  double penalty_factor = 10.0;
  // Delta re-simulation (sim/delta.h) for the session's simulator: move
  // sequences that change few ops are re-evaluated incrementally. On by
  // default — results are bit-identical to full runs (audit-enforced).
  bool delta_resim = true;
  bool cache_evaluations = true;
  // Entry cap for the evaluation cache (<= 0: unbounded). Long fault
  // sweeps revisit thousands of placements; the cap bounds memory with
  // LRU-ish eviction (see EvalCache).
  int eval_cache_capacity = 0;
};

// One in-flight evaluation's private context, split off serially at
// dispatch time so concurrent evaluations share no mutable state.
struct EvalTicket {
  support::Rng fault_rng;         // per-sample child of the fault stream
  bool counted_cache_hit = false;
  bool has_clean = false;         // noiseless result resolved from cache
  sim::EvalResult clean;
};

// One evaluation's result plus the deterministic counter deltas the
// commit phase applies in submission order.
struct EvalOutcome {
  sim::EvalResult result;
  sim::EvalResult clean;          // noiseless result, for the cache
  bool insert_clean = false;
  int attempts = 0;
  int transient_failures = 0;
  int timeouts = 0;
  int retries = 0;
  int exhausted = 0;
  double backoff_seconds = 0.0;
};

class PlacementEnvironment : public Environment {
 public:
  PlacementEnvironment(const graph::OpGraph& graph,
                       const sim::ClusterSpec& cluster,
                       EnvironmentOptions options = {});

  sim::EvalResult Evaluate(const sim::Placement& placement,
                           support::Rng* rng) override;
  double InvalidPenaltySeconds() const override { return penalty_seconds_; }

  // Three-phase evaluation protocol (see file comment). Prepare/Commit
  // take the state lock and may be called from any thread, but the
  // determinism contract requires Prepare calls in dispatch order and
  // Commit calls in submission order; EvaluateTicket is const and safe
  // to run concurrently.
  EvalTicket PrepareEvaluation(const sim::Placement& placement);
  EvalOutcome EvaluateTicket(const sim::Placement& placement,
                             EvalTicket& ticket, support::Rng* rng) const;
  void CommitEvaluation(const sim::Placement& placement,
                        const EvalOutcome& outcome);

  // Fault stream + robustness counters, for checkpoint/resume.
  void SerializeState(std::ostream& out) const override;
  void DeserializeState(std::istream& in) override;

  const graph::OpGraph& graph() const { return *graph_; }
  const sim::ClusterSpec& cluster() const { return *cluster_; }
  const sim::MeasurementSession& session() const { return session_; }
  const EvalCache& cache() const { return cache_; }

  int cache_hits() const { return ReadCounter(cache_hits_); }
  int evaluations() const { return ReadCounter(evaluations_); }

  // Robustness counters (all zero when faults are disabled).
  int attempts() const { return ReadCounter(attempts_); }
  int transient_failures() const { return ReadCounter(transient_failures_); }
  int timeouts() const { return ReadCounter(timeouts_); }
  int retries() const { return ReadCounter(retries_); }
  // Evaluations that exhausted every retry and degraded to the penalty.
  int exhausted_evaluations() const {
    return ReadCounter(exhausted_evaluations_);
  }
  double backoff_seconds_total() const;

 private:
  sim::EvalResult EvaluateWithRetries(const sim::Placement& placement,
                                      const sim::EvalResult& clean,
                                      support::Rng* noise_rng,
                                      support::Rng& fault_rng,
                                      EvalOutcome* outcome) const;
  bool PendingContains(std::uint64_t hash,
                       const std::vector<sim::DeviceId>& devices) const;
  int ReadCounter(const int& counter) const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return counter;
  }

  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  EnvironmentOptions options_;
  sim::MeasurementSession session_;
  std::unique_ptr<sim::FaultInjector> injector_;  // null: faults disabled
  double penalty_seconds_ = 0.0;

  // Mutable environment state. The mutex guards everything below it:
  // the fault stream, the pending list, the counters and the backoff
  // accumulator. Counters are only written inside the serialized
  // Prepare/Commit phases, so plain ints under the lock suffice — no
  // atomics needed (eagle-lint rule CC01 keeps it that way).
  mutable std::mutex state_mutex_;
  support::Rng fault_rng_;
  // Placements prepared but not yet committed: a duplicate dispatched in
  // the same round counts as a cache hit exactly as it would have in an
  // interleaved serial run.
  struct PendingEval {
    std::uint64_t hash;
    std::vector<sim::DeviceId> devices;
  };
  std::vector<PendingEval> pending_;
  EvalCache cache_;
  int cache_hits_ = 0;
  int evaluations_ = 0;
  int attempts_ = 0;
  int transient_failures_ = 0;
  int timeouts_ = 0;
  int retries_ = 0;
  int exhausted_evaluations_ = 0;
  double backoff_seconds_total_ = 0.0;  // summed in commit order
};

}  // namespace eagle::core
