// PlacementEnvironment: the environment the RL agents interact with.
//
// Wraps a benchmark graph + cluster + MeasurementSession, caches noiseless
// evaluations (collision-checked by full device vector — see EvalCache),
// and supplies the invalid-placement penalty used by reward shaping.
//
// Robustness layer: when EnvironmentOptions::faults is enabled, every
// evaluation becomes a retry loop over fault-injected measurement
// attempts (sim::FaultInjector) governed by a support::RetryPolicy —
// session crashes, down devices and timed-out stragglers are retried
// with exponential backoff, every attempt and backoff wait charging the
// virtual clock; an evaluation that exhausts its retries degrades into
// the invalid-placement penalty instead of aborting training. Retry /
// failure counters are exposed for reporting, and the mutable fault
// stream serializes into training checkpoints for crash-safe resume.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/eval_cache.h"
#include "rl/trainer.h"
#include "sim/fault.h"
#include "sim/measurement.h"
#include "support/retry.h"

namespace eagle::core {

struct EnvironmentOptions {
  sim::MeasurementOptions measurement;
  sim::SimulatorOptions simulator;
  // Fault injection (all-zero rates: disabled) and the retry policy that
  // governs failed measurement attempts.
  sim::FaultProfile faults;
  support::RetryPolicy retry;
  // Invalid placements are charged penalty_factor × the serialized
  // single-fastest-device per-step lower bound.
  double penalty_factor = 10.0;
  bool cache_evaluations = true;
};

class PlacementEnvironment : public rl::Environment {
 public:
  PlacementEnvironment(const graph::OpGraph& graph,
                       const sim::ClusterSpec& cluster,
                       EnvironmentOptions options = {});

  sim::EvalResult Evaluate(const sim::Placement& placement,
                           support::Rng* rng) override;
  double InvalidPenaltySeconds() const override { return penalty_seconds_; }

  // Fault stream + robustness counters, for checkpoint/resume.
  void SerializeState(std::ostream& out) const override;
  void DeserializeState(std::istream& in) override;

  const graph::OpGraph& graph() const { return *graph_; }
  const sim::ClusterSpec& cluster() const { return *cluster_; }
  const sim::MeasurementSession& session() const { return session_; }

  int cache_hits() const { return cache_hits_; }
  int evaluations() const { return evaluations_; }

  // Robustness counters (all zero when faults are disabled).
  int attempts() const { return attempts_; }
  int transient_failures() const { return transient_failures_; }
  int timeouts() const { return timeouts_; }
  int retries() const { return retries_; }
  // Evaluations that exhausted every retry and degraded to the penalty.
  int exhausted_evaluations() const { return exhausted_evaluations_; }
  double backoff_seconds_total() const { return backoff_seconds_total_; }

 private:
  sim::EvalResult EvaluateFaultFree(const sim::Placement& placement,
                                    support::Rng* rng);
  sim::EvalResult EvaluateWithRetries(const sim::Placement& placement,
                                      const sim::EvalResult& clean,
                                      support::Rng* rng);

  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  EnvironmentOptions options_;
  sim::MeasurementSession session_;
  std::unique_ptr<sim::FaultInjector> injector_;  // null: faults disabled
  support::Rng fault_rng_;
  double penalty_seconds_ = 0.0;
  EvalCache cache_;
  int cache_hits_ = 0;
  int evaluations_ = 0;
  int attempts_ = 0;
  int transient_failures_ = 0;
  int timeouts_ = 0;
  int retries_ = 0;
  int exhausted_evaluations_ = 0;
  double backoff_seconds_total_ = 0.0;
};

}  // namespace eagle::core
