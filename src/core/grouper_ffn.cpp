#include "core/grouper_ffn.h"

#include "support/check.h"

namespace eagle::core {

GrouperFFN::GrouperFFN(nn::ParamStore& store, int feature_dim, int hidden,
                       int num_groups, support::Rng& rng)
    : l1_(store, "grouper/l1", feature_dim, hidden, rng),
      hidden_(hidden),
      num_groups_(num_groups) {
  w2_ = store.Create("grouper/l2/w", hidden, num_groups);
  b2_ = store.Create("grouper/l2/b", 1, num_groups);
  nn::XavierInit(w2_->value, rng);
}

nn::Var GrouperFFN::Logits(nn::Tape& tape, nn::Var op_features,
                           const nn::Tensor* locality_prior) const {
  nn::Var h = tape.Tanh(l1_.Apply(tape, op_features));
  nn::Var logits = tape.Add(tape.MatMul(h, tape.Param(w2_)), tape.Param(b2_));
  if (locality_prior != nullptr) {
    logits = tape.Add(logits, tape.Input(*locality_prior));
  }
  return logits;
}

GrouperFFN::SampleResult GrouperFFN::Run(nn::Tape& tape, nn::Var op_features,
                                         support::Rng* rng,
                                         const graph::Grouping* forced,
                                         const nn::Tensor* locality_prior)
    const {
  EAGLE_CHECK_MSG((rng != nullptr) != (forced != nullptr),
                  "pass exactly one of rng / forced grouping");
  nn::Var logits = Logits(tape, op_features, locality_prior);
  nn::Var logp = tape.LogSoftmax(logits);
  nn::Var probs = tape.Softmax(logits);
  const nn::Tensor& probs_value = tape.value(probs);
  const int num_ops = probs_value.rows();

  SampleResult result;
  result.softmax = probs;
  std::vector<int> picks(static_cast<std::size_t>(num_ops));
  if (forced != nullptr) {
    EAGLE_CHECK(static_cast<int>(forced->size()) == num_ops);
    for (int i = 0; i < num_ops; ++i) {
      picks[static_cast<std::size_t>(i)] =
          (*forced)[static_cast<std::size_t>(i)];
    }
    result.grouping = *forced;
  } else {
    result.grouping.resize(static_cast<std::size_t>(num_ops));
    for (int i = 0; i < num_ops; ++i) {
      const auto g = static_cast<int>(rng->NextFromProbs(
          probs_value.row(i), static_cast<std::size_t>(num_groups_)));
      picks[static_cast<std::size_t>(i)] = g;
      result.grouping[static_cast<std::size_t>(i)] = g;
    }
  }
  result.log_prob = tape.Sum(tape.PickPerRow(logp, std::move(picks)));
  // Mean per-op entropy: -mean_rows Σ_g p log p.
  result.entropy = tape.Scale(tape.Sum(tape.Mul(probs, logp)),
                              -1.0f / static_cast<float>(num_ops));
  return result;
}

nn::Tensor MakeLocalityPrior(const graph::OpGraph& graph, int num_groups) {
  // Graph-definition order (op id) is the locality coordinate: builders —
  // like TF GraphDefs — emit ops layer by layer, so adjacent ids are
  // structurally adjacent. A Kahn topological rank interleaves parallel
  // layers (e.g. the unrolled timesteps of every GNMT layer) and would
  // band *across* the natural module boundaries instead.
  std::vector<float> rank(static_cast<std::size_t>(graph.num_ops()), 0.0f);
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    rank[static_cast<std::size_t>(i)] =
        graph.num_ops() > 1
            ? static_cast<float>(i) / static_cast<float>(graph.num_ops() - 1)
            : 0.0f;
  }
  const float gamma = 8.0f / static_cast<float>(num_groups);
  nn::Tensor prior(graph.num_ops(), num_groups);
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    const float center = rank[static_cast<std::size_t>(i)] *
                         static_cast<float>(num_groups);
    float* row = prior.row(i);
    for (int g = 0; g < num_groups; ++g) {
      const float d = center - (static_cast<float>(g) + 0.5f);
      row[g] = -gamma * d * d;
    }
  }
  return prior;
}

}  // namespace eagle::core
