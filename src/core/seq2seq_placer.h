// Sequence-to-sequence placer (§III-C, Fig. 3a): a bidirectional LSTM
// encoder over the group-embedding sequence and a unidirectional LSTM
// decoder emitting one device decision per group, with Bahdanau
// content-based attention applied either *before* the decoder cell
// (EAGLE's choice, Fig. 4a — context is part of the LSTM input) or
// *after* it (HP's choice, Fig. 4b — context joins the output projection).
#pragma once

#include <vector>

#include "core/run_config.h"
#include "nn/layers.h"
#include "support/rng.h"

namespace eagle::core {

struct PlacerRollout {
  std::vector<std::int32_t> devices;  // one per group
  nn::Var log_prob;  // 1×1: Σ_g log p(d_g | ...)
  nn::Var entropy;   // 1×1: mean per-step policy entropy
};

class Seq2SeqPlacer {
 public:
  Seq2SeqPlacer() = default;
  Seq2SeqPlacer(nn::ParamStore& store, int input_dim, int hidden,
                int attn_dim, int device_embed_dim, int num_devices,
                AttentionVariant variant, support::Rng& rng);

  // Samples (rng) or scores (forced) a device sequence for the k rows of
  // group_embeddings. Exactly one of rng/forced must be set.
  PlacerRollout Run(nn::Tape& tape, nn::Var group_embeddings,
                    support::Rng* rng,
                    const std::vector<std::int32_t>* forced) const;

  int num_devices() const { return num_devices_; }
  AttentionVariant variant() const { return variant_; }

 private:
  nn::BiLstmEncoder encoder_;
  nn::LstmCell decoder_;
  nn::BahdanauAttention attention_;
  nn::Linear output_;
  nn::Parameter* device_embedding_ = nullptr;  // (D+1)×E; row D = <start>
  int num_devices_ = 0;
  int hidden_ = 0;
  AttentionVariant variant_ = AttentionVariant::kBefore;
};

}  // namespace eagle::core
