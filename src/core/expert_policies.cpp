#include "core/expert_policies.h"

#include <string>
#include <vector>

#include "support/check.h"

namespace eagle::core {

sim::Placement SingleGpuPlacement(const graph::OpGraph& graph,
                                  const sim::ClusterSpec& cluster) {
  const auto gpus = cluster.Gpus();
  EAGLE_CHECK_MSG(!gpus.empty(), "cluster has no GPU");
  return sim::Placement::AllOnDevice(graph, cluster, gpus.front());
}

namespace {

// GNMT expert: layers striped across the 4 GPUs following tf/nmt's
// colocate-layer convention. Embeddings stay on CPU (pinned anyway).
sim::DeviceId GnmtExpertDevice(const std::string& layer,
                               const std::vector<sim::DeviceId>& gpus) {
  const auto gpu = [&gpus](std::size_t i) {
    return gpus[i % gpus.size()];
  };
  if (layer.rfind("encoder/lstm0", 0) == 0 ||
      layer.rfind("encoder/lstm1", 0) == 0) {
    return gpu(0);
  }
  if (layer.rfind("encoder/lstm", 0) == 0) return gpu(1);
  if (layer.rfind("decoder/lstm0", 0) == 0 ||
      layer.rfind("decoder/lstm1", 0) == 0 || layer == "attention") {
    return gpu(2);
  }
  if (layer.rfind("decoder/lstm", 0) == 0 || layer == "softmax") {
    return gpu(3);
  }
  return gpu(0);  // embeddings etc. (cpu-pinned ops are normalized later)
}

}  // namespace

std::optional<sim::Placement> HumanExpertPlacement(
    models::Benchmark benchmark, const graph::OpGraph& graph,
    const sim::ClusterSpec& cluster) {
  const auto gpus = cluster.Gpus();
  EAGLE_CHECK(!gpus.empty());
  switch (benchmark) {
    case models::Benchmark::kInceptionV3:
      // TF-Slim: the whole tower on one GPU, data pipeline on CPU.
      return SingleGpuPlacement(graph, cluster);
    case models::Benchmark::kGNMT: {
      std::vector<sim::DeviceId> devices(
          static_cast<std::size_t>(graph.num_ops()));
      for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
        devices[static_cast<std::size_t>(i)] =
            GnmtExpertDevice(graph.op(i).layer, gpus);
      }
      sim::Placement placement(graph, std::move(devices));
      placement.Normalize(graph, cluster);
      return placement;
    }
    case models::Benchmark::kBertBase:
      // No published model-parallel expert placement exists (§IV-B).
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace eagle::core
