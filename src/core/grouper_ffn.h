// The learned grouper: a two-layer feed-forward network mapping per-op
// feature vectors to group logits (§III-B; paper: 64 hidden units, 256
// groups). Sampling a grouping draws one categorical per operation.
#pragma once

#include <vector>

#include "graph/grouped_graph.h"
#include "nn/layers.h"
#include "support/rng.h"

namespace eagle::core {

class GrouperFFN {
 public:
  GrouperFFN() = default;
  GrouperFFN(nn::ParamStore& store, int feature_dim, int hidden,
             int num_groups, support::Rng& rng);

  // num_ops × num_groups logits. When a locality prior is supplied (see
  // MakeLocalityPrior) it is added to the learned logits: the grouper
  // then *starts* from a soft topological banding — groups are
  // contiguous regions of the graph, as manual groupings are — and the
  // FFN learns deviations from it. Without the prior the initial
  // groupings are type-clusters scattered across the graph, whose huge
  // cut makes the joint learning problem needlessly hard (the instability
  // the paper reports for Hierarchical Planner on BERT).
  nn::Var Logits(nn::Tape& tape, nn::Var op_features,
                 const nn::Tensor* locality_prior = nullptr) const;

  struct SampleResult {
    graph::Grouping grouping;
    nn::Var log_prob;   // 1×1: Σ_op log p(g_op | op)
    nn::Var entropy;    // 1×1: mean per-op policy entropy
    nn::Var softmax;    // num_ops × k (reused by the bridge RNN)
  };
  // Samples (rng != nullptr) or scores a forced grouping (forced !=
  // nullptr); exactly one must be set.
  SampleResult Run(nn::Tape& tape, nn::Var op_features, support::Rng* rng,
                   const graph::Grouping* forced,
                   const nn::Tensor* locality_prior = nullptr) const;

  // Second-layer weights (hidden × num_groups); each column is a group's
  // parameter signature — the bridge RNN's per-group input (§III, "an
  // extra RNN ... transforms parameters of the grouper into inputs of the
  // placer").
  nn::Parameter* output_weights() const { return w2_; }
  int hidden() const { return hidden_; }
  int num_groups() const { return num_groups_; }

 private:
  nn::Linear l1_;
  nn::Parameter* w2_ = nullptr;
  nn::Parameter* b2_ = nullptr;
  int hidden_ = 0;
  int num_groups_ = 0;
};

// num_ops × num_groups additive logit prior: op at normalized topological
// rank r prefers groups near r·k with a soft quadratic falloff
// (P[op][g] = -gamma (r·k - g - 0.5)², gamma ≈ 8/k, so a band of a few
// neighboring groups stays in play for exploration).
nn::Tensor MakeLocalityPrior(const graph::OpGraph& graph, int num_groups);

}  // namespace eagle::core
