#include "core/eval_cache.h"

#include <algorithm>

namespace eagle::core {

EvalCache::EvalCache(int max_entries) : max_entries_(std::max(0, max_entries)) {
  if (max_entries_ > 0) {
    shard_capacity_ = std::max(
        1, (max_entries_ + static_cast<int>(kNumShards) - 1) /
               static_cast<int>(kNumShards));
  }
}

bool EvalCache::LookupByHash(std::uint64_t hash,
                             const std::vector<sim::DeviceId>& devices,
                             sim::EvalResult* out) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.buckets.find(hash);
  if (it == shard.buckets.end()) return false;
  for (Entry& entry : it->second) {
    if (entry.devices == devices) {
      entry.last_used = ++shard.tick;
      *out = entry.result;
      return true;
    }
  }
  return false;
}

const sim::EvalResult* EvalCache::FindByHash(
    std::uint64_t hash, const std::vector<sim::DeviceId>& devices) const {
  const Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.buckets.find(hash);
  if (it == shard.buckets.end()) return nullptr;
  for (const Entry& entry : it->second) {
    if (entry.devices == devices) return &entry.result;
  }
  return nullptr;
}

void EvalCache::EvictOne(Shard& shard) {
  auto victim_bucket = shard.buckets.end();
  std::size_t victim_index = 0;
  std::uint64_t oldest = 0;
  bool found = false;
  for (auto it = shard.buckets.begin(); it != shard.buckets.end(); ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const Entry& entry = it->second[i];
      if (!found || entry.last_used < oldest) {
        found = true;
        oldest = entry.last_used;
        victim_bucket = it;
        victim_index = i;
      }
    }
  }
  if (!found) return;
  auto& bucket = victim_bucket->second;
  bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(victim_index));
  if (bucket.empty()) shard.buckets.erase(victim_bucket);
  --shard.size;
  ++shard.evictions;
}

void EvalCache::InsertByHash(std::uint64_t hash,
                             const std::vector<sim::DeviceId>& devices,
                             const sim::EvalResult& result) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.buckets.find(hash);
  if (it != shard.buckets.end()) {
    for (Entry& entry : it->second) {
      if (entry.devices == devices) {
        entry.result = result;
        entry.last_used = ++shard.tick;
        return;
      }
    }
  }
  // Full shard: drop the least-recently-used entry before adding. The
  // bucket is (re-)resolved afterwards since eviction can erase it.
  if (shard_capacity_ > 0 && shard.size >= shard_capacity_) EvictOne(shard);
  auto& bucket = shard.buckets[hash];
  if (!bucket.empty()) ++shard.collisions;
  bucket.push_back(Entry{devices, result, ++shard.tick});
  ++shard.size;
}

int EvalCache::size() const {
  int total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.size;
  }
  return total;
}

int EvalCache::collisions() const {
  int total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.collisions;
  }
  return total;
}

int EvalCache::evictions() const {
  int total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.evictions;
  }
  return total;
}

}  // namespace eagle::core
