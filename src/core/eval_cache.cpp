#include "core/eval_cache.h"

#include <algorithm>

#include "support/check.h"

namespace eagle::core {

EvalCache::EvalCache(int max_entries) : max_entries_(std::max(0, max_entries)) {
  if (max_entries_ > 0) {
    shard_capacity_ = std::max(
        1, (max_entries_ + static_cast<int>(kNumShards) - 1) /
               static_cast<int>(kNumShards));
  }
}

bool EvalCache::LookupByHash(std::uint64_t hash,
                             const std::vector<sim::DeviceId>& devices,
                             sim::EvalResult* out) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(hash);
  if (it == shard.index.end()) return false;
  for (const std::uint32_t slot : it->second) {
    Entry& entry = shard.entries[slot];
    if (entry.devices == devices) {
      entry.last_used = ++shard.tick;
      *out = entry.result;
      return true;
    }
  }
  return false;
}

const sim::EvalResult* EvalCache::FindByHash(
    std::uint64_t hash, const std::vector<sim::DeviceId>& devices) const {
  const Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(hash);
  if (it == shard.index.end()) return nullptr;
  for (const std::uint32_t slot : it->second) {
    const Entry& entry = shard.entries[slot];
    if (entry.devices == devices) return &entry.result;
  }
  return nullptr;
}

void EvalCache::EvictOne(Shard& shard) {
  if (shard.entries.empty()) return;
  // Deterministic LRU: walk the flat vector in slot order; ticks are
  // unique per shard so there is exactly one oldest entry.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < shard.entries.size(); ++i) {
    if (shard.entries[i].last_used < shard.entries[victim].last_used) {
      victim = i;
    }
  }

  const auto unindex = [&shard](std::uint64_t hash, std::uint32_t slot) {
    const auto it = shard.index.find(hash);
    EAGLE_DCHECK(it != shard.index.end());
    auto& slots = it->second;
    slots.erase(std::find(slots.begin(), slots.end(), slot));
    if (slots.empty()) shard.index.erase(it);
  };

  unindex(shard.entries[victim].hash, static_cast<std::uint32_t>(victim));
  const std::size_t last = shard.entries.size() - 1;
  if (victim != last) {
    // Swap-and-pop: the moved entry changes slot, so re-point its index.
    auto& slots = shard.index[shard.entries[last].hash];
    *std::find(slots.begin(), slots.end(), static_cast<std::uint32_t>(last)) =
        static_cast<std::uint32_t>(victim);
    shard.entries[victim] = std::move(shard.entries[last]);
  }
  shard.entries.pop_back();
  ++shard.evictions;
}

void EvalCache::InsertByHash(std::uint64_t hash,
                             const std::vector<sim::DeviceId>& devices,
                             const sim::EvalResult& result) {
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(hash);
  if (it != shard.index.end()) {
    for (const std::uint32_t slot : it->second) {
      Entry& entry = shard.entries[slot];
      if (entry.devices == devices) {
        entry.result = result;
        entry.last_used = ++shard.tick;
        return;
      }
    }
  }
  // Full shard: drop the least-recently-used entry before adding. The
  // index bucket is re-resolved afterwards since eviction can erase it.
  if (shard_capacity_ > 0 &&
      shard.entries.size() >= static_cast<std::size_t>(shard_capacity_)) {
    EvictOne(shard);
  }
  auto& slots = shard.index[hash];
  if (!slots.empty()) ++shard.collisions;
  slots.push_back(static_cast<std::uint32_t>(shard.entries.size()));
  shard.entries.push_back(Entry{hash, devices, result, ++shard.tick});
}

int EvalCache::size() const {
  int total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += static_cast<int>(shard.entries.size());
  }
  return total;
}

int EvalCache::collisions() const {
  int total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.collisions;
  }
  return total;
}

int EvalCache::evictions() const {
  int total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.evictions;
  }
  return total;
}

}  // namespace eagle::core
