#include "core/eval_cache.h"

namespace eagle::core {

const sim::EvalResult* EvalCache::FindByHash(
    std::uint64_t hash, const std::vector<sim::DeviceId>& devices) const {
  const auto it = buckets_.find(hash);
  if (it == buckets_.end()) return nullptr;
  for (const Entry& entry : it->second) {
    if (entry.devices == devices) return &entry.result;
  }
  return nullptr;
}

void EvalCache::InsertByHash(std::uint64_t hash,
                             const std::vector<sim::DeviceId>& devices,
                             const sim::EvalResult& result) {
  auto& bucket = buckets_[hash];
  for (Entry& entry : bucket) {
    if (entry.devices == devices) {
      entry.result = result;
      return;
    }
  }
  if (!bucket.empty()) ++collisions_;
  bucket.push_back(Entry{devices, result});
  ++size_;
}

}  // namespace eagle::core
