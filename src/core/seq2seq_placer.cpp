#include "core/seq2seq_placer.h"

#include "support/check.h"

namespace eagle::core {

Seq2SeqPlacer::Seq2SeqPlacer(nn::ParamStore& store, int input_dim, int hidden,
                             int attn_dim, int device_embed_dim,
                             int num_devices, AttentionVariant variant,
                             support::Rng& rng)
    : encoder_(store, "placer/encoder", input_dim, hidden, rng),
      decoder_(store, "placer/decoder",
               // Decoder input: encoder state (2H) + previous device
               // embedding; the before-variant additionally feeds the
               // attention context (2H) into the cell.
               2 * hidden + device_embed_dim +
                   (variant == AttentionVariant::kBefore ? 2 * hidden : 0),
               hidden, rng),
      attention_(store, "placer/attention", 2 * hidden, hidden, attn_dim,
                 rng),
      output_(store, "placer/output",
              variant == AttentionVariant::kAfter ? 3 * hidden : hidden,
              num_devices, rng),
      num_devices_(num_devices),
      hidden_(hidden),
      variant_(variant) {
  device_embedding_ =
      store.Create("placer/device_embedding", num_devices + 1,
                   device_embed_dim);
  nn::XavierInit(device_embedding_->value, rng);
}

PlacerRollout Seq2SeqPlacer::Run(nn::Tape& tape, nn::Var group_embeddings,
                                 support::Rng* rng,
                                 const std::vector<std::int32_t>* forced)
    const {
  EAGLE_CHECK_MSG((rng != nullptr) != (forced != nullptr),
                  "pass exactly one of rng / forced devices");
  const int k = tape.value(group_embeddings).rows();
  if (forced != nullptr) {
    EAGLE_CHECK(static_cast<int>(forced->size()) == k);
  }

  const auto enc = encoder_.Apply(tape, group_embeddings);
  nn::Var enc_proj = attention_.ProjectEncoder(tape, enc.states);

  PlacerRollout rollout;
  rollout.devices.resize(static_cast<std::size_t>(k));
  std::vector<nn::Var> picked_logps(static_cast<std::size_t>(k));
  std::vector<nn::Var> entropies(static_cast<std::size_t>(k));

  nn::Var device_table = tape.Param(device_embedding_);
  nn::LstmCell::State state{enc.final_fwd.h, enc.final_fwd.c};
  int prev_device = num_devices_;  // <start> token
  for (int g = 0; g < k; ++g) {
    nn::Var x = tape.ConcatCols(tape.Row(enc.states, g),
                                tape.Row(device_table, prev_device));
    nn::Var logits;
    if (variant_ == AttentionVariant::kBefore) {
      const auto attn = attention_.Apply(tape, enc.states, enc_proj, state.h);
      x = tape.ConcatCols(x, attn.context);
      state = decoder_.Step(tape, x, state);
      logits = output_.Apply(tape, state.h);
    } else {
      state = decoder_.Step(tape, x, state);
      const auto attn = attention_.Apply(tape, enc.states, enc_proj, state.h);
      logits = output_.Apply(tape, tape.ConcatCols(state.h, attn.context));
    }
    nn::Var logp = tape.LogSoftmax(logits);
    nn::Var probs = tape.Softmax(logits);
    int device;
    if (forced != nullptr) {
      device = (*forced)[static_cast<std::size_t>(g)];
      EAGLE_CHECK_MSG(device >= 0 && device < num_devices_,
                      "forced device " << device << " out of range");
    } else {
      device = static_cast<int>(rng->NextFromProbs(
          tape.value(probs).row(0), static_cast<std::size_t>(num_devices_)));
    }
    rollout.devices[static_cast<std::size_t>(g)] = device;
    picked_logps[static_cast<std::size_t>(g)] =
        tape.PickPerRow(logp, {device});
    entropies[static_cast<std::size_t>(g)] =
        tape.Scale(tape.Sum(tape.Mul(probs, logp)), -1.0f);
    prev_device = device;
  }
  rollout.log_prob = tape.Sum(tape.ConcatRows(picked_logps));
  rollout.entropy = tape.Scale(tape.Sum(tape.ConcatRows(entropies)),
                               1.0f / static_cast<float>(k));
  return rollout;
}

}  // namespace eagle::core
