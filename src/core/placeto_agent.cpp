#include "core/placeto_agent.h"

#include <cmath>

#include "core/policy.h"
#include "partition/metis_like.h"
#include "support/check.h"

namespace eagle::core {

PlacetoAgent::PlacetoAgent(const graph::OpGraph& graph,
                           const sim::ClusterSpec& cluster,
                           PlacetoOptions options)
    : graph_(&graph),
      cluster_(&cluster),
      options_(options),
      simulator_(graph, cluster) {
  partition::MetisOptions metis;
  metis.num_parts = options_.num_groups;
  metis.seed = options_.seed;
  grouping_ = partition::MetisPartition(graph, metis);
  grouped_ = std::make_unique<graph::GroupedGraph>(graph, grouping_,
                                                   options_.num_groups);
  embeddings_ = MakeGroupEmbeddings(graph, grouping_, options_.num_groups,
                                    graph::FeatureMode::kReconstructed,
                                    /*include_adjacency=*/true);
  support::Rng rng(options_.seed);
  const int state_dim =
      embeddings_.cols() + cluster.num_devices() + cluster.num_devices();
  l1_ = nn::Linear(store_, "placeto/l1", state_dim, options_.hidden, rng);
  l2_ = nn::Linear(store_, "placeto/l2", options_.hidden,
                   cluster.num_devices(), rng);
}

int PlacetoAgent::PolicyStep(nn::Tape& tape, int group,
                             const std::vector<std::int32_t>& devices,
                             support::Rng& rng, std::vector<nn::Var>& logps,
                             std::vector<nn::Var>& entropies) {
  const int num_devices = cluster_->num_devices();
  nn::Tensor state(1, embeddings_.cols() + 2 * num_devices);
  float* row = state.row(0);
  std::copy(embeddings_.row(group), embeddings_.row(group) + embeddings_.cols(),
            row);
  row[embeddings_.cols() + devices[static_cast<std::size_t>(group)]] = 1.0f;
  // Per-device share of groups (the global context Placeto reads from the
  // current placement).
  float* shares = row + embeddings_.cols() + num_devices;
  for (auto d : devices) {
    shares[d] += 1.0f / static_cast<float>(devices.size());
  }
  nn::Var logits =
      l2_.Apply(tape, tape.Tanh(l1_.Apply(tape, tape.Input(std::move(state)))));
  nn::Var logp = tape.LogSoftmax(logits);
  nn::Var probs = tape.Softmax(logits);
  const int device = static_cast<int>(rng.NextFromProbs(
      tape.value(probs).row(0), static_cast<std::size_t>(num_devices)));
  logps.push_back(tape.PickPerRow(logp, {device}));
  entropies.push_back(tape.Scale(tape.Sum(tape.Mul(probs, logp)), -1.0f));
  return device;
}

double PlacetoAgent::Evaluate(const std::vector<std::int32_t>& group_devices,
                              sim::StepResult* step_out) {
  ++eval_count_;
  sim::Placement placement(*graph_, grouped_->ExpandToOps(group_devices));
  placement.Normalize(*graph_, *cluster_);
  const auto step = simulator_.Run(placement);
  if (step_out != nullptr) *step_out = step;
  // Invalid changes are punished with a large effective time (Placeto's
  // simulator rejects them the same way).
  return step.oom ? 10.0 * step.step_seconds + 100.0 : step.step_seconds;
}

PlacetoResult PlacetoAgent::Train() {
  support::Rng rng(options_.seed + 1);
  nn::Adam adam(store_, nn::AdamOptions{.lr = options_.lr,
                                        .beta1 = 0.9,
                                        .beta2 = 0.999,
                                        .eps = 1e-8,
                                        .clip_norm = 1.0});
  EmaBaseline baseline(options_.ema_decay);
  PlacetoResult result;
  result.best_per_step_seconds = std::numeric_limits<double>::infinity();

  const int k = options_.num_groups;
  const auto gpus = cluster_->Gpus();
  for (int episode = 0; episode < options_.episodes; ++episode) {
    // Episodes start from everything on the first GPU (the natural
    // "unplaced" state; usually invalid for the big models, so the agent
    // must discover a valid region by itself).
    std::vector<std::int32_t> devices(static_cast<std::size_t>(k),
                                      gpus.front());
    nn::Tape tape;
    std::vector<nn::Var> logps;
    std::vector<nn::Var> entropies;
    std::vector<double> rewards;
    double previous = Evaluate(devices, nullptr);
    for (int g = 0; g < k; ++g) {
      const int device = PolicyStep(tape, g, devices, rng, logps, entropies);
      devices[static_cast<std::size_t>(g)] = device;
      sim::StepResult step;
      const double current = Evaluate(devices, &step);
      // Reward: improvement in sqrt time (Eq. 4 applied incrementally).
      rewards.push_back(std::sqrt(previous) - std::sqrt(current));
      previous = current;
      if (!step.oom && step.step_seconds < result.best_per_step_seconds) {
        result.found_valid = true;
        result.best_per_step_seconds = step.step_seconds;
        sim::Placement placement(*graph_, grouped_->ExpandToOps(devices));
        placement.Normalize(*graph_, *cluster_);
        result.best_placement = placement;
      }
    }
    // REINFORCE with rewards-to-go and the EMA baseline on episode return.
    double episode_return = 0.0;
    for (double r : rewards) episode_return += r;
    const double advantage = baseline.AdvantageAndUpdate(episode_return);
    std::vector<double> to_go(rewards.size());
    double acc = 0.0;
    for (std::size_t i = rewards.size(); i-- > 0;) {
      acc += rewards[i];
      to_go[i] = acc;
    }
    nn::Var loss;
    bool first = true;
    const float inv_k = 1.0f / static_cast<float>(k);
    for (std::size_t i = 0; i < logps.size(); ++i) {
      // Per-step advantage: rewards-to-go recentred by the episode
      // baseline share.
      const double a = to_go[i] - (episode_return - advantage) *
                                      (static_cast<double>(to_go.size() - i) /
                                       to_go.size());
      nn::Var term = tape.Scale(logps[i], -inv_k * static_cast<float>(a));
      nn::Var ent = tape.Scale(entropies[i],
                               -inv_k * static_cast<float>(
                                            options_.entropy_coef));
      nn::Var combined = tape.Add(term, ent);
      loss = first ? combined : tape.Add(loss, combined);
      first = false;
    }
    tape.Backward(loss);
    adam.Step();
    result.episode_best.push_back(result.best_per_step_seconds);
  }
  result.simulator_evaluations = eval_count_;
  return result;
}

}  // namespace eagle::core
