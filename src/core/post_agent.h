// Post (Gao et al., NeurIPS 2018) baseline: a deliberately simple policy
// network over pre-defined operation groups, trained with PPO joint with
// cross-entropy minimization.
//
// Post grouped operations manually; since no manual grouping ships with
// the paper we use the METIS grouping as the stand-in (documented in
// DESIGN.md). The policy is a per-group independent two-layer FFN: the
// simplicity trains stably (Post's observed strength on BERT) but cannot
// model inter-group placement dependencies (its observed local optimum on
// GNMT).
#pragma once

#include <memory>
#include <string>

#include "core/group_embedding.h"
#include "core/policy.h"
#include "core/run_config.h"
#include "nn/layers.h"
#include "sim/device.h"

namespace eagle::core {

struct PostAgentConfig {
  std::string display_name = "Post";
  int num_groups = 48;
  int hidden = 64;
  graph::FeatureMode features = graph::FeatureMode::kRaw;
  std::uint64_t seed = 1;
};

class PostAgent : public PolicyAgent {
 public:
  PostAgent(const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
            graph::Grouping grouping, PostAgentConfig config);

  Sample SampleDecision(support::Rng& rng) override;
  Score ScoreDecision(nn::Tape& tape, const Sample& sample) override;
  sim::Placement ToPlacement(const Sample& sample) const override;
  nn::ParamStore& params() override { return store_; }
  const char* name() const override { return config_.display_name.c_str(); }

 private:
  struct Output {
    std::vector<std::int32_t> devices;
    nn::Var logp;
    nn::Var entropy;
  };
  Output RunPolicy(nn::Tape& tape, support::Rng* rng,
                   const std::vector<std::int32_t>* forced);

  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  PostAgentConfig config_;
  graph::Grouping grouping_;
  nn::ParamStore store_;
  nn::Linear l1_;
  nn::Linear l2_;
  nn::Tensor embeddings_;
};

// Post's published grouping is a coarse, manually-defined one; 16 METIS
// groups stand in for it (finer groupings would give Post more
// flexibility than the original had).
std::unique_ptr<PostAgent> MakePostAgent(const graph::OpGraph& graph,
                                         const sim::ClusterSpec& cluster,
                                         int num_groups = 16,
                                         std::uint64_t seed = 1);

}  // namespace eagle::core
