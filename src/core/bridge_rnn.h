// The bridge RNN — EAGLE's architectural contribution (§I, §III):
// "An extra RNN is introduced to transform parameters of the grouper into
//  inputs of the placer, linking the originally separated parts together."
//
// For each group g the bridge consumes
//   [ W2[:, g]ᵀ  ;  mean soft-assignment mass of g  ;  op-count share of g ]
// (the grouper's output-layer column plus its current usage statistics)
// and runs an LSTM across the group sequence. Its hidden states are
// concatenated onto the group embeddings the placer encoder reads, so the
// placer's policy gradient flows back into the grouper's parameters
// through a *continuous* path — in HP the only coupling is through the
// sampled (discrete, high-variance) grouping.
#pragma once

#include "core/grouper_ffn.h"
#include "nn/layers.h"

namespace eagle::core {

class BridgeRnn {
 public:
  BridgeRnn() = default;
  BridgeRnn(nn::ParamStore& store, int grouper_hidden, int bridge_hidden,
            support::Rng& rng);

  // Returns num_groups × bridge_hidden conditioning states.
  // `grouper_softmax` is the grouper's num_ops × k soft assignment (a tape
  // Var, so gradients reach the grouper), `grouping` the sampled discrete
  // assignment used for the count statistics.
  nn::Var Apply(nn::Tape& tape, const GrouperFFN& grouper,
                nn::Var grouper_softmax,
                const graph::Grouping& grouping) const;

  int hidden() const { return cell_.hidden(); }

 private:
  nn::LstmCell cell_;
};

}  // namespace eagle::core
