// EvalService: parallel minibatch evaluation for the RL trainer.
//
// EAGLE's training cost is dominated by placement measurement (§IV-C:
// session setup + warm-up + 15 measured steps per sample), and the RL
// placers it builds on (Mirhoseini et al. 2017, Placeto) parallelize
// exactly this step across workers. EvalService does the same for the
// simulated environment: the trainer samples a full minibatch up front,
// the service fans the evaluations out over a support::ThreadPool, and
// the results are reduced in submission order.
//
// Determinism contract: a batch evaluated with N threads is bit-identical
// to the same batch evaluated serially. The service leans on
// PlacementEnvironment's three-phase protocol — PrepareEvaluation in
// dispatch order (fault-stream splits, cache hit accounting),
// EvaluateTicket concurrently (const, no shared mutable state),
// CommitEvaluation in submission order (cache fills, counter deltas,
// backoff sums) — so thread scheduling can never leak into results,
// history, counters or checkpoints.
#pragma once

#include <memory>
#include <vector>

#include "core/env.h"
#include "core/policy.h"
#include "support/thread_pool.h"

namespace eagle::core {

class EvalService : public BatchEvaluator {
 public:
  // num_threads <= 1 evaluates inline on the calling thread (still via
  // the three-phase protocol, so results match the threaded path).
  EvalService(PlacementEnvironment& environment, int num_threads);
  ~EvalService() override;

  int num_threads() const;

  // Evaluates placements[i] with rngs[i]; returns results in submission
  // order, exactly as serial Environment::Evaluate calls would have.
  std::vector<sim::EvalResult> EvaluateBatch(
      const std::vector<sim::Placement>& placements,
      std::vector<support::Rng>& rngs) override;

 private:
  PlacementEnvironment* environment_;
  std::unique_ptr<support::ThreadPool> pool_;  // null: inline evaluation
};

}  // namespace eagle::core
