// Placeto-style incremental placement agent (Addanki et al., NeurIPS 2019
// — discussed in §II-C).
//
// Instead of emitting a whole placement in one shot, the agent sweeps the
// operation groups and re-places one group per step, observing the
// simulated per-step time after every single change, so each reward
// directly reflects the step's decision. As the paper notes, "this
// approach required an extremely large number of steps to train ... hence
// they used a simulator to evaluate the placements" — which is exactly
// what this implementation does: it queries the ExecutionSimulator
// directly and bypasses the expensive 15-step measurement protocol (its
// evaluation count is reported instead of virtual hours).
//
// Policy: a small MLP over [group embedding ; one-hot current device ;
// per-device op-count shares], REINFORCE on per-step improvement rewards
// with an EMA baseline.
#pragma once

#include <vector>

#include "core/group_embedding.h"
#include "graph/grouped_graph.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "sim/simulator.h"

namespace eagle::core {

struct PlacetoOptions {
  int episodes = 40;      // full sweeps over the groups
  int num_groups = 24;    // grouping granularity (METIS, as Placeto
                          // operated on pre-grouped graphs)
  int hidden = 32;
  double lr = 0.01;
  double entropy_coef = 0.01;
  double ema_decay = 0.9;
  std::uint64_t seed = 5;
};

struct PlacetoResult {
  bool found_valid = false;
  sim::Placement best_placement;
  double best_per_step_seconds = 0.0;
  int simulator_evaluations = 0;
  // Best-so-far per completed episode (for convergence plots).
  std::vector<double> episode_best;
};

class PlacetoAgent {
 public:
  PlacetoAgent(const graph::OpGraph& graph, const sim::ClusterSpec& cluster,
               PlacetoOptions options = {});

  PlacetoResult Train();

 private:
  // Samples (or argmax-picks) a device for `group` given the current
  // per-group device assignment; returns device and appends the step's
  // log-prob/entropy vars.
  int PolicyStep(nn::Tape& tape, int group,
                 const std::vector<std::int32_t>& devices,
                 support::Rng& rng, std::vector<nn::Var>& logps,
                 std::vector<nn::Var>& entropies);

  double Evaluate(const std::vector<std::int32_t>& group_devices,
                  sim::StepResult* step_out);

  const graph::OpGraph* graph_;
  const sim::ClusterSpec* cluster_;
  PlacetoOptions options_;
  graph::Grouping grouping_;
  std::unique_ptr<graph::GroupedGraph> grouped_;
  nn::Tensor embeddings_;
  nn::ParamStore store_;
  nn::Linear l1_;
  nn::Linear l2_;
  sim::ExecutionSimulator simulator_;
  int eval_count_ = 0;
};

}  // namespace eagle::core
