#include "core/bridge_rnn.h"

#include "support/check.h"

namespace eagle::core {

BridgeRnn::BridgeRnn(nn::ParamStore& store, int grouper_hidden,
                     int bridge_hidden, support::Rng& rng)
    : cell_(store, "bridge", grouper_hidden + 2, bridge_hidden, rng) {}

nn::Var BridgeRnn::Apply(nn::Tape& tape, const GrouperFFN& grouper,
                         nn::Var grouper_softmax,
                         const graph::Grouping& grouping) const {
  const int k = grouper.num_groups();
  const int num_ops = tape.value(grouper_softmax).rows();
  EAGLE_CHECK(static_cast<int>(grouping.size()) == num_ops);

  // Parameter signatures: W2ᵀ rows are per-group columns (k × hidden).
  nn::Var signatures = tape.Transpose(tape.Param(grouper.output_weights()));
  // Soft mass per group: column means of the softmax (differentiable).
  nn::Var mass = tape.Transpose(
      tape.Scale(tape.SumRows(grouper_softmax),
                 1.0f / static_cast<float>(num_ops)));  // k×1
  // Discrete op-count share per group (constant input).
  nn::Tensor counts(k, 1);
  for (int g : grouping) {
    counts.at(g, 0) += 1.0f / static_cast<float>(num_ops);
  }
  nn::Var count_share = tape.Input(std::move(counts));

  nn::Var inputs = tape.ConcatCols(tape.ConcatCols(signatures, mass),
                                   count_share);  // k × (hidden+2)
  // Run the LSTM across the group sequence.
  std::vector<nn::Var> states(static_cast<std::size_t>(k));
  nn::LstmCell::State state = cell_.ZeroState(tape, 1);
  for (int g = 0; g < k; ++g) {
    state = cell_.Step(tape, tape.Row(inputs, g), state);
    states[static_cast<std::size_t>(g)] = state.h;
  }
  return tape.ConcatRows(states);  // k × bridge_hidden
}

}  // namespace eagle::core
