#include "core/gcn_placer.h"

#include "support/check.h"

namespace eagle::core {

GcnPlacer::GcnPlacer(nn::ParamStore& store, int input_dim, int hidden,
                     int num_devices, support::Rng& rng)
    : conv1_(store, "gcn/conv1", input_dim, hidden, rng),
      conv2_(store, "gcn/conv2", hidden, hidden, rng),
      output_(store, "gcn/output", hidden, num_devices, rng),
      num_devices_(num_devices) {}

PlacerRollout GcnPlacer::Run(nn::Tape& tape, nn::Var group_embeddings,
                             nn::Var adjacency, support::Rng* rng,
                             const std::vector<std::int32_t>* forced) const {
  EAGLE_CHECK_MSG((rng != nullptr) != (forced != nullptr),
                  "pass exactly one of rng / forced devices");
  const int k = tape.value(group_embeddings).rows();
  nn::Var h1 = conv1_.Apply(tape, adjacency, group_embeddings);
  nn::Var h2 = conv2_.Apply(tape, adjacency, h1);
  nn::Var logits = output_.Apply(tape, h2);  // k×D
  nn::Var logp = tape.LogSoftmax(logits);
  nn::Var probs = tape.Softmax(logits);

  PlacerRollout rollout;
  rollout.devices.resize(static_cast<std::size_t>(k));
  std::vector<int> picks(static_cast<std::size_t>(k));
  const nn::Tensor& probs_value = tape.value(probs);
  for (int g = 0; g < k; ++g) {
    int device;
    if (forced != nullptr) {
      device = (*forced)[static_cast<std::size_t>(g)];
      EAGLE_CHECK(device >= 0 && device < num_devices_);
    } else {
      device = static_cast<int>(rng->NextFromProbs(
          probs_value.row(g), static_cast<std::size_t>(num_devices_)));
    }
    rollout.devices[static_cast<std::size_t>(g)] = device;
    picks[static_cast<std::size_t>(g)] = device;
  }
  rollout.log_prob = tape.Sum(tape.PickPerRow(logp, std::move(picks)));
  rollout.entropy = tape.Scale(tape.Sum(tape.Mul(probs, logp)),
                               -1.0f / static_cast<float>(k));
  return rollout;
}

}  // namespace eagle::core
