// Evaluation cache for PlacementEnvironment.
//
// Keyed by the placement's 64-bit content hash, but — unlike the plain
// unordered_map it replaces — each hit verifies the full device vector,
// so a hash collision can never silently return another placement's
// EvalResult (it just becomes a second entry in the bucket).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/measurement.h"
#include "sim/placement.h"

namespace eagle::core {

class EvalCache {
 public:
  // Returns the cached result for exactly this placement, or nullptr.
  const sim::EvalResult* Find(const sim::Placement& placement) const {
    return FindByHash(placement.Hash(), placement.devices());
  }

  void Insert(const sim::Placement& placement, const sim::EvalResult& result) {
    InsertByHash(placement.Hash(), placement.devices(), result);
  }

  // Hash-explicit variants, exposed so tests can force collisions
  // without hunting for real 64-bit hash collisions.
  const sim::EvalResult* FindByHash(
      std::uint64_t hash, const std::vector<sim::DeviceId>& devices) const;
  void InsertByHash(std::uint64_t hash,
                    const std::vector<sim::DeviceId>& devices,
                    const sim::EvalResult& result);

  int size() const { return size_; }
  int collisions() const { return collisions_; }

 private:
  struct Entry {
    std::vector<sim::DeviceId> devices;
    sim::EvalResult result;
  };
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  int size_ = 0;
  int collisions_ = 0;  // inserts that shared a hash with different devices
};

}  // namespace eagle::core
