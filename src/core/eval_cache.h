// Evaluation cache for PlacementEnvironment.
//
// Keyed by the placement's 64-bit content hash, but — unlike the plain
// unordered_map it replaces — each hit verifies the full device vector,
// so a hash collision can never silently return another placement's
// EvalResult (it just becomes a second entry under the same hash).
//
// Thread-safe via sharded locks: entries are spread over 16 shards, each
// guarded by its own mutex, so concurrent evaluations (core::EvalService)
// contend only when they land on the same shard. Growth is bounded by an
// optional entry cap with LRU-ish eviction — Lookup/Insert refresh a
// per-shard recency tick and a full shard evicts its least-recently-used
// entry — so long fault sweeps no longer grow the cache without limit.
//
// Storage layout: each shard keeps its entries in a flat vector with an
// unordered hash -> slot-list index on the side. All scans (eviction in
// particular) walk the vector in slot order, so no behavior ever depends
// on unordered-container iteration order (eagle-lint rule ND02) — ticks
// are unique per shard, which makes the LRU victim deterministic anyway,
// but the flat walk keeps even tie-breaking reproducible by construction.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/measurement.h"
#include "sim/placement.h"

namespace eagle::core {

class EvalCache {
 public:
  // max_entries <= 0 keeps the cache unbounded (the historical default).
  explicit EvalCache(int max_entries = 0);

  // Copies the cached result for exactly this placement into `*out` and
  // refreshes its recency; returns false on miss. This is the
  // thread-safe lookup: the copy means no pointer can dangle when
  // another thread inserts or evicts concurrently.
  bool Lookup(const sim::Placement& placement, sim::EvalResult* out) {
    return LookupByHash(placement.Hash(), placement.devices(), out);
  }

  void Insert(const sim::Placement& placement, const sim::EvalResult& result) {
    InsertByHash(placement.Hash(), placement.devices(), result);
  }

  // Hash-explicit variants, exposed so tests can force collisions
  // without hunting for real 64-bit hash collisions.
  bool LookupByHash(std::uint64_t hash,
                    const std::vector<sim::DeviceId>& devices,
                    sim::EvalResult* out);
  void InsertByHash(std::uint64_t hash,
                    const std::vector<sim::DeviceId>& devices,
                    const sim::EvalResult& result);

  // Pointer-returning lookup kept for single-threaded callers and tests.
  // The pointer is only valid until the next mutating call (an insert
  // can evict or move the entry); it does not refresh recency.
  const sim::EvalResult* Find(const sim::Placement& placement) const {
    return FindByHash(placement.Hash(), placement.devices());
  }
  const sim::EvalResult* FindByHash(
      std::uint64_t hash, const std::vector<sim::DeviceId>& devices) const;

  int size() const;
  int collisions() const;  // inserts that shared a hash with different devices
  int evictions() const;   // entries dropped to respect max_entries

  int max_entries() const { return max_entries_; }

  // The cap is enforced per shard (ceil(max_entries / kNumShards) each),
  // so total occupancy can round up to at most kNumShards extra entries.
  static constexpr std::size_t kNumShards = 16;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<sim::DeviceId> devices;
    sim::EvalResult result;
    std::uint64_t last_used = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;  // flat storage; scans walk this in order
    // hash -> slots in `entries` holding that hash (lookup acceleration
    // only — never iterated as a container).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    std::uint64_t tick = 0;  // per-shard recency clock
    int collisions = 0;
    int evictions = 0;
  };

  Shard& ShardFor(std::uint64_t hash) {
    return shards_[static_cast<std::size_t>(hash) & (kNumShards - 1)];
  }
  const Shard& ShardFor(std::uint64_t hash) const {
    return shards_[static_cast<std::size_t>(hash) & (kNumShards - 1)];
  }

  // Drops the least-recently-used entry of `shard` (linear scan over the
  // flat entry vector; ticks are unique so the victim is unambiguous).
  // Caller holds the lock.
  static void EvictOne(Shard& shard);

  std::array<Shard, kNumShards> shards_;
  int max_entries_ = 0;
  int shard_capacity_ = 0;  // 0: unbounded
};

}  // namespace eagle::core
