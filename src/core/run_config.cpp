#include "core/run_config.h"

namespace eagle::core {

const char* AttentionVariantName(AttentionVariant variant) {
  switch (variant) {
    case AttentionVariant::kBefore: return "before";
    case AttentionVariant::kAfter: return "after";
  }
  return "?";
}

}  // namespace eagle::core
