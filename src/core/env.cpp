#include "core/env.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "sim/cost_model.h"
#include "support/check.h"

namespace eagle::core {

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
void ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  EAGLE_CHECK_MSG(in, "truncated environment state");
}

}  // namespace

PlacementEnvironment::PlacementEnvironment(const graph::OpGraph& graph,
                                           const sim::ClusterSpec& cluster,
                                           EnvironmentOptions options)
    : graph_(&graph),
      cluster_(&cluster),
      options_(options),
      session_(graph, cluster, options.measurement, options.simulator),
      fault_rng_(options.faults.seed) {
  options_.retry.Validate();
  if (options_.faults.enabled()) {
    injector_ = std::make_unique<sim::FaultInjector>(options_.faults, cluster);
  }
  // Serialized lower bound on the fastest device (ignoring memory): the
  // "if it all fit on one GPU" time, scaled into the invalid penalty.
  const sim::CostModel cost(cluster);
  double best = std::numeric_limits<double>::infinity();
  for (sim::DeviceId d = 0; d < cluster.num_devices(); ++d) {
    double total = 0.0;
    for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
      total += cost.ComputeSeconds(graph.op(i), d);
    }
    best = std::min(best, total);
  }
  penalty_seconds_ = options_.penalty_factor * best;
  EAGLE_CHECK(penalty_seconds_ > 0.0);
}

sim::EvalResult PlacementEnvironment::EvaluateFaultFree(
    const sim::Placement& placement, support::Rng* rng) {
  sim::EvalResult result;
  const sim::EvalResult* cached =
      options_.cache_evaluations ? cache_.Find(placement) : nullptr;
  if (cached != nullptr) {
    ++cache_hits_;
    result = *cached;
  } else {
    // Cache the *noiseless* result; noise is re-applied per call below so
    // repeated visits still look like independent measurements.
    result = session_.Evaluate(placement, nullptr);
    if (options_.cache_evaluations) cache_.Insert(placement, result);
  }
  if (result.valid && rng != nullptr &&
      options_.measurement.noise_stddev > 0.0) {
    const int measured =
        options_.measurement.total_steps - options_.measurement.warmup_steps;
    double sum = 0.0;
    for (int i = 0; i < measured; ++i) {
      sum += result.true_per_step_seconds *
             sim::NoiseFactor(options_.measurement.noise_stddev, *rng);
    }
    result.per_step_seconds = sum / measured;
  }
  return result;
}

sim::EvalResult PlacementEnvironment::EvaluateWithRetries(
    const sim::Placement& placement, const sim::EvalResult& clean,
    support::Rng* rng) {
  const support::RetryPolicy& retry = options_.retry;
  double cost_so_far = 0.0;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    ++attempts_;
    const sim::FaultDraw draw = injector_->Draw(fault_rng_);
    sim::EvalResult result = session_.EvaluateWithFaults(placement, draw, rng);
    bool attempt_failed = result.failed;
    double attempt_cost = result.measurement_cost_seconds;
    if (attempt_failed) {
      ++transient_failures_;
    } else if (retry.attempt_timeout_seconds > 0.0 &&
               attempt_cost > retry.attempt_timeout_seconds) {
      // The harness kills sessions that overrun the measurement budget
      // (e.g. a pathological straggler): the attempt charges exactly the
      // timeout, then counts as a failure.
      attempt_failed = true;
      attempt_cost = retry.attempt_timeout_seconds;
      ++timeouts_;
    }
    cost_so_far += attempt_cost;
    if (!attempt_failed) {
      // The healthy machine's per-step time is the ground truth used for
      // best-placement tracking; what the agent *observed* stays faulty.
      result.valid = clean.valid;
      result.true_per_step_seconds = clean.true_per_step_seconds;
      result.attempts = attempt;
      result.measurement_cost_seconds = cost_so_far;
      return result;
    }
    if (attempt < retry.max_attempts) {
      ++retries_;
      const double backoff = retry.BackoffSeconds(attempt, &fault_rng_);
      backoff_seconds_total_ += backoff;
      cost_so_far += backoff;
    }
  }
  // Persistent failure: degrade into the invalid-placement penalty so
  // training continues instead of aborting.
  ++exhausted_evaluations_;
  sim::EvalResult result;
  result.valid = false;
  result.failed = true;
  result.attempts = retry.max_attempts;
  result.measurement_cost_seconds = cost_so_far;
  return result;
}

sim::EvalResult PlacementEnvironment::Evaluate(
    const sim::Placement& placement, support::Rng* rng) {
  ++evaluations_;
  if (injector_ == nullptr) {
    ++attempts_;
    return EvaluateFaultFree(placement, rng);
  }
  // Noiseless ground truth (cached); the fault-injected attempts below
  // draw their own noise, so the clean pass must not consume `rng`.
  const sim::EvalResult clean = EvaluateFaultFree(placement, nullptr);
  return EvaluateWithRetries(placement, clean, rng);
}

void PlacementEnvironment::SerializeState(std::ostream& out) const {
  const auto rng_state = fault_rng_.state();
  for (std::uint64_t s : rng_state) WritePod(out, s);
  WritePod(out, cache_hits_);
  WritePod(out, evaluations_);
  WritePod(out, attempts_);
  WritePod(out, transient_failures_);
  WritePod(out, timeouts_);
  WritePod(out, retries_);
  WritePod(out, exhausted_evaluations_);
  WritePod(out, backoff_seconds_total_);
}

void PlacementEnvironment::DeserializeState(std::istream& in) {
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& s : rng_state) ReadPod(in, s);
  fault_rng_.set_state(rng_state);
  ReadPod(in, cache_hits_);
  ReadPod(in, evaluations_);
  ReadPod(in, attempts_);
  ReadPod(in, transient_failures_);
  ReadPod(in, timeouts_);
  ReadPod(in, retries_);
  ReadPod(in, exhausted_evaluations_);
  ReadPod(in, backoff_seconds_total_);
}

}  // namespace eagle::core
