#include "core/env.h"

#include <algorithm>
#include <cmath>

#include "sim/cost_model.h"
#include "support/check.h"

namespace eagle::core {

PlacementEnvironment::PlacementEnvironment(const graph::OpGraph& graph,
                                           const sim::ClusterSpec& cluster,
                                           EnvironmentOptions options)
    : graph_(&graph),
      cluster_(&cluster),
      options_(options),
      session_(graph, cluster, options.measurement, options.simulator) {
  // Serialized lower bound on the fastest device (ignoring memory): the
  // "if it all fit on one GPU" time, scaled into the invalid penalty.
  const sim::CostModel cost(cluster);
  double best = std::numeric_limits<double>::infinity();
  for (sim::DeviceId d = 0; d < cluster.num_devices(); ++d) {
    double total = 0.0;
    for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
      total += cost.ComputeSeconds(graph.op(i), d);
    }
    best = std::min(best, total);
  }
  penalty_seconds_ = options_.penalty_factor * best;
  EAGLE_CHECK(penalty_seconds_ > 0.0);
}

sim::EvalResult PlacementEnvironment::Evaluate(
    const sim::Placement& placement, support::Rng* rng) {
  ++evaluations_;
  sim::EvalResult result;
  const std::uint64_t key = placement.Hash();
  auto it = options_.cache_evaluations ? cache_.find(key) : cache_.end();
  if (it != cache_.end()) {
    ++cache_hits_;
    result = it->second;
  } else {
    // Cache the *noiseless* result; noise is re-applied per call below so
    // repeated visits still look like independent measurements.
    result = session_.Evaluate(placement, nullptr);
    if (options_.cache_evaluations) cache_.emplace(key, result);
  }
  if (result.valid && rng != nullptr &&
      options_.measurement.noise_stddev > 0.0) {
    const int measured =
        options_.measurement.total_steps - options_.measurement.warmup_steps;
    double sum = 0.0;
    for (int i = 0; i < measured; ++i) {
      sum += result.true_per_step_seconds *
             std::max(0.5, 1.0 + options_.measurement.noise_stddev *
                                     rng->NextGaussian());
    }
    result.per_step_seconds = sum / measured;
  }
  return result;
}

}  // namespace eagle::core
